"""Tests for the sequential Patricia trie (the in-block structure + oracle)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import EMPTY, BitString
from repro.trie import PatriciaTrie


def bs(s: str) -> BitString:
    return BitString.from_str(s)


def build(*keys: str) -> PatriciaTrie:
    t = PatriciaTrie()
    for i, k in enumerate(keys):
        t.insert(bs(k), i)
    return t


key_sets = st.lists(
    st.text(alphabet="01", min_size=0, max_size=40), min_size=0, max_size=60
)


class TestInsertLookup:
    def test_empty_trie(self):
        t = PatriciaTrie()
        assert len(t) == 0
        assert t.lookup(bs("101")) is None
        assert t.lcp(bs("101")) == 0
        assert t.keys() == []

    def test_single_key(self):
        t = build("1011")
        assert t.lookup(bs("1011")) == 0
        assert t.lookup(bs("101")) is None
        assert t.lookup(bs("10111")) is None
        assert len(t) == 1

    def test_empty_key(self):
        t = build("")
        assert t.lookup(EMPTY) == 0
        assert len(t) == 1
        t.check_invariants()

    def test_overwrite(self):
        t = PatriciaTrie()
        assert t.insert(bs("10"), "a") is True
        assert t.insert(bs("10"), "b") is False
        assert t.lookup(bs("10")) == "b"
        assert len(t) == 1

    def test_prefix_keys_coexist(self):
        t = build("10", "1011", "1010", "1")
        for i, k in enumerate(["10", "1011", "1010", "1"]):
            assert t.lookup(bs(k)) == i
        t.check_invariants()

    def test_split_edge(self):
        t = build("0000", "0011")
        assert t.lookup(bs("0000")) == 0
        assert t.lookup(bs("0011")) == 1
        # the implied branch node at depth 2 exists but stores no key
        assert t.lookup(bs("00")) is None
        t.check_invariants()

    def test_paper_figure1_data_trie(self):
        """The data trie of Figure 1 stores the five drawn keys."""
        keys = ["000010", "00001101", "1010000", "1010111", "101011"]
        t = PatriciaTrie()
        for k in keys:
            t.insert(bs(k), k)
        for k in keys:
            assert t.lookup(bs(k)) == k
        t.check_invariants()


class TestLCP:
    def test_lcp_exact(self):
        t = build("10110")
        assert t.lcp(bs("10110")) == 5

    def test_lcp_partial_on_edge(self):
        t = build("10110")
        assert t.lcp(bs("10100")) == 3  # diverges inside the edge

    def test_lcp_at_branch(self):
        t = build("000", "111")
        assert t.lcp(bs("10")) == 1
        assert t.lcp(bs("01")) == 1

    def test_lcp_longer_than_keys(self):
        t = build("101")
        assert t.lcp(bs("10111")) == 3

    def test_lcp_figure1(self):
        """Paper Figure 1: LCP('101001') = 5 via a hidden-node match."""
        t = build("000010", "00001101", "1010000", "1010111", "101011")
        assert t.lcp(bs("101001")) == 5
        # "00001001" shares its whole first 6 bits with stored key "000010"
        assert t.lcp(bs("00001001")) == 6
        # common prefix "10100" ends on hidden nodes in both tries (paper text)
        assert t.lcp(bs("10100")) == 5

    @given(key_sets, st.text(alphabet="01", max_size=40))
    @settings(max_examples=200)
    def test_lcp_matches_bruteforce(self, keys, query):
        t = PatriciaTrie()
        for k in keys:
            t.insert(bs(k))
        q = bs(query)
        expected = max((q.lcp_len(bs(k)) for k in keys), default=0)
        assert t.lcp(q) == expected


class TestDelete:
    def test_delete_present(self):
        t = build("10", "1011", "1111")
        assert t.delete(bs("1011")) is True
        assert t.lookup(bs("1011")) is None
        assert t.lookup(bs("10")) == 0
        assert t.lookup(bs("1111")) == 2
        t.check_invariants()

    def test_delete_absent(self):
        t = build("10")
        assert t.delete(bs("11")) is False
        assert t.delete(bs("101")) is False
        assert len(t) == 1

    def test_delete_merges_paths(self):
        t = build("0000", "0011")
        t.delete(bs("0011"))
        t.check_invariants()
        # the branch node at depth 2 must have been compressed away
        assert t.num_nodes() == 2  # root + leaf
        assert t.lookup(bs("0000")) == 0

    def test_delete_all(self):
        keys = ["0", "1", "00", "01", "10", "11", "000", ""]
        t = PatriciaTrie()
        for k in keys:
            t.insert(bs(k), k)
        for k in keys:
            assert t.delete(bs(k)) is True
            t.check_invariants()
        assert len(t) == 0

    def test_delete_internal_key_keeps_branch(self):
        t = build("10", "100", "101")
        t.delete(bs("10"))
        t.check_invariants()
        assert t.lookup(bs("100")) == 1
        assert t.lookup(bs("101")) == 2


class TestSubtree:
    def test_subtree_items(self):
        t = build("000", "001", "01", "1")
        items = t.subtree_items(bs("0"))
        assert [k.to_str() for k, _ in items] == ["000", "001", "01"]

    def test_subtree_at_hidden_node(self):
        t = build("0000", "0001")
        items = t.subtree_items(bs("00"))
        assert [k.to_str() for k, _ in items] == ["0000", "0001"]

    def test_subtree_no_match(self):
        t = build("0000")
        assert t.subtree_items(bs("01")) == []

    def test_subtree_empty_prefix_returns_all(self):
        t = build("00", "01", "11")
        assert len(t.subtree_items(EMPTY)) == 3

    def test_subtree_returns_trie(self):
        t = build("000", "001", "11")
        s = t.subtree(bs("00"))
        assert sorted(k.to_str() for k in s.keys()) == ["000", "001"]
        s.check_invariants()

    @given(key_sets, st.text(alphabet="01", max_size=10))
    @settings(max_examples=150)
    def test_subtree_matches_bruteforce(self, keys, prefix):
        t = PatriciaTrie()
        for k in keys:
            t.insert(bs(k))
        p = bs(prefix)
        got = sorted(k.to_str() for k, _ in t.subtree_items(p))
        expected = sorted({k for k in keys if bs(k).starts_with(p)})
        assert got == expected


class TestInvariantsProperty:
    @given(key_sets)
    @settings(max_examples=150)
    def test_insert_then_check(self, keys):
        t = PatriciaTrie()
        for k in keys:
            t.insert(bs(k), k)
        t.check_invariants()
        for k in keys:
            assert t.lookup(bs(k)) == k
        assert len(t) == len(set(keys))

    @given(key_sets, st.randoms(use_true_random=False))
    @settings(max_examples=100)
    def test_mixed_insert_delete(self, keys, rnd):
        t = PatriciaTrie()
        alive = set()
        ops = list(keys) * 2
        rnd.shuffle(ops)
        for k in ops:
            if k in alive and rnd.random() < 0.5:
                assert t.delete(bs(k))
                alive.discard(k)
            else:
                t.insert(bs(k), k)
                alive.add(k)
            if rnd.random() < 0.2:
                t.check_invariants()
        t.check_invariants()
        assert sorted(k.to_str() for k in t.keys()) == sorted(alive)

    @given(key_sets)
    def test_iter_items_sorted(self, keys):
        t = PatriciaTrie()
        for k in keys:
            t.insert(bs(k))
        got = [k for k, _ in t.iter_items()]
        assert got == sorted(got)


class TestMetrics:
    def test_edge_bits_tracks_labels(self):
        t = build("0000", "0011")
        # edges: "00" + "00" + "11" = 6 bits
        assert t.L == 6

    def test_Q_positive(self):
        t = build("0", "1")
        assert t.Q() >= 2

    def test_word_cost(self):
        t = build("0" * 200)
        assert t.word_cost() >= 4  # long label costs ceil(200/64)+ words
