"""Differential audit of the lazy-admission boundary.

``decide_cut`` pulls arrivals from the trace *lazily* — only as the
launch decision needs them — but claims an exact boundary: every
arrival with ``time <= cut`` is admitted (in arrival order) before the
epoch is extracted, and none after.  In particular an arrival at
exactly the cut instant is admitted, matching an eager reference loop
that processes events in timestamp order with arrivals first at ties.

The oracle here is that eager loop.  It knows nothing about the
scheduler's internals: fed only the server's cut schedule (epoch launch
times and sizes — quantities the server computes on the simulated
clock), it replays arrivals and cuts as a single time-ordered event
stream against a bounded counter and decides admit/drop for every op
independently.  Server and oracle must agree on the *exact set* of
dropped ops — not just the count — across policies × queue capacities,
including capacities tight enough that drops are routine.
"""

import pytest

from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.perf import reset_id_counters
from repro.serve import EpochServer, Trace, make_trace, policy_from_name
from repro.serve.trace import Operation
from repro.workloads import uniform_keys

P = 4
RESIDENT = 64
LENGTH = 32


def fresh_trie() -> PIMTrie:
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(RESIDENT, LENGTH, seed=11)
    return PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys, values=keys)


def eager_admission_oracle(trace, epochs, capacity):
    """Event-driven reference admission: arrivals and cuts in timestamp
    order, arrivals first at ties, a plain bounded counter for the queue.

    ``epochs`` supplies the cut schedule the server actually ran
    ``(launch, size)``; the oracle re-derives which individual ops were
    admitted and which were shed.  Returns ``(admitted, dropped)`` as
    lists of seq ids in decision order.
    """
    events = [(op.time, 0, op.seq) for op in trace.ops]
    events += [(e.launch, 1, e.size) for e in epochs]
    # stable sort: ties keep arrival order within a timestamp, and
    # arrivals (priority 0) precede cuts (priority 1) at the same time
    events.sort(key=lambda ev: (ev[0], ev[1]))
    queue = 0
    admitted, dropped = [], []
    for _, prio, x in events:
        if prio == 0:
            if capacity is not None and queue >= capacity:
                dropped.append(x)
            else:
                queue += 1
                admitted.append(x)
        else:
            queue -= x
            assert queue >= 0, "oracle cut extracted more than was queued"
    return admitted, dropped


SPECS = ("eager", "deadline:5", "deadline:50", "affinity:5", "affinity:50")
CAPACITIES = (4, 6, 8, 16)


class TestAdmissionBoundary:
    @pytest.mark.parametrize("capacity", CAPACITIES)
    @pytest.mark.parametrize("spec", SPECS)
    @pytest.mark.parametrize("seed", [3, 9, 21])
    def test_dropped_set_matches_eager_oracle(self, spec, capacity, seed):
        trace = make_trace(150, length=LENGTH, rate=8.0, seed=seed)
        policy = policy_from_name(
            spec, max_batch=capacity, queue_capacity=capacity
        )
        report = EpochServer(fresh_trie(), policy).run(trace)

        admitted, dropped = eager_admission_oracle(
            trace, report.epochs, capacity
        )
        assert sorted(c.seq for c in report.completed) == sorted(admitted)
        assert sorted(o.seq for o in (
            EpochServer(fresh_trie(), policy).run(trace),
        )[0].completed) == sorted(admitted)  # deterministic re-run
        server_dropped = []
        # recover the server's dropped seqs: every op is either
        # completed or dropped, never both, never neither
        done = {c.seq for c in report.completed}
        server_dropped = [o.seq for o in trace.ops if o.seq not in done]
        assert server_dropped == dropped
        assert report.dropped == len(dropped)

    @pytest.mark.parametrize("spec", SPECS)
    def test_arrival_at_exact_cut_instant_is_admitted(self, spec):
        """The boundary case itself: an op whose arrival equals a later
        epoch's launch must land in that epoch, not wait for the next.

        Built in two passes: run a one-op probe to learn when its epoch
        completes, then inject a second op arriving at exactly that
        time — which is exactly where the busy server cuts next.
        """
        from repro.bits import BitString

        key = BitString.from_str("1011" * (LENGTH // 4))
        probe = Trace(
            [Operation(seq=0, client_id=0, time=1.0, kind="lcp", key=key)],
            name="probe",
        )
        policy = policy_from_name(spec)
        t_done = EpochServer(fresh_trie(), policy).run(probe).epochs[0].completion

        ops = [
            Operation(seq=0, client_id=0, time=1.0, kind="lcp", key=key),
            Operation(seq=1, client_id=0, time=t_done, kind="lcp", key=key),
        ]
        report = EpochServer(fresh_trie(), policy).run(Trace(ops, name="tie"))
        by_seq = {c.seq: c for c in report.completed}
        # the tie arrival was cut into the epoch launched at its own
        # arrival instant — admitted at the boundary, not after it
        assert by_seq[1].launch == t_done
        assert report.epochs[by_seq[1].epoch].launch == t_done

    def test_pipelined_admission_matches_its_own_schedule(self):
        """Pipelining shifts the cut schedule; the boundary rule must
        hold against the *pipelined* schedule just the same."""
        trace = make_trace(150, length=LENGTH, rate=8.0, seed=9)
        policy = policy_from_name("deadline:5", max_batch=8,
                                  queue_capacity=8)
        report = EpochServer(
            fresh_trie(), policy, pipelined=True,
            prep_time=0.1, asm_time=0.05,
        ).run(trace)
        admitted, dropped = eager_admission_oracle(trace, report.epochs, 8)
        done = {c.seq for c in report.completed}
        assert sorted(done) == sorted(admitted)
        assert [o.seq for o in trace.ops if o.seq not in done] == dropped
