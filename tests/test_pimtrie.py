"""Integration tests: PIMTrie vs the sequential Patricia-trie oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.trie import PatriciaTrie


def bs(s: str) -> BitString:
    return BitString.from_str(s)


def make_trie(keys, P=4, seed=1, **cfg_kw):
    system = PIMSystem(P, seed=seed)
    cfg = PIMTrieConfig(num_modules=P, **cfg_kw)
    keys = [bs(k) for k in keys]
    return PIMTrie(system, cfg, keys=keys, values=[k.to_str() for k in keys])


def oracle(keys):
    t = PatriciaTrie()
    for k in keys:
        t.insert(bs(k), k)
    return t


FIG1_KEYS = ["000010", "00001101", "1010000", "1010111", "101011"]

key_lists = st.lists(
    st.text(alphabet="01", min_size=0, max_size=40), min_size=1, max_size=50
)
query_lists = st.lists(
    st.text(alphabet="01", min_size=0, max_size=40), min_size=1, max_size=30
)


class TestConstruction:
    def test_empty(self):
        t = make_trie([])
        assert t.num_keys() == 0
        assert t.lcp_batch([bs("0101")]) == [0]

    def test_single_key(self):
        t = make_trie(["1011"])
        assert t.num_keys() == 1
        assert t.lcp_batch([bs("1011"), bs("1000"), bs("0")]) == [4, 2, 0]

    def test_figure1(self):
        t = make_trie(FIG1_KEYS)
        assert t.num_keys() == 5
        assert t.lcp_batch([bs("101001")]) == [5]

    def test_many_blocks(self):
        keys = [format(i, "012b") for i in range(256)]
        t = make_trie(keys, P=8)
        assert t.num_keys() == 256
        assert t.num_blocks() > 4  # decomposition really happened

    def test_long_keys_cut_edges(self):
        keys = ["1" * 4000, "1" * 4000 + "0", "0" * 3000]
        t = make_trie(keys, P=4)
        assert t.num_keys() == 3
        assert t.lcp_batch([bs("1" * 4000)]) == [4000]
        # long edges must have been cut into multiple blocks
        assert t.num_blocks() >= 3

    def test_config_module_mismatch_rejected(self):
        system = PIMSystem(4)
        with pytest.raises(ValueError):
            PIMTrie(system, PIMTrieConfig(num_modules=8))


class TestLCP:
    def test_exact_and_partial(self):
        t = make_trie(FIG1_KEYS)
        qs = ["000010", "000011", "10101", "11", "0000", ""]
        ref = oracle(FIG1_KEYS)
        assert t.lcp_batch([bs(q) for q in qs]) == [
            ref.lcp(bs(q)) for q in qs
        ]

    def test_duplicate_queries(self):
        t = make_trie(FIG1_KEYS)
        assert t.lcp_batch([bs("101011"), bs("101011")]) == [6, 6]

    @given(key_lists, query_lists)
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle(self, keys, queries):
        t = make_trie(keys, P=4)
        ref = oracle(keys)
        got = t.lcp_batch([bs(q) for q in queries])
        want = [ref.lcp(bs(q)) for q in queries]
        assert got == want

    @given(key_lists, query_lists, st.integers(2, 16))
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle_various_P(self, keys, queries, P):
        t = make_trie(keys, P=P, seed=P)
        ref = oracle(keys)
        assert t.lcp_batch([bs(q) for q in queries]) == [
            ref.lcp(bs(q)) for q in queries
        ]

    def test_deep_shared_prefix_adversarial(self):
        """Adversarial skew: all keys share a 200-bit prefix."""
        p = "10" * 100
        keys = [p + format(i, "08b") for i in range(64)]
        t = make_trie(keys, P=8)
        ref = oracle(keys)
        qs = [p + format(i, "08b") for i in range(0, 128, 3)] + [p[:50], "0"]
        assert t.lcp_batch([bs(q) for q in qs]) == [ref.lcp(bs(q)) for q in qs]

    def test_naive_mode_matches(self):
        t = make_trie(FIG1_KEYS, use_pivots=False)
        ref = oracle(FIG1_KEYS)
        qs = ["101001", "000011", "1010111", ""]
        assert t.lcp_batch([bs(q) for q in qs]) == [ref.lcp(bs(q)) for q in qs]

    def test_no_push_pull_matches(self):
        t = make_trie(FIG1_KEYS, use_push_pull=False)
        ref = oracle(FIG1_KEYS)
        qs = ["101001", "000011"]
        assert t.lcp_batch([bs(q) for q in qs]) == [ref.lcp(bs(q)) for q in qs]


class TestLookup:
    def test_lookup_values(self):
        t = make_trie(FIG1_KEYS)
        got = t.lookup_batch([bs("101011"), bs("101010"), bs("000010")])
        assert got == ["101011", None, "000010"]


class TestInsert:
    def test_insert_new(self):
        t = make_trie(["0000"])
        n = t.insert_batch([bs("0011"), bs("1111")], ["a", "b"])
        assert n == 2
        assert t.num_keys() == 3
        assert t.lookup_batch([bs("0011"), bs("1111")]) == ["a", "b"]

    def test_insert_existing_overwrites(self):
        t = make_trie(["0000"])
        n = t.insert_batch([bs("0000")], ["new"])
        assert n == 0
        assert t.num_keys() == 1
        assert t.lookup_batch([bs("0000")]) == ["new"]

    def test_insert_prefix_of_existing(self):
        t = make_trie(["0000"])
        t.insert_batch([bs("00")], ["p"])
        assert t.lookup_batch([bs("00"), bs("0000")]) == ["p", "0000"]

    def test_insert_extension_of_existing(self):
        t = make_trie(["00"])
        t.insert_batch([bs("0000")], ["e"])
        assert t.lookup_batch([bs("00"), bs("0000")]) == ["00", "e"]

    def test_insert_into_empty(self):
        t = make_trie([])
        t.insert_batch([bs("1"), bs("0")], ["x", "y"])
        assert t.num_keys() == 2
        assert t.lcp_batch([bs("10")]) == [1]

    def test_insert_triggers_repartition(self):
        t = make_trie(["0"], P=4)
        before = t.num_blocks()
        keys = [format(i, "012b") for i in range(512)]
        t.insert_batch([bs(k) for k in keys], keys)
        assert t.num_keys() == 513
        assert t.num_blocks() > before
        # everything still findable after the re-partitioning storm
        got = t.lookup_batch([bs(k) for k in keys[::37]])
        assert got == [k for k in keys[::37]]

    @given(key_lists, key_lists)
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle(self, initial, inserts):
        t = make_trie(initial, P=4)
        ref = oracle(initial)
        t.insert_batch([bs(k) for k in inserts], list(inserts))
        for k in inserts:
            ref.insert(bs(k), k)
        queries = (initial + inserts)[:20]
        assert t.lcp_batch([bs(q) for q in queries]) == [
            ref.lcp(bs(q)) for q in queries
        ]
        assert t.num_keys() == len(ref)


class TestDelete:
    def test_delete_present(self):
        t = make_trie(FIG1_KEYS)
        assert t.delete_batch([bs("101011")]) == 1
        assert t.num_keys() == 4
        assert t.lookup_batch([bs("101011")]) == [None]
        assert t.lookup_batch([bs("1010111")]) == ["1010111"]

    def test_delete_absent(self):
        t = make_trie(["0000"])
        assert t.delete_batch([bs("1111"), bs("00")]) == 0
        assert t.num_keys() == 1

    def test_delete_all(self):
        t = make_trie(FIG1_KEYS)
        assert t.delete_batch([bs(k) for k in FIG1_KEYS]) == 5
        assert t.num_keys() == 0
        assert t.lcp_batch([bs("000010")]) == [0]

    def test_delete_then_reinsert(self):
        t = make_trie(["0101", "0110"])
        t.delete_batch([bs("0101")])
        t.insert_batch([bs("0101")], ["again"])
        assert t.lookup_batch([bs("0101")]) == ["again"]

    @given(key_lists, st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle(self, keys, data):
        t = make_trie(keys, P=4)
        ref = oracle(keys)
        dels = data.draw(
            st.lists(st.sampled_from(sorted(set(keys))), max_size=10)
        )
        t.delete_batch([bs(k) for k in dels])
        for k in set(dels):
            ref.delete(bs(k))
        assert t.num_keys() == len(ref)
        queries = keys[:15]
        assert t.lcp_batch([bs(q) for q in queries]) == [
            ref.lcp(bs(q)) for q in queries
        ]


class TestSubtree:
    def test_subtree_basic(self):
        t = make_trie(["000", "001", "01", "1"])
        (got,) = t.subtree_batch([bs("0")])
        assert [(k.to_str(), v) for k, v in got] == [
            ("000", "000"),
            ("001", "001"),
            ("01", "01"),
        ]

    def test_subtree_whole_trie(self):
        t = make_trie(FIG1_KEYS)
        (got,) = t.subtree_batch([bs("")])
        assert sorted(k.to_str() for k, _ in got) == sorted(FIG1_KEYS)

    def test_subtree_no_match(self):
        t = make_trie(["000"])
        (got,) = t.subtree_batch([bs("1")])
        assert got == []

    def test_subtree_crosses_blocks(self):
        keys = [format(i, "012b") for i in range(256)]
        t = make_trie(keys, P=8)
        (got,) = t.subtree_batch([bs("0000")])
        want = sorted(k for k in keys if k.startswith("0000"))
        assert [k.to_str() for k, _ in got] == want

    @given(key_lists, st.lists(st.text(alphabet="01", max_size=8), min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_matches_oracle(self, keys, prefixes):
        t = make_trie(keys, P=4)
        ref = oracle(keys)
        got = t.subtree_batch([bs(p) for p in prefixes])
        for p, res in zip(prefixes, got):
            want = sorted(
                (k.to_str(), v) for k, v in ref.subtree_items(bs(p))
            )
            assert [(k.to_str(), v) for k, v in res] == want


class TestMetrics:
    def test_lcp_batch_is_accounted(self):
        t = make_trie(FIG1_KEYS)
        before = t.system.snapshot()
        t.lcp_batch([bs("101001"), bs("000011")])
        d = t.system.snapshot().delta(before)
        assert d.io_rounds >= 2
        assert d.total_communication > 0

    def test_space_accounted(self):
        t = make_trie([format(i, "010b") for i in range(128)], P=8)
        assert t.space_words() > 100


class TestMixedWorkload:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_op_sequences(self, seed):
        import random

        rng = random.Random(seed)
        universe = [format(i, "08b") for i in range(64)]
        t = make_trie([], P=4, seed=seed % 7 + 2)
        ref = PatriciaTrie()
        for _ in range(6):
            op = rng.random()
            batch = rng.sample(universe, rng.randint(1, 12))
            if op < 0.45:
                t.insert_batch([bs(k) for k in batch], batch)
                for k in batch:
                    ref.insert(bs(k), k)
            elif op < 0.7:
                t.delete_batch([bs(k) for k in batch])
                for k in batch:
                    ref.delete(bs(k))
            elif op < 0.9:
                assert t.lcp_batch([bs(k) for k in batch]) == [
                    ref.lcp(bs(k)) for k in batch
                ]
            else:
                got = t.subtree_batch([bs(batch[0][:3])])
                want = sorted(
                    (k.to_str(), v)
                    for k, v in ref.subtree_items(bs(batch[0][:3]))
                )
                assert [(k.to_str(), v) for k, v in got[0]] == want
            assert t.num_keys() == len(ref)
