"""Tests for Euler tours, treefix scans, and the weighted blocking algorithm."""

from hypothesis import given, settings, strategies as st

from repro.bits import BitString, IncrementalHasher
from repro.trie import (
    PatriciaTrie,
    build_query_trie,
    euler_tour,
    leaffix,
    node_weight_words,
    partition_weighted,
    rootfix,
)


def bs(s: str) -> BitString:
    return BitString.from_str(s)


def build(*keys: str) -> PatriciaTrie:
    t = PatriciaTrie()
    for k in keys:
        t.insert(bs(k), k)
    return t


key_sets = st.lists(
    st.text(alphabet="01", min_size=0, max_size=24), min_size=0, max_size=50
)


class TestEulerTour:
    def test_single_node(self):
        t = PatriciaTrie()
        tour = euler_tour(t)
        assert len(tour) == 2
        assert tour[0] == (t.root, True)
        assert tour[1] == (t.root, False)

    def test_every_node_entered_and_exited_once(self):
        t = build("000", "001", "01", "1", "101")
        tour = euler_tour(t)
        entries = [n.uid for n, e in tour if e]
        exits = [n.uid for n, e in tour if not e]
        assert sorted(entries) == sorted(exits)
        assert len(set(entries)) == len(entries) == t.num_nodes()

    def test_bracket_structure(self):
        t = build("00", "01", "11")
        depth = 0
        for _, entering in euler_tour(t):
            depth += 1 if entering else -1
            assert depth >= 0
        assert depth == 0


class TestTreefix:
    def test_rootfix_depths(self):
        t = build("000", "001", "01", "1")
        vals = rootfix(t, 0, lambda acc, node: node.depth)
        for node in t.iter_nodes():
            assert vals[node.uid] == node.depth

    def test_rootfix_node_hashes(self):
        """Rootfix + incremental hash = node hash of every compressed node."""
        H = IncrementalHasher(seed=9)
        t = build("000", "001", "01", "1", "10101")
        hashes = rootfix(
            t,
            H.empty(),
            lambda acc, node: H.extend(acc, node.parent_edge.label),
        )
        for node in t.iter_nodes():
            assert hashes[node.uid] == H.hash(t.key_of(node))

    def test_leaffix_subtree_key_count(self):
        t = build("000", "001", "01", "1")
        counts = leaffix(
            t,
            lambda n: 1 if n.is_key else 0,
            lambda n, kids: (1 if n.is_key else 0) + sum(kids),
        )
        assert counts[t.root.uid] == 4

    def test_leaffix_completely_deleted_detection(self):
        """The §5.2 leaffix: mark subtrees whose keys are all doomed."""
        t = build("000", "001", "11")
        doomed = {bs("000"), bs("001")}
        flags = leaffix(
            t,
            lambda n: t.key_of(n) in doomed,
            lambda n, kids: all(kids) and (not n.is_key or t.key_of(n) in doomed),
        )
        # the branch node covering 00* is completely deleted; the root isn't
        for node in t.iter_nodes():
            key = t.key_of(node)
            expected = all(
                item_key in doomed
                for item_key, _ in t.subtree_items(key)
            ) and len(t.subtree_items(key)) > 0
            if node.is_leaf or node.num_children == 2:
                assert flags[node.uid] == expected


class TestPartition:
    def test_single_block_when_bound_large(self):
        t = build("000", "001", "01")
        roots = partition_weighted(t, bound=10_000)
        assert roots == {t.root.uid}

    def test_small_bound_many_blocks(self):
        keys = [format(i, "08b") for i in range(64)]
        t = build(*keys)
        roots = partition_weighted(t, bound=8)
        assert len(roots) > 4

    def test_blocks_cover_all_weight(self):
        """Every node belongs to exactly one block (its closest root anc)."""
        keys = [format(i, "06b") for i in range(0, 64, 3)]
        t = build(*keys)
        roots = partition_weighted(t, bound=12)
        # walk up from every node: must reach a root
        for node in t.iter_nodes():
            cur = node
            while cur.uid not in roots:
                assert cur.parent is not None
                cur = cur.parent

    def test_block_sizes_bounded(self):
        """Each block's weight is < 2 * bound (paper: blocks of O(K_B))."""
        keys = [format(i, "010b") for i in range(512)]
        t = build(*keys)
        bound = 32
        roots = partition_weighted(t, bound=bound)
        # accumulate weight per block by walking to the closest root
        weights: dict[int, int] = {}
        for node in t.iter_nodes():
            cur = node
            while cur.uid not in roots:
                cur = cur.parent
            weights[cur.uid] = weights.get(cur.uid, 0) + node_weight_words(node)
        assert max(weights.values()) <= 3 * bound  # loose constant, linear bound

    def test_block_count_linear_in_weight(self):
        keys = [format(i, "010b") for i in range(512)]
        t = build(*keys)
        bound = 32
        roots = partition_weighted(t, bound=bound)
        total = sum(node_weight_words(n) for n in t.iter_nodes())
        assert len(roots) <= 2 * total / bound + 2

    def test_rejects_nonpositive_bound(self):
        t = build("0")
        import pytest

        with pytest.raises(ValueError):
            partition_weighted(t, 0)

    @given(key_sets, st.integers(2, 64))
    @settings(max_examples=60, deadline=None)
    def test_partition_roots_are_closed(self, keys, bound):
        t = PatriciaTrie()
        for k in keys:
            t.insert(bs(k))
        roots = partition_weighted(t, bound)
        assert t.root.uid in roots
        uid_to_node = {n.uid: n for n in t.iter_nodes()}
        assert roots <= set(uid_to_node)
