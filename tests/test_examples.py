"""Smoke tests: every example script must run cleanly end to end."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "ip_routing", "kv_store_skew", "url_index"} <= names
    assert len(EXAMPLES) >= 4


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    """Run each example in-process (fast) and check it prints output."""
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100


def test_ip_routing_lpm_consistency(capsys):
    """The predecessor-chain LPM must self-verify against the host
    walk-down reference, and the chain must be width-bounded (the
    lcp-jump refinement, not one key per round)."""
    runpy.run_path(
        str(next(p for p in EXAMPLES if p.stem == "ip_routing")),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "consistent with host reference: True" in out
    assert "matched routes" in out
    chain = int(out.split("(")[1].split(" predecessor-chain")[0])
    assert 0 < chain <= 32


def test_quickstart_output_content(capsys):
    runpy.run_path(
        str(next(p for p in EXAMPLES if p.stem == "quickstart")),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "LCP('101001') = 5" in out
    assert "session totals" in out
