"""Tests for query-trie fragments: Span, cloning, base anchors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import BitString, IncrementalHasher
from repro.core import PathPos, QueryFragment, fragment_whole_trie, span_fragments
from repro.trie import PatriciaTrie, build_query_trie, rootfix


def bs(s: str) -> BitString:
    return BitString.from_str(s)


H = IncrementalHasher(seed=5)
W = 64


def build(*keys):
    return build_query_trie([bs(k) for k in keys])


def strings_of(qt):
    return rootfix(qt, bs(""), lambda acc, n: acc + n.parent_edge.label)


def node_at(qt, s):
    """The compressed node representing string s (must exist)."""
    strs = strings_of(qt)
    for n in qt.iter_nodes():
        if strs[n.uid] == bs(s):
            return n
    raise AssertionError(f"no node for {s!r}")


class TestPathPos:
    def test_node_position(self):
        qt = build("0011", "0100")
        n = node_at(qt, "0011")
        p = PathPos(n)
        assert p.depth == 4
        assert p.back == 0

    def test_hidden_position(self):
        qt = build("0011")
        n = node_at(qt, "0011")
        p = PathPos(n, back=2)
        assert p.depth == 2

    def test_back_bounds(self):
        qt = build("0011")
        n = node_at(qt, "0011")
        with pytest.raises(ValueError):
            PathPos(n, back=-1)
        with pytest.raises(ValueError):
            PathPos(n, back=4)  # == edge length
        with pytest.raises(ValueError):
            PathPos(qt.root, back=1)  # root has no entering edge


class TestWholeFragment:
    def test_identity(self):
        qt = build("000", "001", "11")
        frag = fragment_whole_trie(qt, H, W)
        assert frag.base_depth == 0
        assert frag.base_hash == H.empty()
        assert frag.trie.num_nodes() == qt.num_nodes()
        assert len(frag.origin) == qt.num_nodes()
        # origin maps every fragment node to a real query node
        quids = {n.uid for n in qt.iter_nodes()}
        assert set(frag.origin.values()) <= quids

    def test_word_cost_matches_trie(self):
        qt = build("0" * 100, "1" * 100)
        frag = fragment_whole_trie(qt, H, W)
        assert frag.word_cost() >= qt.word_cost()


class TestSpan:
    def test_span_at_node(self):
        qt = build("000", "001", "11")
        strs = strings_of(qt)
        cuts = [PathPos(qt.root), PathPos(node_at(qt, "00"))]
        frags = span_fragments(qt, cuts, strs, H, W)
        assert len(frags) == 2
        by_depth = {f.base_depth: f for f in frags}
        top, bottom = by_depth[0], by_depth[2]
        # top fragment keeps "11" subtree and stops at the "00" node
        assert bottom.base_hash == H.hash(bs("00"))
        # bottom fragment holds the two keys below "00", rebased
        keys = sorted(k.to_str() for k in bottom.trie.keys())
        assert keys == ["0", "1"]

    def test_span_at_hidden_position(self):
        qt = build("0000", "1")
        strs = strings_of(qt)
        n = node_at(qt, "0000")
        cuts = [PathPos(qt.root), PathPos(n, back=2)]
        frags = span_fragments(qt, cuts, strs, H, W)
        by_depth = {f.base_depth: f for f in frags}
        assert set(by_depth) == {0, 2}
        bottom = by_depth[2]
        assert bottom.base_hash == H.hash(bs("00"))
        assert [k.to_str() for k in bottom.trie.keys()] == ["00"]
        # the top fragment's truncated edge ends on an unmapped boundary
        top = by_depth[0]
        mapped = set(top.origin.values())
        assert n.uid not in mapped

    def test_same_edge_cuts_keep_deepest(self):
        """Two cuts on one edge delimit a non-critical segment; only the
        deepest survives (paper §4.3)."""
        qt = build("000000")
        strs = strings_of(qt)
        n = node_at(qt, "000000")
        cuts = [PathPos(qt.root), PathPos(n, back=4), PathPos(n, back=2)]
        frags = span_fragments(qt, cuts, strs, H, W)
        depths = sorted(f.base_depth for f in frags)
        assert depths == [0, 4]

    def test_base_anchor_consistency(self):
        """base_pre_hash + base_rem reconstruct base_hash."""
        qt = build("1" * 100, "1" * 70 + "0" * 30)
        strs = strings_of(qt)
        deep = node_at(qt, "1" * 100)
        cuts = [PathPos(qt.root), PathPos(deep, back=3)]
        frags = span_fragments(qt, cuts, strs, H, W)
        for f in frags:
            assert f.aligned_base_depth == (f.base_depth // W) * W
            assert len(f.base_rem) == f.base_depth - f.aligned_base_depth
            rebuilt = H.extend(f.base_pre_hash, f.base_rem)
            assert rebuilt == f.base_hash
            assert len(f.base_tail) == min(W, f.base_depth)

    def test_values_survive_cloning(self):
        qt = build_query_trie([bs("0101")], values=["payload"])
        frag = fragment_whole_trie(qt, H, W)
        assert frag.trie.lookup(bs("0101")) == "payload"

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=30), min_size=1, max_size=30),
        st.integers(0, 10_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_span_preserves_all_keys(self, keys, seed):
        """Fragments partition the key set: each original key appears in
        exactly one fragment, rebased by its fragment's depth."""
        import random

        qt = build(*keys)
        strs = strings_of(qt)
        nodes = list(qt.iter_nodes())
        rng = random.Random(seed)
        cuts = [PathPos(qt.root)]
        for n in rng.sample(nodes, min(len(nodes), 3)):
            if n is qt.root:
                continue
            back = rng.randrange(len(n.parent_edge.label))
            cuts.append(PathPos(n, back))
        frags = span_fragments(qt, cuts, strs, H, W)
        rebuilt = set()
        for f in frags:
            # recover the base string from the cut position
            s = strs[f.base_pos.node.uid]
            base = s.prefix(len(s) - f.base_pos.back)
            for k in f.trie.keys():
                rebuilt.add((base + k).to_str())
        # cut nodes appear in both their own fragment and (as boundary
        # leaves) the parent fragment, so compare as sets
        assert rebuilt == {k.to_str() for k in qt.keys()}
