"""Property tests for serve-layer fault recovery.

The load-bearing property extends the serve equivalence guarantee to
faulted runs: under every scheduler policy, a run with crashes,
stragglers, lossy transport, and transient errors — recovered and
retried by the server — completes every operation with exactly the
answers of a faultless direct sequential replay.  Placement may differ
after rebuilds and metrics legitimately grow; answers never change.
"""

import pytest

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.faults import FaultPlan, StragglerSpec
from repro.perf import reset_id_counters
from repro.serve import (
    OP_FAILED,
    ContinuousBatchingScheduler,
    EpochServer,
    Operation,
    SchedulerPolicy,
    Trace,
    make_trace,
    policy_from_name,
    replay_direct,
)
from repro.workloads import uniform_keys

bs = BitString.from_str

P = 4
RESIDENT = 64
LENGTH = 32


def fresh_trie():
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(RESIDENT, LENGTH, seed=11)
    return PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys, values=keys)


def op(seq, time, kind, key, value=None):
    if isinstance(key, str):
        key = bs(key)
    return Operation(seq=seq, client_id=0, time=time, kind=kind,
                     key=key, value=value)


def normalize(reply):
    if isinstance(reply, list):
        return sorted((str(k), str(v)) for k, v in reply)
    return reply


FAULTY_PLAN = FaultPlan(
    crashes={1: 3, 3: 40},
    drop_replies={(12, m) for m in range(P)},
    drop_requests={(25, 0)},
    duplicate_replies={(30, 0)},
    transient_errors={(55, 2)},
    stragglers=(StragglerSpec(0, 3.0, 0, 30),),
)

POLICIES = [
    policy_from_name("eager"),
    policy_from_name("deadline:20"),
    policy_from_name("deadline:500"),
    policy_from_name("affinity"),
    policy_from_name("affinity:50"),
    policy_from_name("eager", max_batch=4),
    SchedulerPolicy("deg", max_batch=8, max_wait=20.0,
                    queue_capacity=64, degraded_capacity=8),
]


# ----------------------------------------------------------------------
class TestFaultedEquivalence:
    @pytest.mark.parametrize("seed", [3, 9])
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.describe())
    def test_faulted_run_matches_faultless_replay(self, policy, seed):
        trace = make_trace(120, length=LENGTH, rate=1.0, seed=seed)
        trie = fresh_trie()
        trie.system.install_faults(FAULTY_PLAN)
        report = EpochServer(trie, policy).run(trace)

        served = {c.seq: c.reply for c in report.completed if c.ok}
        twin = fresh_trie()
        admitted = [o for o in trace.ops
                    if o.seq in {c.seq for c in report.completed}]
        direct = dict(replay_direct(twin, admitted))

        assert report.availability == 1.0  # recovery saved every op
        assert report.failed == 0
        assert set(served) == set(direct)
        for seq in served:
            assert normalize(served[seq]) == normalize(direct[seq]), seq
        # the plan really fired and the server really healed
        assert report.faults["crashes"] == 2
        assert report.faults["restarts"] == 2
        assert report.total_recovery_rounds > 0
        assert report.degraded_epochs > 0
        trie.validate()

    @pytest.mark.parametrize("policy", POLICIES[:3], ids=lambda p: p.name)
    def test_final_state_matches_faultless_twin(self, policy):
        trace = make_trace(120, length=LENGTH, rate=1.0, seed=5)
        trie = fresh_trie()
        trie.system.install_faults(FAULTY_PLAN)
        EpochServer(trie, policy).run(trace)
        twin = fresh_trie()
        replay_direct(twin, trace.ops)
        assert sorted(map(str, trie.keys())) == sorted(map(str, twin.keys()))


# ----------------------------------------------------------------------
class TestCrashBeforeAck:
    def write_round_count(self, key, value):
        """Injected rounds one single-key insert consumes (twin probe)."""
        trie = fresh_trie()
        inj = trie.system.install_faults(FaultPlan.empty())
        trie.insert_batch([key], [value])
        return inj.round_index + 1

    def test_insert_retried_exactly_once_no_duplicates(self):
        k = bs("1100110011001100")
        n = self.write_round_count(k, "v")
        # lose the commit round's reply on every module: the write lands
        # on the module, the ack does not — the canonical ambiguous case
        plan = FaultPlan(drop_replies={(n - 1, m) for m in range(P)})
        trie = fresh_trie()
        n0 = trie.num_keys()
        inj = trie.system.install_faults(plan)
        trace = Trace([op(0, 1.0, "insert", k, "v"),
                       op(1, 2.0, "lcp", k)], name="ack")
        report = EpochServer(trie, policy_from_name("eager")).run(trace)

        assert inj.stats.dropped_replies >= 1
        assert inj.stats.retries == 1  # retried exactly once
        assert trie.num_keys() == n0 + 1  # applied exactly once
        assert trie.lookup_batch([k]) == ["v"]
        replies = {c.seq: c.reply for c in report.completed}
        assert replies[0] is True and replies[1] == len(k)
        assert report.availability == 1.0
        trie.validate()

    def test_last_write_wins_across_faulted_retry(self):
        k = bs("1010101010101010")
        n = self.write_round_count(k, "v1")
        plan = FaultPlan(drop_replies={(n - 1, m) for m in range(P)})
        trie = fresh_trie()
        trie.system.install_faults(plan)
        trace = Trace([op(0, 1.0, "insert", k, "v1"),
                       op(1, 2.0, "insert", k, "v2")], name="lww")
        EpochServer(trie, policy_from_name("eager")).run(trace)
        assert trie.lookup_batch([k]) == ["v2"]

    def test_retry_exhaustion_fails_ops_but_heals(self):
        trie = fresh_trie()
        # abort every round the first op can ever reach
        trie.system.install_faults(FaultPlan(
            transient_errors={(r, m) for r in range(64) for m in range(P)}
        ))
        trace = Trace([op(0, 1.0, "lcp", "0101")], name="doom")
        report = EpochServer(
            trie, policy_from_name("eager"), max_retries=2
        ).run(trace)
        assert report.failed == 1
        assert report.availability == 0.0
        assert report.completed[0].reply is OP_FAILED
        assert not report.completed[0].ok
        assert repr(OP_FAILED) == "OP_FAILED"


# ----------------------------------------------------------------------
class TestPipelinedFaults:
    """The equivalence guarantee survives pipelining × faults.

    Crashes land mid-overlap (an epoch's rounds abort while the next
    epoch's host prep may already have run against pre-crash state),
    stragglers stretch the module stage — and still: exactly-once
    replies, availability 1.0, answers equal to a faultless sequential
    replay.
    """

    #: crash early (epoch overlap is warming up) and late (steady
    #: state), with a straggler stretching the stage in between
    PLAN = FaultPlan(
        crashes={1: 3, 3: 40},
        stragglers=(StragglerSpec(0, 3.0, 0, 30),),
    )

    @pytest.mark.parametrize("seed", [3, 9])
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.describe())
    def test_pipelined_faulted_matches_faultless_replay(self, policy, seed):
        from tests.harness import run_serve_differential

        trace = make_trace(120, length=LENGTH, rate=1.0, seed=seed)
        report, served, direct = run_serve_differential(
            trace, policy, make_index=fresh_trie, fault_plan=self.PLAN,
            pipelined=True, prep_time=0.1, asm_time=0.05,
        )
        assert report.availability == 1.0
        assert report.failed == 0
        # exactly-once: every admitted op answered exactly one time
        seqs = [c.seq for c in report.completed]
        assert len(seqs) == len(set(seqs))
        assert len(seqs) + report.dropped == len(trace)
        assert set(served) == set(direct)
        for seq in served:
            assert normalize(served[seq]) == normalize(direct[seq]), seq
        # the plan really fired on the pipelined path
        assert report.faults["crashes"] == 2
        assert report.total_recovery_rounds > 0

    def test_crash_mid_overlap_drains_pipeline(self):
        # an epoch that recovers a crash is mutating: the pipeline must
        # drain before the next state-reading prep (hazard rule)
        trace = make_trace(120, length=LENGTH, rate=1.0, seed=3)
        trie = fresh_trie()
        trie.system.install_faults(self.PLAN)
        report = EpochServer(
            trie, policy_from_name("deadline:20"), pipelined=True,
            prep_time=0.1, asm_time=0.05,
        ).run(trace)
        assert report.degraded_epochs > 0
        # module rounds stay serialized through the recovery epochs
        for prev, cur in zip(report.epochs, report.epochs[1:]):
            assert cur.rounds_start >= prev.completion - prev.asm
        trie.validate()


@pytest.mark.slow
class TestPipelinedFaultsSlow:
    """Nightly profile: extended seeds for pipelined × faults parity."""

    @pytest.mark.parametrize("seed", list(range(10, 26)))
    def test_extended_pipelined_seeds(self, seed):
        from tests.harness import run_serve_differential

        trace = make_trace(120, length=LENGTH, rate=1.0, seed=seed)
        policy = policy_from_name("deadline:20")
        report, served, direct = run_serve_differential(
            trace, policy, make_index=fresh_trie,
            fault_plan=TestPipelinedFaults.PLAN,
            pipelined=True, prep_time=0.1, asm_time=0.05,
        )
        assert report.availability == 1.0
        assert set(served) == set(direct)
        for seq in served:
            assert normalize(served[seq]) == normalize(direct[seq]), seq


# ----------------------------------------------------------------------
class TestDegradedAdmission:
    def test_degraded_capacity_sheds_load(self):
        policy = SchedulerPolicy("t", max_batch=4, queue_capacity=8,
                                 degraded_capacity=2)
        s = ContinuousBatchingScheduler(policy)
        assert s.admit(op(0, 0.0, "lcp", "01"), degraded=True)
        assert s.admit(op(1, 0.1, "lcp", "10"), degraded=True)
        assert not s.admit(op(2, 0.2, "lcp", "11"), degraded=True)
        assert s.admit(op(3, 0.3, "lcp", "11"), degraded=False)
        assert len(s.dropped) == 1

    def test_degraded_capacity_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy("t", degraded_capacity=0)
        with pytest.raises(ValueError):
            SchedulerPolicy("t", max_batch=2, queue_capacity=4,
                            degraded_capacity=8)

    def test_describe_mentions_degraded_only_when_set(self):
        assert "degraded=2" in SchedulerPolicy(
            "t", max_batch=2, queue_capacity=4, degraded_capacity=2
        ).describe()
        assert "degraded" not in policy_from_name("eager").describe()

    def test_cli_constructed_policy_engages_degraded_admission(self):
        """Regression: ``policy_from_name`` accepted no degraded bound,
        so no CLI-reachable policy could ever shed load while healing.
        Now a spec-built policy under a crash plan must engage it.

        The crash is chosen to fire on a round that does *not* address
        the dying module: no abort fires, the module stays silently
        crashed through the rest of its epoch, and the next epoch's
        admissions run against a degraded server — exactly the window
        ``degraded_capacity`` exists for (a crash that aborts mid-round
        is healed by the retry loop before any further admission).
        """
        def run(spec):
            trace = make_trace(120, length=LENGTH, rate=1.0, seed=3)
            trie = fresh_trie()
            trie.system.install_faults(FaultPlan(crashes={0: 7}))
            policy = policy_from_name(spec, max_batch=64, queue_capacity=64)
            return EpochServer(trie, policy).run(trace)

        degraded = run("eager@deg=1")
        plain = run("eager")
        # the tighter bound only applies while the server is healing —
        # so the crash plan is what makes these drops happen
        assert degraded.dropped > 0
        assert plain.dropped == 0
        assert "degraded=1" in degraded.policy
        assert degraded.availability == 1.0
        # and the surviving answers are still exact
        served = {c.seq: c.reply for c in degraded.completed if c.ok}
        twin = fresh_trie()
        trace = make_trace(120, length=LENGTH, rate=1.0, seed=3)
        direct = dict(replay_direct(
            twin, [o for o in trace.ops if o.seq in served]
        ))
        for seq in served:
            assert normalize(served[seq]) == normalize(direct[seq]), seq


# ----------------------------------------------------------------------
class TestReportGating:
    def run(self, plan):
        trace = make_trace(60, length=LENGTH, rate=1.0, seed=4)
        trie = fresh_trie()
        if plan is not None:
            trie.system.install_faults(plan)
        return EpochServer(trie, policy_from_name("deadline:5")).run(trace)

    def test_fault_free_report_has_no_fault_keys(self):
        r = self.run(None)
        d = r.as_dict()
        assert "availability" not in d and "faults" not in d
        assert "faults:" not in r.format_summary()

    def test_empty_plan_report_identical_to_no_plan(self):
        import json

        a = self.run(None)
        b = self.run(FaultPlan.empty())
        # wall-clock fields vary run to run; everything simulated must
        # be byte-identical
        assert json.dumps(a.as_dict(include_wall=False), sort_keys=True) == \
            json.dumps(b.as_dict(include_wall=False), sort_keys=True)

    def test_faulted_report_surfaces_recovery(self):
        r = self.run(FAULTY_PLAN)
        d = r.as_dict()
        assert d["availability"] == 1.0
        assert d["faults"]["crashes"] == 2
        assert d["recovery_rounds"] == r.total_recovery_rounds > 0
        text = r.format_summary()
        assert "faults: availability 1.0000" in text
        assert "recovery rounds" in text
