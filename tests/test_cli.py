"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo", "--p", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "LCP('101001') = 5" in out
        assert "hidden nodes" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "P=  4" in out
        assert "best fit" in out
        # O(log P): the reported best law must not be linear
        assert "best fit: linear" not in out

    def test_skew(self, capsys):
        assert main(["skew", "--p", "8"]) == 0
        out = capsys.readouterr().out
        assert "pim-trie" in out
        assert "range-partition" in out
        assert "flood" in out

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])
