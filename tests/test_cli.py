"""Tests for the command-line experiment runner."""

import pytest

from repro.cli import main


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo", "--p", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "LCP('101001') = 5" in out
        assert "hidden nodes" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "P=  4" in out
        assert "best fit" in out
        # O(log P): the reported best law must not be linear
        assert "best fit: linear" not in out

    def test_skew(self, capsys):
        assert main(["skew", "--p", "8"]) == 0
        out = capsys.readouterr().out
        assert "pim-trie" in out
        assert "range-partition" in out
        assert "flood" in out

    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_ordered_smoke(self, capsys, tmp_path):
        out = tmp_path / "BENCH_ordered.json"
        assert main(["ordered", "--smoke", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "all match oracle: True" in text
        assert "span sums exact: True" in text
        assert out.exists()
        # the committed full-profile report guards the same gates, so
        # the smoke report must satisfy its own floor
        assert main(["ordered", "--smoke", "--out", str(out),
                     "--check-floor", str(out)]) == 0
