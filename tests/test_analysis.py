"""Tests for the scaling-law fit helpers."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import LAWS, best_law, doubling_deltas, fit_law


class TestFitLaw:
    def test_recovers_linear(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 + 2 * x for x in xs]
        fit = fit_law(xs, ys, "linear")
        assert fit.a == pytest.approx(3, abs=1e-9)
        assert fit.b == pytest.approx(2, abs=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_recovers_log(self):
        xs = [2, 4, 8, 16, 32, 64]
        ys = [5 + 3 * math.log2(x) for x in xs]
        fit = fit_law(xs, ys, "log")
        assert fit.b == pytest.approx(3, abs=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_constant(self):
        fit = fit_law([1, 2, 3], [7, 7, 7], "constant")
        assert fit.a == 7
        assert fit.r2 == 1.0

    def test_predict(self):
        fit = fit_law([1, 2, 4], [2, 4, 8], "linear")
        assert fit.predict(8) == pytest.approx(16)

    def test_unknown_law(self):
        with pytest.raises(ValueError):
            fit_law([1, 2], [1, 2], "cubic")

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_law([1], [1], "linear")
        with pytest.raises(ValueError):
            fit_law([1, 2], [1], "linear")


class TestBestLaw:
    def test_picks_log_for_log_data(self):
        xs = [4, 8, 16, 32, 64, 128]
        ys = [1 + 2.0 * math.log2(x) for x in xs]
        assert best_law(xs, ys).law == "log"

    def test_picks_linear_for_linear_data(self):
        xs = [4, 8, 16, 32, 64]
        ys = [2.0 * x + 1 for x in xs]
        assert best_law(xs, ys).law == "linear"

    def test_flat_series_is_constant(self):
        xs = [4, 8, 16, 32]
        ys = [10, 11, 10, 11]
        assert best_law(xs, ys).law == "constant"

    @given(
        st.floats(0.5, 10.0),
        st.floats(0.1, 5.0),
        st.sampled_from(["log", "linear", "sqrt"]),
    )
    @settings(max_examples=60)
    def test_recovers_generating_law(self, a, b, law):
        xs = [4, 8, 16, 32, 64, 128, 256]
        f = LAWS[law]
        ys = [a + b * f(x) for x in xs]
        fit = best_law(xs, ys, candidates=("constant", "log", "sqrt", "linear"))
        # the generating law must fit essentially perfectly
        exact = fit_law(xs, ys, law)
        assert exact.r2 > 0.999
        # best_law either matches that quality or (deliberately) calls
        # near-flat series constant via the flatness guard
        ys_arr = ys
        flat = (max(ys_arr) - min(ys_arr)) < 0.2 * (sum(ys_arr) / len(ys_arr))
        if flat:
            assert fit.law == "constant"
        else:
            assert fit.r2 >= exact.r2 - 1e-9


class TestDoublingDeltas:
    def test_log_series_constant_deltas(self):
        xs = [4, 8, 16, 32]
        ys = [2 * math.log2(x) for x in xs]
        deltas = doubling_deltas(xs, ys)
        assert all(d == pytest.approx(2.0) for d in deltas)

    def test_requires_doubling(self):
        with pytest.raises(ValueError):
            doubling_deltas([1, 3], [0, 0])


class TestOnRealBenchData:
    def test_pimtrie_rounds_fit_sublinear(self):
        """The E11 measurement fits log/constant, decisively not linear."""
        from repro import PIMSystem, PIMTrie, PIMTrieConfig
        from repro.workloads import uniform_keys

        xs, ys = [], []
        keys = uniform_keys(256, 64, seed=50)
        for P in (4, 8, 16, 32):
            system = PIMSystem(P, seed=1)
            trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys)
            before = system.snapshot()
            trie.lcp_batch(keys[:128])
            xs.append(P)
            ys.append(system.snapshot().delta(before).io_rounds)
        fit = best_law(xs, ys)
        assert fit.law in ("constant", "log")
        lin = fit_law(xs, ys, "linear")
        assert lin.b < 0.5  # no meaningful linear growth
