"""Differential parity suite for the columnar flat-array core.

The columnar pipeline (:mod:`repro.columnar`) is a wall-clock tier of
the fast path: arena-based struct-of-arrays query storage and fused
batch phases behind :func:`repro.fastpath.columnar_enabled`.  Its
contract is byte identity — every reply and every PIM Model metric
(including per-module word and kernel counts) must equal the object
pipeline's, on the same adversarial differential sequences the oracle
suite replays, with and without fault injection.
"""

import pytest

from repro import fastpath
from repro.faults import FaultPlan, StragglerSpec

from tests import harness


def _evidence(ops, columnar: bool, fault_plan=None):
    if columnar:
        return harness.run_pimtrie_evidence(ops, fault_plan)
    with fastpath.columnar_disabled():
        return harness.run_pimtrie_evidence(ops, fault_plan)


# ----------------------------------------------------------------------
class TestColumnarParity:
    """Object fast path vs columnar core: answers and metrics."""

    @pytest.mark.parametrize("seed", harness.COLUMNAR_PARITY_SEEDS)
    def test_replies_and_metrics_byte_identical(self, seed):
        ops = harness.gen_ops(seed)
        col_replies, col_json, _ = _evidence(ops, columnar=True)
        obj_replies, obj_json, _ = _evidence(ops, columnar=False)
        assert col_replies == obj_replies
        assert col_json == obj_json  # byte-identical accounting

    def test_columnar_vs_unoptimized_baseline(self):
        """Transitivity check straight to the reference path (no
        fastpath caches at all), on one sequence."""
        ops = harness.gen_ops(2, batches=6, batch_size=6)
        col_replies, col_json, _ = _evidence(ops, columnar=True)
        with fastpath.disabled():
            ref_replies, ref_json, _ = harness.run_pimtrie_evidence(ops)
        assert col_replies == ref_replies
        assert col_json == ref_json

    def test_longer_profile_single_seed(self):
        """More batches per sequence: respans, deletes, and piece churn
        interact across batches."""
        ops = harness.gen_ops(7, batches=12, batch_size=8)
        col = _evidence(ops, columnar=True)
        obj = _evidence(ops, columnar=False)
        assert col == obj


# ----------------------------------------------------------------------
def _fault_plans():
    P = harness.P
    return {
        "crash": FaultPlan(crashes={1: 3, P - 1: 11}),
        "straggler": FaultPlan(
            stragglers=(
                StragglerSpec(module=0, factor=4.0, start_round=0,
                              end_round=40),
            )
        ),
        "lossy": FaultPlan(
            drop_requests={(4, 0), (9, 1)},
            drop_replies={(6, m) for m in range(P)},
            duplicate_replies={(8, 0)},
        ),
        "random": FaultPlan.random(P, seed=13),
    }


class TestColumnarParityUnderFaults:
    """Fault injection and recovery must be mode-invariant too: the
    columnar core sees the same aborted rounds, retries, and recovery
    re-stores as the object pipeline, with identical accounting."""

    @pytest.mark.parametrize("seed", harness.COLUMNAR_FAULT_SEEDS)
    @pytest.mark.parametrize("scenario", sorted(_fault_plans()))
    def test_replies_and_metrics_identical(self, seed, scenario):
        ops = harness.gen_ops(seed)
        plan = _fault_plans()[scenario]
        col = _evidence(ops, columnar=True, fault_plan=plan)
        obj = _evidence(ops, columnar=False, fault_plan=plan)
        assert col[0] == obj[0], f"replies diverge under {scenario}"
        assert col[1] == obj[1], f"metrics diverge under {scenario}"
        assert col[2] == obj[2], f"recovery rounds diverge under {scenario}"

    def test_faulty_run_differs_from_clean_run(self):
        """Sanity: the injected plans actually perturb accounting (the
        parity above is not vacuous)."""
        ops = harness.gen_ops(0)
        clean = _evidence(ops, columnar=True)
        faulty = _evidence(
            ops, columnar=True, fault_plan=_fault_plans()["crash"]
        )
        assert clean[1] != faulty[1]
