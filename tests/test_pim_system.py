"""Tests for the PIM Model simulator: rounds, metrics, isolation."""

import pytest

from repro.bits import BitString
from repro.pim import PIMSystem, default_word_cost


def echo_kernel(ctx, reqs):
    ctx.tick(len(reqs))
    return list(reqs)


class TestRounds:
    def test_round_counts(self):
        sys = PIMSystem(4)
        sys.round(echo_kernel, {0: [1, 2], 2: [3]})
        snap = sys.snapshot()
        assert snap.io_rounds == 1
        # words: to {0:2, 2:1}, from the same -> io_time = max(2+2, 1+1) = 4
        assert snap.io_time == 4
        assert snap.total_communication == 6
        assert snap.pim_time == 2  # max kernel work
        assert snap.pim_work == 3

    def test_empty_requests_skip_module(self):
        sys = PIMSystem(2)
        replies = sys.round(echo_kernel, {0: [], 1: [7]})
        assert 0 not in replies
        assert replies[1] == [7]

    def test_dense_request_list(self):
        sys = PIMSystem(3)
        replies = sys.round(echo_kernel, [[1], [2], [3]])
        assert replies == {0: [1], 1: [2], 2: [3]}

    def test_named_kernel_registry(self):
        sys = PIMSystem(2)
        sys.register_kernel("echo", echo_kernel)
        assert sys.round("echo", {1: [5]}) == {1: [5]}

    def test_register_same_fn_is_noop(self):
        sys = PIMSystem(2)
        sys.register_kernel("echo", echo_kernel)
        sys.register_kernel("echo", echo_kernel)  # idempotent reload
        assert sys.round("echo", {0: [1]}) == {0: [1]}

    def test_register_different_fn_raises(self):
        sys = PIMSystem(2)
        sys.register_kernel("echo", echo_kernel)
        with pytest.raises(ValueError, match="already registered"):
            sys.register_kernel("echo", lambda ctx, reqs: reqs)

    def test_bad_module_id_raises_even_with_empty_requests(self):
        sys = PIMSystem(2)
        with pytest.raises(IndexError):
            sys.round(echo_kernel, {5: []})
        with pytest.raises(IndexError):
            sys.round(echo_kernel, {-3: []})
        # nothing was accounted for the failed round
        assert sys.snapshot().io_rounds == 0
        with pytest.raises(KeyError):
            sys.round("missing", {0: [1]})

    def test_kernel_decorator(self):
        sys = PIMSystem(1)

        @sys.kernel("double")
        def double(ctx, reqs):
            return [2 * r for r in reqs]

        assert sys.round("double", {0: [4]}) == {0: [8]}

    def test_duplicate_kernel_rejected(self):
        sys = PIMSystem(1)
        sys.register_kernel("k", echo_kernel)
        with pytest.raises(ValueError):
            sys.register_kernel("k", lambda c, r: r)

    def test_bad_module_id(self):
        sys = PIMSystem(2)
        with pytest.raises(IndexError):
            sys.round(echo_kernel, {5: [1]})

    def test_broadcast(self):
        sys = PIMSystem(3)
        replies = sys.broadcast(echo_kernel, "hello")
        assert set(replies) == {0, 1, 2}
        assert sys.snapshot().io_rounds == 1


class TestModuleState:
    def test_heap_alloc_load_store(self):
        sys = PIMSystem(1)

        def writer(ctx, reqs):
            return [ctx.alloc(r) for r in reqs]

        def reader(ctx, reqs):
            return [ctx.load(a) for a in reqs]

        addrs = sys.round(writer, {0: ["x", "y"]})[0]
        assert sys.round(reader, {0: addrs})[0] == ["x", "y"]

    def test_load_missing_raises(self):
        sys = PIMSystem(1)

        def bad(ctx, reqs):
            return [ctx.load(999)]

        with pytest.raises(KeyError):
            sys.round(bad, {0: [1]})

    def test_state_persists_across_rounds(self):
        sys = PIMSystem(2)

        def put(ctx, reqs):
            ctx.scratch["v"] = reqs[0]
            return []

        def get(ctx, reqs):
            return [ctx.scratch["v"]]

        sys.round(put, {0: [11], 1: [22]})
        assert sys.round(get, {0: [0], 1: [0]}) == {0: [11], 1: [22]}

    def test_wipe_never_reuses_local_addresses(self):
        # a stale host handle from before a crash must fault loudly
        # after the wipe, not silently resolve to a recycled address
        sys = PIMSystem(1)

        def writer(ctx, reqs):
            return [ctx.alloc(r) for r in reqs]

        old_addr = sys.round(writer, {0: ["pre-crash"]})[0][0]
        sys.modules[0].wipe()
        new_addr = sys.round(writer, {0: ["post-crash"]})[0][0]
        assert new_addr != old_addr

        def reader(ctx, reqs):
            return [ctx.load(a) for a in reqs]

        with pytest.raises(KeyError, match="no object at local address"):
            sys.round(reader, {0: [old_addr]})
        assert sys.round(reader, {0: [new_addr]})[0] == ["post-crash"]


class TestWordCost:
    def test_scalars(self):
        assert default_word_cost(5) == 1
        assert default_word_cost(None) == 1
        assert default_word_cost(3.14) == 1

    def test_bitstring_cost_scales(self):
        short = BitString(0, 32)
        long = BitString(0, 640)
        assert default_word_cost(long) >= 10
        assert default_word_cost(short) == 1

    def test_containers_sum(self):
        assert default_word_cost([1, 2, 3]) == 3
        assert default_word_cost((1, (2, 3))) == 3
        assert default_word_cost({"a": 1}) >= 2

    def test_custom_word_cost_method(self):
        class Msg:
            def word_cost(self):
                return 17

        assert default_word_cost(Msg()) == 17


class TestMetrics:
    def test_snapshot_delta(self):
        sys = PIMSystem(2)
        sys.round(echo_kernel, {0: [1]})
        before = sys.snapshot()
        sys.round(echo_kernel, {0: [1, 2], 1: [3]})
        d = sys.snapshot().delta(before)
        assert d.io_rounds == 1
        assert d.total_communication == 6

    def test_io_time_is_per_round_max_summed(self):
        sys = PIMSystem(2)
        sys.round(echo_kernel, {0: [1, 2, 3]})   # io_time 3 + 3 (echoed)
        sys.round(echo_kernel, {1: [1]})          # io_time 1 + 1
        assert sys.snapshot().io_time == 8

    def test_load_balance_stats(self):
        sys = PIMSystem(4)
        sys.round(echo_kernel, {0: [1] * 40})  # all traffic to module 0
        snap = sys.snapshot()
        assert snap.traffic_imbalance() == pytest.approx(4.0)
        sys2 = PIMSystem(4)
        sys2.round(echo_kernel, {m: [1] * 10 for m in range(4)})
        assert sys2.snapshot().traffic_imbalance() == pytest.approx(1.0)

    def test_cpu_tick(self):
        sys = PIMSystem(1)
        sys.tick_cpu(5)
        assert sys.snapshot().cpu_work == 5

    def test_round_log(self):
        sys = PIMSystem(2, keep_round_log=True)
        sys.round(echo_kernel, {0: [1]})
        assert len(sys.metrics.rounds) == 1
        assert sys.metrics.rounds[0].io_time == 2  # 1 word in + 1 echoed out

    def test_reset(self):
        sys = PIMSystem(2)
        sys.round(echo_kernel, {0: [1]})
        sys.metrics.reset()
        assert sys.snapshot().io_rounds == 0
        assert sys.snapshot().total_communication == 0

    def test_memory_accounting(self):
        sys = PIMSystem(2)

        def store(ctx, reqs):
            for r in reqs:
                ctx.alloc(r)
            return []

        sys.round(store, {0: [BitString(0, 640)]})
        mem = sys.memory_words()
        assert mem[0] >= 10
        assert mem[1] == 0

    def test_as_dict(self):
        sys = PIMSystem(2)
        sys.round(echo_kernel, {0: [1]})
        d = sys.snapshot().as_dict()
        assert d["io_rounds"] == 1
        assert "traffic_imbalance" in d


class TestRandomPlacement:
    def test_random_module_in_range(self):
        sys = PIMSystem(8, seed=3)
        for _ in range(100):
            assert 0 <= sys.random_module() < 8

    def test_deterministic_with_seed(self):
        a = [PIMSystem(8, seed=5).random_module() for _ in range(3)]
        b = [PIMSystem(8, seed=5).random_module() for _ in range(3)]
        assert a == b

    def test_needs_one_module(self):
        with pytest.raises(ValueError):
            PIMSystem(0)
