"""Tests for the weight-balanced tree (the §5.2 de-amortization substrate)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fasttrie import YFastTrie
from repro.fasttrie.wbtree import WeightBalancedTree


class TestBasics:
    def test_insert_contains(self):
        t = WeightBalancedTree()
        assert t.insert(5)
        assert not t.insert(5)
        assert 5 in t
        assert 6 not in t
        assert len(t) == 1

    def test_delete(self):
        t = WeightBalancedTree()
        for k in (3, 1, 4, 1, 5):
            t.insert(k)
        assert len(t) == 4
        assert t.delete(1)
        assert not t.delete(1)
        assert list(t) == [3, 4, 5]

    def test_delete_two_children(self):
        t = WeightBalancedTree()
        for k in (5, 2, 8, 1, 3, 7, 9):
            t.insert(k)
        assert t.delete(5)
        assert list(t) == [1, 2, 3, 7, 8, 9]
        t.check_invariants()

    def test_pred_succ(self):
        t = WeightBalancedTree()
        for k in range(0, 100, 10):
            t.insert(k)
        assert t.predecessor(55) == 50
        assert t.successor(55) == 60
        assert t.predecessor(0) is None
        assert t.successor(90) is None
        assert t.min() == 0
        assert t.max() == 90

    def test_empty(self):
        t = WeightBalancedTree()
        assert len(t) == 0
        assert t.min() is None
        assert t.max() is None
        assert t.predecessor(5) is None
        assert list(t) == []

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            WeightBalancedTree(alpha=0.0)
        with pytest.raises(ValueError):
            WeightBalancedTree(alpha=0.6)


class TestBalance:
    def test_sorted_insert_stays_logarithmic(self):
        """The classic BST killer: sorted insertion."""
        t = WeightBalancedTree()
        n = 1024
        for k in range(n):
            t.insert(k)
        t.check_invariants()
        assert t.height() <= 4 * math.log2(n)

    def test_height_after_heavy_deletion(self):
        t = WeightBalancedTree()
        for k in range(512):
            t.insert(k)
        for k in range(0, 512, 2):
            t.delete(k)
        t.check_invariants()
        assert t.height() <= 4 * math.log2(256) + 2

    @given(st.lists(st.integers(0, 500), max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_matches_set_semantics(self, ops):
        t = WeightBalancedTree()
        alive = set()
        for i, k in enumerate(ops):
            if k in alive and i % 3 == 0:
                assert t.delete(k)
                alive.discard(k)
            else:
                t.insert(k)
                alive.add(k)
        assert list(t) == sorted(alive)
        t.check_invariants()
        for q in list(alive)[:10]:
            assert t.predecessor(q) == max(
                (x for x in alive if x < q), default=None
            )
            assert t.successor(q) == min(
                (x for x in alive if x > q), default=None
            )

    def test_single_op_work_bounded(self):
        """De-amortization: the worst single-op rebuild stays well below
        n (geometric sizes), unlike a sorted-list shuffle which is Θ(n)
        on every insert at the front."""
        t = WeightBalancedTree()
        n = 4096
        rng = random.Random(0)
        keys = list(range(n))
        rng.shuffle(keys)
        for k in keys:
            t.insert(k)
        assert t.max_work_per_op < n  # no whole-structure rebuilds
        t.check_invariants()


class TestDeamortizedYFast:
    def test_same_answers_both_modes(self):
        rng = random.Random(3)
        keys = [rng.randrange(1 << 12) for _ in range(400)]
        a = YFastTrie(12)
        b = YFastTrie(12, deamortized=True)
        for k in keys:
            assert a.insert(k) == b.insert(k)
        for q in [rng.randrange(1 << 12) for _ in range(100)]:
            assert a.predecessor(q) == b.predecessor(q)
            assert a.successor(q) == b.successor(q)
            assert (q in a) == (q in b)
        for k in keys[:150]:
            assert a.delete(k) == b.delete(k)
        assert list(a.keys()) == list(b.keys())

    @given(st.lists(st.integers(0, 255), max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_deamortized_churn(self, ops):
        t = YFastTrie(8, deamortized=True)
        alive = set()
        for i, k in enumerate(ops):
            if k in alive and i % 2 == 0:
                assert t.delete(k)
                alive.discard(k)
            else:
                t.insert(k)
                alive.add(k)
        assert list(t.keys()) == sorted(alive)
