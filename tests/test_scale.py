"""Larger end-to-end scenarios: mixed operations at moderate scale,
cross-checked against the sequential oracle.  These are the 'does the
whole machine hold together' tests — slower than unit tests, still
well under a minute together."""

import random

import pytest

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.trie import PatriciaTrie
from repro.workloads import (
    ip_prefixes,
    shared_prefix_flood,
    text_keys,
    uniform_variable_keys,
)

bs = BitString.from_str


def oracle_of(keys, values=None):
    t = PatriciaTrie()
    vals = values if values is not None else [None] * len(keys)
    for k, v in zip(keys, vals):
        t.insert(k, v)
    return t


class TestModerateScale:
    def test_2k_uniform_keys_full_lifecycle(self):
        P = 16
        keys = sorted(set(uniform_variable_keys(2000, 16, 96, seed=1)))
        system = PIMSystem(P, seed=1)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P),
            keys=keys, values=[k.to_str() for k in keys],
        )
        ref = oracle_of(keys, [k.to_str() for k in keys])
        # queries
        qs = keys[::17] + uniform_variable_keys(60, 16, 96, seed=2)
        assert trie.lcp_batch(qs) == [ref.lcp(q) for q in qs]
        # deletes of a third
        dels = keys[::3]
        assert trie.delete_batch(dels) == len(dels)
        for k in dels:
            ref.delete(k)
        # re-query
        qs2 = keys[::13]
        assert trie.lcp_batch(qs2) == [ref.lcp(q) for q in qs2]
        assert trie.num_keys() == len(ref)
        trie.validate()

    def test_ip_table_scale(self):
        P = 8
        table = sorted(set(ip_prefixes(3000, seed=7)))
        system = PIMSystem(P, seed=2)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=table)
        ref = oracle_of(table)
        probes = [BitString(int(i * 2654435761) % (1 << 32), 32) for i in range(200)]
        assert trie.lcp_batch(probes) == [ref.lcp(p) for p in probes]

    def test_text_keys_subtree_consistency(self):
        P = 8
        paths = sorted(set(text_keys(1500, seed=8)))
        system = PIMSystem(P, seed=3)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P),
            keys=paths, values=list(range(len(paths))),
        )
        ref = oracle_of(paths, list(range(len(paths))))
        prefixes = [BitString.from_text(p) for p in ("/api", "/static", "/zzz")]
        got = trie.subtree_batch(prefixes)
        for p, res in zip(prefixes, got):
            want = sorted(
                ((k.to_str(), v) for k, v in ref.subtree_items(p))
            )
            assert [(k.to_str(), v) for k, v in res] == want

    def test_adversarial_growth_then_shrink(self):
        """A deep shared-prefix flood grows one subtree massively, then
        is torn back down — block GC + HVM rebuilds under stress."""
        P = 8
        base = uniform_variable_keys(200, 16, 48, seed=9)
        flood = sorted(set(shared_prefix_flood(600, 96, 24, seed=10)))
        system = PIMSystem(P, seed=4)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=base)
        ref = oracle_of(base)
        trie.insert_batch(flood)
        for k in flood:
            ref.insert(k)
        assert trie.num_keys() == len(ref)
        qs = flood[::29] + base[::11]
        assert trie.lcp_batch(qs) == [ref.lcp(q) for q in qs]
        trie.validate()
        trie.delete_batch(flood)
        for k in flood:
            ref.delete(k)
        assert trie.num_keys() == len(ref)
        trie.validate()
        qs2 = base[::7]
        assert trie.lcp_batch(qs2) == [ref.lcp(q) for q in qs2]

    def test_many_small_batches(self):
        """Interleaved small batches exercise repeated maintenance."""
        P = 4
        rng = random.Random(11)
        system = PIMSystem(P, seed=5)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=[])
        ref = PatriciaTrie()
        universe = [bs(format(i, "010b")) for i in range(1024)]
        for step in range(14):
            batch = rng.sample(universe, 40)
            if step % 3 == 2:
                trie.delete_batch(batch)
                for k in batch:
                    ref.delete(k)
            else:
                trie.insert_batch(batch)
                for k in batch:
                    ref.insert(k)
            assert trie.num_keys() == len(ref)
        qs = rng.sample(universe, 100)
        assert trie.lcp_batch(qs) == [ref.lcp(q) for q in qs]
        trie.validate()
