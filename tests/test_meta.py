"""Tests for the hash value manager structures (paper §4.4, §4.4.1)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import BitString, IncrementalHasher
from repro.core.meta import (
    MetaPiece,
    MetaRecord,
    cut_node,
    decompose_component,
    make_record,
)


def bs(s: str) -> BitString:
    return BitString.from_str(s)


H = IncrementalHasher(seed=31)
W = 64


def random_tree(n: int, seed: int) -> dict[int, list[int]]:
    rng = random.Random(seed)
    kids: dict[int, list[int]] = {i: [] for i in range(n)}
    for i in range(1, n):
        kids[rng.randrange(i)].append(i)
    return kids


class TestMakeRecord:
    def test_basic_fields(self):
        s = bs("1" * 70)
        rec = make_record(5, s, module=2, hasher=H, parent_block=1, w=W)
        assert rec.block_id == 5
        assert rec.depth == 70
        assert rec.module == 2
        assert rec.parent_block == 1
        assert rec.fingerprint == H.fingerprint_of(s)
        # the aligned decomposition
        assert rec.aligned_depth() == 64
        assert rec.s_rem == s.suffix_from(64)
        assert len(rec.s_rem) == 6
        assert rec.s_pre_fp == H.fingerprint_of(s.prefix(64))

    def test_short_string(self):
        s = bs("0101")
        rec = make_record(1, s, 0, H, None, W)
        assert rec.aligned_depth() == 0
        assert rec.s_rem == s
        assert rec.s_last == s

    def test_s_last_window(self):
        s = bs("10" * 60)  # 120 bits
        rec = make_record(1, s, 0, H, None, W)
        assert rec.s_last == s.suffix_from(120 - 64)
        assert len(rec.s_last) == 64

    def test_word_aligned_depth(self):
        s = BitString(0, 128)
        rec = make_record(1, s, 0, H, None, W)
        assert len(rec.s_rem) == 0
        assert rec.aligned_depth() == 128

    def test_word_cost_constant(self):
        long = make_record(1, bs("1" * 500), 0, H, None, W)
        short = make_record(2, bs("1"), 0, H, None, W)
        assert long.word_cost() == short.word_cost()  # O(1) words each


class TestCutNode:
    def test_path_picks_middle(self):
        n = 15
        kids = {i: [i + 1] for i in range(n - 1)}
        kids[n - 1] = []
        v = cut_node(list(range(n)), kids, 0)
        # cutting v's out-edge splits into [0..v] and [v+1..n-1]
        upper = v + 1
        lower = n - upper
        assert max(upper, lower) <= (n + 1) // 2 + 1

    def test_star_picks_center(self):
        kids = {0: list(range(1, 20))}
        for i in range(1, 20):
            kids[i] = []
        assert cut_node(list(range(20)), kids, 0) == 0

    def test_single_node(self):
        assert cut_node([0], {0: []}, 0) == 0

    @given(st.integers(2, 200), st.integers(0, 10_000))
    @settings(max_examples=100)
    def test_lemma45_bound(self, n, seed):
        kids = random_tree(n, seed)
        v = cut_node(list(range(n)), kids, 0)
        size = {}
        order = []
        stack = [0]
        while stack:
            u = stack.pop()
            order.append(u)
            stack.extend(kids[u])
        for u in reversed(order):
            size[u] = 1 + sum(size[c] for c in kids[u])
        worst = max(
            [n - (size[v] - 1)] + [size[c] for c in kids[v]]
        )
        assert worst <= (n + 1) // 2 + 1


class TestDecompose:
    @given(st.integers(1, 300), st.integers(2, 32), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, n, bound, seed):
        kids = random_tree(n, seed)
        pm, pc, root = decompose_component(0, kids, bound)
        # pieces partition the node set
        seen = sorted(u for members in pm.values() for u in members)
        assert seen == list(range(n))
        # piece sizes bounded
        assert all(len(m) <= max(bound, 2) for m in pm.values())
        # the piece tree is a tree over all piece keys
        reachable = set()
        stack = [root]
        while stack:
            k = stack.pop()
            assert k not in reachable
            reachable.add(k)
            stack.extend(pc[k])
        assert reachable == set(pm)

    @given(st.integers(4, 400), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_height_logarithmic(self, n, seed):
        kids = random_tree(n, seed)
        bound = 4
        pm, pc, root = decompose_component(0, kids, bound)

        def height(k):
            return 1 + max((height(c) for c in pc[k]), default=0)

        assert height(root) <= 2 * math.log2(n) + 3

    def test_pieces_are_connected(self):
        """Every piece is a connected component of the original tree."""
        kids = random_tree(120, seed=9)
        pm, pc, root = decompose_component(0, kids, 7)
        parent = {}
        for u, cs in kids.items():
            for c in cs:
                parent[c] = u
        for key, members in pm.items():
            mset = set(members)
            for u in members:
                if u == key:
                    continue
                # walking up from u stays inside the piece until its root
                cur = u
                while cur != key:
                    cur = parent[cur]
                    assert cur in mset or cur == key


class TestMetaPiece:
    def rec(self, bid, s, parent=None):
        return make_record(bid, bs(s), 0, H, parent, W)

    def test_add_owned_and_replicated(self):
        p = MetaPiece(1, module=0, w=W)
        p.add_record(self.rec(1, "01"), owned=True)
        p.add_record(self.rec(2, "0111", parent=1), owned=False)
        assert p.own_size() == 1
        assert p.represented_size() == 2
        assert set(p.table) == {1, 2}

    def test_replace_record(self):
        p = MetaPiece(1, module=0, w=W)
        p.add_record(self.rec(1, "01"), owned=True)
        updated = self.rec(1, "01", parent=None)
        p.add_record(updated, owned=True)
        assert p.own_size() == 1
        assert p.represented_size() == 1

    def test_remove(self):
        p = MetaPiece(1, module=0, w=W)
        p.add_record(self.rec(1, "01"), owned=True)
        p.add_record(self.rec(2, "0111", parent=1), owned=True)
        p.remove_record(1)
        assert set(p.table) == {2}
        assert p.own_size() == 1
        # removing again is a no-op
        p.remove_record(1)
        assert p.represented_size() == 1

    def test_by_fp_lookup(self):
        p = MetaPiece(1, module=0, w=W)
        r = self.rec(1, "0101")
        p.add_record(r, owned=True)
        assert p.by_fp[r.fingerprint] == [1]
        p.remove_record(1)
        assert r.fingerprint not in p.by_fp

    def test_word_cost_scales_with_table(self):
        p = MetaPiece(1, module=0, w=W)
        for i in range(10):
            p.add_record(self.rec(i + 1, format(i, "05b")), owned=True)
        assert p.word_cost() > 10
