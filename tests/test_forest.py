"""Tests for the treap sequence and Euler-tour-tree dynamic forest."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.forest import EulerTourForest, TreapSequence


class TestTreapSequence:
    def test_merge_iterate(self):
        seq = TreapSequence(seed=1)
        nodes = [seq.make(i) for i in range(10)]
        root = None
        for n in nodes:
            root = seq.merge(root, n)
        assert [n.value for n in seq.iterate(root)] == list(range(10))
        assert seq.size(root) == 10

    def test_split(self):
        seq = TreapSequence(seed=2)
        root = None
        for i in range(10):
            root = seq.merge(root, seq.make(i))
        left, right = seq.split(root, 4)
        assert [n.value for n in seq.iterate(left)] == [0, 1, 2, 3]
        assert [n.value for n in seq.iterate(right)] == [4, 5, 6, 7, 8, 9]

    def test_split_edges(self):
        seq = TreapSequence(seed=3)
        root = None
        for i in range(5):
            root = seq.merge(root, seq.make(i))
        l, r = seq.split(root, 0)
        assert seq.size(l) == 0 and seq.size(r) == 5
        root = seq.merge(l, r)
        l, r = seq.split(root, 5)
        assert seq.size(l) == 5 and seq.size(r) == 0

    def test_index_and_split_at_node(self):
        seq = TreapSequence(seed=4)
        nodes = [seq.make(i) for i in range(20)]
        root = None
        for n in nodes:
            root = seq.merge(root, n)
        for i, n in enumerate(nodes):
            assert n.index() == i
        l, r = seq.split_at_node(nodes[7])
        assert [n.value for n in seq.iterate(l)] == list(range(7))
        assert [n.value for n in seq.iterate(r)] == list(range(7, 20))

    def test_first_last(self):
        seq = TreapSequence(seed=5)
        root = None
        for i in range(8):
            root = seq.merge(root, seq.make(i))
        assert seq.first(root).value == 0
        assert seq.last(root).value == 7

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=40), st.integers(0, 1000))
    @settings(max_examples=100)
    def test_split_merge_roundtrip(self, values, seed):
        seq = TreapSequence(seed=seed)
        root = None
        for v in values:
            root = seq.merge(root, seq.make(v))
        k = seed % (len(values) + 1)
        l, r = seq.split(root, k)
        assert [n.value for n in seq.iterate(l)] == values[:k]
        assert [n.value for n in seq.iterate(r)] == values[k:]
        root = seq.merge(l, r)
        assert [n.value for n in seq.iterate(root)] == values


class OracleForest:
    """Brute-force rooted forest used to validate the Euler-tour tree."""

    def __init__(self):
        self.parent = {}

    def add_vertex(self, v):
        self.parent[v] = None

    def link(self, c, p):
        self.parent[c] = p

    def cut(self, c):
        self.parent[c] = None

    def root_of(self, v):
        while self.parent[v] is not None:
            v = self.parent[v]
        return v

    def subtree(self, v):
        out = []
        for u in self.parent:
            w = u
            while w is not None:
                if w == v:
                    out.append(u)
                    break
                w = self.parent[w]
        return sorted(out)


class TestEulerTourForest:
    def test_single_vertex(self):
        f = EulerTourForest()
        f.add_vertex("a")
        assert f.root_of("a") == "a"
        assert f.subtree_size("a") == 1
        assert f.tree_size("a") == 1

    def test_duplicate_vertex_rejected(self):
        f = EulerTourForest()
        f.add_vertex(1)
        with pytest.raises(ValueError):
            f.add_vertex(1)

    def test_link_cut_basic(self):
        f = EulerTourForest()
        for v in "abcd":
            f.add_vertex(v)
        f.link("b", "a")
        f.link("c", "a")
        f.link("d", "b")
        assert f.root_of("d") == "a"
        assert f.subtree_size("a") == 4
        assert f.subtree_size("b") == 2
        assert sorted(f.subtree_vertices("b")) == ["b", "d"]
        f.cut("b")
        assert f.root_of("d") == "b"
        assert f.root_of("c") == "a"
        assert f.subtree_size("a") == 2
        assert not f.connected("a", "b")

    def test_link_nonroot_rejected(self):
        f = EulerTourForest()
        for v in "abc":
            f.add_vertex(v)
        f.link("b", "a")
        with pytest.raises(ValueError):
            f.link("b", "c")

    def test_cycle_rejected(self):
        f = EulerTourForest()
        for v in "ab":
            f.add_vertex(v)
        f.link("b", "a")
        with pytest.raises(ValueError):
            f.link("a", "b")

    def test_cut_root_rejected(self):
        f = EulerTourForest()
        f.add_vertex("a")
        with pytest.raises(ValueError):
            f.cut("a")

    def test_deep_chain(self):
        f = EulerTourForest()
        n = 200
        for i in range(n):
            f.add_vertex(i)
        for i in range(1, n):
            f.link(i, i - 1)
        assert f.root_of(n - 1) == 0
        assert f.subtree_size(0) == n
        assert f.subtree_size(n // 2) == n - n // 2
        f.cut(n // 2)
        assert f.root_of(n - 1) == n // 2
        assert f.subtree_size(0) == n // 2

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_ops_match_oracle(self, seed):
        rng = random.Random(seed)
        f = EulerTourForest(seed=seed)
        o = OracleForest()
        n = 30
        for v in range(n):
            f.add_vertex(v)
            o.add_vertex(v)
        for _ in range(80):
            op = rng.random()
            v = rng.randrange(n)
            if op < 0.5:
                # try to link v (if root) under a random non-descendant
                if o.parent[v] is None:
                    u = rng.randrange(n)
                    if o.root_of(u) != v:
                        f.link(v, u)
                        o.link(v, u)
            elif op < 0.8:
                if o.parent[v] is not None:
                    f.cut(v)
                    o.cut(v)
            else:
                assert f.root_of(v) == o.root_of(v)
                assert sorted(f.subtree_vertices(v)) == o.subtree(v)
                assert f.subtree_size(v) == len(o.subtree(v))
        for v in range(n):
            assert f.root_of(v) == o.root_of(v)
            assert f.subtree_size(v) == len(o.subtree(v))
