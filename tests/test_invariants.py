"""Structural-invariant tests: PIMTrie.validate() after every kind of
mutation, including adversarial churn that forces re-partitioning,
HVM rebuilds, scapegoat splits, and block garbage collection."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.workloads import shared_prefix_flood, uniform_keys

bs = BitString.from_str


def make(P=4, seed=1, keys=(), **cfg):
    system = PIMSystem(P, seed=seed)
    return PIMTrie(
        system,
        PIMTrieConfig(num_modules=P, **cfg),
        keys=list(keys),
    )


class TestValidateAfterMutations:
    def test_fresh_build(self):
        t = make(keys=[bs(format(i, "08b")) for i in range(64)])
        t.validate()

    def test_empty_build(self):
        t = make()
        t.validate()
        assert t.keys() == []

    def test_after_inserts(self):
        t = make(keys=[bs("0")])
        t.insert_batch([bs(format(i, "010b")) for i in range(256)])
        t.validate()
        assert t.num_keys() == 257

    def test_after_deletes(self):
        keys = [bs(format(i, "08b")) for i in range(64)]
        t = make(keys=keys)
        t.delete_batch(keys[:48])
        t.validate()
        assert t.num_keys() == 16

    def test_after_delete_everything(self):
        keys = [bs(format(i, "06b")) for i in range(64)]
        t = make(keys=keys)
        t.delete_batch(keys)
        t.validate()
        assert t.num_keys() == 0
        # and the structure remains usable
        t.insert_batch([bs("111")])
        t.validate()
        assert t.lcp_batch([bs("1111")]) == [3]

    def test_after_adversarial_inserts(self):
        """A shared-prefix flood forces deep chains + repartitioning."""
        t = make(P=8, keys=uniform_keys(64, 64, seed=3))
        t.insert_batch(shared_prefix_flood(256, 128, 32, seed=4))
        t.validate()

    def test_keys_roundtrip(self):
        keys = sorted(set(uniform_keys(128, 24, seed=5)))
        t = make(P=8, keys=keys)
        assert t.keys() == keys

    @given(st.integers(0, 5_000))
    @settings(max_examples=12, deadline=None)
    def test_churn_keeps_invariants(self, seed):
        rng = random.Random(seed)
        universe = [bs(format(i, "09b")) for i in range(128)]
        t = make(P=rng.choice([2, 4, 8]), seed=seed)
        alive = set()
        for _ in range(5):
            batch = rng.sample(universe, rng.randint(1, 30))
            if rng.random() < 0.55:
                t.insert_batch(batch)
                alive |= set(batch)
            else:
                t.delete_batch(batch)
                alive -= set(batch)
            t.validate()
            assert t.keys() == sorted(alive)


class TestConfigSurface:
    def test_defaults_derive_from_P(self):
        cfg = PIMTrieConfig(num_modules=64)
        assert cfg.block_bound == 36  # ceil(log2 64)^2
        assert cfg.meta_block_bound == 64
        assert cfg.small_meta_bound == 36
        assert cfg.pull_threshold == 6**4

    def test_small_P_clamps(self):
        cfg = PIMTrieConfig(num_modules=2)
        assert cfg.block_bound >= 8
        assert cfg.meta_block_bound >= 8
        assert cfg.pull_threshold >= 16

    def test_validation(self):
        with pytest.raises(ValueError):
            PIMTrieConfig(num_modules=0)
        with pytest.raises(ValueError):
            PIMTrieConfig(num_modules=4, alpha=0.5)
        with pytest.raises(ValueError):
            PIMTrieConfig(num_modules=4, alpha=1.0)
        with pytest.raises(ValueError):
            PIMTrieConfig(num_modules=4, word_bits=4)
        with pytest.raises(ValueError):
            PIMTrieConfig(num_modules=4, block_bound=1)

    def test_log_p(self):
        assert PIMTrieConfig(num_modules=16).log_p == 4
        assert PIMTrieConfig(num_modules=1).log_p == 1

    def test_make_hasher_kinds(self):
        from repro.bits import CarrylessHasher, IncrementalHasher

        assert isinstance(
            PIMTrieConfig(num_modules=4).make_hasher(), IncrementalHasher
        )
        assert isinstance(
            PIMTrieConfig(num_modules=4, hash_kind="carryless").make_hasher(),
            CarrylessHasher,
        )


class TestVerificationToggle:
    def test_verify_off_still_correct_wide_hash(self):
        """With 61-bit fingerprints collisions are whp absent, so
        disabling verification must not change answers."""
        keys = uniform_keys(128, 48, seed=7)
        a = make(P=4, keys=keys, verify=True)
        b = make(P=4, keys=keys, verify=False)
        qs = keys[:32] + uniform_keys(32, 48, seed=8)
        assert a.lcp_batch(qs) == b.lcp_batch(qs)

    def test_narrow_width_verified_correct(self):
        from repro.trie import PatriciaTrie

        keys = uniform_keys(256, 48, seed=9)
        t = make(P=4, keys=keys, hash_width=12, verify=True)
        ref = PatriciaTrie()
        for k in keys:
            ref.insert(k)
        qs = keys[:64]
        assert t.lcp_batch(qs) == [ref.lcp(q) for q in qs]
        t.validate()
