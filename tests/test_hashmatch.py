"""Tests for HashMatching (Algorithm 3 + the §4.4.2 pivot path).

Both modes are validated against a brute-force per-edge-deepest oracle
over randomized record tables, including fragments based mid-trie with
aligned-anchor bookkeeping, and the §4.4.3 S_last rejection path.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import BitString, IncrementalHasher
from repro.core import PathPos, RecordTable, hash_match_fragment, span_fragments
from repro.core.hashmatch import CollisionLog
from repro.core.meta import make_record
from repro.core.query import fragment_whole_trie
from repro.trie import build_query_trie, rootfix


def bs(s: str) -> BitString:
    return BitString.from_str(s)


H = IncrementalHasher(seed=13)
W = 64


def make_records(root_strings, parent_of=None):
    """Records for the given root strings; parents inferred by longest
    proper prefix within the set (the real meta-tree relation)."""
    ss = sorted(root_strings, key=len)
    recs = []
    id_of = {}
    for i, s in enumerate(ss):
        parent = None
        best = -1
        for t in ss:
            if len(t) < len(s) and t.is_prefix_of(s) and len(t) > best:
                best = len(t)
                parent = id_of[t]
        bid = 1000 + i
        id_of[s] = bid
        recs.append(make_record(bid, s, module=0, hasher=H, parent_block=parent, w=W))
    return recs, id_of


def brute_cuts(qt, strings, roots):
    """Oracle: per-edge deepest root lying on the query path."""
    out = {}
    for edge in qt.iter_edges():
        src_s = strings[edge.src.uid]
        dst_s = strings[edge.dst.uid]
        best = None
        for r in roots:
            if (
                len(src_s) < len(r) <= len(dst_s)
                and r.is_prefix_of(dst_s)
            ):
                if best is None or len(r) > len(best):
                    best = r
        if best is not None:
            out[(edge.dst.uid, len(dst_s) - len(best))] = best
    return out


@pytest.mark.parametrize("use_pivots", [True, False])
class TestHashMatchModes:
    def test_single_root_on_edge(self, use_pivots):
        qt = build_query_trie([bs("001100")])
        strings = rootfix(qt, bs(""), lambda a, n: a + n.parent_edge.label)
        recs, id_of = make_records([bs(""), bs("0011")])
        table = RecordTable(recs, W)
        frag = fragment_whole_trie(qt, H, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=use_pivots, verify=True,
            tick=lambda n: None,
        )
        assert len(cuts) == 1
        assert cuts[0].abs_depth == 4
        assert cuts[0].record.block_id == id_of[bs("0011")]

    def test_deepest_of_several(self, use_pivots):
        qt = build_query_trie([bs("00110011")])
        strings = rootfix(qt, bs(""), lambda a, n: a + n.parent_edge.label)
        recs, id_of = make_records(
            [bs(""), bs("0"), bs("0011"), bs("001100"), bs("111")]
        )
        table = RecordTable(recs, W)
        frag = fragment_whole_trie(qt, H, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=use_pivots, verify=True,
            tick=lambda n: None,
        )
        assert len(cuts) == 1
        assert cuts[0].record.block_id == id_of[bs("001100")]

    def test_no_match(self, use_pivots):
        qt = build_query_trie([bs("1111")])
        recs, _ = make_records([bs(""), bs("00")])
        table = RecordTable(recs, W)
        frag = fragment_whole_trie(qt, H, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=use_pivots, verify=True,
            tick=lambda n: None,
        )
        assert cuts == []

    def test_exclude_falls_back(self, use_pivots):
        """Excluding the deepest root must surface the next one up
        (the §4.4.3 redo path)."""
        qt = build_query_trie([bs("00110011")])
        recs, id_of = make_records([bs(""), bs("0011"), bs("001100")])
        table = RecordTable(recs, W)
        frag = fragment_whole_trie(qt, H, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=use_pivots, verify=True,
            tick=lambda n: None,
            exclude={id_of[bs("001100")]},
        )
        assert len(cuts) == 1
        assert cuts[0].record.block_id == id_of[bs("0011")]

    def test_long_edge_multiword(self, use_pivots):
        """Roots deeper than one machine word on a single edge."""
        key = bs("10" * 100)  # 200 bits
        qt = build_query_trie([key])
        roots = [bs(""), key.prefix(70), key.prefix(130), key.prefix(199)]
        recs, id_of = make_records(roots)
        table = RecordTable(recs, W)
        frag = fragment_whole_trie(qt, H, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=use_pivots, verify=True,
            tick=lambda n: None,
        )
        assert len(cuts) == 1
        assert cuts[0].abs_depth == 199

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=40), min_size=1, max_size=12),
        st.integers(0, 100_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_bruteforce(self, use_pivots, keys, seed):
        rng = random.Random(seed)
        qt = build_query_trie([bs(k) for k in keys])
        strings = rootfix(qt, bs(""), lambda a, n: a + n.parent_edge.label)
        # random roots: mix of on-path prefixes and off-path strings
        roots = {bs("")}
        all_strings = [strings[n.uid] for n in qt.iter_nodes()]
        for _ in range(rng.randint(0, 6)):
            s = rng.choice(all_strings)
            if len(s):
                roots.add(s.prefix(rng.randint(1, len(s))))
        for _ in range(rng.randint(0, 3)):
            roots.add(bs("".join(rng.choice("01") for _ in range(rng.randint(1, 20)))))
        recs, id_of = make_records(sorted(roots))
        table = RecordTable(recs, W)
        frag = fragment_whole_trie(qt, H, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=use_pivots, verify=True,
            tick=lambda n: None,
        )
        # translate fragment coordinates back to query-trie uids
        got = {
            (frag.origin[c.node_uid], c.back): c.record.block_id
            for c in cuts
        }
        want = {
            k: id_of[v] for k, v in brute_cuts(qt, strings, roots).items()
        }
        assert got == want


class TestFragmentBasedMatching:
    def test_cuts_relative_to_base(self):
        """A fragment based mid-trie still finds roots below its base,
        including roots whose aligned pivot precedes the base."""
        key = bs("01" * 50)  # 100 bits
        qt = build_query_trie([key])
        strings = rootfix(qt, bs(""), lambda a, n: a + n.parent_edge.label)
        leaf = next(n for n in qt.iter_nodes() if n.is_key)
        # fragment based at depth 70 (not word-aligned)
        frags = span_fragments(
            qt, [PathPos(qt.root), PathPos(leaf, back=30)], strings, H, W
        )
        frag = next(f for f in frags if f.base_depth == 70)
        roots = [key.prefix(75), key.prefix(90)]
        recs, id_of = make_records(roots)
        table = RecordTable(recs, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=True, verify=True, tick=lambda n: None
        )
        assert len(cuts) == 1
        assert cuts[0].abs_depth == 90

    def test_verification_rejects_wrong_slast(self):
        """A record whose fingerprint matches but whose S_last differs
        must be rejected and counted (collision injection)."""
        qt = build_query_trie([bs("00110011")])
        real = bs("0011")
        rec = make_record(7, real, module=0, hasher=H, parent_block=None, w=W)
        # forge a colliding record: same fingerprint/pre/rem but a
        # different S_last (as a true hash collision would present)
        from dataclasses import replace

        forged = replace(rec, s_last=bs("0111"), block_id=8)
        table = RecordTable([forged], W)
        frag = fragment_whole_trie(qt, H, W)
        log = CollisionLog()
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=True, verify=True,
            tick=lambda n: None, log=log,
        )
        assert cuts == []
        assert log.rejected >= 1

    def test_verify_off_accepts_forgery(self):
        qt = build_query_trie([bs("00110011")])
        from dataclasses import replace

        rec = make_record(7, bs("0011"), module=0, hasher=H, parent_block=None, w=W)
        forged = replace(rec, s_last=bs("0111"), block_id=8)
        table = RecordTable([forged], W)
        frag = fragment_whole_trie(qt, H, W)
        cuts = hash_match_fragment(
            frag, table, H, use_pivots=True, verify=False, tick=lambda n: None
        )
        assert len(cuts) == 1  # no verification -> forgery accepted


class TestRecordTable:
    def test_add_remove_roundtrip(self):
        recs, id_of = make_records([bs(""), bs("01"), bs("0101")])
        table = RecordTable(recs, W)
        assert len(table) == 3
        victim = recs[1]
        table.remove(victim)
        assert len(table) == 2
        assert victim.block_id not in table.by_id
        table.add(victim)
        assert len(table) == 3

    def test_family_grouping(self):
        """Records share a family iff they share the aligned prefix."""
        long = bs("1" * 80)
        recs, _ = make_records([long.prefix(70), long.prefix(75), bs("01")])
        table = RecordTable(recs, W)
        fams = table.layer2
        # 70 and 75 share s_pre (aligned at 64); "01" aligns at 0
        sizes = sorted(len(f.members) for f in fams.values())
        assert sizes == [1, 2]
