"""Tests for the Table-1 baselines and the PIM hash table substrate."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import BitString, PIMSystem
from repro.baselines import (
    DistributedRadixTree,
    DistributedXFastTrie,
    PIMHashTable,
    RangePartitionedIndex,
)
from repro.trie import PatriciaTrie


def bs(s: str) -> BitString:
    return BitString.from_str(s)


def oracle(keys):
    t = PatriciaTrie()
    for k in keys:
        t.insert(bs(k), k)
    return t


class TestPIMHashTable:
    def test_put_get(self):
        sys = PIMSystem(4, seed=1)
        ht = PIMHashTable(sys)
        assert ht.put_batch(["a", "b"], [1, 2]) == 2
        assert ht.get_batch(["a", "b", "c"]) == [1, 2, None]
        assert len(ht) == 2

    def test_overwrite_not_fresh(self):
        sys = PIMSystem(2, seed=1)
        ht = PIMHashTable(sys)
        ht.put_batch(["a"], [1])
        assert ht.put_batch(["a"], [2]) == 0
        assert ht.get_batch(["a"]) == [2]

    def test_delete(self):
        sys = PIMSystem(2, seed=1)
        ht = PIMHashTable(sys)
        ht.put_batch(["a", "b"], [1, 2])
        assert ht.delete_batch(["a", "zz"]) == 1
        assert ht.get_batch(["a"]) == [None]
        assert len(ht) == 1

    def test_one_round_per_batch(self):
        sys = PIMSystem(8, seed=1)
        ht = PIMHashTable(sys)
        before = sys.snapshot()
        ht.put_batch(list(range(100)), list(range(100)))
        assert sys.snapshot().delta(before).io_rounds == 1

    def test_balanced_placement(self):
        sys = PIMSystem(8, seed=1)
        ht = PIMHashTable(sys)
        before = sys.snapshot()
        ht.put_batch(list(range(2000)), [0] * 2000)
        d = sys.snapshot().delta(before)
        assert d.traffic_imbalance() < 1.5

    def test_two_tables_isolated(self):
        sys = PIMSystem(2, seed=1)
        a = PIMHashTable(sys)
        b = PIMHashTable(sys)
        a.put_batch(["k"], ["va"])
        b.put_batch(["k"], ["vb"])
        assert a.get_batch(["k"]) == ["va"]
        assert b.get_batch(["k"]) == ["vb"]


class TestDistributedRadix:
    def test_insert_lcp_span1(self):
        sys = PIMSystem(4, seed=1)
        keys = ["000010", "00001101", "1010000", "1010111", "101011"]
        t = DistributedRadixTree(sys, span=1, keys=[bs(k) for k in keys])
        ref = oracle(keys)
        qs = ["101001", "000011", "1010111", "0", "11"]
        assert t.lcp_batch([bs(q) for q in qs]) == [ref.lcp(bs(q)) for q in qs]

    def test_rounds_scale_with_length_over_span(self):
        """Table 1: O(l/s) rounds per batch."""
        for span, expect_more in [(1, True), (4, False)]:
            sys = PIMSystem(4, seed=1)
            key = bs("10" * 32)  # 64 bits
            t = DistributedRadixTree(sys, span=span, keys=[key])
            before = sys.snapshot()
            t.lcp_batch([key])
            rounds = sys.snapshot().delta(before).io_rounds
            assert rounds >= 64 // span  # one round per level

    def test_delete(self):
        sys = PIMSystem(4, seed=1)
        t = DistributedRadixTree(sys, span=1, keys=[bs("0101"), bs("0111")])
        assert t.delete_batch([bs("0101")]) == 1
        assert t.delete_batch([bs("0101")]) == 0
        assert t.num_keys == 1
        assert t.lcp_batch([bs("0101")]) == [4]  # nodes remain (lazy)

    def test_subtree(self):
        sys = PIMSystem(4, seed=1)
        keys = ["0000", "0001", "0100", "1100"]
        t = DistributedRadixTree(sys, span=2, keys=[bs(k) for k in keys])
        (got,) = t.subtree_batch([bs("00")])
        assert [k.to_str() for k, _ in got] == ["0000", "0001"]

    def test_subtree_alignment_required(self):
        sys = PIMSystem(2, seed=1)
        t = DistributedRadixTree(sys, span=2, keys=[bs("0000")])
        with pytest.raises(ValueError):
            t.subtree_batch([bs("0")])

    def test_empty_key(self):
        sys = PIMSystem(2, seed=1)
        t = DistributedRadixTree(sys, span=1)
        t.insert_batch([bs("")])
        assert t.num_keys == 1
        t.delete_batch([bs("")])
        assert t.num_keys == 0

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=16), min_size=1, max_size=25),
        st.lists(st.text(alphabet="01", min_size=1, max_size=16), min_size=1, max_size=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_oracle_span1(self, keys, queries):
        sys = PIMSystem(4, seed=3)
        t = DistributedRadixTree(sys, span=1, keys=[bs(k) for k in keys])
        ref = oracle(keys)
        assert t.lcp_batch([bs(q) for q in queries]) == [
            ref.lcp(bs(q)) for q in queries
        ]
        assert t.num_keys == len(set(keys))


class TestDistributedXFast:
    def test_fixed_width_enforced(self):
        sys = PIMSystem(2, seed=1)
        t = DistributedXFastTrie(sys, width=8)
        with pytest.raises(ValueError):
            t.insert_batch([bs("0101")])

    def test_insert_lookup(self):
        sys = PIMSystem(4, seed=1)
        keys = [BitString.from_int(v, 8) for v in [3, 200, 77]]
        t = DistributedXFastTrie(sys, width=8, keys=keys, values=["a", "b", "c"])
        assert t.lookup_batch(keys) == ["a", "b", "c"]
        assert t.lookup_batch([BitString.from_int(4, 8)]) == [None]
        assert t.num_keys == 3

    def test_lcp(self):
        sys = PIMSystem(4, seed=1)
        keys = [bs("00001111"), bs("00110011")]
        t = DistributedXFastTrie(sys, width=8, keys=keys)
        ref = oracle([k.to_str() for k in keys])
        qs = [bs("00001010"), bs("00110011"), bs("11111111")]
        assert t.lcp_batch(qs) == [ref.lcp(q) for q in qs]

    def test_lcp_rounds_logarithmic(self):
        """Table 1: O(log l) rounds per batch."""
        sys = PIMSystem(4, seed=1)
        keys = [BitString.from_int(v, 64) for v in range(50)]
        t = DistributedXFastTrie(sys, width=64, keys=keys)
        before = sys.snapshot()
        t.lcp_batch(keys[:10])
        rounds = sys.snapshot().delta(before).io_rounds
        assert rounds <= 4 * 7  # ~log2(64) iterations (few levels each)

    def test_space_linear_in_width(self):
        """Table 1: O(l) words per key."""
        n = 40
        sys8 = PIMSystem(4, seed=1)
        t8 = DistributedXFastTrie(
            sys8, width=8, keys=[BitString.from_int(v, 8) for v in range(n)]
        )
        sys32 = PIMSystem(4, seed=1)
        t32 = DistributedXFastTrie(
            sys32, width=32, keys=[BitString.from_int(v * 977, 32) for v in range(n)]
        )
        assert t32.space_words() > 2 * t8.space_words()

    def test_delete(self):
        sys = PIMSystem(2, seed=1)
        keys = [BitString.from_int(v, 8) for v in [1, 2]]
        t = DistributedXFastTrie(sys, width=8, keys=keys)
        assert t.delete_batch([keys[0]]) == 1
        assert t.lookup_batch([keys[0]]) == [None]
        assert t.num_keys == 1

    def test_subtree(self):
        sys = PIMSystem(4, seed=1)
        keys = [BitString.from_int(v, 6) for v in [0b000001, 0b000010, 0b110000]]
        t = DistributedXFastTrie(sys, width=6, keys=keys, values=[1, 2, 3])
        (got,) = t.subtree_batch([bs("0000")])
        assert [(k.to_str(), v) for k, v in got] == [
            ("000001", 1),
            ("000010", 2),
        ]

    @given(
        st.sets(st.integers(0, 255), min_size=1, max_size=30),
        st.lists(st.integers(0, 255), min_size=1, max_size=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_lcp_matches_oracle(self, keyset, queries):
        sys = PIMSystem(4, seed=2)
        keys = [BitString.from_int(v, 8) for v in keyset]
        t = DistributedXFastTrie(sys, width=8, keys=keys)
        ref = oracle([k.to_str() for k in keys])
        qs = [BitString.from_int(v, 8) for v in queries]
        assert t.lcp_batch(qs) == [ref.lcp(q) for q in qs]


class TestRangePartitioned:
    def test_basic_ops(self):
        sys = PIMSystem(4, seed=1)
        keys = [format(i, "08b") for i in range(32)]
        t = RangePartitionedIndex(sys, keys=[bs(k) for k in keys], values=keys)
        assert t.num_keys == 32
        assert t.lookup_batch([bs(keys[5]), bs("11111110")]) == [keys[5], None]
        assert t.lookup_batch([bs(keys[31])]) == [keys[31]]
        ref = oracle(keys)
        qs = ["00000000", "01010101", "11111111"]
        assert t.lcp_batch([bs(q) for q in qs]) == [ref.lcp(bs(q)) for q in qs]

    def test_delete(self):
        sys = PIMSystem(4, seed=1)
        t = RangePartitionedIndex(sys, keys=[bs("0101"), bs("0110")])
        assert t.delete_batch([bs("0101")]) == 1
        assert t.num_keys == 1

    def test_subtree_spanning_partitions(self):
        sys = PIMSystem(4, seed=1)
        keys = [format(i, "08b") for i in range(64)]
        t = RangePartitionedIndex(sys, keys=[bs(k) for k in keys], values=keys)
        (got,) = t.subtree_batch([bs("00")])
        want = sorted(k for k in keys if k.startswith("00"))
        assert [k.to_str() for k, _ in got] == want

    def test_skew_serializes_on_one_module(self):
        """§3.2: a single-range flood sends ~everything to one module."""
        sys = PIMSystem(8, seed=1)
        keys = [format(i, "012b") for i in range(512)]
        t = RangePartitionedIndex(sys, keys=[bs(k) for k in keys], values=keys)
        before = sys.snapshot()
        hot = [bs("000000000" + format(i % 8, "03b")) for i in range(256)]
        t.lcp_batch(hot)
        d = sys.snapshot().delta(before)
        # one partition (plus its probed neighbors) got nearly all traffic
        assert d.traffic_imbalance() > 2.0

    @given(
        st.lists(st.text(alphabet="01", min_size=1, max_size=12), min_size=4, max_size=40),
        st.lists(st.text(alphabet="01", min_size=0, max_size=12), min_size=1, max_size=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_lcp_matches_oracle(self, keys, queries):
        sys = PIMSystem(4, seed=5)
        t = RangePartitionedIndex(sys, keys=[bs(k) for k in keys])
        ref = oracle(keys)
        assert t.lcp_batch([bs(q) for q in queries]) == [
            ref.lcp(bs(q)) for q in queries
        ]
