"""Unit tests for the PIM Model metric records and snapshots."""

import pytest

from repro.pim import MetricsCollector, MetricsSnapshot, RoundRecord


class TestRoundRecord:
    def test_io_time_is_max_module_total(self):
        # module totals (in + out): 5+0=5 and 1+9=10 -> the busiest
        # module's combined traffic, not the max single direction
        r = RoundRecord(words_to=(5, 1), words_from=(0, 9), kernel_work=(2, 3))
        assert r.io_time == 10
        assert r.total_words == 15
        assert r.pim_time == 3

    def test_empty_round(self):
        r = RoundRecord(words_to=(), words_from=(), kernel_work=())
        assert r.io_time == 0
        assert r.total_words == 0
        assert r.pim_time == 0


class TestCollector:
    def test_accumulation(self):
        c = MetricsCollector(2)
        c.record_round([3, 0], [1, 0], [5, 0])
        c.record_round([0, 4], [0, 2], [0, 7])
        s = c.snapshot()
        assert s.io_rounds == 2
        assert s.io_time == (3 + 1) + (4 + 2)  # busiest module, per round
        assert s.total_communication == 10
        assert s.pim_time == 12
        assert s.pim_work == 12
        assert s.per_module_traffic == (4, 6)
        assert s.per_module_work == (5, 7)

    def test_round_log_optional(self):
        c = MetricsCollector(1, keep_round_log=True)
        c.record_round([1], [0], [0])
        assert len(c.rounds) == 1
        c2 = MetricsCollector(1)
        c2.record_round([1], [0], [0])
        assert c2.rounds == []

    def test_cpu_ticks(self):
        c = MetricsCollector(1)
        c.tick_cpu()
        c.tick_cpu(4)
        assert c.snapshot().cpu_work == 5

    def test_reset(self):
        c = MetricsCollector(2, keep_round_log=True)
        c.record_round([1, 1], [1, 1], [1, 1])
        c.tick_cpu(3)
        c.reset()
        s = c.snapshot()
        assert s.io_rounds == 0
        assert s.cpu_work == 0
        assert s.per_module_traffic == (0, 0)
        assert c.rounds == []


class TestSnapshot:
    def snap(self, **kw):
        base = dict(
            io_rounds=0, io_time=0, total_communication=0, pim_time=0,
            pim_work=0, cpu_work=0, per_module_traffic=(0, 0),
            per_module_work=(0, 0),
        )
        base.update(kw)
        return MetricsSnapshot(**base)

    def test_delta(self):
        a = self.snap(io_rounds=3, total_communication=10,
                      per_module_traffic=(6, 4))
        b = self.snap(io_rounds=1, total_communication=4,
                      per_module_traffic=(2, 2))
        d = a.delta(b)
        assert d.io_rounds == 2
        assert d.total_communication == 6
        assert d.per_module_traffic == (4, 2)

    def test_delta_module_count_mismatch_raises(self):
        # snapshots from systems with different P must not be silently
        # zip-truncated into a short per-module tuple
        a = self.snap(per_module_traffic=(6, 4, 2), per_module_work=(1, 1, 1))
        b = self.snap()
        with pytest.raises(ValueError, match="module counts differ"):
            a.delta(b)
        with pytest.raises(ValueError, match="module counts differ"):
            b.delta(a)

    def test_imbalance_perfect(self):
        s = self.snap(per_module_traffic=(5, 5))
        assert s.traffic_imbalance() == pytest.approx(1.0)

    def test_imbalance_serialized(self):
        s = self.snap(per_module_traffic=(10, 0))
        assert s.traffic_imbalance() == pytest.approx(2.0)

    def test_imbalance_empty(self):
        s = self.snap()
        assert s.traffic_imbalance() == 1.0
        assert s.work_imbalance() == 1.0

    def test_as_dict_keys(self):
        d = self.snap().as_dict()
        assert set(d) == {
            "io_rounds", "io_time", "total_communication", "pim_time",
            "pim_work", "cpu_work", "traffic_imbalance", "work_imbalance",
        }

    def test_as_dict_per_module(self):
        s = self.snap(per_module_traffic=(6, 4), per_module_work=(2, 8))
        d = s.as_dict(include_per_module=True)
        assert d["per_module_traffic"] == [6, 4]
        assert d["per_module_work"] == [2, 8]
        # JSON-friendly: plain lists, not tuples
        assert isinstance(d["per_module_traffic"], list)
        assert "per_module_traffic" not in s.as_dict()

    def test_json_round_trip_via_from_dict(self):
        import json

        s = self.snap(
            io_rounds=7, io_time=40, total_communication=90, pim_time=12,
            pim_work=20, cpu_work=3, per_module_traffic=(60, 30),
            per_module_work=(8, 12),
        )
        wire = json.loads(json.dumps(s.as_dict(include_per_module=True)))
        assert MetricsSnapshot.from_dict(wire) == s

    def test_from_dict_requires_per_module(self):
        s = self.snap(io_rounds=2)
        with pytest.raises(ValueError, match="per_module_traffic"):
            MetricsSnapshot.from_dict(s.as_dict())

    def test_from_dict_from_live_system(self):
        from repro.pim import PIMSystem

        system = PIMSystem(2, seed=1)
        system.round(lambda ctx, reqs: [sum(reqs)], {0: [1, 2], 1: [3]})
        snap = system.snapshot()
        again = MetricsSnapshot.from_dict(
            snap.as_dict(include_per_module=True)
        )
        assert again == snap
        assert again.delta(snap).io_rounds == 0


class TestMerge:
    """``MetricsSnapshot.merge``: the cluster-wide aggregation used by
    ``repro.cluster`` (scalars sum, per-module tuples concatenate)."""

    def snap(self, modules=2, **kw):
        base = dict(
            io_rounds=0, io_time=0, total_communication=0, pim_time=0,
            pim_work=0, cpu_work=0,
            per_module_traffic=(0,) * modules,
            per_module_work=(0,) * modules,
        )
        base.update(kw)
        return MetricsSnapshot(**base)

    def test_scalars_sum_and_modules_concatenate(self):
        a = self.snap(io_rounds=3, io_time=9, total_communication=10,
                      pim_time=5, pim_work=7, cpu_work=2,
                      per_module_traffic=(6, 4), per_module_work=(3, 4))
        b = self.snap(modules=3, io_rounds=1, io_time=2,
                      total_communication=6, pim_time=1, pim_work=2,
                      cpu_work=8, per_module_traffic=(2, 2, 2),
                      per_module_work=(1, 0, 1))
        m = MetricsSnapshot.merge(a, b)
        assert m.io_rounds == 4
        assert m.io_time == 11
        assert m.total_communication == 16
        assert m.pim_time == 6
        assert m.pim_work == 9
        assert m.cpu_work == 10
        # argument order is preserved in the concatenation
        assert m.per_module_traffic == (6, 4, 2, 2, 2)
        assert m.per_module_work == (3, 4, 1, 0, 1)

    def test_single_snapshot_is_identity(self):
        a = self.snap(io_rounds=5, per_module_traffic=(9, 1),
                      per_module_work=(2, 2))
        assert MetricsSnapshot.merge(a) == a

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            MetricsSnapshot.merge()

    def test_malformed_snapshot_rejected(self):
        # a snapshot whose own traffic/work tuples disagree in length
        # would corrupt every later module index in the concatenation
        bad = MetricsSnapshot(
            io_rounds=0, io_time=0, total_communication=0, pim_time=0,
            pim_work=0, cpu_work=0, per_module_traffic=(1, 2),
            per_module_work=(1, 2, 3),
        )
        with pytest.raises(ValueError, match="malformed"):
            MetricsSnapshot.merge(self.snap(), bad)

    def test_merge_commutes_with_delta(self):
        # per-rack deltas merged == merged cumulatives delta'd: the
        # identity PIMCluster.delta() relies on
        a0 = self.snap(io_rounds=1, total_communication=4, cpu_work=1,
                       per_module_traffic=(2, 2), per_module_work=(1, 0))
        a1 = self.snap(io_rounds=4, total_communication=9, cpu_work=3,
                       per_module_traffic=(5, 4), per_module_work=(2, 2))
        b0 = self.snap(modules=3, io_rounds=2, total_communication=3,
                       per_module_traffic=(1, 1, 1),
                       per_module_work=(0, 1, 0))
        b1 = self.snap(modules=3, io_rounds=6, total_communication=8,
                       per_module_traffic=(4, 2, 2),
                       per_module_work=(1, 2, 1))
        assert MetricsSnapshot.merge(a1, b1).delta(
            MetricsSnapshot.merge(a0, b0)
        ) == MetricsSnapshot.merge(a1.delta(a0), b1.delta(b0))

    def test_delta_between_different_merge_shapes_raises(self):
        # merging different rack sets produces different module counts;
        # delta must refuse rather than zip-truncate
        two = MetricsSnapshot.merge(self.snap(), self.snap())
        three = MetricsSnapshot.merge(self.snap(), self.snap(), self.snap())
        with pytest.raises(ValueError, match="module counts differ"):
            three.delta(two)
