"""Trace-layer tests (repro.obs): disabled tracing is a true no-op,
span metric deltas are exact (they sum to the measured snapshot
deltas), and the Chrome export is schema-valid.
"""

import json

import pytest

from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.faults import FaultPlan
from repro.obs import (
    METRIC_FIELDS,
    Tracer,
    chrome_trace,
    format_rollup,
    maybe_span,
    rollup,
    root_metric_sums,
    validate_chrome_trace,
)
from repro.perf import reset_id_counters
from repro.serve import EpochServer, make_trace, policy_from_name
from repro.workloads import uniform_keys

P = 4


def run_workload(traced: bool):
    """A small mixed workload; returns (overall delta, tracer or None)."""
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    tracer = Tracer(system) if traced else None
    before = system.snapshot()
    keys = uniform_keys(64, 32, seed=5)
    trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys, values=keys)
    q = uniform_keys(32, 32, seed=6)
    trie.lcp_batch(q)
    trie.insert_batch(q[:16], [str(k) for k in q[:16]])
    trie.delete_batch(q[:8])
    trie.subtree_batch([k.prefix(4) for k in q[:4]])
    return system.snapshot().delta(before), tracer


class TestDisabledTracingIsANoOp:
    def test_snapshots_byte_identical(self):
        d_traced, _ = run_workload(traced=True)
        d_plain, _ = run_workload(traced=False)
        assert d_traced == d_plain  # frozen dataclass: full field equality
        assert d_traced.as_dict(include_per_module=True) == d_plain.as_dict(
            include_per_module=True
        )

    def test_obs_defaults_to_none(self):
        assert PIMSystem(2).obs is None

    def test_maybe_span_without_tracer_is_shared_null(self):
        system = PIMSystem(2)
        a = maybe_span(system, "x")
        b = maybe_span(system, "y", cat="op")
        assert a is b  # one shared nullcontext, no per-call allocation
        with a as sp:
            assert sp is None


class TestSpanDeltas:
    def test_root_spans_sum_exactly_to_overall_delta(self):
        delta, tracer = run_workload(traced=True)
        sums = root_metric_sums(tracer.spans)
        assert sums == {
            "io_rounds": delta.io_rounds,
            "io_time": delta.io_time,
            "words": delta.total_communication,
            "pim_time": delta.pim_time,
            "cpu_work": delta.cpu_work,
        }

    def test_op_span_matches_measured_snapshot_delta(self):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        keys = uniform_keys(64, 32, seed=5)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
        )
        tracer = Tracer(system)
        before = system.snapshot()
        trie.lcp_batch(uniform_keys(32, 32, seed=6))
        delta = system.snapshot().delta(before)
        (op_span,) = [s for s in tracer.spans if s.cat == "op"]
        assert op_span.name == "op.lcp"
        assert op_span.metric_deltas() == {
            "io_rounds": delta.io_rounds,
            "io_time": delta.io_time,
            "words": delta.total_communication,
            "pim_time": delta.pim_time,
            "cpu_work": delta.cpu_work,
        }

    def test_every_span_equals_sum_of_descendant_rounds(self):
        # the IO metrics of any enclosing span must be exactly the sum
        # of the round leaves below it — nothing counted twice or lost
        _, tracer = run_workload(traced=True)
        by_sid = {s.sid: s for s in tracer.spans}
        acc = {
            s.sid: dict.fromkeys(("io_rounds", "io_time", "words", "pim_time"), 0)
            for s in tracer.spans
        }
        for s in tracer.spans:
            if s.cat != "round":
                continue
            p = s.parent
            while p is not None:
                for f in acc[p]:
                    acc[p][f] += getattr(s, f)
                p = by_sid[p].parent
        checked = 0
        for s in tracer.spans:
            if s.cat == "round":
                continue
            for f in acc[s.sid]:
                assert getattr(s, f) == acc[s.sid][f], (s.name, f)
            checked += 1
        assert checked > 10  # ops, phases, and maintenance all present

    def test_rollup_self_metrics_sum_to_total(self):
        delta, tracer = run_workload(traced=True)
        rows = rollup(tracer)
        assert sum(r["self_io_rounds"] for r in rows) == delta.io_rounds
        assert sum(r["self_words"] for r in rows) == delta.total_communication
        assert "round:pimtrie.match" in format_rollup(rows)

    def test_end_out_of_order_raises(self):
        tracer = Tracer(PIMSystem(2))
        outer = tracer.begin("outer")
        tracer.begin("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            tracer.end(outer)


class TestChromeExport:
    def test_schema_valid_and_json_serializable(self):
        _, tracer = run_workload(traced=True)
        doc = chrome_trace(tracer)
        assert validate_chrome_trace(doc) == []
        parsed = json.loads(json.dumps(doc))
        events = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(tracer.spans)
        for ev in events:
            for f in METRIC_FIELDS:
                assert isinstance(ev["args"][f], int)

    def test_children_nest_within_parents_on_the_timeline(self):
        _, tracer = run_workload(traced=True)
        by_sid = {s.sid: s for s in tracer.spans}
        for s in tracer.spans:
            if s.parent is None:
                continue
            parent = by_sid[s.parent]
            assert s.t0 >= parent.t0 - 1e-9
            assert s.t0 + s.dur <= parent.t0 + parent.dur + 1e-9

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []
        bad = chrome_trace([])
        bad["traceEvents"].append(
            {"name": "x", "cat": "op", "ph": "X", "ts": -1, "dur": 0,
             "pid": 1, "tid": 0, "args": {}}
        )
        assert validate_chrome_trace(bad) != []


class TestServeAndRecoverySpans:
    def run_serve(self, traced: bool):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        keys = uniform_keys(96, 32, seed=7)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
        )
        tracer = Tracer(system) if traced else None
        system.install_faults(FaultPlan(crashes={1: 2}))
        server = EpochServer(trie, policy_from_name("deadline:10"))
        report = server.run(make_trace(48, length=32, rate=0.25, seed=8))
        system.clear_faults()
        return report, tracer

    def test_epoch_records_link_to_spans(self):
        report, tracer = self.run_serve(traced=True)
        by_sid = {s.sid: s for s in tracer.spans}
        for e in report.epochs:
            sp = by_sid[e.span_id]
            assert sp.cat == "epoch"
            # the epoch span's delta is the epoch's recorded delta
            assert sp.io_rounds == e.io_rounds
            assert sp.io_time == e.io_time
            assert sp.words == e.communication
            assert sp.pim_time == e.pim_time

    def test_recovery_rounds_are_distinct_spans(self):
        report, tracer = self.run_serve(traced=True)
        assert any(e.degraded for e in report.epochs)
        rec = [s for s in tracer.spans if s.cat == "recovery"]
        assert rec and all(s.io_rounds > 0 for s in rec)
        assert any(s.name == "recovery.rebuild_modules" for s in rec)
        # recovery nests inside the degraded epoch's span
        by_sid = {s.sid: s for s in tracer.spans}
        degraded_sids = {
            e.span_id for e in report.epochs if e.degraded
        }
        for s in rec:
            p = s.parent
            while p is not None and by_sid[p].cat != "epoch":
                p = by_sid[p].parent
            assert p in degraded_sids

    def test_span_ids_none_when_untraced(self):
        report, _ = self.run_serve(traced=False)
        assert all(e.span_id is None for e in report.epochs)

    def test_serve_answers_unchanged_by_tracing(self):
        r1, _ = self.run_serve(traced=True)
        r0, _ = self.run_serve(traced=False)
        assert [c.reply for c in r1.completed] == [
            c.reply for c in r0.completed
        ]
        assert r1.metrics == r0.metrics


class TestRollupAccessors:
    """The obs-side accessors the adaptive scheduler's telemetry rides
    on: keyed rollup lookup, per-phase self-times, and sched.* decision
    extraction — exercised on a pipelined adaptive serve run, the
    configuration that emits every span category at once."""

    def run_adaptive(self, traced: bool):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        keys = uniform_keys(96, 32, seed=7)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
        )
        tracer = Tracer(system) if traced else None
        server = EpochServer(
            trie, policy_from_name("adaptive:30"),
            pipelined=True, prep_time=0.1, asm_time=0.05,
        )
        report = server.run(make_trace(220, length=32, rate=2.0, seed=8))
        return report, tracer

    def test_rollup_index_keys_rows(self):
        from repro.obs import rollup_index

        _, tracer = self.run_adaptive(traced=True)
        idx = rollup_index(tracer)
        assert idx[("epoch.prep", "phase")]["count"] == \
            idx[("epoch.rounds", "phase")]["count"]
        # accepts pre-computed rows too
        assert rollup_index(rollup(tracer)) == idx

    def test_phase_self_times_cover_all_three_phases(self):
        from repro.obs import phase_self_times

        report, tracer = self.run_adaptive(traced=True)
        phases = phase_self_times(tracer)
        epoch_phases = {"epoch.prep", "epoch.rounds", "epoch.assemble"}
        # inner phases (match.*, insert.apply, ...) show up too; the
        # three epoch-level phases must all be present
        assert epoch_phases <= set(phases)
        for name in epoch_phases:
            assert phases[name]["count"] == len(report.epochs)
        # all PIM work happens inside the rounds phase; the host phases
        # are metric-free by construction
        assert phases["epoch.prep"]["io_rounds"] == 0
        assert phases["epoch.assemble"]["io_rounds"] == 0
        assert phases["epoch.rounds"]["io_rounds"] == report.metrics.io_rounds

    def test_sched_decisions_match_controller_log(self):
        from repro.obs import sched_decisions

        report, tracer = self.run_adaptive(traced=True)
        committed = report.extra["sched"]["decisions"]
        assert committed, "run never committed an adaptive decision"
        seen = sched_decisions(tracer)
        assert [s["action"] for s in seen] == \
            [d["action"] for d in committed]
        assert [s["epoch"] for s in seen] == [d["epoch"] for d in committed]
        assert [s["max_wait"] for s in seen] == \
            [d["max_wait"] for d in committed]

    def test_phase_and_sched_spans_keep_sums_exact(self):
        # interposing phase spans and zero-delta sched markers must not
        # break the accounting identity: root spans still sum to the
        # overall delta, and sched spans carry no metrics at all
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        keys = uniform_keys(96, 32, seed=7)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
        )
        tracer = Tracer(system)
        before = system.snapshot()
        EpochServer(
            trie, policy_from_name("adaptive:30"),
            pipelined=True, prep_time=0.1, asm_time=0.05,
        ).run(make_trace(220, length=32, rate=2.0, seed=8))
        delta = system.snapshot().delta(before)
        sums = root_metric_sums(tracer.spans)
        assert sums["io_rounds"] == delta.io_rounds
        assert sums["words"] == delta.total_communication
        for s in tracer.spans:
            if s.cat == "sched":
                assert s.metric_deltas() == dict.fromkeys(METRIC_FIELDS, 0)

    def test_accessors_traced_equals_untraced_run(self):
        r1, _ = self.run_adaptive(traced=True)
        r0, _ = self.run_adaptive(traced=False)
        assert [c.reply for c in r1.completed] == \
            [c.reply for c in r0.completed]
        assert r1.extra["sched"] == r0.extra["sched"]
        assert r1.metrics == r0.metrics


class TestTracerLifecycle:
    def test_attach_detach(self):
        system = PIMSystem(2)
        tracer = Tracer(system)
        assert system.obs is tracer
        tracer.detach()
        assert system.obs is None
        with pytest.raises(ValueError):
            Tracer(PIMSystem(2)).attach(PIMSystem(2))

    def test_aborted_rounds_marked_on_round_spans(self):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        keys = uniform_keys(48, 32, seed=9)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
        )
        tracer = Tracer(system)
        system.install_faults(FaultPlan(crashes={0: 0}))
        from repro.faults import RoundAborted

        with pytest.raises(RoundAborted):
            trie.lcp_batch(keys[:4])
        system.clear_faults()
        aborted = [
            s for s in tracer.spans
            if s.cat == "round" and "aborted" in s.args
        ]
        assert len(aborted) == 1
        assert aborted[0].args["aborted"] == "crash"
        assert tracer._stack == []  # exception unwound every open span
