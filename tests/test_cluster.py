"""Cluster-mode tests: differential parity against the dict oracle,
rack-loss failover, rebalancing, determinism, and per-rack span sums.

The cluster must be an *execution strategy*, never a semantic change:
every sharding policy, shard count, replication factor, and rack-loss
schedule (with K>=2) has to produce exactly the single-trie oracle's
answers.  The quick tier replays CLUSTER_SEEDS adversarial sequences
over both policies x shard counts {1, 2, 4, 8}; the slow tier extends
the seed range (nightly via ``pytest -m slow``).
"""

import pytest

from repro.cluster import (
    ClusterService,
    HashSharding,
    PIMCluster,
    ShardUnavailable,
    derive_rack_seed,
    rack_loss_schedule,
)
from repro.obs import root_metric_sums
from repro.perf import reset_id_counters
from repro.pim import MetricsSnapshot

from tests import harness

#: >= 8 seeds x both policies x shard counts {1,2,4,8} (tentpole gate)
CLUSTER_SEEDS = tuple(range(8))
SLOW_CLUSTER_SEEDS = tuple(range(8, 24))


def check_cluster_seeds(seeds, **target_kw):
    targets = harness.cluster_targets(**target_kw)
    for seed in seeds:
        ops = harness.gen_ops(seed)
        bad = harness.divergences(ops, targets=targets)
        if bad:
            small = harness.shrink(
                ops,
                lambda o: bool(harness.divergences(o, targets=targets)),
            )
            raise AssertionError(
                f"seed {seed} diverged:\n" + "\n".join(bad[:4])
                + "\nminimal repro:\n" + harness.format_ops(small)
                + "\n"
                + "\n".join(
                    harness.divergences(small, targets=targets)[:4]
                )
            )


# ----------------------------------------------------------------------
# differential parity (tentpole: answer-identical to the oracle)
# ----------------------------------------------------------------------
class TestClusterDifferential:
    @pytest.mark.parametrize("seed", CLUSTER_SEEDS)
    def test_all_policies_and_shard_counts_match_oracle(self, seed):
        check_cluster_seeds([seed])

    def test_replicated_cluster_matches_oracle(self):
        # K=2: every write lands on two racks, reads come from one
        check_cluster_seeds(
            CLUSTER_SEEDS[:3], shard_counts=(2, 4), replication=2
        )


@pytest.mark.slow
class TestClusterDifferentialSlow:
    @pytest.mark.parametrize("seed", SLOW_CLUSTER_SEEDS)
    def test_extended_seeds(self, seed):
        check_cluster_seeds([seed])

    @pytest.mark.parametrize("seed", SLOW_CLUSTER_SEEDS[:8])
    def test_extended_replicated(self, seed):
        check_cluster_seeds([seed], shard_counts=(2, 8), replication=2)


# ----------------------------------------------------------------------
# determinism (satellite: seeds from identity, answers from keys only)
# ----------------------------------------------------------------------
class TestClusterDeterminism:
    @pytest.mark.parametrize("seed", CLUSTER_SEEDS[:4])
    def test_answers_identical_across_shard_counts(self, seed):
        ops = harness.gen_ops(seed)
        runs = {
            (pol, s): harness.run_sequence(
                lambda: harness.make_cluster(pol, s), ops
            )
            for pol in harness.CLUSTER_POLICIES
            for s in harness.CLUSTER_SHARD_COUNTS
        }
        reference = runs[("hash", 1)]
        for key, replies in runs.items():
            assert replies == reference, f"{key} diverged from 1-shard"

    def test_rack_seeds_derive_from_identity_not_shard_order(self):
        # the seed of rack (shard, slot) must not depend on how many
        # shards exist or in which order racks were provisioned
        assert derive_rack_seed(7, 1, 0) == derive_rack_seed(7, 1, 0)
        small = PIMCluster(HashSharding(2), root_seed=7)
        large = PIMCluster(HashSharding(8), root_seed=7)
        for s in range(2):
            assert (
                small.racks[s][0].seed == large.racks[s][0].seed
                == derive_rack_seed(7, s, 0)
            )
        # distinct racks, distinct streams; replacements re-roll
        seeds = {
            derive_rack_seed(7, s, r, i)
            for s in range(4)
            for r in range(3)
            for i in range(2)
        }
        assert len(seeds) == 4 * 3 * 2

    def test_bench_summary_invariant_across_shard_counts(self):
        from repro.cluster.bench import SMOKE, bench_cluster_run

        digests = {
            (pol, s): bench_cluster_run(
                sharding=pol, shards=s, replication=1, **SMOKE
            )["answers_digest"]
            for pol in ("hash", "range")
            for s in (1, 2, 4)
        }
        assert len(set(digests.values())) == 1, digests


# ----------------------------------------------------------------------
# failover, rebalancing, and loss semantics
# ----------------------------------------------------------------------
def _fresh_oracle_and_cluster(shards=4, replication=2, policy="hash"):
    oracle = harness.DictOracle()
    cluster = harness.make_cluster(policy, shards, replication)
    return oracle, cluster


class TestRackLoss:
    @pytest.mark.parametrize("policy", ["hash", "range"])
    def test_failover_and_rebuild_keep_oracle_parity(self, policy):
        # kill racks between batches: primary first, then (after the
        # heal) the survivor — the final answers come entirely from
        # replacement racks rebuilt off the replica log
        ops = harness.gen_ops(3, batches=10)
        oracle, cluster = _fresh_oracle_and_cluster(policy=policy)
        for i, (kind, payload) in enumerate(ops):
            want = harness.apply_batch(oracle, kind, payload)
            got = harness.apply_batch(cluster, kind, payload)
            if got is not None:
                assert got == want, f"batch {i} ({kind})"
            if i == 2:
                cluster.fail_rack(0, 0)
            elif i == 4:
                assert cluster.rebalance() >= 0
                cluster.fail_rack(0, 1)  # the original survivor
            elif i == 6:
                cluster.rebalance()
        cluster.validate()
        incarnations = {r.incarnation for r in cluster.racks[0]}
        assert incarnations == {1}, "both slots must be replacements"

    def test_lost_shard_raises_shard_unavailable(self):
        _, cluster = _fresh_oracle_and_cluster(shards=2, replication=1)
        keys = [harness._rand_key(__import__("random").Random(5))
                for _ in range(8)]
        cluster.insert_batch(keys, [str(k) for k in keys])
        dead = cluster.policy.home(keys[0])
        cluster.fail_rack(dead, 0)
        assert dead in cluster.lost_shards
        with pytest.raises(ShardUnavailable):
            cluster.lookup_batch([keys[0]])
        # LCP broadcasts, so it needs the lost shard too
        with pytest.raises(ShardUnavailable):
            cluster.lcp_batch([keys[0]])
        # a no-survivor shard is not rebuilt from nothing
        assert cluster.rebalance() == 0
        assert not cluster.alive_racks(dead)

    def test_fail_rack_is_idempotent(self):
        _, cluster = _fresh_oracle_and_cluster(shards=2, replication=2)
        assert cluster.fail_rack(0, 0) is not None
        assert cluster.fail_rack(0, 0) is None
        assert len([e for e in cluster.events
                    if e["event"] == "rack-loss"]) == 1


# ----------------------------------------------------------------------
# serve wiring: per-shard epochs, mid-epoch loss, availability
# ----------------------------------------------------------------------
class TestClusterService:
    def _run(self, scenario, replication, shards=2, pipelined=False):
        from repro import PIMSystem, PIMTrie, PIMTrieConfig
        from repro.serve import make_trace, policy_from_name, replay_direct
        from repro.workloads import uniform_keys

        P, resident, n_ops, length = 4, 96, 80, 64
        keys = uniform_keys(resident, length, seed=8)
        trace = make_trace(n_ops, length=length, rate=0.25, seed=7)
        reset_id_counters()
        cluster = PIMCluster(
            HashSharding(shards), replication=replication,
            modules_per_rack=P, root_seed=3, keys=keys, values=keys,
        )
        plan = rack_loss_schedule(
            scenario, num_shards=shards, replication=replication
        )
        service = ClusterService(
            cluster, policy_from_name("deadline:20"), plan=plan,
            pipelined=pipelined,
            prep_time=0.2 if pipelined else 0.0,
            asm_time=0.05 if pipelined else 0.0,
        )
        report = service.run(trace)
        reset_id_counters()
        twin = PIMTrie(
            PIMSystem(P, seed=1), PIMTrieConfig(num_modules=P),
            keys=keys, values=keys,
        )
        direct = dict(replay_direct(twin, trace.ops))
        served = {c.seq: c.reply for c in report.completed if c.ok}
        assert all(direct[s] == r for s, r in served.items()), scenario
        return report, cluster

    @pytest.mark.parametrize(
        "scenario", ["none", "one-rack", "rolling", "shard-wipe"]
    )
    def test_k2_keeps_availability_at_one(self, scenario):
        report, cluster = self._run(scenario, replication=2)
        assert report.availability == 1.0
        assert not cluster.lost_shards
        if scenario != "none":
            assert report.faults["rack_losses"] >= 1
            assert report.faults["rebuilds"] >= 1
            assert report.total_recovery_rounds > 0

    def test_k1_loss_drops_availability(self):
        report, cluster = self._run("one-rack", replication=1)
        assert cluster.lost_shards == {0}
        assert 0 < report.availability < 1.0
        assert report.failed > 0

    def test_shard_wipe_replaces_every_original_rack(self):
        _, cluster = self._run("shard-wipe", replication=2)
        assert {r.incarnation for r in cluster.racks[0]} == {1}

    @pytest.mark.parametrize(
        "scenario", ["none", "one-rack", "rolling"]
    )
    def test_pipelined_router_keeps_oracle_parity(self, scenario):
        """Pipelining the router host phases is an execution strategy:
        answers stay oracle-identical even while racks are being lost
        and rebuilt mid-overlap, and host prep genuinely overlaps the
        racks' module rounds."""
        report, _ = self._run(scenario, replication=2, pipelined=True)
        assert report.availability == 1.0
        assert report.pipelined
        assert report.host_overlap >= 0.0
        for prev, cur in zip(report.epochs, report.epochs[1:]):
            # racks' rounds never overlap: BSP rounds serialize even
            # though host prep of cur ran during prev's rounds
            assert cur.rounds_start >= prev.completion - prev.asm - 1e-9


# ----------------------------------------------------------------------
# observability: shard-tagged spans, per-rack span-sum exactness
# ----------------------------------------------------------------------
class TestClusterObservability:
    def test_per_rack_span_sums_and_shard_tags(self):
        import random

        rng = random.Random(11)
        keys = [harness._rand_key(rng) for _ in range(24)]
        reset_id_counters()
        cluster = PIMCluster(
            HashSharding(2), replication=2, modules_per_rack=2,
            root_seed=5, keys=keys, values=[str(k) for k in keys],
            trace=True,
        )
        cluster.lcp_batch(keys[:8])
        cluster.insert_batch(keys[:4], ["x"] * 4)
        cluster.subtree_batch([k.prefix(2) for k in keys[:3]])
        cluster.fail_rack(0, 0)
        cluster.delete_batch(keys[:6])
        cluster.rebalance()
        cluster.lcp_batch(keys[:8])

        racks = list(cluster.iter_racks()) + cluster.retired
        assert any(r.incarnation == 1 for r in racks)
        for rack in racks:
            snap = rack.system.snapshot()
            want = {
                "io_rounds": snap.io_rounds,
                "io_time": snap.io_time,
                "words": snap.total_communication,
                "pim_time": snap.pim_time,
                "cpu_work": snap.cpu_work,
            }
            got = root_metric_sums(rack.tracer.spans)
            assert got == want, f"span sums diverge on {rack!r}"
            # every span carries the rack's identity tags
            for span in rack.tracer.spans:
                assert span.args["shard"] == rack.shard
                assert span.args["replica"] == rack.slot
                assert span.args["incarnation"] == rack.incarnation
        rebuilt = [r for r in racks if r.incarnation == 1]
        assert any(
            s.name == "rack.rebuild" and s.cat == "recovery"
            for r in rebuilt
            for s in r.tracer.spans
        )

    def test_cluster_delta_merges_rack_deltas(self):
        reset_id_counters()
        cluster = PIMCluster(
            HashSharding(2), replication=1, modules_per_rack=2,
            root_seed=5,
        )
        import random

        rng = random.Random(3)
        keys = [harness._rand_key(rng) for _ in range(12)]
        mark = cluster.mark()
        cluster.insert_batch(keys, [str(k) for k in keys])
        merged = cluster.delta(mark)
        per_rack = cluster.delta_by_rack(mark)
        assert merged == MetricsSnapshot.merge(
            *(per_rack[u] for u in sorted(per_rack))
        )
        assert merged.io_rounds == sum(
            d.io_rounds for d in per_rack.values()
        )
        assert len(merged.per_module_traffic) == 2 * 2  # racks x modules
        assert sum(cluster.shard_traffic(mark)) == (
            merged.total_communication
        )


# ----------------------------------------------------------------------
# ordered reads: cross-shard range stitching (regression)
# ----------------------------------------------------------------------
class TestCrossShardRangeStitching:
    """A range that straddles a shard boundary under the prefix-range
    policy must come back globally key-ordered and honor ``limit``
    exactly — the fan-in merges per-shard runs by key instead of
    concatenating them in shard order.
    """

    def _boundary_cluster(self):
        from repro.cluster import RangeSharding
        from repro import BitString

        reset_id_counters()
        # separator at 10000000: shard 0 holds keys below, shard 1 above
        pol = RangeSharding(2, [BitString(0x80, 8)])
        cluster = PIMCluster(
            pol, replication=1, modules_per_rack=harness.CLUSTER_P_RACK,
            root_seed=1,
        )
        # interleave around the boundary so a shard-order concat would
        # be out of order: lows on shard 0, highs on shard 1
        keys = [BitString(v, 8) for v in
                (0x10, 0x42, 0x7E, 0x7F, 0x81, 0x90, 0xC3, 0xF0)]
        cluster.insert_batch(keys, [f"v{v:02x}" for v in
                                    (0x10, 0x42, 0x7E, 0x7F, 0x81, 0x90,
                                     0xC3, 0xF0)])
        assert cluster.policy.home(keys[0]) != cluster.policy.home(keys[-1])
        return cluster, sorted(keys)

    def test_straddling_range_is_globally_ordered(self):
        from repro import BitString

        cluster, keys = self._boundary_cluster()
        lo, hi = BitString(0x40, 8), BitString(0xD0, 8)
        want = [k for k in keys if lo <= k <= hi]
        got = cluster.range_batch([(lo, hi)])[0]
        assert [k for k, _ in got] == want  # global key order, both shards

    @pytest.mark.parametrize("limit", (1, 2, 3, 4, 5))
    def test_straddling_range_honors_limit_exactly(self, limit):
        from repro import BitString

        cluster, keys = self._boundary_cluster()
        lo, hi = BitString(0x40, 8), BitString(0xD0, 8)
        want = [k for k in keys if lo <= k <= hi][:limit]
        got = cluster.range_batch([(lo, hi)], limit=limit)[0]
        # exactly min(limit, matches) items, the globally smallest ones —
        # NOT shard 1's keys ahead of shard 0's, NOT limit-per-shard
        assert [k for k, _ in got] == want

    def test_boundary_topk_merges_across_shards(self):
        from repro import BitString

        cluster, keys = self._boundary_cluster()
        # the 1-bit prefixes each straddle nothing, the empty-side
        # prefix 0b1 spans the separator side; top-k over prefix "1"
        p = BitString(1, 1)
        want = sorted(k for k in keys if k.starts_with(p))[:3]
        got = cluster.topk_batch([p], 3)[0]
        assert [k for k, _ in got] == want
