"""Differential-testing harness: seeded op sequences, reference oracle,
divergence detection, and shrinking.

The harness generates randomized-but-reproducible sequences of batched
operations (insert / delete / lcp / lookup / subtree, plus the ordered
kinds pred / succ / range / count / topk when ``gen_ops(...,
ordered=True)``) and replays each sequence through every registered
index implementation plus a plain in-memory oracle
(:class:`DictOracle`).  All indexes must produce the oracle's answers —
batching, distribution, and placement are execution strategies, never
semantic changes.

The oracle answers ordered queries by *independent* means — ``bisect``
over a freshly sorted key list for pred/succ/range, a
``starts_with`` filter for count/topk — so agreement with the trie's
treap-backed :class:`repro.ordered.OrderedSnapshot` is evidence, not
tautology.  Range and top-k batches encode their per-batch parameter in
the kind string (``"range:3"`` = limit 3, ``"range:0"`` = unlimited,
``"topk:4"`` = k 4) so the ``(kind, payload)`` sequence shape — and
with it :func:`shrink` and :func:`format_ops` — stays unchanged.

Key-generation is adversarial on purpose: keys are drawn from a small
pool of shared anchors, bit-flipped and prefix-extended variants of
those anchors, previously inserted keys (hits), and fresh random keys
(misses), with variable lengths — so LCP collisions, prefix-of-a-key
queries, deletes of absent keys, and duplicate inserts inside one batch
all occur with high probability in every sequence.

When a sequence diverges, :func:`shrink` greedily minimizes it (drop
whole batches, then single ops) while preserving the failure, so the
pytest assertion message contains a small hand-checkable repro.

Used by ``tests/test_differential.py``; importable from other tests.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Callable, Optional

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.baselines import DistributedRadixTree, RangePartitionedIndex
from repro.perf import reset_id_counters

__all__ = [
    "DictOracle",
    "TARGETS",
    "CLUSTER_POLICIES",
    "CLUSTER_SHARD_COUNTS",
    "cluster_targets",
    "gen_ops",
    "make_cluster",
    "run_sequence",
    "run_serve_differential",
    "divergences",
    "shrink",
    "format_ops",
]

P = 4  # small on purpose: more cross-module interaction per key
MAX_BITS = 24


# ----------------------------------------------------------------------
class DictOracle:
    """Reference semantics over a plain dict of BitString -> value.

    ``lcp`` is the longest common prefix of the query with *any* stored
    key — exactly what a trie walk computes, since a trie's paths are
    the union of prefixes of stored keys.
    """

    def __init__(self) -> None:
        self.store: dict[BitString, Any] = {}
        #: every key ever inserted — the path set of a lazy-deletion
        #: structure (dist-radix unmarks keys but keeps their paths)
        self.ever: set[BitString] = set()

    def lcp_batch(self, keys: list[BitString]) -> list[int]:
        return [
            max((k.lcp_len(s) for s in self.store), default=0) for k in keys
        ]

    def lcp_ever_batch(self, keys: list[BitString]) -> list[int]:
        return [
            max((k.lcp_len(s) for s in self.ever), default=0) for k in keys
        ]

    def lookup_batch(self, keys: list[BitString]) -> list[Any]:
        return [self.store.get(k) for k in keys]

    def insert_batch(self, keys: list[BitString], values: list[Any]) -> None:
        for k, v in zip(keys, values):  # in order: last write wins
            self.store[k] = v
            self.ever.add(k)

    def delete_batch(self, keys: list[BitString]) -> None:
        for k in keys:
            self.store.pop(k, None)

    def subtree_batch(
        self, prefixes: list[BitString]
    ) -> list[list[tuple[BitString, Any]]]:
        return [
            sorted(
                ((k, v) for k, v in self.store.items() if k.starts_with(p)),
                key=lambda kv: kv[0],
            )
            for p in prefixes
        ]

    # -- ordered queries, by independent means (bisect / filter) -------
    def _sorted_keys(self) -> list[BitString]:
        return sorted(self.store)

    def predecessor_batch(
        self, keys: list[BitString]
    ) -> list[Optional[tuple[BitString, Any]]]:
        s = self._sorted_keys()
        out: list[Optional[tuple[BitString, Any]]] = []
        for k in keys:
            i = bisect.bisect_left(s, k)
            out.append(None if i == 0 else (s[i - 1], self.store[s[i - 1]]))
        return out

    def successor_batch(
        self, keys: list[BitString]
    ) -> list[Optional[tuple[BitString, Any]]]:
        s = self._sorted_keys()
        out: list[Optional[tuple[BitString, Any]]] = []
        for k in keys:
            i = bisect.bisect_right(s, k)
            out.append(None if i == len(s) else (s[i], self.store[s[i]]))
        return out

    def range_batch(
        self,
        bounds: list[tuple[BitString, BitString]],
        limit: Optional[int] = None,
    ) -> list[list[tuple[BitString, Any]]]:
        s = self._sorted_keys()
        out: list[list[tuple[BitString, Any]]] = []
        for lo, hi in bounds:
            # an inverted interval slices empty, same as the trie walk
            i = bisect.bisect_left(s, lo)
            j = bisect.bisect_right(s, hi)
            items = [(k, self.store[k]) for k in s[i:j]]
            out.append(items if limit is None else items[:limit])
        return out

    def prefix_count_batch(self, prefixes: list[BitString]) -> list[int]:
        return [
            sum(1 for k in self.store if k.starts_with(p)) for p in prefixes
        ]

    def topk_batch(
        self, prefixes: list[BitString], k: int
    ) -> list[list[tuple[BitString, Any]]]:
        out = []
        for p in prefixes:
            items = sorted(
                ((key, v) for key, v in self.store.items()
                 if key.starts_with(p)),
                key=lambda kv: kv[0],
            )
            out.append(items[: max(0, k)])
        return out


# ----------------------------------------------------------------------
def make_pimtrie() -> PIMTrie:
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    return PIMTrie(system, PIMTrieConfig(num_modules=P))


def make_radix() -> DistributedRadixTree:
    # span=1 is the binary radix tree, whose LCP/subtree semantics are
    # exact for arbitrary-length keys (wider spans are chunk-aligned)
    return DistributedRadixTree(PIMSystem(P, seed=1), span=1)


def make_range() -> RangePartitionedIndex:
    return RangePartitionedIndex(PIMSystem(P, seed=1))


#: name -> zero-arg factory for every differential target
TARGETS: dict[str, Callable[[], Any]] = {
    "pim-trie": make_pimtrie,
    "dist-radix": make_radix,
    "range-partition": make_range,
}


# ----------------------------------------------------------------------
# cluster mode: the same oracle comparison, run against multi-rack
# clusters over both sharding policies and a spread of shard counts
# ----------------------------------------------------------------------
CLUSTER_POLICIES = ("hash", "range")
CLUSTER_SHARD_COUNTS = (1, 2, 4, 8)
#: modules per rack — small for the same reason P is
CLUSTER_P_RACK = 2


def make_cluster(policy: str, shards: int, replication: int = 1) -> Any:
    """A fresh empty cluster target (PIMTrieConfig-default racks).

    ``range`` uses uniform bootstrap separators (the cluster starts
    empty, so there are no resident keys to split) — routing is still
    non-trivial because the harness keys are 4..MAX_BITS bits.
    """
    from repro.cluster import HashSharding, PIMCluster, RangeSharding

    reset_id_counters()
    if policy == "hash":
        pol = HashSharding(shards)
    elif policy == "range":
        pol = RangeSharding.uniform(shards)
    else:
        raise ValueError(f"unknown cluster policy {policy!r}")
    return PIMCluster(
        pol, replication=replication, modules_per_rack=CLUSTER_P_RACK,
        root_seed=1,
    )


def cluster_targets(
    *,
    policies: tuple = CLUSTER_POLICIES,
    shard_counts: tuple = CLUSTER_SHARD_COUNTS,
    replication: int = 1,
) -> dict[str, Callable[[], Any]]:
    """Factories for :func:`divergences` covering the cluster grid."""
    return {
        f"cluster-{p}-s{s}": (
            lambda p=p, s=s: make_cluster(p, s, replication)
        )
        for p in policies
        for s in shard_counts
    }


# ----------------------------------------------------------------------
# op-sequence generation
# ----------------------------------------------------------------------
def _rand_key(rng: random.Random, bits: Optional[int] = None) -> BitString:
    n = bits if bits is not None else rng.randint(4, MAX_BITS)
    return BitString(rng.getrandbits(n), n)


def _collision_key(
    rng: random.Random, anchors: list[BitString], inserted: list[BitString]
) -> BitString:
    """A key engineered to collide with existing paths."""
    roll = rng.random()
    if inserted and roll < 0.35:
        return rng.choice(inserted)  # exact hit
    base = rng.choice(anchors if not inserted or roll < 0.7 else inserted)
    mode = rng.randrange(3)
    if mode == 0 and len(base) > 1:  # flip one bit: long shared prefix
        i = rng.randrange(len(base))
        return BitString(base.value ^ (1 << (len(base) - 1 - i)), len(base))
    if mode == 1:  # extend: base becomes a proper prefix
        extra = rng.randint(1, 6)
        return base + BitString(rng.getrandbits(extra), extra)
    return base.prefix(rng.randint(1, len(base)))  # truncate: query above


def gen_ops(
    seed: int, *, batches: int = 8, batch_size: int = 5,
    ordered: bool = False,
) -> list[tuple[str, list]]:
    """A reproducible sequence of (kind, payload) batches.

    Payloads are ``[(key, value), ...]`` for inserts, ``[(lo, hi), ...]``
    for ranges, and ``[key, ...]`` otherwise.  Values are unique strings
    so lookup answers are unambiguous (a ``None`` reply always means
    "absent").  ``ordered=True`` mixes in the ordered kinds — pred /
    succ / count plus parameterized ``"range:<limit>"`` and
    ``"topk:<k>"`` batches (``range:0`` = unlimited); the default keeps
    every pre-existing seeded sequence byte-identical.
    """
    rng = random.Random(seed)
    anchors = [_rand_key(rng) for _ in range(4)]
    inserted: list[BitString] = []
    serial = 0
    ops: list[tuple[str, list]] = []
    kinds = ["insert", "delete", "lcp", "lookup", "subtree"]
    weights = [4, 2, 3, 2, 2]
    if ordered:
        kinds += ["pred", "succ", "count", "range", "topk"]
        weights += [2, 2, 1, 2, 2]
    for b in range(batches):
        # front-load writes so reads have something to find
        kind = rng.choices(
            kinds,
            weights=weights if b else [1] + [0] * (len(kinds) - 1),
        )[0]
        size = rng.randint(1, batch_size)
        if kind == "insert":
            payload = []
            for _ in range(size):
                k = _collision_key(rng, anchors, inserted)
                payload.append((k, f"v{serial}"))
                serial += 1
                inserted.append(k)
        elif kind in ("subtree", "count", "topk"):
            payload = []
            for _ in range(size):
                k = _collision_key(rng, anchors, inserted)
                payload.append(k.prefix(rng.randint(1, min(8, len(k)))))
            if kind == "topk":
                kind = f"topk:{rng.randint(1, 5)}"
        elif kind == "range":
            # collision-derived endpoints: bounds brush stored keys and
            # their prefixes, and occasionally invert (empty answer)
            kind = f"range:{rng.randint(1, 6) if rng.random() < 0.7 else 0}"
            payload = []
            for _ in range(size):
                a = _collision_key(rng, anchors, inserted)
                c = _collision_key(rng, anchors, inserted)
                payload.append((a, c) if a <= c or rng.random() < 0.1
                               else (c, a))
        else:  # delete / lcp / lookup / pred / succ
            payload = [
                _collision_key(rng, anchors, inserted) for _ in range(size)
            ]
            if kind == "delete":
                gone = set(payload)
                inserted = [k for k in inserted if k not in gone]
        ops.append((kind, payload))
    return ops


# ----------------------------------------------------------------------
# replay and comparison
# ----------------------------------------------------------------------
def _normalize(kind: str, reply: Any) -> Any:
    base = kind.split(":", 1)[0]
    if base == "subtree":
        return [sorted((str(k), v) for k, v in items) for items in reply]
    if base in ("range", "topk"):
        # answer order is part of the contract: stringify, do NOT sort
        return [[(str(k), v) for k, v in items] for items in reply]
    if base in ("pred", "succ"):
        return [None if r is None else (str(r[0]), r[1]) for r in reply]
    return reply


def apply_batch(index: Any, kind: str, payload: list) -> Any:
    """Run one batch; returns the normalized reply (None for writes
    and for ops the target does not expose)."""
    if kind == "insert":
        index.insert_batch([k for k, _ in payload], [v for _, v in payload])
        return None
    if kind == "delete":
        index.delete_batch(list(payload))
        return None
    if kind == "lookup":
        if not hasattr(index, "lookup_batch"):
            return None  # dist-radix exposes no point lookup
        return list(index.lookup_batch(list(payload)))
    if kind == "lcp":
        return list(index.lcp_batch(list(payload)))
    if kind == "subtree":
        return _normalize("subtree", index.subtree_batch(list(payload)))
    base = kind.split(":", 1)[0]
    if base in ("pred", "succ", "count", "range", "topk"):
        # the flat baselines expose no ordered surface — skip, as with
        # lookup on dist-radix
        if not hasattr(index, "predecessor_batch"):
            return None
        if base == "pred":
            return _normalize(kind, index.predecessor_batch(list(payload)))
        if base == "succ":
            return _normalize(kind, index.successor_batch(list(payload)))
        if base == "count":
            return list(index.prefix_count_batch(list(payload)))
        param = int(kind.split(":", 1)[1])
        if base == "range":
            return _normalize(
                kind,
                index.range_batch(list(payload), limit=param or None),
            )
        return _normalize(kind, index.topk_batch(list(payload), param))
    raise ValueError(f"unknown op kind {kind!r}")


def run_sequence(factory: Callable[[], Any], ops: list) -> list[Any]:
    """Replies of one target over a full sequence, batch by batch."""
    index = factory()
    return [apply_batch(index, kind, payload) for kind, payload in ops]


# ----------------------------------------------------------------------
# serve-layer differential support
# ----------------------------------------------------------------------
def run_serve_differential(
    trace: Any,
    policy: Any,
    *,
    make_index: Callable[[], Any],
    fault_plan: Any = None,
    pipelined: bool = False,
    prep_time: float = 0.0,
    asm_time: float = 0.0,
):
    """One serve-layer differential leg: ``trace`` through
    :class:`repro.serve.EpochServer` — optionally faulted and/or
    pipelined — against a faultless direct sequential replay on a twin
    index from the same factory.

    Returns ``(report, served, direct)`` where ``served`` maps seq →
    server reply over all completed ops and ``direct`` maps seq →
    reference reply over the ops the server admitted (a bounded queue
    may legitimately shed the rest).  Callers assert ``served`` equals
    ``direct`` op for op — the equivalence guarantee, parameterized over
    execution mode.
    """
    from repro.serve import EpochServer, replay_direct

    index = make_index()
    if fault_plan is not None:
        index.system.install_faults(fault_plan)
    report = EpochServer(
        index, policy, pipelined=pipelined,
        prep_time=prep_time, asm_time=asm_time,
    ).run(trace)
    served = {c.seq: c.reply for c in report.completed}
    twin = make_index()
    direct = dict(
        replay_direct(twin, [o for o in trace.ops if o.seq in served])
    )
    return report, served, direct


# ----------------------------------------------------------------------
# columnar differential support
# ----------------------------------------------------------------------
#: seeds for the object-vs-columnar parity sweep; a superset of the
#: fastpath-parity seeds so both suites cover the same sequences plus
#: extra adversarial draws
COLUMNAR_PARITY_SEEDS = (0, 1, 2, 5, 11, 17, 23, 31)

#: seeds crossed with repro.faults scenarios in the columnar sweep
#: (kept small: each run replays the sequence four times)
COLUMNAR_FAULT_SEEDS = (0, 5, 17)


def run_pimtrie_evidence(ops: list, fault_plan: Any = None) -> tuple:
    """Replay ``ops`` on a fresh PIM-trie and return the full parity
    evidence: ``(repr(replies), metrics_json)`` with per-module counts.

    The caller controls the fastpath/columnar mode via
    :mod:`repro.fastpath` context managers; ``fault_plan`` (a
    :class:`repro.faults.FaultPlan`) is installed before the first
    batch, so fault handling and recovery are part of the replayed —
    and compared — behaviour.  Aborted batches follow the serve layer's
    protocol (``repro.serve.server``): catch :class:`RoundAborted`,
    :func:`repro.faults.recover` the trie, and retry the batch — every
    PIMTrie batch op is idempotent, so the retry is safe.
    """
    import json

    from repro.faults import RoundAborted, recover

    index = make_pimtrie()
    if fault_plan is not None:
        index.system.install_faults(fault_plan)
    replies = []
    recovery_rounds = 0
    for kind, payload in ops:
        for attempt in range(8):
            try:
                replies.append(apply_batch(index, kind, payload))
                break
            except RoundAborted:
                recovery_rounds += recover(index)
        else:
            raise AssertionError(f"batch {kind!r} never survived recovery")
    snap = index.system.snapshot().as_dict(include_per_module=True)
    return repr(replies), json.dumps(snap, sort_keys=True), recovery_rounds


#: targets whose deletion is lazy (paths survive), making their LCP
#: range over every key ever inserted rather than the live key set —
#: dist-radix documents this as the standard radix-tree trade-off
LAZY_LCP = {"dist-radix"}


def _oracle_replies(ops: list) -> tuple[list[Any], list[Any]]:
    """Oracle replies under live-key LCP and ever-inserted LCP."""
    oracle = DictOracle()
    live: list[Any] = []
    ever: list[Any] = []
    for kind, payload in ops:
        reply = apply_batch(oracle, kind, payload)
        live.append(reply)
        ever.append(
            oracle.lcp_ever_batch(list(payload)) if kind == "lcp" else reply
        )
    return live, ever


def divergences(
    ops: list, targets: Optional[dict[str, Callable[[], Any]]] = None
) -> list[str]:
    """Run ``ops`` on the oracle and every target; describe mismatches."""
    targets = TARGETS if targets is None else targets
    live, ever = _oracle_replies(ops)
    out: list[str] = []
    for name, factory in targets.items():
        expected = ever if name in LAZY_LCP else live
        got = run_sequence(factory, ops)
        for i, (kind, payload) in enumerate(ops):
            if got[i] is None:  # write batch or unsupported op
                continue
            if got[i] != expected[i]:
                out.append(
                    f"{name}: batch {i} ({kind}) -> {got[i]!r}, "
                    f"oracle -> {expected[i]!r}"
                )
    return out


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def shrink(
    ops: list, failing: Callable[[list], bool], *, rounds: int = 4
) -> list:
    """Greedy delta-debugging: smallest sub-sequence still failing."""
    cur = list(ops)
    for _ in range(rounds):
        changed = False
        # pass 1: drop whole batches
        i = 0
        while i < len(cur):
            cand = cur[:i] + cur[i + 1:]
            if cand and failing(cand):
                cur = cand
                changed = True
            else:
                i += 1
        # pass 2: drop single ops inside batches
        for i, (kind, payload) in enumerate(cur):
            j = 0
            while j < len(cur[i][1]):
                payload = cur[i][1]
                cand_payload = payload[:j] + payload[j + 1:]
                if not cand_payload:
                    j += 1
                    continue
                cand = cur[:i] + [(kind, cand_payload)] + cur[i + 1:]
                if failing(cand):
                    cur = cand
                    changed = True
                else:
                    j += 1
        if not changed:
            break
    return cur


def format_ops(ops: list) -> str:
    """Readable repro script for an assertion message."""
    lines = []
    for kind, payload in ops:
        if kind == "insert":
            body = ", ".join(f"({k!s}, {v!r})" for k, v in payload)
        elif kind.startswith("range"):
            body = ", ".join(f"[{lo!s} .. {hi!s}]" for lo, hi in payload)
        else:
            body = ", ".join(str(k) for k in payload)
        lines.append(f"  {kind}: [{body}]")
    return "\n".join(lines)
