"""Metric parity of the wall-clock fast path (repro.fastpath).

Every optimization behind ``fastpath.ENABLED`` must be invisible to the
PIM Model accounting: cached word costs equal uncached recomputes, batch
hashing equals per-call hashing, and a full PIMTrie workload produces
byte-identical :class:`MetricsSnapshot` sequences with the fast path on
or off.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import fastpath
from repro.bits import BitString
from repro.bits.carryless import CarrylessHasher
from repro.bits.hashing import IncrementalHasher
from repro.core.hashmatch import RecordTable
from repro.core.meta import make_record
from repro.core.pimtrie import PIMTrie, PIMTrieConfig
from repro.perf import _run_phases
from repro.pim import PIMSystem, default_word_cost, reflective_word_cost
from repro.workloads import uniform_keys


def _bitstrings(max_len=64):
    return st.integers(0, max_len).flatmap(
        lambda n: st.integers(0, (1 << n) - 1 if n else 0).map(
            lambda v: BitString(v, n)
        )
    )


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(2**70), 2**70),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=24),
    st.binary(max_size=48),
    _bitstrings(),
)

_payloads = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=4), children, max_size=4),
    ),
    max_leaves=12,
)


class TestDefaultWordCost:
    @given(_payloads)
    @settings(max_examples=150)
    def test_dispatch_cache_matches_reflective(self, payload):
        """The type-dispatch cache and the reference walk agree on
        arbitrary nested payloads, in both modes."""
        assert default_word_cost(payload) == reflective_word_cost(payload)
        with fastpath.disabled():
            assert default_word_cost(payload) == reflective_word_cost(payload)

    def test_ndarray_and_containers(self):
        cases = [
            np.arange(10, dtype=np.int64),
            np.zeros((3, 3), dtype=np.float32),
            [np.arange(4), "abc", b"\x00" * 17, BitString(5, 3)],
            {"k": np.arange(2), BitString(1, 1): [1, 2.5, None]},
            set(range(5)),
            frozenset({1, 2}),
        ]
        for obj in cases:
            assert default_word_cost(obj) == reflective_word_cost(obj)


class TestMessageCostParity:
    def test_live_messages_cached_equals_recompute(self):
        """Every message the PIMTrie driver actually ships (both
        directions) has a cached word cost equal to the uncached
        reflective recompute."""
        system = PIMSystem(4, seed=1)
        seen: set[str] = set()
        original = system.word_cost

        def spy(obj):
            fast = original(obj)
            with fastpath.disabled():
                assert fast == reflective_word_cost(obj), type(obj).__name__
            seen.add(type(obj).__name__)
            return fast

        system.word_cost = spy
        keys = uniform_keys(96, 48, seed=3)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=4), keys=keys, values=keys
        )
        trie.lcp_batch(uniform_keys(96, 48, seed=4))
        trie.insert_batch(uniform_keys(48, 48, seed=5))
        trie.delete_batch(keys[:32])
        trie.subtree_batch([k.prefix(6) for k in keys[:8]])
        # the hot message families must all have crossed the wire
        assert {
            "_StoreBlock",
            "_StorePiece",
            "_MasterDelta",
            "_FragMatch",
            "_BlockOp",
            "_PieceOp",
        } <= seen

    def test_full_workload_metrics_identical_across_modes(self):
        """Regression: the perf harness's phases (build, LCP, insert,
        delete, subtree, skew flood) give byte-identical per-phase
        MetricsSnapshots and identical results in all three modes
        (columnar, object fast path, unoptimized baseline)."""
        col_ph, col_snaps, col_res = _run_phases(
            8, 192, 64, 11, mode="columnar"
        )
        fast_ph, fast_snaps, fast_res = _run_phases(8, 192, 64, 11, mode="fast")
        base_ph, base_snaps, base_res = _run_phases(
            8, 192, 64, 11, mode="baseline"
        )
        assert list(col_ph) == list(fast_ph) == list(base_ph)
        assert col_snaps == fast_snaps == base_snaps
        assert col_res == fast_res == base_res
        for name in fast_ph:
            assert col_ph[name]["metrics"] == fast_ph[name]["metrics"], name
            assert fast_ph[name]["metrics"] == base_ph[name]["metrics"], name


@pytest.mark.parametrize("hasher_cls", [IncrementalHasher, CarrylessHasher])
class TestBatchHashing:
    def _strings(self, rng, count, max_len):
        out = []
        for _ in range(count):
            n = int(rng.integers(0, max_len + 1))
            v = int.from_bytes(rng.bytes((n + 7) // 8 or 1), "big")
            out.append(BitString(v & ((1 << n) - 1), n))
        return out

    def test_hash_batch(self, hasher_cls):
        rng = np.random.default_rng(9)
        h = hasher_cls(seed=123)
        strings = self._strings(rng, 40, 200)
        assert h.hash_batch(strings) == [h.hash(s) for s in strings]

    def test_fingerprint_batch(self, hasher_cls):
        rng = np.random.default_rng(10)
        h = hasher_cls(seed=77, width=32)
        hashes = [h.hash(s) for s in self._strings(rng, 40, 200)]
        assert h.fingerprint_batch(hashes) == [h.fingerprint(x) for x in hashes]

    def test_pivot_fingerprints_match_composed(self, hasher_cls):
        rng = np.random.default_rng(11)
        h = hasher_cls(seed=5)
        (base_s,) = self._strings(rng, 1, 100)
        base = h.hash(base_s)
        v = int.from_bytes(rng.bytes(38), "big")
        s = BitString(v & ((1 << 300) - 1), 300)
        positions = sorted(int(p) for p in rng.integers(0, 301, size=50))
        expect = [
            h.fingerprint(h.combine(base, ph))
            for ph in h.prefix_hashes(s, positions)
        ]
        assert h.pivot_fingerprints(base, s, positions) == expect

    def test_pivot_fingerprints_rejects_bad_positions(self, hasher_cls):
        h = hasher_cls()
        s = BitString(0b1011, 4)
        base = h.empty()
        with pytest.raises(ValueError):
            h.pivot_fingerprints(base, s, [5])
        with pytest.raises(ValueError):
            h.pivot_fingerprints(base, s, [3, 1])


class TestFamilyFastLookup:
    def test_scan_and_chain_match_zfast(self):
        """The machine-int scan/chain lookups agree with the z-fast trie
        path on deepest_prefix and next_shallower."""
        rng = np.random.default_rng(5)
        hasher = IncrementalHasher()
        strings: list[BitString] = []
        seen = set()
        while len(strings) < 24:
            n = int(rng.integers(1, 13))
            v = int(rng.integers(0, 1 << n))
            s = BitString(v, n)
            if s not in seen:
                seen.add(s)
                strings.append(s)
        # root strings shorter than w=64 keep s_rem == the whole string,
        # so every record lands in one pivot family
        recs = [
            make_record(i + 1, s, 0, hasher, None, 64)
            for i, s in enumerate(strings)
        ]
        table = RecordTable(recs, 64)
        assert len(table.layer2) == 1
        fam = next(iter(table.layer2.values()))

        probes = list(strings)
        for _ in range(40):
            n = int(rng.integers(1, 13))
            probes.append(BitString(int(rng.integers(0, 1 << n)), n))
        for q in probes:
            with fastpath.disabled():
                slow = fam.deepest_prefix(q)
            fast = fam.deepest_prefix(q)
            assert (slow.block_id if slow else None) == (
                fast.block_id if fast else None
            ), q
        for s in probes:
            with fastpath.disabled():
                slow = fam.next_shallower(s)
            fast = fam.next_shallower(s)
            assert (slow.block_id if slow else None) == (
                fast.block_id if fast else None
            ), s
