"""Unit + property tests for the packed bit-string kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.bits import EMPTY, BitString


def bs(s: str) -> BitString:
    return BitString.from_str(s)


bit_strings = st.text(alphabet="01", min_size=0, max_size=300).map(bs)
nonempty_bit_strings = st.text(alphabet="01", min_size=1, max_size=300).map(bs)


class TestConstruction:
    def test_from_str_roundtrip(self):
        for s in ["", "0", "1", "0101", "000", "111", "0" * 100 + "1"]:
            assert bs(s).to_str() == s

    def test_from_bits(self):
        assert BitString.from_bits([1, 0, 1]).to_str() == "101"
        assert BitString.from_bits([]) == EMPTY

    def test_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            BitString.from_bits([2])

    def test_from_bytes(self):
        b = BitString.from_bytes(b"\xa5")
        assert b.to_str() == "10100101"
        assert len(BitString.from_bytes(b"ab")) == 16

    def test_from_int(self):
        assert BitString.from_int(5, 4).to_str() == "0101"
        with pytest.raises(ValueError):
            BitString.from_int(16, 4)
        with pytest.raises(ValueError):
            BitString.from_int(-1, 4)

    def test_from_text(self):
        assert BitString.from_text("A").to_str() == "01000001"

    def test_value_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitString(4, 2)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitString(0, -1)

    def test_invalid_binary_string(self):
        with pytest.raises(ValueError):
            bs("01x")


class TestAccess:
    def test_bit_access(self):
        b = bs("10110")
        assert [b.bit(i) for i in range(5)] == [1, 0, 1, 1, 0]

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            bs("101").bit(3)
        with pytest.raises(IndexError):
            bs("101").bit(-1)

    def test_getitem_int_and_slice(self):
        b = bs("10110")
        assert b[0] == 1
        assert b[1:4].to_str() == "011"
        assert b[:0] == EMPTY

    def test_slice_step_rejected(self):
        with pytest.raises(ValueError):
            bs("10110")[::2]

    def test_iter(self):
        assert list(bs("1101")) == [1, 1, 0, 1]

    def test_bool_len(self):
        assert not EMPTY
        assert bs("0")
        assert len(bs("0101")) == 4


class TestSlicing:
    def test_prefix_suffix(self):
        b = bs("110010")
        assert b.prefix(3).to_str() == "110"
        assert b.suffix_from(3).to_str() == "010"
        assert b.prefix(0) == EMPTY
        assert b.suffix_from(6) == EMPTY

    def test_substring_bounds(self):
        with pytest.raises(IndexError):
            bs("101").substring(1, 4)
        with pytest.raises(IndexError):
            bs("101").substring(2, 1)

    def test_concat(self):
        assert (bs("10") + bs("01")).to_str() == "1001"
        assert (EMPTY + bs("1")).to_str() == "1"
        assert (bs("1") + EMPTY).to_str() == "1"

    def test_append_bit(self):
        assert bs("10").append_bit(1).to_str() == "101"
        with pytest.raises(ValueError):
            bs("1").append_bit(2)

    def test_pad_to(self):
        assert bs("01").pad_to(5, 0).to_str() == "01000"
        assert bs("01").pad_to(5, 1).to_str() == "01111"
        with pytest.raises(ValueError):
            bs("0101").pad_to(2, 0)
        with pytest.raises(ValueError):
            bs("01").pad_to(4, 2)


class TestLCP:
    def test_lcp_basic(self):
        assert bs("10110").lcp_len(bs("1010")) == 3
        assert bs("000").lcp_len(bs("111")) == 0
        assert bs("101").lcp_len(bs("101")) == 3
        assert bs("10").lcp_len(bs("1011")) == 2
        assert EMPTY.lcp_len(bs("101")) == 0

    def test_prefix_relations(self):
        assert bs("10").is_prefix_of(bs("1011"))
        assert not bs("11").is_prefix_of(bs("1011"))
        assert bs("1011").starts_with(bs("10"))
        assert EMPTY.is_prefix_of(bs("0"))
        assert bs("101").is_prefix_of(bs("101"))

    @given(bit_strings, bit_strings)
    def test_lcp_symmetric(self, a, b):
        assert a.lcp_len(b) == b.lcp_len(a)

    @given(bit_strings, bit_strings)
    def test_lcp_is_common_prefix(self, a, b):
        k = a.lcp_len(b)
        assert a.prefix(k) == b.prefix(k)
        if k < len(a) and k < len(b):
            assert a.bit(k) != b.bit(k)

    @given(bit_strings, bit_strings, bit_strings)
    def test_concat_prefix_lcp(self, p, a, b):
        # common prefix extends through concatenation
        assert (p + a).lcp_len(p + b) >= len(p)


class TestOrdering:
    def test_prefix_sorts_first(self):
        assert bs("10") < bs("100")
        assert bs("10") < bs("101")
        assert not bs("100") < bs("10")

    def test_lexicographic(self):
        assert bs("011") < bs("10")
        assert bs("0") < bs("1")
        assert EMPTY < bs("0")

    @given(st.lists(bit_strings, min_size=2, max_size=20))
    def test_sorted_adjacent_lcp_maximal(self, xs):
        """In sorted order each string's LCP with its neighbors is maximal."""
        xs = sorted(set(xs))
        for i in range(1, len(xs)):
            k = xs[i - 1].lcp_len(xs[i])
            for j in range(i - 1):
                assert xs[j].lcp_len(xs[i]) <= k

    @given(bit_strings, bit_strings)
    def test_total_order(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(bit_strings, bit_strings, bit_strings)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c


class TestMisc:
    def test_word_count(self):
        assert EMPTY.word_count() == 0
        assert bs("1").word_count() == 1
        assert BitString(0, 64).word_count() == 1
        assert BitString(0, 65).word_count() == 2
        assert BitString(0, 64).word_count(w=8) == 8

    def test_hashable(self):
        assert len({bs("101"), bs("101"), bs("10")}) == 2

    def test_eq_other_types(self):
        assert bs("1") != "1"
        assert bs("1") != 1

    def test_repr_truncates(self):
        long = bs("1" * 100)
        assert "..." in repr(long)
        assert "len=100" in repr(long)

    @given(bit_strings)
    def test_roundtrip_property(self, b):
        assert BitString.from_str(b.to_str()) == b
        assert BitString.from_bits(list(b)) == b
