"""Unit tests for trie node/edge primitives and the hidden-node model."""

import pytest

from repro.bits import BitString
from repro.trie import HiddenNodeRef, PatriciaTrie, TrieEdge, TrieNode


def bs(s: str) -> BitString:
    return BitString.from_str(s)


class TestTrieNode:
    def test_uids_unique(self):
        a, b = TrieNode(0), TrieNode(0)
        assert a.uid != b.uid

    def test_attach_detach(self):
        parent = TrieNode(0)
        child = TrieNode(3)
        edge = TrieEdge(bs("101"), child)
        parent.attach(edge)
        assert parent.children[1] is edge
        assert edge.src is parent
        assert child.parent is parent
        got = parent.detach(1)
        assert got is edge
        assert parent.children[1] is None
        assert edge.src is None

    def test_attach_conflict(self):
        parent = TrieNode(0)
        parent.attach(TrieEdge(bs("1"), TrieNode(1)))
        with pytest.raises(ValueError):
            parent.attach(TrieEdge(bs("10"), TrieNode(2)))

    def test_detach_missing(self):
        with pytest.raises(ValueError):
            TrieNode(0).detach(0)

    def test_counts(self):
        n = TrieNode(0)
        assert n.is_leaf and n.num_children == 0
        n.attach(TrieEdge(bs("0"), TrieNode(1)))
        n.attach(TrieEdge(bs("1"), TrieNode(1)))
        assert n.num_children == 2 and not n.is_leaf

    def test_word_cost_includes_value(self):
        plain = TrieNode(0)
        keyed = TrieNode(0, is_key=True, value="x")
        assert keyed.word_cost() > plain.word_cost()

    def test_mirror_child_default_none(self):
        assert TrieNode(0).mirror_child is None


class TestTrieEdge:
    def test_empty_label_rejected(self):
        with pytest.raises(ValueError):
            TrieEdge(bs(""), TrieNode(0))

    def test_word_cost_scales(self):
        short = TrieEdge(bs("1"), TrieNode(1))
        long = TrieEdge(BitString(0, 640), TrieNode(640))
        assert long.word_cost() >= short.word_cost() + 9

    def test_repr_truncates(self):
        e = TrieEdge(BitString(0, 100), TrieNode(100))
        assert "..." in repr(e)


class TestHiddenNodeRef:
    def test_depth(self):
        parent = TrieNode(5)
        child = TrieNode(10)
        edge = TrieEdge(bs("00000"), child)
        parent.attach(edge)
        h = HiddenNodeRef(edge, 2)
        assert h.depth == 7

    def test_walk_returns_hidden(self):
        t = PatriciaTrie()
        t.insert(bs("0000"))
        r = t.walk(bs("0011"))
        assert isinstance(r.node, HiddenNodeRef)
        assert r.lcp_len == 2
        assert r.node.depth == 2

    def test_hashable_and_frozen(self):
        parent = TrieNode(0)
        child = TrieNode(4)
        edge = TrieEdge(bs("0000"), child)
        parent.attach(edge)
        a = HiddenNodeRef(edge, 1)
        b = HiddenNodeRef(edge, 1)
        assert a == b
        assert hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.offset = 2
