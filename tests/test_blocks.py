"""Tests for data-trie blocks: edge cutting, extraction, mirror nodes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import BitString, IncrementalHasher
from repro.core import cut_long_edges, extract_blocks
from repro.trie import PatriciaTrie, build_query_trie, node_weight_words


def bs(s: str) -> BitString:
    return BitString.from_str(s)


H = IncrementalHasher(seed=41)
W = 64

key_lists = st.lists(
    st.text(alphabet="01", min_size=0, max_size=60), min_size=1, max_size=40
)


class TestCutLongEdges:
    def test_short_edges_untouched(self):
        t = build_query_trie([bs("0101"), bs("0110")])
        before = t.num_nodes()
        added = cut_long_edges(t, max_words=2, w=W)
        assert added == 0
        assert t.num_nodes() == before

    def test_long_edge_cut(self):
        t = build_query_trie([bs("1" * 300)])
        added = cut_long_edges(t, max_words=2, w=W)  # limit 128 bits
        assert added >= 2
        for e in t.iter_edges():
            assert len(e.label) <= 128
        # keys unchanged
        assert t.keys() == [bs("1" * 300)]

    def test_cut_preserves_queries(self):
        key = bs("10" * 200)
        t = build_query_trie([key])
        cut_long_edges(t, max_words=1, w=W)
        assert t.lcp(key) == 400
        # the key's bit 200 is '1', so a '0' there diverges at depth 200
        assert t.lcp(bs("10" * 100 + "0")) == 200
        assert t.lcp(bs("10" * 100 + "1")) == 201
        assert t.contains(key)

    def test_cut_nodes_single_child(self):
        t = build_query_trie([bs("0" * 200)])
        cut_long_edges(t, max_words=1, w=W)
        # introduced nodes have exactly one child and no key
        internals = [
            n for n in t.iter_nodes()
            if n is not t.root and not n.is_key and not n.is_leaf
        ]
        assert all(n.num_children == 1 for n in internals)


class TestExtractBlocks:
    def test_single_small_block(self):
        t = build_query_trie([bs("01"), bs("10")])
        blocks, strings = extract_blocks(t, block_bound=1000, hasher=H)
        assert len(blocks) == 1
        blk = blocks[0]
        assert blk.parent_id is None
        assert blk.root_depth == 0
        assert blk.trie.num_keys == 2

    def test_parent_links_form_tree(self):
        keys = [format(i, "010b") for i in range(128)]
        t = build_query_trie([bs(k) for k in keys])
        blocks, strings = extract_blocks(t, block_bound=16, hasher=H)
        ids = {b.block_id for b in blocks}
        roots = [b for b in blocks if b.parent_id is None]
        assert len(roots) == 1
        for b in blocks:
            if b.parent_id is not None:
                assert b.parent_id in ids

    def test_mirror_consistency(self):
        keys = [format(i, "010b") for i in range(128)]
        t = build_query_trie([bs(k) for k in keys])
        blocks, strings = extract_blocks(t, block_bound=16, hasher=H)
        by_id = {b.block_id: b for b in blocks}
        for b in blocks:
            for cid in b.child_ids():
                child = by_id[cid]
                assert child.parent_id == b.block_id
                # the mirror's absolute position equals the child's root
                assert strings[cid].starts_with(strings[b.block_id])

    def test_metadata_verified(self):
        keys = [format(i, "08b") for i in range(64)]
        t = build_query_trie([bs(k) for k in keys])
        blocks, strings = extract_blocks(t, block_bound=12, hasher=H)
        for b in blocks:
            b.check(H, strings[b.block_id])

    def test_keys_partitioned(self):
        """Every original key lives in exactly one block (as a relative
        key under that block's root)."""
        keys = {format(i, "09b") for i in range(100)}
        t = build_query_trie([bs(k) for k in keys])
        blocks, strings = extract_blocks(t, block_bound=10, hasher=H)
        rebuilt = []
        for b in blocks:
            root = strings[b.block_id]
            for rel, _v in b.trie.iter_items():
                rebuilt.append((root + rel).to_str())
        assert sorted(rebuilt) == sorted(keys)

    @given(key_lists, st.integers(4, 64))
    @settings(max_examples=60, deadline=None)
    def test_extraction_properties(self, keys, bound):
        t = build_query_trie([bs(k) for k in keys])
        n_keys = t.num_keys
        blocks, strings = extract_blocks(t, block_bound=bound, hasher=H)
        # exactly one root; parents present; keys preserved
        assert sum(1 for b in blocks if b.parent_id is None) == 1
        assert sum(b.trie.num_keys for b in blocks) == n_keys
        ids = {b.block_id for b in blocks}
        for b in blocks:
            assert b.parent_id is None or b.parent_id in ids
            assert b.root_depth == len(strings[b.block_id])
            # block weight bounded (cut edges + partition guarantee)
            weight = sum(node_weight_words(n) for n in b.trie.iter_nodes())
            assert weight <= 4 * bound + 8

    @given(key_lists)
    @settings(max_examples=40, deadline=None)
    def test_mirror_children_exact(self, keys):
        t = build_query_trie([bs(k) for k in keys])
        blocks, strings = extract_blocks(t, block_bound=8, hasher=H)
        child_sets = {b.block_id: set(b.child_ids()) for b in blocks}
        declared_parents = {
            b.block_id: b.parent_id for b in blocks if b.parent_id is not None
        }
        for cid, pid in declared_parents.items():
            assert cid in child_sets[pid]
        total_mirrors = sum(len(s) for s in child_sets.values())
        assert total_mirrors == len(declared_parents)
