"""Tests for the CRC-style carryless hasher (GF(2) polynomial hash)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import (
    BitString,
    CarrylessHasher,
    GF2_POLY_61,
    IncrementalHasher,
)
from repro.bits.carryless import _gf2_mulmod


def bs(s: str) -> BitString:
    return BitString.from_str(s)


bit_strings = st.text(alphabet="01", min_size=0, max_size=300).map(bs)

C = CarrylessHasher(seed=42)


class TestGF2Arithmetic:
    def test_mul_identity(self):
        for a in (0, 1, 5, (1 << 60) | 3):
            assert _gf2_mulmod(a, 1, GF2_POLY_61, 61) == a

    def test_mul_zero(self):
        assert _gf2_mulmod(123, 0, GF2_POLY_61, 61) == 0

    def test_mul_commutative(self):
        a, b = 0x1234_5678_9ABC, 0xDEAD_BEEF
        assert _gf2_mulmod(a, b, GF2_POLY_61, 61) == _gf2_mulmod(
            b, a, GF2_POLY_61, 61
        )

    @given(
        st.integers(0, (1 << 61) - 1),
        st.integers(0, (1 << 61) - 1),
        st.integers(0, (1 << 61) - 1),
    )
    @settings(max_examples=60)
    def test_mul_distributes_over_xor(self, a, b, c):
        left = _gf2_mulmod(a, b ^ c, GF2_POLY_61, 61)
        right = _gf2_mulmod(a, b, GF2_POLY_61, 61) ^ _gf2_mulmod(
            a, c, GF2_POLY_61, 61
        )
        assert left == right

    def test_residues_stay_in_range(self):
        r = _gf2_mulmod((1 << 61) - 1, (1 << 61) - 1, GF2_POLY_61, 61)
        assert 0 <= r < (1 << 61)


class TestIncrementality:
    def test_empty(self):
        assert C.hash(bs("")).digest == 0
        assert C.empty() == C.hash(bs(""))

    @given(bit_strings, bit_strings)
    def test_extend_matches_full(self, a, b):
        """Definition 2 for the CRC hash."""
        assert C.extend(C.hash(a), b) == C.hash(a + b)

    @given(bit_strings, bit_strings)
    def test_combine_matches_full(self, a, b):
        """Definition 3: crc(AB) = crc(A)*x^|B| XOR crc(B)."""
        assert C.combine(C.hash(a), C.hash(b)) == C.hash(a + b)

    @given(bit_strings, bit_strings, bit_strings)
    def test_combine_associative(self, a, b, c):
        ha, hb, hc = C.hash(a), C.hash(b), C.hash(c)
        assert C.combine(C.combine(ha, hb), hc) == C.combine(
            ha, C.combine(hb, hc)
        )

    @given(bit_strings)
    def test_prefix_hashes(self, s):
        positions = sorted({0, len(s) // 3, 2 * len(s) // 3, len(s)})
        for p, h in zip(positions, C.prefix_hashes(s, positions)):
            assert h == C.hash(s.prefix(p))

    def test_long_string_chunking(self):
        s = bs("101" * 200)  # 600 bits, many chunks
        assert C.hash(s).length == 600
        # consistency across arbitrary split points
        for cut in (1, 60, 61, 62, 300, 599):
            assert C.combine(C.hash(s.prefix(cut)), C.hash(s.suffix_from(cut))) == C.hash(s)


class TestFingerprints:
    def test_seeds_differ(self):
        other = CarrylessHasher(seed=43)
        s = bs("1011010")
        assert C.fingerprint_of(s) != other.fingerprint_of(s)

    def test_lengths_disambiguated(self):
        assert C.fingerprint_of(bs("01")) != C.fingerprint_of(bs("1"))
        fps = {C.fingerprint_of(BitString(0, n)) for n in range(100)}
        assert len(fps) == 100

    def test_no_collisions_small_universe(self):
        seen = set()
        for v in range(1 << 12):
            fp = C.fingerprint_of(BitString.from_int(v, 12))
            assert fp not in seen
            seen.add(fp)

    def test_narrow_width_collides(self):
        h4 = CarrylessHasher(seed=7, width=4)
        fps = {h4.fingerprint_of(BitString.from_int(v, 16)) for v in range(2048)}
        assert len(fps) <= 16

    def test_width_validation(self):
        with pytest.raises(ValueError):
            CarrylessHasher(width=0)
        with pytest.raises(ValueError):
            CarrylessHasher(width=62)


class TestInterchangeability:
    def test_same_interface_as_modular(self):
        """Both hashers expose the exact surface PIM-trie consumes."""
        m = IncrementalHasher(seed=1)
        for h in (m, CarrylessHasher(seed=1)):
            s = bs("110010")
            hv = h.hash(s)
            assert h.extend(h.empty(), s) == hv
            assert isinstance(h.fingerprint(hv), int)
            assert h.prefix_hashes(s, [0, 3, 6])[2] == hv

    def test_pimtrie_runs_on_carryless(self):
        """PIMTrieConfig(hash_kind='carryless') works end-to-end."""
        from repro import PIMSystem, PIMTrie, PIMTrieConfig
        from repro.trie import PatriciaTrie

        keys = [bs(format(i, "08b")) for i in range(48)]
        system = PIMSystem(4, seed=2)
        trie = PIMTrie(
            system,
            PIMTrieConfig(num_modules=4, hash_kind="carryless"),
            keys=keys,
            values=[k.to_str() for k in keys],
        )
        assert isinstance(trie.hasher, CarrylessHasher)
        ref = PatriciaTrie()
        for k in keys:
            ref.insert(k)
        qs = keys[::5] + [bs("11111111"), bs("0011")]
        assert trie.lcp_batch(qs) == [ref.lcp(q) for q in qs]
        trie.insert_batch([bs("111100001111")], ["x"])
        assert trie.lookup_batch([bs("111100001111")]) == ["x"]

    def test_bad_hash_kind_rejected(self):
        from repro import PIMTrieConfig
        with pytest.raises(ValueError):
            PIMTrieConfig(num_modules=4, hash_kind="md5")
