"""Tests for the incremental rolling hash (paper Defs. 2-3, §4.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.bits import BitString, IncrementalHasher, MERSENNE_61


def bs(s: str) -> BitString:
    return BitString.from_str(s)


bit_strings = st.text(alphabet="01", min_size=0, max_size=400).map(bs)

H = IncrementalHasher(seed=42)


class TestBasics:
    def test_empty_hash(self):
        assert H.hash(bs("")).digest == 0
        assert H.hash(bs("")).length == 0
        assert H.empty() == H.hash(bs(""))

    def test_deterministic(self):
        assert H.hash(bs("10101")) == H.hash(bs("10101"))

    def test_length_recorded(self):
        assert H.hash(bs("110")).length == 3

    def test_distinct_seeds_fingerprint_differently(self):
        """Global re-hash (§4.4.3) = new seed = new comparison keys."""
        h2 = IncrementalHasher(seed=43)
        s = bs("1011010")
        assert H.fingerprint_of(s) != h2.fingerprint_of(s)

    def test_leading_zeros_matter(self):
        # "01" and "1" are different strings and must fingerprint apart
        assert H.fingerprint_of(bs("01")) != H.fingerprint_of(bs("1"))
        assert H.fingerprint_of(bs("0")) != H.fingerprint_of(bs(""))
        # HashValue keeps them apart via the recorded length
        assert H.hash(bs("01")) != H.hash(bs("1"))

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            IncrementalHasher(width=0)
        with pytest.raises(ValueError):
            IncrementalHasher(width=62)

    def test_narrow_width_truncates(self):
        h8 = IncrementalHasher(seed=42, width=8)
        assert h8.fingerprint_of(bs("1011010011")) < 256

    def test_long_string_chunking(self):
        # crosses several 61-bit chunks
        s = bs("10" * 200)
        a = H.hash(s)
        assert 0 <= a.digest < MERSENNE_61
        assert a.length == 400


class TestIncrementality:
    @given(bit_strings, bit_strings)
    def test_extend_matches_full_hash(self, a, b):
        """Definition 2: h(AB) = f(h(A), B)."""
        assert H.extend(H.hash(a), b) == H.hash(a + b)

    @given(bit_strings, bit_strings)
    def test_combine_matches_full_hash(self, a, b):
        """Definition 3: h(AB) = h(A) ⊕ h(B) using lengths only."""
        assert H.combine(H.hash(a), H.hash(b)) == H.hash(a + b)

    @given(bit_strings, bit_strings, bit_strings)
    def test_combine_associative(self, a, b, c):
        ha, hb, hc = H.hash(a), H.hash(b), H.hash(c)
        assert H.combine(H.combine(ha, hb), hc) == H.combine(
            ha, H.combine(hb, hc)
        )

    @given(bit_strings)
    def test_prefix_hashes_match(self, s):
        positions = sorted({0, len(s) // 2, len(s)})
        hs = H.prefix_hashes(s, positions)
        for p, h in zip(positions, hs):
            assert h == H.hash(s.prefix(p))

    def test_prefix_hashes_word_grid(self):
        s = bs("1011" * 40)  # 160 bits
        positions = list(range(0, 161, 32))
        hs = H.prefix_hashes(s, positions)
        assert [h.length for h in hs] == positions
        for p, h in zip(positions, hs):
            assert h == H.hash(s.prefix(p))

    def test_prefix_hashes_rejects_disorder(self):
        with pytest.raises(ValueError):
            H.prefix_hashes(bs("1010"), [3, 1])

    def test_prefix_hashes_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            H.prefix_hashes(bs("1010"), [5])


class TestFingerprints:
    def test_wide_fingerprint_no_collisions_small_universe(self):
        seen = set()
        for v in range(1 << 12):
            fp = H.fingerprint_of(BitString.from_int(v, 12))
            assert fp not in seen
            seen.add(fp)

    def test_narrow_fingerprint_collides(self):
        """A 4-bit fingerprint over thousands of strings collides (E13)."""
        h4 = IncrementalHasher(seed=7, width=4)
        fps = {h4.fingerprint_of(BitString.from_int(v, 16)) for v in range(4096)}
        assert len(fps) <= 16

    def test_fingerprint_deterministic(self):
        assert H.fingerprint_of(bs("10110")) == H.fingerprint_of(bs("10110"))

    def test_fingerprint_of_matches_two_step(self):
        s = bs("011010")
        assert H.fingerprint_of(s) == H.fingerprint(H.hash(s))

    def test_fingerprint_spreads_lengths(self):
        """All-zero strings of different lengths get distinct fingerprints."""
        fps = {H.fingerprint_of(BitString(0, n)) for n in range(200)}
        assert len(fps) == 200


class TestPow2TableBound:
    """The class-level 2^n memo must stay bounded under adversarial
    lengths, evicting oldest-inserted entries FIFO."""

    def setup_method(self):
        self._saved = dict(IncrementalHasher._POW2_TABLE)
        self._saved_max = IncrementalHasher._POW2_TABLE_MAX

    def teardown_method(self):
        IncrementalHasher._POW2_TABLE_MAX = self._saved_max
        IncrementalHasher._POW2_TABLE.clear()
        IncrementalHasher._POW2_TABLE.update(self._saved)

    def test_table_never_exceeds_cap(self):
        IncrementalHasher._POW2_TABLE.clear()
        IncrementalHasher._POW2_TABLE_MAX = 16
        for n in range(100):
            H._pow2(n)
        assert len(IncrementalHasher._POW2_TABLE) == 16

    def test_fifo_eviction_order(self):
        IncrementalHasher._POW2_TABLE.clear()
        IncrementalHasher._POW2_TABLE_MAX = 4
        for n in (1, 2, 3, 4):
            H._pow2(n)
        H._pow2(5)  # evicts 1, the oldest insertion
        assert set(IncrementalHasher._POW2_TABLE) == {2, 3, 4, 5}
        H._pow2(2)  # cache hit: no reordering, no eviction
        H._pow2(6)  # evicts 2 (insertion order, not recency of use)
        assert set(IncrementalHasher._POW2_TABLE) == {3, 4, 5, 6}

    def test_values_correct_after_eviction(self):
        IncrementalHasher._POW2_TABLE.clear()
        IncrementalHasher._POW2_TABLE_MAX = 8
        for n in range(64):
            assert H._pow2(n) == pow(2, n, MERSENNE_61)
        # evicted entries recompute correctly on re-probe
        for n in range(64):
            assert H._pow2(n) == pow(2, n, MERSENNE_61)

    def test_hashing_unaffected_by_tiny_cap(self):
        IncrementalHasher._POW2_TABLE.clear()
        IncrementalHasher._POW2_TABLE_MAX = 2
        a, b = bs("10110"), bs("0111010")
        assert H.combine(H.hash(a), H.hash(b)) == H.hash(a + b)
