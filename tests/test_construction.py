"""Tests for batch query-trie construction (Algorithm 1)."""

from hypothesis import given, settings, strategies as st

from repro.bits import BitString
from repro.trie import (
    PatriciaTrie,
    adjacent_lcp_array,
    build_query_trie,
    patricia_from_sorted,
    sort_bitstrings,
)


def bs(s: str) -> BitString:
    return BitString.from_str(s)


key_lists = st.lists(
    st.text(alphabet="01", min_size=0, max_size=40), min_size=0, max_size=80
)


class TestSort:
    def test_sort_order(self):
        xs = [bs(s) for s in ["10", "1", "0", "101", "100", ""]]
        assert [x.to_str() for x in sort_bitstrings(xs)] == [
            "",
            "0",
            "1",
            "10",
            "100",
            "101",
        ]

    @given(key_lists)
    def test_sort_matches_builtin(self, keys):
        xs = [bs(k) for k in keys]
        assert sort_bitstrings(xs) == sorted(xs)


class TestLCPArray:
    def test_basic(self):
        xs = [bs(s) for s in ["000", "001", "01", "1"]]
        assert adjacent_lcp_array(xs) == [0, 2, 1, 0]

    def test_empty_and_single(self):
        assert adjacent_lcp_array([]) == []
        assert adjacent_lcp_array([bs("101")]) == [0]


class TestPatriciaFromSorted:
    def test_matches_incremental_build(self):
        keys = ["000010", "00001101", "1010000", "1010111", "101011"]
        xs = sorted(bs(k) for k in keys)
        lcp = adjacent_lcp_array(xs)
        t = patricia_from_sorted(xs, lcp, list(range(len(xs))))
        t.check_invariants()
        ref = PatriciaTrie()
        for k in keys:
            ref.insert(bs(k))
        assert sorted(k.to_str() for k in t.keys()) == sorted(
            k.to_str() for k in ref.keys()
        )

    def test_prefix_key_marks_internal_node(self):
        xs = sorted(bs(k) for k in ["10", "100", "101"])
        t = patricia_from_sorted(xs, adjacent_lcp_array(xs))
        t.check_invariants()
        assert t.contains(bs("10"))
        assert len(t) == 3

    def test_empty_string_key(self):
        xs = sorted(bs(k) for k in ["", "0", "1"])
        t = patricia_from_sorted(xs, adjacent_lcp_array(xs))
        t.check_invariants()
        assert t.contains(bs(""))
        assert len(t) == 3


class TestBuildQueryTrie:
    def test_deduplication(self):
        t = build_query_trie([bs("10"), bs("10"), bs("11")])
        assert len(t) == 2

    def test_values_follow_keys(self):
        t = build_query_trie([bs("10"), bs("01")], values=["a", "b"])
        assert t.lookup(bs("10")) == "a"
        assert t.lookup(bs("01")) == "b"

    def test_empty_batch(self):
        t = build_query_trie([])
        assert len(t) == 0

    @given(key_lists)
    @settings(max_examples=200)
    def test_equivalent_to_incremental(self, keys):
        """Algorithm 1 must produce the same trie as one-by-one insertion."""
        xs = [bs(k) for k in keys]
        t = build_query_trie(xs)
        t.check_invariants()
        ref = PatriciaTrie()
        for x in xs:
            ref.insert(x)
        assert sorted(k.to_str() for k in t.keys()) == sorted(
            k.to_str() for k in ref.keys()
        )
        # identical shape: same number of compressed nodes and edge bits
        assert t.num_nodes() == ref.num_nodes()
        assert t.L == ref.L

    @given(key_lists, st.text(alphabet="01", max_size=40))
    @settings(max_examples=100)
    def test_query_semantics_preserved(self, keys, q):
        xs = [bs(k) for k in keys]
        t = build_query_trie(xs)
        ref = PatriciaTrie()
        for x in xs:
            ref.insert(x)
        assert t.lcp(bs(q)) == ref.lcp(bs(q))
