"""Property tests for the decayed Count-Min sketch (repro.adapt.sketch).

The classic Cormode–Muthukrishnan guarantees, checked on seeded
streams: estimates never undercount, the (epsilon, delta) error bound
holds for `for_error` dimensions, decay is monotone, and merge is
elementwise addition over compatible sketches.
"""

import numpy as np
import pytest

from repro.adapt import CountMinSketch
from repro.adapt.sketch import _fold_key
from repro.bits import BitString


def zipf_stream(n, universe, theta, seed):
    """Seeded skewed stream of int keys with exact true counts."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, universe + 1, dtype=np.float64)
    probs = ranks ** -theta
    probs /= probs.sum()
    draws = rng.choice(universe, size=n, p=probs)
    counts = {}
    for d in draws:
        counts[int(d)] = counts.get(int(d), 0) + 1
    return [int(d) for d in draws], counts


class TestOvercountOnly:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("width,depth", [(16, 2), (64, 4), (256, 4)])
    def test_estimate_never_below_true_count(self, seed, width, depth):
        stream, true = zipf_stream(2000, 500, 1.1, seed)
        cm = CountMinSketch(width, depth, seed=seed)
        for k in stream:
            cm.add(k)
        for k, n in true.items():
            assert cm.estimate(k) >= n
        # total tracks the stream mass exactly (no decay yet)
        assert cm.total == len(stream)

    def test_absent_key_estimate_is_collision_noise_only(self):
        cm = CountMinSketch(1024, 5, seed=3)
        for k in range(100):
            cm.add(k)
        # wide sketch, tiny stream: most absent keys estimate 0
        zeros = sum(1 for k in range(10_000, 10_100) if cm.estimate(k) == 0.0)
        assert zeros > 90

    def test_weighted_add_and_negative_rejected(self):
        cm = CountMinSketch(32, 3)
        cm.add(5, 2.5)
        assert cm.estimate(5) >= 2.5
        with pytest.raises(ValueError):
            cm.add(5, -1.0)


class TestErrorBound:
    @pytest.mark.parametrize("eps,delta", [(0.05, 0.05), (0.01, 0.01)])
    @pytest.mark.parametrize("seed", [0, 11, 23])
    def test_for_error_dimensions_meet_epsilon_delta(self, eps, delta, seed):
        """estimate <= true + eps*N for all but a delta fraction of keys.

        The bound is per-query with failure probability delta; over many
        keys the observed violation rate should not exceed delta by much
        (we allow 2x slack to keep the test deterministic-friendly).
        """
        stream, true = zipf_stream(5000, 1000, 1.05, seed)
        cm = CountMinSketch.for_error(eps, delta, seed=seed)
        for k in stream:
            cm.add(k)
        n_total = len(stream)
        bad = sum(
            1 for k, n in true.items() if cm.estimate(k) > n + eps * n_total
        )
        assert bad / len(true) <= max(2 * delta, 0.02)

    def test_for_error_dimension_formula(self):
        import math

        cm = CountMinSketch.for_error(0.01, 0.02)
        assert cm.width == math.ceil(math.e / 0.01)
        assert cm.depth == math.ceil(math.log(1 / 0.02))

    def test_wider_sketch_never_worse_on_same_stream(self):
        stream, true = zipf_stream(3000, 800, 1.0, 5)
        narrow = CountMinSketch(16, 4, seed=5)
        wide = CountMinSketch(512, 4, seed=5)
        for k in stream:
            narrow.add(k)
            wide.add(k)
        err_narrow = sum(narrow.estimate(k) - n for k, n in true.items())
        err_wide = sum(wide.estimate(k) - n for k, n in true.items())
        assert err_wide <= err_narrow

    def test_invalid_error_params_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch.for_error(0.0, 0.1)
        with pytest.raises(ValueError):
            CountMinSketch.for_error(0.1, 1.5)
        with pytest.raises(ValueError):
            CountMinSketch(0, 4)
        with pytest.raises(ValueError):
            CountMinSketch(4, 4, decay=0.0)


class TestDecay:
    def test_decay_is_monotone_on_every_key(self):
        stream, true = zipf_stream(1000, 200, 1.2, 9)
        cm = CountMinSketch(128, 4, seed=9, decay=0.5)
        for k in stream:
            cm.add(k)
        before = {k: cm.estimate(k) for k in true}
        cm.decay()
        for k in true:
            est = cm.estimate(k)
            assert est <= before[k]
            assert est == pytest.approx(before[k] * 0.5)
        assert cm.total == pytest.approx(1000 * 0.5)

    def test_decay_one_is_identity_and_zero_clears(self):
        cm = CountMinSketch(32, 3)
        cm.add(7, 4.0)
        cm.decay(1.0)
        assert cm.estimate(7) == 4.0
        cm.decay(0.0)
        assert cm.estimate(7) == 0.0
        assert cm.total == 0.0

    def test_vanishing_mass_snaps_to_exact_zero(self):
        cm = CountMinSketch(8, 2, decay=0.5)
        cm.add(1, 1.0)
        for _ in range(60):  # 2**-60 << 1e-9
            cm.decay()
        assert cm.total == 0.0
        assert not cm.counts.any()

    def test_overcount_invariant_survives_interleaved_decay(self):
        # decayed true counts: same recurrence the sketch applies
        cm = CountMinSketch(64, 4, seed=2, decay=0.75)
        true = {}
        rng = np.random.default_rng(2)
        for _ in range(20):
            cm.decay()
            true = {k: v * 0.75 for k, v in true.items()}
            for k in rng.integers(0, 50, size=30):
                cm.add(int(k))
                true[int(k)] = true.get(int(k), 0.0) + 1.0
        for k, v in true.items():
            assert cm.estimate(k) >= v - 1e-9


class TestMergeAndKeys:
    def test_merge_is_elementwise_sum(self):
        a = CountMinSketch(64, 4, seed=1)
        b = CountMinSketch(64, 4, seed=1)
        for k in range(40):
            a.add(k)
            b.add(k, 2.0)
        a.merge(b)
        for k in range(40):
            assert a.estimate(k) >= 3.0
        assert a.total == 40 + 80

    def test_merge_requires_same_shape_and_seed(self):
        a = CountMinSketch(64, 4, seed=1)
        for other in (
            CountMinSketch(32, 4, seed=1),
            CountMinSketch(64, 3, seed=1),
            CountMinSketch(64, 4, seed=2),
        ):
            assert not a.compatible(other)
            with pytest.raises(ValueError):
                a.merge(other)

    def test_copy_is_independent(self):
        a = CountMinSketch(16, 2, seed=4)
        a.add(3, 5.0)
        c = a.copy()
        c.add(3, 1.0)
        assert a.estimate(3) == 5.0
        assert c.estimate(3) == 6.0

    def test_bitstring_prefix_and_zero_extension_hash_apart(self):
        # BitString(0b01, 2) vs BitString(0b0100, 4): same value after
        # zero-extension, different lengths => different digests
        a = BitString(0b01, 2)
        b = BitString(0b0100, 4)
        assert _fold_key(a) != _fold_key(b)

    def test_same_seed_same_stream_is_deterministic(self):
        runs = []
        for _ in range(2):
            cm = CountMinSketch(64, 4, seed=7)
            for k in range(100):
                cm.add(BitString(k, 16))
            runs.append(cm.counts.copy())
        assert (runs[0] == runs[1]).all()
