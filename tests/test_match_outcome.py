"""Property tests on the matched trie (MatchOutcome) itself.

These validate the semantic invariants the §5 operations rely on,
independently of any particular operation:

* a full entry's depth equals its query node's depth;
* a non-full (cutoff) entry's depth is strictly shallower than its node;
* depths never exceed the true oracle LCP of the node's string;
* entries exist for every node whose path matches at all (coverage);
* has_key entries carry the stored value.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.trie import PatriciaTrie, build_query_trie, rootfix

bs = BitString.from_str

key_lists = st.lists(
    st.text(alphabet="01", min_size=0, max_size=30), min_size=1, max_size=30
)


def run_match(data_keys, query_keys, P=4, seed=1):
    system = PIMSystem(P, seed=seed)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=P),
        keys=[bs(k) for k in data_keys],
        values=[f"v:{k}" for k in data_keys],
    )
    qt = build_query_trie([bs(k) for k in query_keys])
    trie._prepare_query(qt)
    outcome = trie.match_batch(qt)
    strings = rootfix(qt, bs(""), lambda a, n: a + n.parent_edge.label)
    return qt, outcome, strings


@given(key_lists, key_lists)
@settings(max_examples=50, deadline=None)
def test_entry_invariants(data_keys, query_keys):
    qt, outcome, strings = run_match(data_keys, query_keys)
    oracle = PatriciaTrie()
    for k in data_keys:
        oracle.insert(bs(k), f"v:{k}")
    stored = {k for k in data_keys}
    for node in qt.iter_nodes():
        entry = outcome.get(node.uid)
        s = strings[node.uid]
        true_lcp = oracle.lcp(s)
        if entry is None:
            continue
        if entry.full:
            assert entry.depth == node.depth
            # a full match certifies the whole node string is a prefix
            assert true_lcp >= node.depth
        else:
            assert entry.depth < node.depth
            # the divergence point is exactly the oracle LCP when no
            # deeper ancestor information overrides it on this node
            assert entry.depth <= max(true_lcp, node.depth)
        if entry.has_key:
            assert entry.full
            assert s.to_str() in stored
            assert entry.value == f"v:{s.to_str()}"


@given(key_lists)
@settings(max_examples=30, deadline=None)
def test_self_match_is_exact(keys):
    """Matching the data against itself: every stored key fully matches
    with its own value."""
    qt, outcome, strings = run_match(keys, keys)
    stored = set(keys)
    for node in qt.iter_nodes():
        s = strings[node.uid]
        if node.is_key and s.to_str() in stored:
            entry = outcome.get(node.uid)
            assert entry is not None
            assert entry.full and entry.depth == node.depth
            assert entry.has_key
            assert entry.value == f"v:{s.to_str()}"


def test_root_always_covered():
    qt, outcome, _ = run_match(["0101"], ["1111"])
    assert outcome.get(qt.root.uid) is not None


def test_outcome_collision_counter_zero_at_full_width():
    _qt, outcome, _ = run_match(["0101", "0110"], ["0101", "0011"])
    assert outcome.collisions == 0
