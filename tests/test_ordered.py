"""Ordered-index op surface: differential, metamorphic, and isolation
proofs for pred / succ / range / count / top-k.

Four layers of evidence, mirroring the suites of the point-op surface:

* **Differential** — adversarial sequences with ordered ops mixed in
  (``harness.gen_ops(ordered=True)``), replayed across all three
  pipelines (reference / object fast path / columnar) × adapt on/off;
  replies must equal the bisect-based :class:`harness.DictOracle` and
  each other, and metrics must be byte-identical across pipelines.
* **Metamorphic** — algebraic laws relating the five ops to each other
  and to ``subtree_batch`` (``succ(pred(k)) == k`` for present keys;
  range == filtered enumeration; count == |subtree|; top-k is a prefix
  of the sorted range), checked on states reached *through* crash and
  straggler fault plans with recovery.
* **Snapshot isolation** — an :class:`repro.ordered.OrderedSnapshot`
  taken before a write answers from the pre-write state; version
  caching hands back the same object while the key set is unchanged.
* **Span-sum exactness** — with a tracer attached, root op spans over
  an ordered-only workload sum exactly to the system's metric delta
  (ordered reads are host-side: zero IO rounds, nonzero cpu_work).
"""

import json
from contextlib import nullcontext

import pytest

from repro import BitString, fastpath
from repro.adapt import AdaptiveController, AdaptPolicy
from repro.faults import FaultPlan, RoundAborted, StragglerSpec, recover
from repro.obs.tracer import Tracer, root_metric_sums

from tests import harness

ORDERED_SEEDS = (0, 1, 2, 3, 5, 8, 13, 21)  # >= 8, per the harness bar

EAGER = AdaptPolicy(
    hot_fraction=0.05,
    cold_fraction=0.02,
    min_window=4.0,
    cooldown=0,
    max_replicas=2,
    split_min_keys=2,
    max_actions_per_epoch=8,
)

_MODES = {
    "columnar": nullcontext,
    "object": fastpath.columnar_disabled,
    "baseline": fastpath.disabled,
}


def _replay(ops, mode: str, adaptive: bool, fault_plan=None):
    """Replies + metrics JSON of one pipeline/adapt combination,
    recovering and retrying aborted batches (the serve-layer protocol)."""
    with _MODES[mode]():
        index = harness.make_pimtrie()
        if fault_plan is not None:
            index.system.install_faults(fault_plan)
        ctl = AdaptiveController(index, EAGER) if adaptive else None
        replies = []
        for kind, payload in ops:
            for _ in range(8):
                try:
                    replies.append(harness.apply_batch(index, kind, payload))
                    break
                except RoundAborted:
                    recover(index)
            else:
                raise AssertionError(f"batch {kind!r} never survived recovery")
            if ctl is not None:
                ctl.step()
        snap = index.system.snapshot().as_dict(include_per_module=True)
    return replies, json.dumps(snap, sort_keys=True), index


# ----------------------------------------------------------------------
class TestOrderedDifferential:
    """All pipelines × adapt on/off vs the bisect oracle."""

    @pytest.mark.parametrize("seed", ORDERED_SEEDS)
    def test_pipelines_and_adapt_match_oracle(self, seed):
        ops = harness.gen_ops(seed, batches=12, batch_size=6, ordered=True)
        oracle, _ = harness._oracle_replies(ops)
        metrics = {}
        for mode in _MODES:
            for adaptive in (False, True):
                replies, snap_json, _ = _replay(ops, mode, adaptive)
                assert replies == oracle, (
                    f"{mode}/adapt={adaptive} diverged from the ordered "
                    f"oracle on seed {seed}:\n" + harness.format_ops(ops)
                )
                if not adaptive:
                    metrics[mode] = snap_json
        # answer parity is necessary, metric byte-identity is the full
        # contract: all three pipelines did the same accounting
        assert metrics["columnar"] == metrics["object"] == metrics["baseline"]

    def test_ordered_ops_run_zero_pim_rounds(self):
        ops = harness.gen_ops(3, batches=10, ordered=True)
        _, _, index = _replay(ops, "columnar", adaptive=False)
        before = index.system.snapshot()
        index.predecessor_batch([BitString(5, 8)])
        index.prefix_count_batch([BitString(1, 2)])
        index.range_batch([(BitString(0, 4), BitString(15, 4))], limit=3)
        delta = index.system.snapshot().delta(before)
        assert delta.io_rounds == 0 and delta.total_communication == 0
        assert delta.cpu_work > 0  # host work is accounted, not free


@pytest.mark.slow
class TestOrderedDifferentialSlow:
    """Nightly profile: more seeds, longer sequences, cluster grid."""

    @pytest.mark.parametrize("start", (100, 110, 120, 130))
    def test_long_ordered_sequences(self, start):
        for seed in range(start, start + 10):
            ops = harness.gen_ops(
                seed, batches=16, batch_size=8, ordered=True
            )
            bad = harness.divergences(ops)
            assert not bad, f"seed {seed}:\n" + "\n".join(bad[:4])

    @pytest.mark.parametrize("seed", (0, 7, 19))
    def test_cluster_grid_ordered(self, seed):
        ops = harness.gen_ops(seed, batches=12, batch_size=6, ordered=True)
        bad = harness.divergences(ops, harness.cluster_targets())
        assert not bad, f"seed {seed}:\n" + "\n".join(bad[:4])


# ----------------------------------------------------------------------
def _fault_plans():
    P = harness.P
    return {
        "none": None,
        "crash": FaultPlan(crashes={1: 3, P - 1: 11}),
        "straggler": FaultPlan(
            stragglers=(
                StragglerSpec(
                    module=0, factor=4.0, start_round=0, end_round=40
                ),
            )
        ),
    }


class TestOrderedMetamorphic:
    """Algebraic laws over states reached through faulty executions."""

    @pytest.mark.parametrize("plan_name", list(_fault_plans()))
    @pytest.mark.parametrize("seed", (0, 5, 17))
    def test_laws_hold_after_recovery(self, seed, plan_name):
        ops = harness.gen_ops(seed, batches=10, batch_size=6, ordered=True)
        _, _, trie = _replay(
            ops, "columnar", adaptive=False,
            fault_plan=_fault_plans()[plan_name],
        )
        snap = trie.ordered_snapshot()
        full = snap.items()  # sorted (key, value) enumeration
        assert full == sorted(full, key=lambda kv: kv[0])
        keys = [k for k, _ in full]
        if not keys:
            pytest.skip("sequence emptied the index")

        # succ(pred(k)) == k for every present key with a predecessor
        preds = trie.predecessor_batch(keys)
        succs = trie.successor_batch(
            [p[0] for p in preds if p is not None]
        )
        expect = [
            (k, v) for (k, v), p in zip(full, preds) if p is not None
        ]
        assert succs == expect

        # range == filtered enumeration, and limits truncate in order
        lo, hi = keys[0], keys[-1]
        mid_lo, mid_hi = keys[len(keys) // 3], keys[(2 * len(keys)) // 3]
        for a, b in ((lo, hi), (mid_lo, mid_hi), (hi, lo)):
            got = trie.range_batch([(a, b)])[0]
            want = [(k, v) for k, v in full if a <= k <= b]
            assert got == want
            for lim in (0, 1, 2, len(want)):
                assert trie.range_batch([(a, b)], limit=lim)[0] == want[:lim]

        # count == |subtree| == |range over the prefix's interval|;
        # top-k is a prefix of the sorted subtree
        prefixes = sorted({k.prefix(min(3, len(k))) for k in keys})
        counts = trie.prefix_count_batch(prefixes)
        subtrees = trie.subtree_batch(prefixes)
        for p, c, st in zip(prefixes, counts, subtrees):
            assert c == len(st)
            st_sorted = sorted(st, key=lambda kv: kv[0])
            for k in (1, 2, c or 1):
                assert trie.top_k(p, k) == st_sorted[:k]


# ----------------------------------------------------------------------
class TestSnapshotIsolation:
    def test_snapshot_survives_later_writes(self):
        trie = harness.make_pimtrie()
        ka, kb = BitString(5, 8), BitString(9, 8)
        trie.insert_batch([ka], ["a"])
        snap = trie.ordered_snapshot()
        frozen = snap.items()
        trie.insert_batch([kb], ["b"])
        trie.delete_batch([ka])
        # the old snapshot still answers from its own version…
        assert snap.items() == frozen
        assert snap.predecessor(kb) == (ka, "a")
        # …while a fresh one sees the writes
        now = trie.ordered_snapshot()
        assert now.items() == [(kb, "b")]
        assert now.version != snap.version

    def test_version_caching_reuses_snapshot(self):
        trie = harness.make_pimtrie()
        trie.insert_batch([BitString(3, 4)], ["x"])
        s1 = trie.ordered_snapshot()
        trie.lcp_batch([BitString(3, 4)])  # reads do not invalidate
        assert trie.ordered_snapshot() is s1
        trie.insert_batch([BitString(7, 4)], ["y"])
        assert trie.ordered_snapshot() is not s1


# ----------------------------------------------------------------------
class TestOrderedSpanSums:
    def test_root_op_spans_sum_to_delta(self):
        ops = harness.gen_ops(1, batches=8, ordered=True)
        _, _, trie = _replay(ops, "columnar", adaptive=False)
        tracer = Tracer(trie.system)
        before = trie.system.snapshot()
        keys = [k for k, _ in trie.ordered_snapshot().items()][:8]
        if not keys:
            pytest.skip("sequence emptied the index")
        trie.predecessor_batch(keys)
        trie.successor_batch(keys)
        trie.range_batch([(keys[0], keys[-1])], limit=4)
        trie.prefix_count_batch([keys[0].prefix(2)])
        trie.topk_batch([keys[0].prefix(2)], 3)
        delta = trie.system.snapshot().delta(before)
        sums = root_metric_sums(tracer.spans)
        assert sums == {
            "io_rounds": delta.io_rounds,
            "io_time": delta.io_time,
            "words": delta.total_communication,
            "pim_time": delta.pim_time,
            "cpu_work": delta.cpu_work,
        }
        names = {s.name for s in tracer.spans if s.cat == "op"}
        assert {"op.pred", "op.succ", "op.range", "op.count",
                "op.topk"} <= names
