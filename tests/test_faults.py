"""Unit tests for the fault layer: plans, the injector's per-round
semantics and accounting, and the recovery protocol on a PIMTrie."""

import pytest

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultStats,
    RoundAborted,
    StragglerSpec,
    recover,
    run_with_recovery,
)
from repro.perf import reset_id_counters
from repro.workloads import uniform_keys

bs = BitString.from_str


def echo(ctx, reqs):
    ctx.tick(len(reqs))
    return list(reqs)


def fresh_trie(P=4, n=48, length=32, seed=11):
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(n, length, seed=seed)
    trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys, values=keys)
    return system, trie, keys


# ----------------------------------------------------------------------
class TestPlan:
    def test_empty_and_is_empty(self):
        assert FaultPlan.empty().is_empty()
        assert not FaultPlan(crashes={0: 3}).is_empty()
        assert not FaultPlan(
            stragglers=(StragglerSpec(0, 2.0),)
        ).is_empty()

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes={-1: 0})
        with pytest.raises(ValueError):
            FaultPlan(crashes={0: -2})
        with pytest.raises(ValueError):
            FaultPlan(drop_replies={(-1, 0)})
        with pytest.raises(TypeError):
            FaultPlan(stragglers=({"module": 0, "factor": 2.0},))

    def test_straggler_spec_validation_and_window(self):
        with pytest.raises(ValueError):
            StragglerSpec(0, 0.5)
        with pytest.raises(ValueError):
            StragglerSpec(0, 2.0, start_round=5, end_round=3)
        s = StragglerSpec(1, 2.0, start_round=2, end_round=4)
        assert [s.active(r) for r in range(5)] == \
            [False, False, True, True, False]
        forever = StragglerSpec(1, 2.0, start_round=1)
        assert forever.active(10**6)

    def test_random_is_deterministic_and_keeps_a_survivor(self):
        a = FaultPlan.random(8, seed=42)
        b = FaultPlan.random(8, seed=42)
        assert a.as_dict() == b.as_dict()
        assert a.as_dict() != FaultPlan.random(8, seed=43).as_dict()
        dense = FaultPlan.random(4, seed=0, crash_rate=1.0)
        assert len(dense.crashes) <= 3  # at most P-1 modules crash

    def test_as_dict_is_json_friendly(self):
        import json

        plan = FaultPlan.random(4, seed=9)
        assert json.loads(json.dumps(plan.as_dict())) is not None


class TestStats:
    def test_round_trip(self):
        s = FaultStats(crashes=2, retries=5, rebuild_rounds=7)
        assert FaultStats.from_dict(s.as_dict()) == s

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown FaultStats"):
            FaultStats.from_dict({"crashes": 1, "meltdowns": 3})

    def test_any_faults(self):
        assert not FaultStats().any_faults()
        assert FaultStats(straggle_events=1).any_faults()


# ----------------------------------------------------------------------
class TestInjectorRounds:
    def test_crash_aborts_pre_kernel_and_charges_words_to(self):
        system = PIMSystem(2, seed=1)
        inj = system.install_faults(FaultPlan(crashes={0: 0}))
        before = system.snapshot()
        with pytest.raises(RoundAborted) as e:
            system.round(echo, {0: [1, 2], 1: [3]})
        assert e.value.cause == "crash" and not e.value.kernels_ran
        d = system.snapshot().delta(before)
        assert d.io_rounds == 1  # the failed round is on the books
        assert d.total_communication > 0  # host->module words crossed
        assert d.pim_work == 0  # but no kernel ever ran
        assert inj.crashed == {0}
        assert inj.stats.crashes == 1 and inj.stats.aborted_rounds == 1

    def test_crash_wipes_module_memory(self):
        system = PIMSystem(2, seed=1)
        system.modules[0].context.scratch["x"] = 1
        system.install_faults(FaultPlan(crashes={0: 0}))
        with pytest.raises(RoundAborted):
            system.round(echo, {0: [1]})
        assert system.modules[0].context.scratch == {}

    def test_transient_then_retry_succeeds(self):
        system = PIMSystem(2, seed=1)
        inj = system.install_faults(FaultPlan(transient_errors={(0, 0)}))
        with pytest.raises(RoundAborted) as e:
            system.round(echo, {0: [1]})
        assert e.value.cause == "transient"
        assert system.round(echo, {0: [1]}) == {0: [1]}  # round 1: clean
        assert inj.stats.transient_errors == 1

    def test_request_lost(self):
        system = PIMSystem(2, seed=1)
        inj = system.install_faults(FaultPlan(drop_requests={(0, 1)}))
        with pytest.raises(RoundAborted) as e:
            system.round(echo, {1: [1]})
        assert e.value.cause == "request_lost" and e.value.modules == (1,)
        assert inj.stats.dropped_requests == 1

    def test_reply_lost_is_post_kernel(self):
        system = PIMSystem(1, seed=1)
        inj = system.install_faults(FaultPlan(drop_replies={(0, 0)}))
        before = system.snapshot()
        with pytest.raises(RoundAborted) as e:
            system.round(echo, {0: [1, 2]})
        assert e.value.cause == "reply_lost" and e.value.kernels_ran
        d = system.snapshot().delta(before)
        assert d.pim_work > 0  # the kernel really ran (crash-before-ack)
        assert inj.stats.dropped_replies == 1

    def test_duplicate_reply_doubles_words_from(self):
        def run(plan):
            system = PIMSystem(1, seed=1)
            system.install_faults(plan)
            before = system.snapshot()
            system.round(echo, {0: [1, 2, 3]})
            return system.snapshot().delta(before)

        clean = run(FaultPlan.empty())
        duped = run(FaultPlan(duplicate_replies={(0, 0)}))
        # words_to identical; module->host reply words counted twice
        assert duped.total_communication == \
            clean.total_communication + clean.total_communication // 2

    def test_straggler_penalty_accrues_and_is_consumed(self):
        system = PIMSystem(2, seed=1)
        inj = system.install_faults(
            FaultPlan(stragglers=(StragglerSpec(0, 3.0, 0, 2),))
        )
        system.round(echo, {0: [1]})  # round 0: +2.0
        system.round(echo, {1: [1]})  # module 0 not addressed: no penalty
        system.round(echo, {0: [1]})  # round 2: window closed
        assert inj.take_straggle_penalty() == pytest.approx(2.0)
        assert inj.take_straggle_penalty() == 0.0
        assert inj.stats.straggle_events == 1

    def test_rounds_count_from_install_and_suspend_freezes_clock(self):
        system = PIMSystem(1, seed=1)
        system.round(echo, {0: [1]})  # pre-install rounds don't count
        inj = system.install_faults(FaultPlan.empty())
        assert inj.round_index == -1
        system.round(echo, {0: [1]})
        assert inj.round_index == 0
        with inj.suspended():
            system.round(echo, {0: [1]})
        assert inj.round_index == 0  # suspended rounds are off the clock

    def test_suspended_rounds_do_not_fire_events(self):
        system = PIMSystem(1, seed=1)
        inj = system.install_faults(FaultPlan(crashes={0: 0}))
        with inj.suspended():
            assert system.round(echo, {0: [7]}) == {0: [7]}
        assert inj.crashed == set()

    def test_clear_faults(self):
        system = PIMSystem(1, seed=1)
        system.install_faults(FaultPlan(crashes={0: 0}))
        system.clear_faults()
        assert system.round(echo, {0: [1]}) == {0: [1]}


# ----------------------------------------------------------------------
class TestSystemValidation:
    def test_bad_module_id_raises_before_any_kernel_runs(self):
        system = PIMSystem(2, seed=1)
        ran = []

        def spy(ctx, reqs):
            ran.append(reqs)
            return []

        before = system.snapshot()
        with pytest.raises(IndexError, match="module id 5"):
            system.round(spy, {0: [1], 5: [2]})
        assert ran == []  # no partial side effects
        assert system.snapshot().delta(before).io_rounds == 0

    def test_register_kernel_reload_error_names_kernel(self):
        system = PIMSystem(1, seed=1)
        system.register_kernel("k", echo)
        system.register_kernel("k", echo)  # same object: idempotent no-op
        with pytest.raises(ValueError, match="'k' already registered"):
            system.register_kernel("k", lambda ctx, reqs: [])


# ----------------------------------------------------------------------
class TestRecovery:
    def test_recover_is_a_noop_when_healthy(self):
        system, trie, _ = fresh_trie()
        system.install_faults(FaultPlan.empty())
        assert recover(trie) == 0
        assert system.faults.stats.recoveries == 0

    def test_crash_during_insert_then_full_recovery(self):
        system, trie, keys = fresh_trie()
        inj = system.install_faults(FaultPlan(crashes={1: 0}))
        extra = uniform_keys(8, 32, seed=99)
        out = run_with_recovery(
            trie, trie.insert_batch, extra, [str(k) for k in extra]
        )
        assert out == len(set(extra) - set(keys))
        assert inj.crashed == set()
        assert inj.stats.crashes == 1
        assert inj.stats.restarts == 1
        assert inj.stats.retries >= 1
        assert inj.stats.recoveries >= 1
        assert inj.stats.rebuild_rounds > 0
        trie.validate()
        assert trie.lookup_batch(extra) == [str(k) for k in extra]
        assert trie.lookup_batch(keys) == [k for k in keys]

    def test_reply_lost_retry_is_idempotent(self):
        system, trie, keys = fresh_trie()
        n0 = trie.num_keys()
        system.install_faults(FaultPlan(drop_replies={
            (0, m) for m in range(4)
        }))
        k = bs("1100110011001100")
        run_with_recovery(trie, trie.insert_batch, [k], ["v"])
        assert trie.num_keys() == n0 + 1  # applied exactly once
        assert trie.lookup_batch([k]) == ["v"]
        trie.validate()

    def test_dirty_structure_triggers_full_rebuild(self):
        system, trie, keys = fresh_trie()
        system.install_faults(FaultPlan.empty())
        trie._dirty_structure = True  # as an aborted maintenance leaves it
        rounds = recover(trie)
        assert rounds > 0
        assert not trie._dirty_structure
        trie.validate()
        assert sorted(map(str, trie.keys())) == sorted(map(str, keys))
        assert trie.lookup_batch(keys) == [k for k in keys]

    def test_stale_handle_faults_loudly_after_recovery(self):
        # module wipes must not recycle local addresses: a host-side
        # handle taken before a crash has to raise KeyError afterwards,
        # never silently resolve to an object recovery re-allocated
        system, trie, keys = fresh_trie()

        def writer(ctx, reqs):
            return [ctx.alloc(r) for r in reqs]

        def reader(ctx, reqs):
            return [ctx.load(a) for a in reqs]

        old_addr = system.round(writer, {1: ["pre-crash"]})[1][0]
        inj = system.install_faults(FaultPlan(crashes={1: 0}))
        with pytest.raises(RoundAborted):
            trie.lcp_batch(keys[:4])
        recover(trie)
        assert inj.crashed == set()
        with inj.suspended():
            with pytest.raises(KeyError, match="no object at local address"):
                system.round(reader, {1: [old_addr]})
            # recovery repopulated module 1; fresh allocations are live
            # and never collide with the pre-crash address
            new_addr = system.round(writer, {1: ["post-crash"]})[1][0]
            assert new_addr != old_addr
            assert system.round(reader, {1: [new_addr]})[1] == ["post-crash"]

    def test_run_with_recovery_exhausts_and_raises(self):
        system, trie, _ = fresh_trie()
        # a transient error on every round the op will ever try
        system.install_faults(FaultPlan(
            transient_errors={(r, m) for r in range(64) for m in range(4)}
        ))
        with pytest.raises(RoundAborted):
            run_with_recovery(trie, trie.lcp_batch, [bs("0101")],
                              max_retries=2)

    def test_random_plan_recovers_to_correct_state(self):
        plan = FaultPlan.random(4, seed=5, crash_rate=0.5, drop_rate=0.02,
                                transient_rate=0.02)
        system, trie, keys = fresh_trie()
        system.install_faults(plan)
        extra = uniform_keys(12, 32, seed=101)
        run_with_recovery(trie, trie.insert_batch, extra,
                          [str(k) for k in extra], max_retries=32)
        run_with_recovery(trie, trie.delete_batch, keys[:10], max_retries=32)
        system.clear_faults()
        trie.validate()
        expect = sorted(
            map(str, (set(keys) - set(keys[:10])) | set(extra))
        )
        assert sorted(map(str, trie.keys())) == expect
