"""Differential tests: every index implementation vs the dict oracle.

Quick profile (CI): 200 seeded randomized op sequences replayed through
PIMTrie, two baselines, and the oracle — zero divergences allowed.  On
failure the sequence is shrunk to a minimal repro before asserting.

Also proven here, on a seed subset:

* **fastpath parity** — replies *and* PIM Model metrics are identical
  with the wall-clock fast path disabled;
* **empty-plan inertness** — installing an empty :class:`FaultPlan`
  leaves the metrics snapshot byte-identical (JSON bytes) to running
  with no fault layer at all.

The ``slow`` profile (deselected by default; ``pytest -m slow``) runs
200 more seeds with longer sequences and larger batches.
"""

import json

import pytest

from repro import fastpath
from repro.faults import FaultPlan

from tests import harness

QUICK_SEEDS = range(200)
SLOW_SEEDS = range(200, 400)
GROUP = 10  # seeds per test item: compact output, still bisectable


def check_seeds(seeds, **gen_kw):
    for seed in seeds:
        ops = harness.gen_ops(seed, **gen_kw)
        bad = harness.divergences(ops)
        if bad:
            small = harness.shrink(
                ops, lambda o: bool(harness.divergences(o))
            )
            raise AssertionError(
                f"seed {seed} diverged:\n" + "\n".join(bad[:4])
                + "\nminimal repro:\n" + harness.format_ops(small)
                + "\n" + "\n".join(harness.divergences(small)[:4])
            )


class TestDifferentialQuick:
    @pytest.mark.parametrize(
        "start", list(QUICK_SEEDS)[::GROUP], ids=lambda s: f"seeds{s}"
    )
    def test_all_indexes_match_oracle(self, start):
        check_seeds(range(start, start + GROUP))


@pytest.mark.slow
class TestDifferentialSlow:
    @pytest.mark.parametrize(
        "start", list(SLOW_SEEDS)[::GROUP], ids=lambda s: f"seeds{s}"
    )
    def test_long_profile(self, start):
        check_seeds(range(start, start + GROUP), batches=12, batch_size=8)


# ----------------------------------------------------------------------
class TestFastpathParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 5, 11, 17])
    def test_replies_and_metrics_identical(self, seed):
        ops = harness.gen_ops(seed)

        def run():
            index = harness.make_pimtrie()
            replies = [
                harness.apply_batch(index, kind, payload)
                for kind, payload in ops
            ]
            snap = index.system.snapshot()
            return replies, snap.as_dict(include_per_module=True)

        fast_replies, fast_metrics = run()
        with fastpath.disabled():
            slow_replies, slow_metrics = run()
        assert fast_replies == slow_replies
        assert fast_metrics == slow_metrics


class TestEmptyPlanInert:
    def run_json(self, ops, install_empty):
        index = harness.make_pimtrie()
        if install_empty:
            index.system.install_faults(FaultPlan.empty())
        replies = [
            harness.apply_batch(index, kind, payload) for kind, payload in ops
        ]
        snap = index.system.snapshot().as_dict(include_per_module=True)
        return replies, json.dumps(snap, sort_keys=True)

    @pytest.mark.parametrize("seed", [0, 3, 7, 13, 19, 29])
    def test_empty_plan_byte_identical_metrics(self, seed):
        ops = harness.gen_ops(seed)
        bare_replies, bare_json = self.run_json(ops, install_empty=False)
        plan_replies, plan_json = self.run_json(ops, install_empty=True)
        assert bare_replies == plan_replies
        assert bare_json == plan_json  # byte-identical accounting
