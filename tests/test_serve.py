"""Tests for the serve layer: scheduler policies, the epoch server, and
the server-vs-direct equivalence guarantee.

The load-bearing property: replaying any trace through
:class:`EpochServer` under *any* scheduler policy yields exactly the
per-op answers of applying the same ops to a ``PIMTrie`` directly in
arrival order — batching is an execution strategy, never a semantic
change.
"""

import pytest

from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.perf import reset_id_counters
from repro.serve import (
    ContinuousBatchingScheduler,
    EpochServer,
    Operation,
    SchedulerPolicy,
    Trace,
    latency_stats,
    make_trace,
    percentile,
    policy_from_name,
    replay_direct,
)
from repro.workloads import uniform_keys

P = 4
RESIDENT = 64
LENGTH = 32


def fresh_trie() -> PIMTrie:
    """A deterministic resident index (same bytes every call)."""
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(RESIDENT, LENGTH, seed=11)
    return PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys, values=keys)


def op(seq, time, kind, key, value=None):
    from repro.bits import BitString

    if isinstance(key, str):
        key = BitString.from_str(key)
    return Operation(seq=seq, client_id=0, time=time, kind=kind,
                     key=key, value=value)


# ----------------------------------------------------------------------
class TestPolicy:
    def test_parse_eager(self):
        p = policy_from_name("eager")
        assert p.max_wait == 0 and not p.affinity

    def test_parse_deadline(self):
        assert policy_from_name("deadline:2.5").max_wait == 2.5
        assert policy_from_name("deadline").max_wait == 1.0

    def test_parse_affinity(self):
        p = policy_from_name("affinity:3")
        assert p.affinity and p.max_wait == 3.0
        assert policy_from_name("affinity").max_wait == 0.0

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            policy_from_name("eager:5")
        with pytest.raises(ValueError):
            policy_from_name("lifo")

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy("x", max_batch=0)
        with pytest.raises(ValueError):
            SchedulerPolicy("x", max_wait=-1)
        with pytest.raises(ValueError):
            SchedulerPolicy("x", max_batch=8, queue_capacity=4)

    def test_describe_mentions_knobs(self):
        d = policy_from_name("deadline:7", queue_capacity=300).describe()
        assert "max_wait=7" in d and "capacity=300" in d


class TestScheduler:
    def make(self, **kw):
        return ContinuousBatchingScheduler(SchedulerPolicy("t", **kw))

    def test_admission_drops_when_full(self):
        s = self.make(max_batch=2, queue_capacity=2)
        assert s.admit(op(0, 0.0, "lcp", "01"))
        assert s.admit(op(1, 0.1, "lcp", "10"))
        assert not s.admit(op(2, 0.2, "lcp", "11"))
        assert len(s.dropped) == 1 and s.admitted == 2

    def test_take_epoch_respects_causality(self):
        s = self.make()
        s.admit(op(0, 1.0, "lcp", "01"))
        s.admit(op(1, 5.0, "lcp", "10"))
        batch = s.take_epoch(2.0)
        assert [o.seq for o in batch] == [0]
        assert len(s) == 1  # the future op stays queued

    def test_take_epoch_caps_at_max_batch(self):
        s = self.make(max_batch=3)
        for i in range(5):
            s.admit(op(i, float(i), "lcp", "01"))
        assert [o.seq for o in s.take_epoch(10.0)] == [0, 1, 2]

    def test_affinity_takes_leading_run_only(self):
        s = self.make(affinity=True)
        for i, kind in enumerate(["lcp", "lcp", "insert", "lcp"]):
            s.admit(op(i, float(i), kind, "01", "v" if kind == "insert" else None))
        assert [o.seq for o in s.take_epoch(10.0)] == [0, 1]
        assert [o.seq for o in s.take_epoch(10.0)] == [2]

    def test_fill_arrival(self):
        s = self.make(max_batch=2)
        s.admit(op(0, 1.0, "lcp", "01"))
        assert not s.full()
        s.admit(op(1, 3.0, "lcp", "10"))
        assert s.full() and s.fill_arrival() == 3.0


# ----------------------------------------------------------------------
def normalize(reply):
    """Subtree replies are key/value sets; order is not part of the API."""
    if isinstance(reply, list):
        return sorted((str(k), str(v)) for k, v in reply)
    return reply


POLICIES = [
    policy_from_name("eager"),
    policy_from_name("deadline:5"),
    policy_from_name("deadline:500"),  # one giant epoch per lull
    policy_from_name("affinity"),
    policy_from_name("affinity:50"),
    policy_from_name("eager", max_batch=4),  # forces mid-run epoch splits
    policy_from_name("deadline:50", max_batch=8, queue_capacity=8),
]


class TestEquivalence:
    @pytest.mark.parametrize("seed", [3, 9])
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.describe())
    def test_server_matches_direct_replay(self, policy, seed):
        trace = make_trace(100, length=LENGTH, rate=2.0, seed=seed)
        report = EpochServer(fresh_trie(), policy).run(trace)

        served = {c.seq: c.reply for c in report.completed}
        # replay only the ops the server admitted (a bounded queue may
        # legitimately reject some; semantics are defined over admitted ops)
        direct_trie = fresh_trie()
        admitted = [o for o in trace.ops if o.seq in served]
        direct = dict(replay_direct(direct_trie, admitted))

        assert set(served) == set(direct)
        for seq in served:
            assert normalize(served[seq]) == normalize(direct[seq]), seq
        assert len(served) + report.dropped == len(trace)

    def test_final_state_matches(self):
        trace = make_trace(100, length=LENGTH, rate=2.0, seed=5)
        server_trie = fresh_trie()
        EpochServer(server_trie, policy_from_name("deadline:5")).run(trace)
        direct_trie = fresh_trie()
        replay_direct(direct_trie, trace.ops)
        assert sorted(map(str, server_trie.keys())) == \
            sorted(map(str, direct_trie.keys()))
        assert server_trie.num_keys() == direct_trie.num_keys()
        server_trie.validate()

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.describe())
    def test_interleaved_insert_lcp_delete_lcp(self, policy):
        """The issue's canonical sequence, explicit and hand-checkable."""
        from repro.bits import BitString

        k = BitString.from_str("1011" * (LENGTH // 4))
        ops = [
            op(0, 1.0, "insert", k, "payload"),
            op(1, 2.0, "lcp", k),
            op(2, 3.0, "delete", k),
            op(3, 4.0, "lcp", k),
        ]
        report = EpochServer(fresh_trie(), policy).run(Trace(ops, name="ilil"))
        replies = {c.seq: c.reply for c in report.completed}
        assert replies[0] is True and replies[2] is True
        assert replies[1] == LENGTH  # sees its own insert
        assert replies[3] < LENGTH  # and then its deletion
        direct = dict(replay_direct(fresh_trie(), ops))
        assert {s: normalize(r) for s, r in replies.items()} == \
            {s: normalize(r) for s, r in direct.items()}


# ----------------------------------------------------------------------
class TestServerBehavior:
    def run_smoke(self, policy_spec="deadline:5", **kw):
        trace = make_trace(80, length=LENGTH, rate=1.0, seed=4)
        policy = policy_from_name(policy_spec, **kw)
        return EpochServer(fresh_trie(), policy).run(trace)

    def test_report_accounting(self):
        r = self.run_smoke()
        assert len(r.completed) == r.num_ops == 80
        assert r.dropped == 0
        assert sum(e.size for e in r.epochs) == 80
        assert r.makespan > 0 and r.throughput > 0

    def test_epochs_and_latencies_monotone(self):
        r = self.run_smoke()
        for prev, cur in zip(r.epochs, r.epochs[1:]):
            assert cur.launch >= prev.completion  # one server, no overlap
            assert cur.completion >= prev.completion
        for e in r.epochs:
            assert e.io_rounds > 0 and e.service > 0
        for c in r.completed:
            assert c.latency >= 0
            assert c.arrival <= c.launch < c.completion
            # an op waits at least through its own epoch's rounds
            assert c.latency_rounds >= r.epochs[c.epoch].io_rounds
            assert c.wall_seconds >= r.epochs[c.epoch].wall_seconds

    def test_metrics_sum_over_epochs(self):
        r = self.run_smoke()
        assert r.metrics.io_rounds == sum(e.io_rounds for e in r.epochs)
        assert r.metrics.total_communication == \
            sum(e.communication for e in r.epochs)

    def test_deadline_batches_more_than_eager(self):
        eager = self.run_smoke("eager")
        slow = self.run_smoke("deadline:100")
        assert len(slow.epochs) < len(eager.epochs)
        assert slow.rounds_per_op < eager.rounds_per_op
        assert slow.latency()["p99"] > eager.latency()["p99"]

    def test_bounded_queue_sheds_load(self):
        trace = make_trace(200, length=LENGTH, rate=50.0, seed=8)
        policy = policy_from_name("deadline:100", max_batch=16,
                                  queue_capacity=16)
        r = EpochServer(fresh_trie(), policy).run(trace)
        assert r.dropped > 0
        assert len(r.completed) + r.dropped == 200

    def test_as_dict_roundtrips_to_json(self):
        import json

        r = self.run_smoke()
        d = r.as_dict(include_wall=True, include_per_module=True)
        assert json.loads(json.dumps(d)) == d
        assert len(d["metrics"]["per_module_traffic"]) == P
        assert d["completed"] == 80

    def test_max_batch_is_a_report_field(self):
        # the policy's batch cap must reach the report as a real field
        # (not an `extra` side-channel) so occupancy uses the true cap
        r = self.run_smoke("deadline:50", max_batch=8)
        assert r.max_batch == 8
        assert "max_batch" not in r.extra
        expected = sum(e.size for e in r.epochs) / (len(r.epochs) * 8)
        assert r.occupancy() == pytest.approx(expected)
        assert 0.0 < r.occupancy() <= 1.0
        assert r.as_dict()["max_batch"] == 8

    def test_format_summary_deterministic_mode(self):
        r = self.run_smoke()
        text = r.format_summary(deterministic_only=True)
        assert "wall-clock" not in text
        assert "latency (rounds)" in text
        assert "wall-clock" in r.format_summary()

    def test_service_model_validation(self):
        with pytest.raises(ValueError):
            EpochServer(fresh_trie(), policy_from_name("eager"),
                        round_time=-1.0)


# ----------------------------------------------------------------------
class TestSLO:
    def test_percentile_nearest_rank(self):
        vals = list(range(1, 101))
        assert percentile(vals, 50) == 50
        assert percentile(vals, 99) == 99
        assert percentile(vals, 100) == 100
        assert percentile([7.0], 99) == 7.0
        assert percentile([], 50) == 0.0

    def test_latency_stats_fields(self):
        s = latency_stats([1.0, 2.0, 3.0, 4.0])
        assert s["p50"] == 2.0 and s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)


# ----------------------------------------------------------------------
class TestTrace:
    def test_make_trace_deterministic(self):
        a = make_trace(50, seed=2)
        b = make_trace(50, seed=2)
        assert [(o.time, o.kind, str(o.key), o.client_id) for o in a.ops] == \
            [(o.time, o.kind, str(o.key), o.client_id) for o in b.ops]

    def test_ops_sorted_and_sequenced(self):
        t = make_trace(50, seed=2)
        times = [o.time for o in t.ops]
        assert times == sorted(times)
        assert [o.seq for o in t.ops] == list(range(50))
        assert t.duration() == times[-1]

    def test_kind_counts_cover_all_ops(self):
        t = make_trace(60, seed=3)
        assert sum(t.kind_counts().values()) == 60

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            op(0, 0.0, "scan", "01")

    def test_clients_bounded(self):
        t = make_trace(50, num_clients=4, seed=2)
        assert {o.client_id for o in t.ops} <= set(range(4))
        with pytest.raises(ValueError):
            make_trace(5, num_clients=0)


# ----------------------------------------------------------------------
class TestCLISmoke:
    def test_serve_smoke_byte_deterministic(self, capsys):
        from repro.cli import main

        assert main(["serve", "--smoke"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--smoke"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "latency (rounds)" in first
        assert "wall-clock" not in first
