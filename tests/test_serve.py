"""Tests for the serve layer: scheduler policies, the epoch server, and
the server-vs-direct equivalence guarantee.

The load-bearing property: replaying any trace through
:class:`EpochServer` under *any* scheduler policy yields exactly the
per-op answers of applying the same ops to a ``PIMTrie`` directly in
arrival order — batching is an execution strategy, never a semantic
change.
"""

import pytest

from repro import PIMSystem, PIMTrie, PIMTrieConfig
from repro.perf import reset_id_counters
from repro.serve import (
    ContinuousBatchingScheduler,
    EpochServer,
    Operation,
    SchedulerPolicy,
    Trace,
    latency_stats,
    make_trace,
    percentile,
    policy_from_name,
    replay_direct,
)
from repro.workloads import uniform_keys

P = 4
RESIDENT = 64
LENGTH = 32


def fresh_trie() -> PIMTrie:
    """A deterministic resident index (same bytes every call)."""
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(RESIDENT, LENGTH, seed=11)
    return PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys, values=keys)


def op(seq, time, kind, key, value=None):
    from repro.bits import BitString

    if isinstance(key, str):
        key = BitString.from_str(key)
    return Operation(seq=seq, client_id=0, time=time, kind=kind,
                     key=key, value=value)


# ----------------------------------------------------------------------
class TestPolicy:
    def test_parse_eager(self):
        p = policy_from_name("eager")
        assert p.max_wait == 0 and not p.affinity

    def test_parse_deadline(self):
        assert policy_from_name("deadline:2.5").max_wait == 2.5
        assert policy_from_name("deadline").max_wait == 1.0

    def test_parse_affinity(self):
        p = policy_from_name("affinity:3")
        assert p.affinity and p.max_wait == 3.0
        assert policy_from_name("affinity").max_wait == 0.0

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            policy_from_name("eager:5")
        with pytest.raises(ValueError):
            policy_from_name("lifo")

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy("x", max_batch=0)
        with pytest.raises(ValueError):
            SchedulerPolicy("x", max_wait=-1)
        with pytest.raises(ValueError):
            SchedulerPolicy("x", max_batch=8, queue_capacity=4)

    def test_describe_mentions_knobs(self):
        d = policy_from_name("deadline:7", queue_capacity=300).describe()
        assert "max_wait=7" in d and "capacity=300" in d

    def test_parse_adaptive(self):
        p = policy_from_name("adaptive:80")
        assert p.adaptive and p.target_p99 == 80.0
        assert p.affinity  # grouping rides along
        assert p.max_wait == 40.0  # initial deadline = target/2
        assert policy_from_name("adaptive").target_p99 == 50.0

    def test_adaptive_validation(self):
        with pytest.raises(ValueError):
            SchedulerPolicy("x", adaptive=True)  # needs target_p99 > 0
        with pytest.raises(ValueError):
            SchedulerPolicy("x", target_p99=10.0)  # needs adaptive

    def test_parse_degraded_suffix(self):
        p = policy_from_name("deadline:20@deg=8")
        assert p.max_wait == 20.0 and p.degraded_capacity == 8
        assert "degraded=8" in p.describe()

    def test_degraded_keyword_and_suffix_precedence(self):
        # the keyword is the programmatic route; the suffix wins if both
        assert policy_from_name("eager", degraded_capacity=6) \
            .degraded_capacity == 6
        assert policy_from_name("eager@deg=4", degraded_capacity=6) \
            .degraded_capacity == 4

    def test_degraded_suffix_errors(self):
        with pytest.raises(ValueError):
            policy_from_name("eager@deg")  # no value
        with pytest.raises(ValueError):
            policy_from_name("eager@cap=4")  # unknown key
        with pytest.raises(ValueError):
            policy_from_name("deadline:5@deg=0")  # must be >= 1
        with pytest.raises(ValueError):
            # degradation sheds load; it cannot add headroom
            policy_from_name("eager@deg=500", queue_capacity=300)

    @pytest.mark.parametrize("spec", [
        "eager", "deadline:2.5", "affinity", "affinity:3",
        "adaptive:80", "eager@deg=8", "deadline:20@deg=8",
        "affinity:3@deg=16", "adaptive:80@deg=8",
    ])
    def test_spec_round_trips(self, spec):
        p = policy_from_name(spec, max_batch=64, queue_capacity=128)
        assert policy_from_name(
            p.spec(), max_batch=p.max_batch, queue_capacity=p.queue_capacity
        ) == p


class TestScheduler:
    def make(self, **kw):
        return ContinuousBatchingScheduler(SchedulerPolicy("t", **kw))

    def test_admission_drops_when_full(self):
        s = self.make(max_batch=2, queue_capacity=2)
        assert s.admit(op(0, 0.0, "lcp", "01"))
        assert s.admit(op(1, 0.1, "lcp", "10"))
        assert not s.admit(op(2, 0.2, "lcp", "11"))
        assert len(s.dropped) == 1 and s.admitted == 2

    def test_take_epoch_respects_causality(self):
        s = self.make()
        s.admit(op(0, 1.0, "lcp", "01"))
        s.admit(op(1, 5.0, "lcp", "10"))
        batch = s.take_epoch(2.0)
        assert [o.seq for o in batch] == [0]
        assert len(s) == 1  # the future op stays queued

    def test_take_epoch_caps_at_max_batch(self):
        s = self.make(max_batch=3)
        for i in range(5):
            s.admit(op(i, float(i), "lcp", "01"))
        assert [o.seq for o in s.take_epoch(10.0)] == [0, 1, 2]

    def test_affinity_takes_leading_run_only(self):
        s = self.make(affinity=True)
        for i, kind in enumerate(["lcp", "lcp", "insert", "lcp"]):
            s.admit(op(i, float(i), kind, "01", "v" if kind == "insert" else None))
        assert [o.seq for o in s.take_epoch(10.0)] == [0, 1]
        assert [o.seq for o in s.take_epoch(10.0)] == [2]

    def test_fill_arrival(self):
        s = self.make(max_batch=2)
        s.admit(op(0, 1.0, "lcp", "01"))
        assert not s.full()
        s.admit(op(1, 3.0, "lcp", "10"))
        assert s.full() and s.fill_arrival() == 3.0


# ----------------------------------------------------------------------
def normalize(reply):
    """Subtree replies are key/value sets; order is not part of the API."""
    if isinstance(reply, list):
        return sorted((str(k), str(v)) for k, v in reply)
    return reply


POLICIES = [
    policy_from_name("eager"),
    policy_from_name("deadline:5"),
    policy_from_name("deadline:500"),  # one giant epoch per lull
    policy_from_name("affinity"),
    policy_from_name("affinity:50"),
    policy_from_name("eager", max_batch=4),  # forces mid-run epoch splits
    policy_from_name("deadline:50", max_batch=8, queue_capacity=8),
    policy_from_name("adaptive:40"),  # closed-loop knob tuning
    policy_from_name("deadline:5@deg=8", max_batch=16, queue_capacity=32),
]

#: an op mix with ordered reads, so pipelined runs exercise the
#: snapshot-prewarm hazard path, not just the plain overlap
MIX_ORDERED = {
    "lcp": 0.4, "insert": 0.15, "delete": 0.05, "subtree": 0.1,
    "pred": 0.1, "range": 0.1, "count": 0.05, "topk": 0.05,
}


class TestEquivalence:
    @pytest.mark.parametrize("pipelined", [False, True],
                             ids=["sequential", "pipelined"])
    @pytest.mark.parametrize("seed", [3, 9])
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.describe())
    def test_server_matches_direct_replay(self, policy, seed, pipelined):
        trace = make_trace(100, length=LENGTH, rate=2.0, seed=seed)
        server = EpochServer(
            fresh_trie(), policy, pipelined=pipelined,
            prep_time=0.05 if pipelined else 0.0,
            asm_time=0.02 if pipelined else 0.0,
        )
        report = server.run(trace)

        served = {c.seq: c.reply for c in report.completed}
        # replay only the ops the server admitted (a bounded queue may
        # legitimately reject some; semantics are defined over admitted ops)
        direct_trie = fresh_trie()
        admitted = [o for o in trace.ops if o.seq in served]
        direct = dict(replay_direct(direct_trie, admitted))

        assert set(served) == set(direct)
        for seq in served:
            assert normalize(served[seq]) == normalize(direct[seq]), seq
        assert len(served) + report.dropped == len(trace)

    @pytest.mark.parametrize(
        "policy",
        [p for p in POLICIES if p.queue_capacity is None],
        ids=lambda p: p.describe(),
    )
    def test_pipelined_matches_sequential_with_ordered_ops(self, policy):
        """Pipelined replies equal the sequential run's, op for op, on a
        trace whose ordered reads force the write-hazard drain.

        Restricted to unbounded queues: pipelining legitimately shifts
        cut times, so a bounded queue may shed a *different* (equally
        valid) subset — those policies are covered against the direct
        replay above instead.
        """
        trace = make_trace(100, length=LENGTH, rate=2.0, seed=6,
                           mix=MIX_ORDERED)
        seq_report = EpochServer(
            fresh_trie(), policy, prep_time=0.1, asm_time=0.05
        ).run(trace)
        pip_report = EpochServer(
            fresh_trie(), policy, pipelined=True,
            prep_time=0.1, asm_time=0.05,
        ).run(trace)
        seq = {c.seq: c.reply for c in seq_report.completed}
        pip = {c.seq: c.reply for c in pip_report.completed}
        assert set(seq) == set(pip)
        for s in seq:
            assert normalize(seq[s]) == normalize(pip[s]), s

    def test_final_state_matches(self):
        trace = make_trace(100, length=LENGTH, rate=2.0, seed=5)
        server_trie = fresh_trie()
        EpochServer(server_trie, policy_from_name("deadline:5")).run(trace)
        direct_trie = fresh_trie()
        replay_direct(direct_trie, trace.ops)
        assert sorted(map(str, server_trie.keys())) == \
            sorted(map(str, direct_trie.keys()))
        assert server_trie.num_keys() == direct_trie.num_keys()
        server_trie.validate()

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.describe())
    def test_interleaved_insert_lcp_delete_lcp(self, policy):
        """The issue's canonical sequence, explicit and hand-checkable."""
        from repro.bits import BitString

        k = BitString.from_str("1011" * (LENGTH // 4))
        ops = [
            op(0, 1.0, "insert", k, "payload"),
            op(1, 2.0, "lcp", k),
            op(2, 3.0, "delete", k),
            op(3, 4.0, "lcp", k),
        ]
        report = EpochServer(fresh_trie(), policy).run(Trace(ops, name="ilil"))
        replies = {c.seq: c.reply for c in report.completed}
        assert replies[0] is True and replies[2] is True
        assert replies[1] == LENGTH  # sees its own insert
        assert replies[3] < LENGTH  # and then its deletion
        direct = dict(replay_direct(fresh_trie(), ops))
        assert {s: normalize(r) for s, r in replies.items()} == \
            {s: normalize(r) for s, r in direct.items()}


# ----------------------------------------------------------------------
class TestServerBehavior:
    def run_smoke(self, policy_spec="deadline:5", **kw):
        trace = make_trace(80, length=LENGTH, rate=1.0, seed=4)
        policy = policy_from_name(policy_spec, **kw)
        return EpochServer(fresh_trie(), policy).run(trace)

    def test_report_accounting(self):
        r = self.run_smoke()
        assert len(r.completed) == r.num_ops == 80
        assert r.dropped == 0
        assert sum(e.size for e in r.epochs) == 80
        assert r.makespan > 0 and r.throughput > 0

    def test_epochs_and_latencies_monotone(self):
        r = self.run_smoke()
        for prev, cur in zip(r.epochs, r.epochs[1:]):
            assert cur.launch >= prev.completion  # one server, no overlap
            assert cur.completion >= prev.completion
        for e in r.epochs:
            assert e.io_rounds > 0 and e.service > 0
        for c in r.completed:
            assert c.latency >= 0
            assert c.arrival <= c.launch < c.completion
            # an op waits at least through its own epoch's rounds
            assert c.latency_rounds >= r.epochs[c.epoch].io_rounds
            assert c.wall_seconds >= r.epochs[c.epoch].wall_seconds

    def test_metrics_sum_over_epochs(self):
        r = self.run_smoke()
        assert r.metrics.io_rounds == sum(e.io_rounds for e in r.epochs)
        assert r.metrics.total_communication == \
            sum(e.communication for e in r.epochs)

    def test_deadline_batches_more_than_eager(self):
        eager = self.run_smoke("eager")
        slow = self.run_smoke("deadline:100")
        assert len(slow.epochs) < len(eager.epochs)
        assert slow.rounds_per_op < eager.rounds_per_op
        assert slow.latency()["p99"] > eager.latency()["p99"]

    def test_bounded_queue_sheds_load(self):
        trace = make_trace(200, length=LENGTH, rate=50.0, seed=8)
        policy = policy_from_name("deadline:100", max_batch=16,
                                  queue_capacity=16)
        r = EpochServer(fresh_trie(), policy).run(trace)
        assert r.dropped > 0
        assert len(r.completed) + r.dropped == 200

    def test_as_dict_roundtrips_to_json(self):
        import json

        r = self.run_smoke()
        d = r.as_dict(include_wall=True, include_per_module=True)
        assert json.loads(json.dumps(d)) == d
        assert len(d["metrics"]["per_module_traffic"]) == P
        assert d["completed"] == 80

    def test_max_batch_is_a_report_field(self):
        # the policy's batch cap must reach the report as a real field
        # (not an `extra` side-channel) so occupancy uses the true cap
        r = self.run_smoke("deadline:50", max_batch=8)
        assert r.max_batch == 8
        assert "max_batch" not in r.extra
        expected = sum(e.size for e in r.epochs) / (len(r.epochs) * 8)
        assert r.occupancy() == pytest.approx(expected)
        assert 0.0 < r.occupancy() <= 1.0
        assert r.as_dict()["max_batch"] == 8

    def test_format_summary_deterministic_mode(self):
        r = self.run_smoke()
        text = r.format_summary(deterministic_only=True)
        assert "wall-clock" not in text
        assert "latency (rounds)" in text
        assert "wall-clock" in r.format_summary()

    def test_service_model_validation(self):
        with pytest.raises(ValueError):
            EpochServer(fresh_trie(), policy_from_name("eager"),
                        round_time=-1.0)
        with pytest.raises(ValueError):
            EpochServer(fresh_trie(), policy_from_name("eager"),
                        prep_time=-0.1)
        with pytest.raises(ValueError):
            EpochServer(fresh_trie(), policy_from_name("eager"),
                        asm_time=-0.1)


# ----------------------------------------------------------------------
class TestPipelined:
    def run_pair(self, *, mix=None, rate=4.0, n=120, seed=4,
                 policy_spec="deadline:5"):
        trace = make_trace(n, length=LENGTH, rate=rate, seed=seed, mix=mix)
        kw = dict(prep_time=0.2, asm_time=0.05)
        seq = EpochServer(
            fresh_trie(), policy_from_name(policy_spec), **kw
        ).run(trace)
        pip = EpochServer(
            fresh_trie(), policy_from_name(policy_spec), pipelined=True, **kw
        ).run(trace)
        return seq, pip

    def test_overlap_and_speedup_under_load(self):
        seq, pip = self.run_pair()
        assert seq.host_overlap == 0.0  # sequential never hides prep
        assert pip.host_overlap > 0.0
        assert pip.makespan <= seq.makespan

    def test_module_rounds_never_overlap(self):
        # the modules are one resource: epoch k+1's rounds start only
        # after epoch k's rounds ended (prep may overlap; rounds cannot)
        _, pip = self.run_pair()
        for prev, cur in zip(pip.epochs, pip.epochs[1:]):
            prev_rounds_end = prev.completion - prev.asm
            assert cur.rounds_start >= prev_rounds_end
            assert cur.rounds_start >= cur.launch + cur.prep

    def test_pipelined_launch_can_precede_prev_completion(self):
        seq, pip = self.run_pair()
        # sequential: strictly serial epochs
        assert all(
            cur.launch >= prev.completion
            for prev, cur in zip(seq.epochs, seq.epochs[1:])
        )
        # pipelined under load: some epoch was cut while the previous
        # one was still in its module rounds — the overlap is real
        assert any(
            cur.launch < prev.completion
            for prev, cur in zip(pip.epochs, pip.epochs[1:])
        )

    def test_ordered_reads_serialize_after_write_hazards(self):
        # the hazard rule's observable guarantee: an ordered read's
        # snapshot — whether prewarmed in prep or built inside the
        # rounds phase — materializes no earlier than the rounds-end of
        # every preceding mutating epoch (when its writes became final)
        _, pip = self.run_pair(mix=MIX_ORDERED, seed=6)
        from repro.serve.server import ORDERED_KINDS, WRITE_KINDS

        saw_ordered_after_write = False
        hazard = 0.0
        for e in pip.epochs:
            if any(k in ORDERED_KINDS for k in e.kinds):
                assert e.rounds_start >= hazard
                saw_ordered_after_write = saw_ordered_after_write or hazard > 0
            if any(k in WRITE_KINDS for k in e.kinds):
                hazard = e.completion - e.asm
        assert saw_ordered_after_write, \
            "trace never exercised the write→ordered-read hazard"

    def test_report_pipeline_fields(self):
        seq, pip = self.run_pair()
        d = pip.as_dict()
        assert d["pipelined"] is True
        assert d["prep_time"] == 0.2 and d["asm_time"] == 0.05
        assert d["host_overlap"] == pip.host_overlap
        assert "pipeline" in pip.format_summary()
        # zero-host-cost sequential reports keep their original bytes
        plain = EpochServer(
            fresh_trie(), policy_from_name("deadline:5")
        ).run(make_trace(40, length=LENGTH, rate=1.0, seed=4))
        assert "pipelined" not in plain.as_dict()


# ----------------------------------------------------------------------
class TestAdaptivePolicy:
    def test_controller_decisions_reach_report(self):
        trace = make_trace(300, length=LENGTH, rate=2.0, seed=5)
        r = EpochServer(
            fresh_trie(), policy_from_name("adaptive:30")
        ).run(trace)
        sched = r.extra["sched"]
        assert sched["target_p99"] == 30.0
        assert sched["decisions"], "controller never committed a decision"
        for d in sched["decisions"]:
            assert d["action"] in ("tighten", "relax")
            assert d["max_wait"] >= 0 and d["max_batch"] >= 1

    def test_decisions_emit_sched_spans_without_changing_sums(self):
        from repro.obs import Tracer, sched_decisions

        trace = make_trace(300, length=LENGTH, rate=2.0, seed=5)

        bare = EpochServer(
            fresh_trie(), policy_from_name("adaptive:30")
        ).run(trace)

        trie = fresh_trie()
        tracer = Tracer().attach(trie.system)
        traced = EpochServer(
            trie, policy_from_name("adaptive:30")
        ).run(trace)
        # the controller consumes only simulated quantities the server
        # computes itself, so tracing must not perturb the run ...
        assert [c.reply for c in traced.completed] == \
            [c.reply for c in bare.completed]
        assert traced.extra["sched"] == bare.extra["sched"]
        # ... and every committed decision appears as a sched.* span
        seen = sched_decisions(tracer)
        assert [s["action"] for s in seen] == \
            [d["action"] for d in traced.extra["sched"]["decisions"]]

    def test_adaptive_requires_adaptive_policy(self):
        from repro.serve import AdaptiveController

        policy = policy_from_name("deadline:5")
        sched = ContinuousBatchingScheduler(policy)
        with pytest.raises(ValueError):
            AdaptiveController(policy, sched)

    def test_set_knobs_clamps(self):
        sched = ContinuousBatchingScheduler(
            policy_from_name("deadline:5", max_batch=16, queue_capacity=32)
        )
        sched.set_knobs(max_wait=-3.0, max_batch=0)
        assert sched.max_wait == 0.0 and sched.max_batch == 1
        sched.set_knobs(max_batch=10_000)
        assert sched.max_batch == 32  # capped at queue capacity


# ----------------------------------------------------------------------
class TestSLO:
    def test_percentile_nearest_rank(self):
        vals = list(range(1, 101))
        assert percentile(vals, 50) == 50
        assert percentile(vals, 99) == 99
        assert percentile(vals, 100) == 100
        assert percentile([7.0], 99) == 7.0
        assert percentile([], 50) == 0.0

    def test_latency_stats_fields(self):
        s = latency_stats([1.0, 2.0, 3.0, 4.0])
        assert s["p50"] == 2.0 and s["max"] == 4.0
        assert s["mean"] == pytest.approx(2.5)

    def test_percentile_rejects_invalid_q(self):
        for bad in (-1, -0.001, 100.001, 150, float("nan")):
            with pytest.raises(ValueError):
                percentile([1.0, 2.0], bad)
        # the boundaries themselves are legal
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 100) == 2.0

    def test_percentile_matches_exact_reference(self):
        """Property test against the definition: nearest-rank picks the
        smallest rank r with r * 100 >= q * n, via exact integer
        cross-multiplication (no float division anywhere)."""
        import random

        from fractions import Fraction

        def reference(values, q):
            if not values:
                return 0.0
            s = sorted(values)
            n = len(s)
            qf = Fraction(str(q)) if isinstance(q, float) else Fraction(q)
            for r in range(1, n + 1):
                if r * 100 >= qf * n:
                    return s[max(r, 1) - 1]
            return s[-1]

        rng = random.Random(42)
        qs = [0, 1, 25, 50, 75, 90, 95, 99, 100,
              0.1, 33.3, 99.9, 99.99, 50.5]
        for _ in range(200):
            n = rng.randrange(1, 40)
            vals = [rng.uniform(-100, 100) for _ in range(n)]
            for q in qs:
                assert percentile(vals, q) == reference(vals, q), (vals, q)

    def test_percentile_no_float_artifacts(self):
        # 99.9% of 1000 samples is exactly rank 999; binary-float
        # evaluation of 1000 * 99.9 / 100 lands at 999.0000000000001,
        # whose ceiling (rank 1000) would read the wrong element
        vals = list(range(1, 1001))
        assert percentile(vals, 99.9) == 999
        # 29 * 70 / 100 = 20.3 -> rank 21, robust to representation
        assert percentile(list(range(1, 30)), 70) == 21


# ----------------------------------------------------------------------
class TestTrace:
    def test_make_trace_deterministic(self):
        a = make_trace(50, seed=2)
        b = make_trace(50, seed=2)
        assert [(o.time, o.kind, str(o.key), o.client_id) for o in a.ops] == \
            [(o.time, o.kind, str(o.key), o.client_id) for o in b.ops]

    def test_ops_sorted_and_sequenced(self):
        t = make_trace(50, seed=2)
        times = [o.time for o in t.ops]
        assert times == sorted(times)
        assert [o.seq for o in t.ops] == list(range(50))
        assert t.duration() == times[-1]

    def test_kind_counts_cover_all_ops(self):
        t = make_trace(60, seed=3)
        assert sum(t.kind_counts().values()) == 60

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            op(0, 0.0, "scan", "01")

    def test_clients_bounded(self):
        t = make_trace(50, num_clients=4, seed=2)
        assert {o.client_id for o in t.ops} <= set(range(4))
        with pytest.raises(ValueError):
            make_trace(5, num_clients=0)


# ----------------------------------------------------------------------
class TestCLISmoke:
    def test_serve_smoke_byte_deterministic(self, capsys):
        from repro.cli import main

        assert main(["serve", "--smoke"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--smoke"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "latency (rounds)" in first
        assert "wall-clock" not in first
