"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.bits import BitString
from repro.workloads import (
    OP_KINDS,
    ip_prefixes,
    operation_stream,
    shared_prefix_flood,
    single_range_flood,
    text_keys,
    uniform_keys,
    uniform_variable_keys,
    zipf_prefix,
)


class TestUniform:
    def test_shapes(self):
        ks = uniform_keys(50, 64, seed=1)
        assert len(ks) == 50
        assert all(len(k) == 64 for k in ks)

    def test_seeded_deterministic(self):
        assert uniform_keys(10, 32, seed=7) == uniform_keys(10, 32, seed=7)
        assert uniform_keys(10, 32, seed=7) != uniform_keys(10, 32, seed=8)

    def test_variable_lengths_in_range(self):
        ks = uniform_variable_keys(100, 5, 20, seed=2)
        assert all(5 <= len(k) <= 20 for k in ks)

    def test_variable_zero_length_allowed(self):
        ks = uniform_variable_keys(50, 0, 3, seed=3)
        assert any(len(k) == 0 for k in ks)

    def test_entropy(self):
        """Uniform keys should have near-balanced bit counts."""
        ks = uniform_keys(200, 64, seed=4)
        ones = sum(sum(k) for k in ks)
        assert 0.45 < ones / (200 * 64) < 0.55


class TestAdversarial:
    def test_shared_prefix(self):
        ks = shared_prefix_flood(40, 100, 16, seed=1)
        assert all(len(k) == 116 for k in ks)
        p = ks[0].prefix(100)
        assert all(k.prefix(100) == p for k in ks)
        # pattern prefix, not degenerate all-zero
        assert 0 < sum(p) < 100

    def test_single_range_flood(self):
        ks = single_range_flood(30, 128, seed=2)
        p = ks[0].prefix(64)
        assert all(k.prefix(64) == p for k in ks)

    def test_single_range_flood_short(self):
        ks = single_range_flood(10, 8, seed=2)
        assert all(len(k) == 8 for k in ks)

    def test_zipf_concentrates(self):
        ks = zipf_prefix(500, 32, num_hot=16, theta=1.5, seed=3)
        halves = {}
        for k in ks:
            h = k.prefix(16)
            halves[h] = halves.get(h, 0) + 1
        counts = sorted(halves.values(), reverse=True)
        # the hottest prefix dominates under theta=1.5
        assert counts[0] > len(ks) / 8
        assert len(halves) <= 16


class TestOperationStream:
    def test_deterministic_under_seed(self):
        a = operation_stream(100, 32, seed=5)
        b = operation_stream(100, 32, seed=5)
        assert a == b
        assert a != operation_stream(100, 32, seed=6)

    def test_times_sorted_positive(self):
        ops = operation_stream(200, 32, seed=1)
        times = [o.time for o in ops]
        assert times == sorted(times)
        assert times[0] > 0

    def test_kinds_and_payloads(self):
        ops = operation_stream(300, 32, seed=2, subtree_prefix=12)
        for o in ops:
            assert o.kind in OP_KINDS
            if o.kind == "insert":
                assert isinstance(o.value, str) and o.value.startswith("v")
            else:
                assert o.value is None
            if o.kind == "subtree":
                assert len(o.key) == 12
            else:
                assert len(o.key) == 32

    def test_mix_ratios_approximate(self):
        ops = operation_stream(4000, 32, seed=3, kind_corr=0.0)
        frac = sum(o.kind == "lcp" for o in ops) / len(ops)
        assert 0.55 < frac < 0.65  # default mix says 0.6

    def test_custom_mix_exclusive(self):
        ops = operation_stream(100, 32, mix={"insert": 1.0}, seed=4)
        assert all(o.kind == "insert" for o in ops)

    def test_kind_corr_lengthens_runs(self):
        def runs(corr):
            ops = operation_stream(1000, 32, seed=5, kind_corr=corr)
            return 1 + sum(
                a.kind != b.kind for a, b in zip(ops, ops[1:])
            )

        assert runs(0.8) < runs(0.0)

    def test_poisson_rate_scales_duration(self):
        slow = operation_stream(400, 32, rate=0.5, seed=6)
        fast = operation_stream(400, 32, rate=5.0, seed=6)
        assert fast[-1].time < slow[-1].time

    def test_burst_arrivals(self):
        ops = operation_stream(300, 32, arrival="burst", rate=1.0, seed=7)
        gaps = sorted(
            b.time - a.time for a, b in zip(ops, ops[1:])
        )
        # on/off mixture: the short gaps are far shorter than the long
        assert gaps[len(gaps) // 4] < gaps[-len(gaps) // 4] / 2

    def test_flood_skew_shares_prefix(self):
        ops = operation_stream(
            50, 64, mix={"lcp": 1.0}, skew="flood", seed=8
        )
        p = ops[0].key.prefix(32)
        assert all(o.key.prefix(32) == p for o in ops)

    def test_empty_and_errors(self):
        assert operation_stream(0, 32) == []
        with pytest.raises(ValueError):
            operation_stream(10, 32, rate=0.0)
        with pytest.raises(ValueError):
            operation_stream(10, 32, kind_corr=1.0)
        with pytest.raises(ValueError):
            operation_stream(10, 32, mix={"scan": 1.0})
        with pytest.raises(ValueError):
            operation_stream(10, 32, mix={"lcp": 0.0})
        with pytest.raises(ValueError):
            operation_stream(10, 32, skew="diagonal")
        with pytest.raises(ValueError):
            operation_stream(10, 32, arrival="steady")


class TestDomain:
    def test_ip_prefixes(self):
        ks = ip_prefixes(300, seed=1)
        assert len(ks) == 300
        assert all(8 <= len(k) <= 28 for k in ks)
        # /24 should dominate, as in real routing tables
        by_len = {}
        for k in ks:
            by_len[len(k)] = by_len.get(len(k), 0) + 1
        assert by_len.get(24, 0) == max(by_len.values())

    def test_text_keys(self):
        ks = text_keys(50, seed=1)
        assert all(len(k) % 8 == 0 and len(k) > 0 for k in ks)
        # decodes back to slash-paths
        raw = bytes(
            int(ks[0].to_str()[i : i + 8], 2) for i in range(0, len(ks[0]), 8)
        )
        assert raw.startswith(b"/")
