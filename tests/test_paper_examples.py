"""End-to-end checks of the paper's worked examples (Figures 1-5) and
headline claims, consolidated in one place.

The figures are structural diagrams; each test reconstructs the drawn
configuration and asserts the behaviour the paper's prose describes.
"""

import math

import pytest

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.bits import IncrementalHasher
from repro.core import extract_blocks
from repro.fasttrie import ValidityIndex
from repro.trie import PatriciaTrie, build_query_trie

bs = BitString.from_str

#: the data trie drawn in Figure 1 (five stored keys)
FIG1_DATA = ["000010", "00001101", "1010000", "1010111", "101011"]
#: the query strings listed in Figure 1
FIG1_QUERIES = ["00001001", "101001", "101011"]


class TestFigure1:
    """Query trie construction + trie matching on the drawn example."""

    def test_data_trie_shape(self):
        t = build_query_trie([bs(k) for k in FIG1_DATA])
        t.check_invariants()
        # the figure's compressed structure: branch at "" is NOT a node
        # (root has one real branch point per subtree): the drawn nodes
        # are the root, "00001" and "1010" branch points plus key ends
        depths = sorted(n.depth for n in t.iter_nodes())
        assert 5 in depths   # branch "00001"
        assert 4 in depths   # branch "1010"
        assert t.num_keys == 5

    def test_query_trie_shape(self):
        qt = build_query_trie([bs(q) for q in FIG1_QUERIES])
        qt.check_invariants()
        assert qt.num_keys == 3
        # sorted order groups the two 1010* queries
        keys = [k.to_str() for k in qt.keys()]
        assert keys == ["00001001", "101001", "101011"]

    def test_matching_results(self):
        """The red matched trie: '101001' matches to depth 5 through
        hidden nodes on both sides ('10100')."""
        system = PIMSystem(4, seed=1)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=4),
            keys=[bs(k) for k in FIG1_DATA],
        )
        got = trie.lcp_batch([bs(q) for q in FIG1_QUERIES])
        assert got == [6, 5, 6]

    def test_hidden_node_match_both_sides(self):
        """'10100' is a valid prefix of both tries yet a compressed node
        of neither: the sequential oracle agrees."""
        data = build_query_trie([bs(k) for k in FIG1_DATA])
        qt = build_query_trie([bs(q) for q in FIG1_QUERIES])
        for t in (data, qt):
            depths = {n.depth for n in t.iter_nodes()}
            # no compressed node at depth 5 on the 10100 path
            strings = {}
            for n in t.iter_nodes():
                strings.setdefault(n.depth, set())
        assert data.lcp(bs("10100")) == 5


class TestFigure2:
    """Block decomposition with mirror nodes."""

    def test_blocks_and_mirrors(self):
        hasher = IncrementalHasher(seed=1)
        data = build_query_trie([bs(k) for k in FIG1_DATA])
        blocks, strings = extract_blocks(data, block_bound=8, hasher=hasher)
        # exactly one block holds each key
        total = sum(b.trie.num_keys for b in blocks)
        assert total == 5
        # each non-root block appears as exactly one mirror in its parent
        ids = {b.block_id for b in blocks}
        mirrored = [cid for b in blocks for cid in b.child_ids()]
        non_roots = [b.block_id for b in blocks if b.parent_id is not None]
        assert sorted(mirrored) == sorted(non_roots)
        assert set(mirrored) <= ids


class TestFigure5:
    """The two-layer index's w=3 worked example."""

    def test_padded_lookup_finds_child(self):
        vi = ValidityIndex(3)
        vi.insert(bs(""))     # the meta node for hash("000000")
        vi.insert(bs("01"))   # its child's S_rem
        got = vi.query(bs("0"))
        # paper: padding "0" -> "011"/"000", predecessor lookup, then the
        # validity vector yields S_rem "01" — the target's direct child
        assert got == bs("01")


class TestTable1Claims:
    """The asymptotic separations, checked at one scale as invariants."""

    def test_pim_trie_rounds_flat_in_length(self):
        from repro.workloads import uniform_keys

        rounds = []
        for length in (32, 256):
            keys = uniform_keys(128, length, seed=5)
            system = PIMSystem(8, seed=1)
            trie = PIMTrie(system, PIMTrieConfig(num_modules=8), keys=keys)
            before = system.snapshot()
            trie.lcp_batch(keys[:64])
            rounds.append(system.snapshot().delta(before).io_rounds)
        assert abs(rounds[0] - rounds[1]) <= 2

    def test_communication_per_op_tracks_l_over_w(self):
        from repro.workloads import uniform_keys

        per_op = []
        for length in (64, 512):
            keys = uniform_keys(128, length, seed=6)
            system = PIMSystem(8, seed=1)
            trie = PIMTrie(system, PIMTrieConfig(num_modules=8), keys=keys)
            before = system.snapshot()
            trie.lcp_batch(keys[:64])
            d = system.snapshot().delta(before)
            per_op.append(d.total_communication / 64)
        # l grew 8x; l/w term predicts ~+7 words; allow generous framing
        assert per_op[1] < per_op[0] + 30 * (512 - 64) / 64

    def test_subtree_query_returns_trie(self):
        """§5.3: 'A Subtree Query returns a trie'."""
        system = PIMSystem(4, seed=1)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=4),
            keys=[bs(k) for k in FIG1_DATA],
            values=FIG1_DATA,
        )
        (result,) = trie.subtree_tries([bs("1010")])
        assert isinstance(result, PatriciaTrie)
        assert sorted(k.to_str() for k in result.keys()) == [
            "1010000", "101011", "1010111",
        ]
        result.check_invariants()
        assert result.lookup(bs("101011")) == "101011"


class TestMinimumBatchBehaviour:
    """The paper requires Ω(P log^5 P) batches for whp balance; small
    batches must still be *correct* (only balance degrades)."""

    def test_tiny_batches_correct(self):
        system = PIMSystem(16, seed=1)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=16),
            keys=[bs(k) for k in FIG1_DATA],
        )
        assert trie.lcp_batch([bs("101001")]) == [5]
        assert trie.lcp_batch([]) == []

    def test_single_key_trie(self):
        system = PIMSystem(16, seed=1)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=16), keys=[bs("1")])
        assert trie.lcp_batch([bs("11"), bs("0")]) == [1, 0]
