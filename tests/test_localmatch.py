"""Tests for local bit-by-bit block matching (paper §4.3 end).

The local matcher walks a query fragment against a data block trie and
reports node matches, cutoffs, and hidden-node matches; mirror nodes
stop the walk.  Validated against a brute-force per-key LCP oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import BitString, IncrementalHasher
from repro.core import match_block_local
from repro.core.query import fragment_whole_trie
from repro.trie import PatriciaTrie, TrieEdge, TrieNode, build_query_trie


def bs(s: str) -> BitString:
    return BitString.from_str(s)


H = IncrementalHasher(seed=23)
W = 64


def data_trie(*keys) -> PatriciaTrie:
    t = PatriciaTrie()
    for k in keys:
        t.insert(bs(k), f"v:{k}")
    return t


def run_match(query_keys, data_keys, block_id=1, root_depth=0):
    qt = build_query_trie([bs(k) for k in query_keys])
    frag = fragment_whole_trie(qt, H, W)
    blk = data_trie(*data_keys)
    res = match_block_local(
        frag, blk, block_id, root_depth, tick=lambda n: None, w=W
    )
    return qt, frag, res


def lcp_from_result(qt, res):
    """Fold node matches + cutoffs into per-key LCP (as the driver does)."""
    out = {}
    strings = {}
    stack = [(qt.root, bs(""), (0, False))]
    while stack:
        node, s, (depth, diverged) = stack.pop()
        if not diverged:
            if node.uid in res.cutoffs:
                depth, diverged = res.cutoffs[node.uid], True
            elif node.uid in res.node_matches:
                depth = res.node_matches[node.uid][0]
        if node.is_key:
            out[s.to_str()] = depth
        for b in (0, 1):
            e = node.children[b]
            if e is not None:
                stack.append((e.dst, s + e.label, (depth, diverged)))
    return out


class TestBasicMatching:
    def test_exact_key_match(self):
        qt, frag, res = run_match(["0101"], ["0101", "1111"])
        lcps = lcp_from_result(qt, res)
        assert lcps["0101"] == 4
        # the exact match carries the stored value
        leaf = next(n for n in qt.iter_nodes() if n.is_key)
        depth, on_node, has_key, value = res.node_matches[leaf.uid]
        assert (on_node, has_key, value) == (True, True, "v:0101")

    def test_divergence_inside_edge(self):
        qt, frag, res = run_match(["0100"], ["0111"])
        lcps = lcp_from_result(qt, res)
        assert lcps["0100"] == 2

    def test_hidden_node_match(self):
        """Query key ends strictly inside a data edge."""
        qt, frag, res = run_match(["01"], ["0101"])
        lcps = lcp_from_result(qt, res)
        assert lcps["01"] == 2
        leaf = next(n for n in qt.iter_nodes() if n.is_key)
        depth, on_node, has_key, value = res.node_matches[leaf.uid]
        assert on_node is False and has_key is False

    def test_query_longer_than_data(self):
        qt, frag, res = run_match(["010111"], ["0101"])
        lcps = lcp_from_result(qt, res)
        assert lcps["010111"] == 4

    def test_multiple_branches(self):
        qt, frag, res = run_match(
            ["000", "0110", "111"], ["0001", "0111", "100"]
        )
        lcps = lcp_from_result(qt, res)
        assert lcps == {"000": 3, "0110": 3, "111": 1}

    def test_deepest_tracking(self):
        qt, frag, res = run_match(["00011"], ["00011", "1"])
        assert res.deepest == 5


class TestMirrorStops:
    def test_walk_stops_at_mirror(self):
        """A mirror node is the child block's root: matching must stop
        there (the child block's own match covers what lies below)."""
        blk = data_trie("00")
        # graft a mirror leaf below "00": child block at "0011"
        node = blk.walk(bs("00")).node
        mirror = TrieNode(4)
        mirror.mirror_child = 99
        node.attach(TrieEdge(bs("11"), mirror))
        blk.edge_bits += 2
        qt = build_query_trie([bs("001111")])
        frag = fragment_whole_trie(qt, H, W)
        res = match_block_local(frag, blk, 1, 0, tick=lambda n: None, w=W)
        lcps = lcp_from_result(qt, res)
        # the walk reports a cutoff exactly at the mirror's depth
        assert lcps["001111"] == 4

    def test_divergence_before_mirror(self):
        blk = data_trie("00")
        node = blk.walk(bs("00")).node
        mirror = TrieNode(4)
        mirror.mirror_child = 99
        node.attach(TrieEdge(bs("11"), mirror))
        blk.edge_bits += 2
        qt = build_query_trie([bs("0010")])
        frag = fragment_whole_trie(qt, H, W)
        res = match_block_local(frag, blk, 1, 0, tick=lambda n: None, w=W)
        assert lcp_from_result(qt, res)["0010"] == 3


class TestRebasedFragments:
    def test_nonzero_root_depth(self):
        """Fragment and block rooted at depth 6: all depths absolute."""
        qt = build_query_trie([bs("0101")])  # relative keys
        frag = fragment_whole_trie(qt, H, W)
        frag.base_depth = 6
        blk = data_trie("0101", "0110")
        res = match_block_local(frag, blk, 1, 6, tick=lambda n: None, w=W)
        leaf = next(n for n in qt.iter_nodes() if n.is_key)
        assert res.node_matches[leaf.uid][0] == 10

    def test_base_mismatch_rejected(self):
        qt = build_query_trie([bs("01")])
        frag = fragment_whole_trie(qt, H, W)
        blk = data_trie("01")
        with pytest.raises(ValueError):
            match_block_local(frag, blk, 1, 3, tick=lambda n: None, w=W)


class TestAgainstOracle:
    @given(
        st.lists(st.text(alphabet="01", min_size=0, max_size=25), min_size=1, max_size=20),
        st.lists(st.text(alphabet="01", min_size=0, max_size=25), min_size=1, max_size=20),
    )
    @settings(max_examples=150, deadline=None)
    def test_per_key_lcp_matches_oracle(self, query_keys, data_keys):
        qt, frag, res = run_match(query_keys, data_keys)
        lcps = lcp_from_result(qt, res)
        oracle = data_trie(*data_keys)
        for k in set(query_keys):
            assert lcps[k] == oracle.lcp(bs(k)), k

    @given(
        st.lists(st.text(alphabet="01", min_size=0, max_size=20), min_size=1, max_size=15),
        st.lists(st.text(alphabet="01", min_size=0, max_size=20), min_size=1, max_size=15),
    )
    @settings(max_examples=80, deadline=None)
    def test_exactness_flags(self, query_keys, data_keys):
        """has_key is set exactly for stored keys matched in full."""
        qt, frag, res = run_match(query_keys, data_keys)
        stored = set(data_keys)
        strings = {}
        stack = [(qt.root, bs(""))]
        while stack:
            node, s = stack.pop()
            strings[node.uid] = s
            for b in (0, 1):
                e = node.children[b]
                if e is not None:
                    stack.append((e.dst, s + e.label))
        for uid, (depth, on_node, has_key, value) in res.node_matches.items():
            s = strings[uid]
            if has_key:
                assert s.to_str() in stored
                assert value == f"v:{s.to_str()}"
                assert depth == len(s)
