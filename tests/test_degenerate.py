"""Degenerate-configuration tests: P=1, tiny word sizes, extreme keys."""

import pytest

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.trie import PatriciaTrie

bs = BitString.from_str


class TestSingleModule:
    """P=1: the PIM Model degenerates to one memory; everything must
    still work (the paper's bounds become trivial)."""

    def test_all_ops(self):
        system = PIMSystem(1, seed=1)
        keys = [bs(format(i, "06b")) for i in range(32)]
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=1),
            keys=keys, values=[k.to_str() for k in keys],
        )
        ref = PatriciaTrie()
        for k in keys:
            ref.insert(k, k.to_str())
        qs = keys[::3] + [bs("111111111")]
        assert trie.lcp_batch(qs) == [ref.lcp(q) for q in qs]
        trie.insert_batch([bs("10101010101")])
        trie.delete_batch(keys[:8])
        assert trie.num_keys() == 32 - 8 + 1
        trie.validate()

    def test_imbalance_trivially_one(self):
        system = PIMSystem(1, seed=1)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=1), keys=[bs("01")])
        trie.lcp_batch([bs("0111")])
        assert system.snapshot().traffic_imbalance() == 1.0


class TestSmallWords:
    """w=8: pivots every byte; exercises many families per edge."""

    def test_lcp_with_tiny_words(self):
        keys = [bs(format(i, "032b")) for i in range(0, 4096, 37)]
        system = PIMSystem(4, seed=2)
        trie = PIMTrie(
            system,
            PIMTrieConfig(num_modules=4, word_bits=8),
            keys=keys,
        )
        ref = PatriciaTrie()
        for k in keys:
            ref.insert(k)
        qs = keys[::5] + [bs(format(i, "032b")) for i in range(7, 2048, 301)]
        assert trie.lcp_batch(qs) == [ref.lcp(q) for q in qs]

    def test_word_bits_floor(self):
        with pytest.raises(ValueError):
            PIMTrieConfig(num_modules=4, word_bits=4)


class TestExtremeKeys:
    def test_empty_string_key(self):
        system = PIMSystem(4, seed=3)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=4),
            keys=[bs(""), bs("1")], values=["root", "one"],
        )
        assert trie.lookup_batch([bs("")]) == ["root"]
        assert trie.lcp_batch([bs("0")]) == [0]
        assert trie.delete_batch([bs("")]) == 1
        assert trie.lookup_batch([bs("")]) == [None]

    def test_very_long_single_key(self):
        key = BitString((1 << 4999) | 12345, 5000)
        system = PIMSystem(4, seed=4)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=4), keys=[key])
        assert trie.lcp_batch([key]) == [5000]
        assert trie.lcp_batch([key.prefix(4000)]) == [4000]
        # the 5000-bit edge was cut across multiple blocks
        assert trie.num_blocks() >= 2
        trie.validate()

    def test_one_bit_universe(self):
        system = PIMSystem(2, seed=5)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=2),
            keys=[bs("0"), bs("1")], values=["a", "b"],
        )
        assert trie.lookup_batch([bs("0"), bs("1")]) == ["a", "b"]
        (all_items,) = trie.subtree_batch([bs("")])
        assert len(all_items) == 2

    def test_duplicate_keys_in_build(self):
        system = PIMSystem(2, seed=6)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=2),
            keys=[bs("01"), bs("01"), bs("01")], values=["x", "y", "z"],
        )
        assert trie.num_keys() == 1

    def test_prefix_chain_keys(self):
        """Every key a prefix of the next: maximal hidden-node action."""
        keys = [bs("1" * i) for i in range(1, 40)]
        system = PIMSystem(4, seed=7)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=4), keys=keys)
        assert trie.num_keys() == 39
        assert trie.lcp_batch([bs("1" * 60)]) == [39]
        assert trie.lcp_batch([bs("1" * 20 + "0")]) == [20]
        (items,) = trie.subtree_batch([bs("1" * 35)])
        assert len(items) == 5  # lengths 35..39 all extend the prefix
