"""Tests for the fast-trie family: x-fast, y-fast, z-fast, validity index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bits import BitString
from repro.fasttrie import (
    ValidityIndex,
    XFastTrie,
    YFastTrie,
    ZFastTrie,
    two_fattest,
)


def bs(s: str) -> BitString:
    return BitString.from_str(s)


# ----------------------------------------------------------------------
# x-fast
# ----------------------------------------------------------------------
class TestXFast:
    def test_insert_contains(self):
        t = XFastTrie(8)
        assert t.insert(5)
        assert not t.insert(5)
        assert 5 in t
        assert 6 not in t
        assert len(t) == 1

    def test_key_range_check(self):
        t = XFastTrie(4)
        with pytest.raises(ValueError):
            t.insert(16)
        with pytest.raises(ValueError):
            t.predecessor(-1)

    def test_pred_succ_small(self):
        t = XFastTrie(8)
        for k in [10, 20, 30]:
            t.insert(k)
        assert t.predecessor(20) == 10
        assert t.predecessor(25) == 20
        assert t.predecessor(10) is None
        assert t.successor(20) == 30
        assert t.successor(25) == 30
        assert t.successor(30) is None

    def test_empty(self):
        t = XFastTrie(8)
        assert t.predecessor(5) is None
        assert t.successor(5) is None
        assert t.longest_prefix_level(5) == -1

    def test_delete(self):
        t = XFastTrie(8)
        for k in [1, 2, 3]:
            t.insert(k)
        assert t.delete(2)
        assert not t.delete(2)
        assert t.predecessor(3) == 1
        assert t.successor(1) == 3
        assert list(t.keys()) == [1, 3]

    def test_keys_sorted(self):
        t = XFastTrie(10)
        for k in [512, 3, 700, 100]:
            t.insert(k)
        assert list(t.keys()) == [3, 100, 512, 700]

    def test_space_is_theta_nw(self):
        t = XFastTrie(16)
        for k in range(0, 1000, 7):
            t.insert(k)
        # Θ(n·w): at least n entries at the leaf level alone
        assert t.space_entries() >= len(t) * 4

    @given(
        st.sets(st.integers(0, 255), max_size=40),
        st.integers(0, 255),
    )
    @settings(max_examples=200)
    def test_pred_succ_match_bruteforce(self, keys, q):
        t = XFastTrie(8)
        for k in keys:
            t.insert(k)
        pred = max((k for k in keys if k < q), default=None)
        succ = min((k for k in keys if k > q), default=None)
        assert t.predecessor(q) == pred
        assert t.successor(q) == succ

    @given(st.lists(st.integers(0, 1023), min_size=0, max_size=60))
    @settings(max_examples=100)
    def test_insert_delete_churn(self, ops):
        t = XFastTrie(10)
        alive = set()
        for i, k in enumerate(ops):
            if k in alive and i % 3 == 0:
                t.delete(k)
                alive.discard(k)
            else:
                t.insert(k)
                alive.add(k)
        assert list(t.keys()) == sorted(alive)


# ----------------------------------------------------------------------
# y-fast
# ----------------------------------------------------------------------
class TestYFast:
    def test_basic(self):
        t = YFastTrie(16)
        for k in [100, 5, 60000, 42]:
            assert t.insert(k)
        assert not t.insert(42)
        assert 42 in t
        assert 43 not in t
        assert len(t) == 4
        assert list(t.keys()) == [5, 42, 100, 60000]

    def test_pred_succ(self):
        t = YFastTrie(16)
        for k in range(0, 1000, 10):
            t.insert(k)
        assert t.predecessor(55) == 50
        assert t.successor(55) == 60
        assert t.predecessor(0) is None
        assert t.successor(990) is None

    def test_delete(self):
        t = YFastTrie(8)
        for k in [1, 5, 9]:
            t.insert(k)
        assert t.delete(5)
        assert not t.delete(5)
        assert t.predecessor(9) == 1

    def test_bucket_splits(self):
        """Enough keys to force multiple bucket splits."""
        t = YFastTrie(8)  # buckets split above 2*w = 16 keys
        for k in range(200):
            t.insert(k)
        assert len(t) == 200
        assert list(t.keys()) == list(range(200))
        assert t.predecessor(150) == 149

    def test_space_linear(self):
        """y-fast space stays O(n), far below x-fast's Θ(n·w)."""
        w = 16
        y = YFastTrie(w)
        x = XFastTrie(w)
        for k in range(0, 4096, 3):
            y.insert(k)
            x.insert(k)
        assert y.space_entries() < x.space_entries() / 2

    @given(
        st.sets(st.integers(0, 4095), max_size=120),
        st.integers(0, 4095),
    )
    @settings(max_examples=150)
    def test_matches_bruteforce(self, keys, q):
        t = YFastTrie(12)
        for k in keys:
            t.insert(k)
        assert t.predecessor(q) == max((k for k in keys if k < q), default=None)
        assert t.successor(q) == min((k for k in keys if k > q), default=None)
        assert (q in t) == (q in keys)

    @given(st.lists(st.integers(0, 255), min_size=0, max_size=100))
    @settings(max_examples=100)
    def test_churn(self, ops):
        t = YFastTrie(8)
        alive = set()
        for i, k in enumerate(ops):
            if k in alive and i % 2 == 0:
                assert t.delete(k)
                alive.discard(k)
            else:
                t.insert(k)
                alive.add(k)
        assert list(t.keys()) == sorted(alive)
        assert len(t) == len(alive)


# ----------------------------------------------------------------------
# z-fast
# ----------------------------------------------------------------------
def brute_deepest_prefix(members, q):
    best = None
    for m in members:
        if m.is_prefix_of(q) and (best is None or len(m) > len(best)):
            best = m
    return best


class TestTwoFattest:
    def test_examples(self):
        assert two_fattest(0, 8) == 8
        assert two_fattest(0, 7) == 4
        assert two_fattest(4, 7) == 6
        assert two_fattest(5, 7) == 6
        assert two_fattest(6, 7) == 7
        assert two_fattest(0, 1) == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            two_fattest(3, 3)

    @given(st.integers(0, 1000), st.integers(1, 1000))
    def test_properties(self, lo, d):
        hi = lo + d
        f = two_fattest(lo, hi)
        assert lo < f <= hi
        # f has at least as many trailing zeros as anything in (lo, hi]
        tz = (f & -f).bit_length()
        for x in range(lo + 1, min(hi + 1, lo + 50)):
            assert (x & -x).bit_length() <= tz


class TestZFast:
    def test_empty(self):
        z = ZFastTrie()
        assert z.lookup_deepest_prefix(bs("1010")) is None

    def test_single_member(self):
        z = ZFastTrie()
        z.insert(bs("101"), "v")
        assert z.lookup_deepest_prefix(bs("1011")) == bs("101")
        assert z.lookup_deepest_prefix(bs("100")) is None
        assert z.get(bs("101")) == "v"

    def test_empty_string_member(self):
        z = ZFastTrie()
        z.insert(bs(""), "root")
        z.insert(bs("11"), "v")
        assert z.lookup_deepest_prefix(bs("00")) == bs("")
        assert z.lookup_deepest_prefix(bs("110")) == bs("11")

    def test_nested_members(self):
        z = ZFastTrie()
        for m in ["0", "00000001", "000000011"]:
            z.insert(bs(m))
        assert z.lookup_deepest_prefix(bs("00000000")) == bs("0")
        assert z.lookup_deepest_prefix(bs("000000010")) == bs("00000001")
        assert z.lookup_deepest_prefix(bs("000000011")) == bs("000000011")

    def test_delete(self):
        z = ZFastTrie()
        z.insert(bs("10"))
        z.insert(bs("1011"))
        assert z.delete(bs("1011"))
        assert not z.delete(bs("1011"))
        assert z.lookup_deepest_prefix(bs("101111")) == bs("10")

    def test_bulk_build(self):
        z = ZFastTrie()
        z.bulk_build({bs("01"): 1, bs("0111"): 2})
        assert len(z) == 2
        assert z.lookup_deepest_prefix(bs("011100")) == bs("0111")

    def test_probes_logarithmic(self):
        """O(log h) probes per lookup on a deep comb."""
        z = ZFastTrie()
        members = {bs("1" * i + "0"): i for i in range(0, 64, 4)}
        z.bulk_build(members)
        before = z.probes
        z.lookup_deepest_prefix(bs("1" * 64))
        assert z.probes - before <= 8  # ~log2(64)+1

    @given(
        st.sets(st.text(alphabet="01", min_size=0, max_size=24), max_size=30),
        st.text(alphabet="01", max_size=30),
    )
    @settings(max_examples=300)
    def test_matches_bruteforce(self, members, q):
        z = ZFastTrie()
        ms = {bs(m) for m in members}
        z.bulk_build({m: None for m in ms})
        assert z.lookup_deepest_prefix(bs(q)) == brute_deepest_prefix(ms, bs(q))


# ----------------------------------------------------------------------
# validity index
# ----------------------------------------------------------------------
def brute_validity(members, q):
    """Max-LCP member, shortest then lexicographically-smallest tie-break."""
    best = None
    best_key = None
    for m in members:
        key = (-m.lcp_len(q), len(m), m.value)
        if best_key is None or key < best_key:
            best, best_key = m, key
    return best_key[0] if best_key else None  # return -lcp for comparison


class TestValidityIndex:
    def test_insert_contains_delete(self):
        v = ValidityIndex(8)
        assert v.insert(bs("010"))
        assert not v.insert(bs("010"))
        assert bs("010") in v
        assert v.delete(bs("010"))
        assert not v.delete(bs("010"))
        assert len(v) == 0

    def test_rejects_oversized(self):
        v = ValidityIndex(4)
        with pytest.raises(ValueError):
            v.insert(bs("0101"))
        with pytest.raises(ValueError):
            v.query(bs("01010"))

    def test_same_padding_disambiguated(self):
        """"1" and "10" share the 0-padding; validity vectors keep both."""
        v = ValidityIndex(4)
        v.insert(bs("1"))
        v.insert(bs("10"))
        assert v.query(bs("1011")) in (bs("10"),)
        v.delete(bs("10"))
        assert v.query(bs("1011")) == bs("1")

    def test_paper_figure5(self):
        """Figure 5: members {"01", "011" ...}; querying "0" padded finds
        the child "01" of the (absent-at-this-level) target node."""
        v = ValidityIndex(3)
        v.insert(bs("01"))
        v.insert(bs("01")[0:1])  # "0"
        got = v.query(bs("0"))
        assert got == bs("0")

    def test_empty_index(self):
        v = ValidityIndex(8)
        assert v.query(bs("1010")) is None

    def test_empty_string_member(self):
        v = ValidityIndex(4)
        v.insert(bs(""))
        assert v.query(bs("101")) == bs("")

    @given(
        st.sets(st.text(alphabet="01", min_size=0, max_size=7), max_size=25),
        st.text(alphabet="01", max_size=8),
    )
    @settings(max_examples=300)
    def test_max_lcp_matches_bruteforce(self, members, q):
        """The returned member achieves the globally maximal LCP with Q."""
        v = ValidityIndex(8)
        ms = {bs(m) for m in members}
        for m in ms:
            v.insert(m)
        got = v.query(bs(q))
        if not ms:
            assert got is None
            return
        assert got in ms
        best_lcp = max(m.lcp_len(bs(q)) for m in ms)
        assert got.lcp_len(bs(q)) == best_lcp
        # the paper's tie rule: no same-LCP member is a proper prefix of got
        for m in ms:
            if m.lcp_len(bs(q)) == best_lcp and m != got:
                assert not (m.is_prefix_of(got) and len(m) < len(got))

    @given(st.lists(st.text(alphabet="01", max_size=5), max_size=40))
    @settings(max_examples=100)
    def test_churn_consistency(self, ops):
        v = ValidityIndex(6)
        alive = set()
        for i, m in enumerate(ops):
            b = bs(m)
            if b in alive and i % 2:
                v.delete(b)
                alive.discard(b)
            else:
                v.insert(b)
                alive.add(b)
        assert set(v.members()) == alive
