"""Adaptive skew defense tests (repro.adapt): maintenance ops are
answer-preserving, the controller's actions are invisible to clients
(differential adapt-on == adapt-off == dict oracle over adversarial
sequences), adapt.* spans keep the span-sum invariant exact, recovery
works under faults, and the cluster roll-up merges per-rack sketches.
"""

import pytest

from repro import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from repro.adapt import (
    AdaptiveController,
    AdaptPolicy,
    ClusterAdaptiveController,
)
from repro.faults import FaultPlan
from repro.obs import Tracer, root_metric_sums
from repro.perf import reset_id_counters
from repro.serve import (
    EpochServer,
    policy_from_name,
    replay_direct,
    trace_from_stream,
)
from repro.workloads import flash_crowd_stream, uniform_keys, zipf_prefix

from .harness import DictOracle, apply_batch, gen_ops, make_cluster

P = 4
LENGTH = 32

#: trigger-happy policy so tiny test workloads exercise every action
EAGER = AdaptPolicy(
    hot_fraction=0.05,
    cold_fraction=0.02,
    min_window=4.0,
    cooldown=0,
    max_replicas=2,
    split_min_keys=2,
    max_actions_per_epoch=8,
)


def fresh_trie(n=96, block_bound=None, seed=5):
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    cfg = (
        PIMTrieConfig(num_modules=P, block_bound=block_bound)
        if block_bound
        else PIMTrieConfig(num_modules=P)
    )
    keys = zipf_prefix(n, LENGTH, 4, 1.3, seed=seed)
    keys = sorted(set(keys))
    return PIMTrie(system, cfg, keys=keys, values=[str(k) for k in keys]), keys


def snapshot_answers(trie, keys):
    probes = keys[::3] + uniform_keys(16, LENGTH, seed=77)
    return (
        list(trie.lcp_batch(probes)),
        list(trie.lookup_batch(probes)),
        [sorted((str(k), v) for k, v in items)
         for items in trie.subtree_batch([k.prefix(3) for k in keys[:4]])],
    )


# ----------------------------------------------------------------------
class TestMaintenanceOps:
    def test_split_preserves_answers_and_validates(self):
        trie, keys = fresh_trie(block_bound=128)
        before = snapshot_answers(trie, keys)
        hot = max(trie.block_keys, key=trie.block_keys.get)
        made = trie.split_block(hot, bound=8)
        assert made > 0
        trie.validate()
        assert snapshot_answers(trie, keys) == before

    def test_replicate_then_dereplicate_roundtrip(self):
        trie, keys = fresh_trie()
        before = snapshot_answers(trie, keys)
        bid = max(trie.block_keys, key=trie.block_keys.get)
        m = trie.replicate_block(bid)
        assert m is not None and m != trie.block_module[bid]
        assert trie.block_replicas[bid] == [m]
        trie.validate()
        assert snapshot_answers(trie, keys) == before
        # replicated reads round-robin: the cursor moves as reads land
        trie.lcp_batch(keys[:8])
        trie.lcp_batch(keys[:8])
        assert trie._block_rr.get(bid, 0) > 0
        assert trie.dereplicate_block(bid) == 1
        assert bid not in trie.block_replicas
        trie.validate()
        assert snapshot_answers(trie, keys) == before

    def test_writes_reach_replicas(self):
        trie, keys = fresh_trie()
        bid = max(trie.block_keys, key=trie.block_keys.get)
        trie.replicate_block(bid)
        extra = uniform_keys(24, LENGTH, seed=91)
        trie.insert_batch(extra, [f"x{i}" for i in range(len(extra))])
        trie.delete_batch(keys[:10] + extra[:5])
        trie.validate()  # replica copies must equal the primary

    def test_merge_reverses_split(self):
        trie, keys = fresh_trie(block_bound=128)
        before = snapshot_answers(trie, keys)
        hot = max(trie.block_keys, key=trie.block_keys.get)
        trie.split_block(hot, bound=8)
        assert trie.block_children.get(hot)
        absorbed = trie.merge_block(hot)
        assert absorbed > 0
        trie.validate()
        assert snapshot_answers(trie, keys) == before

    def test_structural_ops_survive_rebuild_from_mirror(self):
        trie, keys = fresh_trie(block_bound=128)
        before = snapshot_answers(trie, keys)
        hot = max(trie.block_keys, key=trie.block_keys.get)
        trie.split_block(hot, bound=8)
        other = max(trie.block_keys, key=trie.block_keys.get)
        trie.replicate_block(other)
        trie.rebuild_from_mirror()
        trie.validate()
        assert not trie.block_replicas  # rebuild drops the overlay
        assert snapshot_answers(trie, keys) == before


# ----------------------------------------------------------------------
class TestControllerLoop:
    def test_hot_blocks_get_defended_and_cold_ones_released(self):
        trie, keys = fresh_trie(n=160, block_bound=256)
        ctl = AdaptiveController(trie, EAGER)
        hot_keys = [k for k in keys if k.value >> (LENGTH - 2) == keys[0].value >> (LENGTH - 2)] or keys[:20]
        for _ in range(6):
            trie.lcp_batch(hot_keys * 2)
            ctl.step()
        assert ctl.counts["split"] + ctl.counts["replicate"] > 0
        trie.validate()
        replicated_at_peak = len(trie.block_replicas)
        # traffic shifts elsewhere: the old hot set's share collapses
        # and its defenses retire (shares are relative, so a pure stop
        # freezes them — only *displacement* makes a block cold)
        cold_probes = uniform_keys(60, LENGTH, seed=123)
        for _ in range(12):
            trie.lcp_batch(cold_probes * 3)
            ctl.step()
        assert (
            ctl.counts["dereplicate"] + ctl.counts["merge"] > 0
            or len(trie.block_replicas) < replicated_at_peak
        )
        trie.validate()

    def test_decisions_are_free_actions_are_accounted(self):
        trie, keys = fresh_trie()
        ctl = AdaptiveController(trie, AdaptPolicy(min_window=1e9))
        trie.lcp_batch(keys)
        before = trie.system.snapshot()
        ctl.step()  # window never reaches min_window => observe only
        delta = trie.system.snapshot().delta(before)
        assert delta.io_rounds == 0 and delta.io_time == 0

    def test_summary_counts_match_log(self):
        trie, keys = fresh_trie(n=160, block_bound=256)
        ctl = AdaptiveController(trie, EAGER)
        for _ in range(5):
            trie.lcp_batch(keys[:30] * 2)
            ctl.step()
        s = ctl.summary()
        for kind in ("split", "replicate", "dereplicate", "merge"):
            assert s[kind] == sum(1 for e in ctl.log if e[1] == kind)
        assert s["epochs"] == ctl.epoch


# ----------------------------------------------------------------------
class TestDifferentialAdapt:
    """The ISSUE's core promise: adversarial sequences replayed across
    adapt-on and adapt-off produce identical answers (and both match
    the dict oracle)."""

    SEEDS = (0, 1, 2, 5, 11, 17, 23, 31)

    @staticmethod
    def replay(ops, adaptive: bool):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=P))
        ctl = AdaptiveController(trie, EAGER) if adaptive else None
        replies = []
        for kind, payload in ops:
            replies.append(apply_batch(trie, kind, payload))
            if ctl is not None:
                ctl.step()  # controller acts between every client batch
        if ctl is not None:
            trie.validate()
        return replies, ctl

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adapt_on_equals_adapt_off_equals_oracle(self, seed):
        ops = gen_ops(seed, batches=10, batch_size=6)
        oracle = DictOracle()
        expected = [apply_batch(oracle, kind, p) for kind, p in ops]
        on, ctl = self.replay(ops, adaptive=True)
        off, _ = self.replay(ops, adaptive=False)
        assert on == off
        assert on == expected
        assert ctl.epoch == len(ops)

    def test_controller_really_acts_on_some_sequence(self):
        # guard against the suite passing vacuously: across the seeds,
        # at least one sequence must trigger structural actions
        acted = 0
        for seed in self.SEEDS:
            ops = gen_ops(seed, batches=10, batch_size=6)
            _, ctl = self.replay(ops, adaptive=True)
            acted += sum(ctl.counts.values())
        assert acted > 0


# ----------------------------------------------------------------------
class TestServeIntegration:
    def make_trace(self, n=220, seed=3):
        stream = flash_crowd_stream(
            n, LENGTH, num_crowds=2, crowd_fraction=0.9, rate=4.0, seed=seed
        )
        return trace_from_stream(stream, seed=seed, name="flash")

    def served_answers(self, adaptive: bool, tracer=False):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        tr = Tracer(system) if tracer else None
        keys = sorted(set(uniform_keys(80, LENGTH, seed=5)))
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P),
            keys=keys, values=[str(k) for k in keys],
        )
        ctl = AdaptiveController(trie, EAGER) if adaptive else None
        server = EpochServer(
            trie, policy_from_name("eager", max_batch=24), adapt=ctl
        )
        report = server.run(self.make_trace())
        return report, trie, tr

    def test_adapt_on_off_same_answers_and_extra_summary(self):
        rep_on, trie, _ = self.served_answers(True)
        rep_off, _, _ = self.served_answers(False)
        on = {c.seq: c.reply for c in rep_on.completed if c.ok}
        off = {c.seq: c.reply for c in rep_off.completed if c.ok}
        assert on == off
        trie.validate()
        assert "adapt" in rep_on.extra
        assert rep_on.extra["adapt"]["epochs"] == len(rep_on.epochs)
        assert "adapt" not in rep_off.extra

    def test_adapt_spans_present_and_span_sums_exact(self):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        tracer = Tracer(system)
        before = system.snapshot()
        keys = sorted(set(uniform_keys(80, LENGTH, seed=5)))
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P),
            keys=keys, values=[str(k) for k in keys],
        )
        ctl = AdaptiveController(trie, EAGER)
        EpochServer(
            trie, policy_from_name("eager", max_batch=24), adapt=ctl
        ).run(self.make_trace())
        delta = system.snapshot().delta(before)
        adapt_spans = [s for s in tracer.spans if s.cat == "adapt"]
        if sum(ctl.counts.values()):
            assert adapt_spans
            assert all(s.name.startswith("adapt.") for s in adapt_spans)
        # the invariant the obs layer enforces everywhere else: root
        # spans (including adapt.*) sum exactly to the measured delta
        assert root_metric_sums(tracer.spans) == {
            "io_rounds": delta.io_rounds,
            "io_time": delta.io_time,
            "words": delta.total_communication,
            "pim_time": delta.pim_time,
            "cpu_work": delta.cpu_work,
        }

    def test_adapt_under_faults_still_matches_direct_replay(self):
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        keys = sorted(set(uniform_keys(80, LENGTH, seed=5)))
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P),
            keys=keys, values=[str(k) for k in keys],
        )
        trie.system.install_faults(FaultPlan(
            crashes={1: 3}, drop_replies={(12, m) for m in range(P)},
        ))
        ctl = AdaptiveController(trie, EAGER)
        trace = self.make_trace()
        report = EpochServer(
            trie, policy_from_name("eager", max_batch=24), adapt=ctl
        ).run(trace)
        assert report.failed == 0

        reset_id_counters()
        twin_sys = PIMSystem(P, seed=1)
        twin = PIMTrie(
            twin_sys, PIMTrieConfig(num_modules=P),
            keys=keys, values=[str(k) for k in keys],
        )
        direct = dict(replay_direct(twin, trace.ops))
        served = {c.seq: c.reply for c in report.completed if c.ok}
        assert served == {seq: direct[seq] for seq in served}
        trie.validate()


# ----------------------------------------------------------------------
class TestClusterAdapt:
    def test_per_rack_controllers_and_router_rollup(self):
        cluster = make_cluster("hash", 4)
        ctl = ClusterAdaptiveController(cluster, EAGER)
        keys = zipf_prefix(120, 24, 4, 1.3, seed=3)
        cluster.insert_batch(keys, [str(k) for k in keys])
        for _ in range(4):
            cluster.lcp_batch(keys[:40])
            s = ctl.step()
        assert s["racks"] == 4
        assert len(ctl._by_rack) == 4
        merged = ctl.router_sketch()
        assert merged is not None
        assert merged.total == pytest.approx(
            sum(c.sketch.total for c in ctl._by_rack.values())
        )
        # the router view dominates every rack's estimate (merge adds)
        probe = keys[0].prefix(8)
        for c in ctl._by_rack.values():
            assert merged.estimate(probe) >= c.sketch.estimate(probe)
        summary = ctl.summary()
        for kind in ("split", "replicate", "dereplicate", "merge"):
            assert summary[kind] == sum(
                c.counts[kind] for c in ctl._by_rack.values()
            )

    def test_cluster_adapt_preserves_oracle_answers(self):
        cluster = make_cluster("hash", 2)
        ctl = ClusterAdaptiveController(cluster, EAGER)
        ops = gen_ops(7, batches=8, batch_size=5)
        oracle = DictOracle()
        for kind, payload in ops:
            got = apply_batch(cluster, kind, payload)
            expected = apply_batch(oracle, kind, payload)
            assert got == expected, kind
            ctl.step()

    def test_dead_racks_are_skipped(self):
        cluster = make_cluster("hash", 2, replication=2)
        ctl = ClusterAdaptiveController(cluster, EAGER)
        keys = uniform_keys(40, 24, seed=4)
        cluster.insert_batch(keys, [str(k) for k in keys])
        ctl.step()
        racks = [r for r in cluster.iter_racks()]
        cluster.fail_rack(racks[0].shard, racks[0].slot)
        s = ctl.step()
        assert s["racks"] == sum(1 for r in cluster.iter_racks() if r.alive)
