#!/usr/bin/env python3
"""Docs link check: fail on broken intra-repo links.

Scans README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md, and docs/ for
markdown links/images whose target is a repo-relative path and verifies
the target exists (anchors and external URLs are not resolved — only
file existence is checked, which is the class of rot CI can catch
cheaply and deterministically).

    python tools/check_links.py [root]

Exits 0 if every link resolves, 1 otherwise (listing each broken one).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links and images: [text](target) / ![alt](target)
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: skip external and intra-page targets
_EXTERNAL = re.compile(r"^(?:[a-z][a-z0-9+.-]*:|#)", re.IGNORECASE)

DOC_GLOBS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/*.md",
)


def iter_docs(root: Path):
    for pattern in DOC_GLOBS:
        yield from sorted(root.glob(pattern))


def strip_code(text: str) -> str:
    """Drop fenced code blocks and inline code — links inside code are
    examples, not navigation."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path: Path, root: Path) -> list[str]:
    problems = []
    for target in _LINK.findall(strip_code(path.read_text())):
        if _EXTERNAL.match(target):
            continue
        plain = target.split("#", 1)[0]
        if not plain:
            continue
        base = root if plain.startswith("/") else path.parent
        resolved = (base / plain.lstrip("/")).resolve()
        if not resolved.exists():
            problems.append(
                f"{path.relative_to(root)}: broken link -> {target}"
            )
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    problems: list[str] = []
    checked = 0
    for doc in iter_docs(root):
        problems.extend(check_file(doc, root))
        checked += 1
    if problems:
        print(f"{len(problems)} broken link(s) across {checked} file(s):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"checked {checked} doc file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
