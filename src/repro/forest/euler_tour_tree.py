"""Euler-tour trees: a dynamic forest with O(log n) link, cut, subtree
size, and connectivity (Tseng–Dhulipala–Blelloch style, paper §4.4.2).

PIM-trie uses this structure for *efficient block partition*: dividing
oversized query-trie blocks in each pull round is a dynamic-forest
problem with edge deletions and subtree-size queries; maintaining Euler
tours avoids re-materializing O(Q_Q) of trie per round.

Representation.  Each tree's Euler tour is kept in one treap sequence.
A vertex v is represented by its *first* occurrence node; each directed
edge (u, v) has one occurrence node.  The tour of a tree rooted at r is

    r  (u1-tour)  r  (u2-tour)  r ...

where entering child u appends the edge-occurrence (r→u), the child's
tour, then the return occurrence... here we use the standard compact
scheme: tour = sequence of *vertex occurrences*; edge (u,v) maps to two
splice points.  We store, per undirected edge, the two arc nodes
(u→v and v→u), and per vertex, its representative occurrence node.

Subtree size (with respect to the current root) is the number of vertex
occurrences strictly inside the arc pair, divided by... we instead
augment by counting vertex-representative occurrences between the arcs.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Optional

from .sequence import SeqNode, TreapSequence

__all__ = ["EulerTourForest"]


class EulerTourForest:
    """Dynamic rooted forest over hashable vertex ids.

    Supported (all O(log n) whp): ``add_vertex``, ``link(child, parent)``,
    ``cut(child)``, ``root_of``, ``connected``, ``subtree_size``,
    ``subtree_vertices`` (O(log n + k)).

    The tour of each tree is the bracket sequence: for vertex v with
    children c1..ck the tour is ``open(v) tour(c1) ... tour(ck) close(v)``.
    ``open(v)`` is v's representative occurrence.  Subtree size = number
    of ``open`` occurrences between open(v) and close(v) inclusive, which
    we get from treap positions (each vertex contributes one open and one
    close, so the slice length is exactly 2 * subtree size).
    """

    def __init__(self, seed: int = 0):
        self._seq = TreapSequence(seed)
        self._open: dict[Hashable, SeqNode] = {}
        self._close: dict[Hashable, SeqNode] = {}
        self._parent: dict[Hashable, Optional[Hashable]] = {}

    # ------------------------------------------------------------------
    def __contains__(self, v: Hashable) -> bool:
        return v in self._open

    def __len__(self) -> int:
        return len(self._open)

    def add_vertex(self, v: Hashable) -> None:
        """Add an isolated vertex (its own one-node tree)."""
        if v in self._open:
            raise ValueError(f"vertex {v!r} already present")
        o = self._seq.make(("open", v))
        c = self._seq.make(("close", v))
        self._seq.merge(o, c)
        self._open[v] = o
        self._close[v] = c
        self._parent[v] = None

    # ------------------------------------------------------------------
    def root_of(self, v: Hashable) -> Hashable:
        """Root of v's tree: the vertex of the first tour occurrence."""
        root_node = self._open[v].root()
        first = self._seq.first(root_node)
        return first.value[1]

    def connected(self, u: Hashable, v: Hashable) -> bool:
        return self._open[u].root() is self._open[v].root()

    def parent_of(self, v: Hashable) -> Optional[Hashable]:
        return self._parent[v]

    # ------------------------------------------------------------------
    def link(self, child: Hashable, parent: Hashable) -> None:
        """Attach ``child``'s tree under ``parent`` (child must be a root)."""
        if self._parent[child] is not None:
            raise ValueError(f"{child!r} is not a root")
        if self._open[child].root() is self._open[parent].root():
            raise ValueError("link would create a cycle")
        # splice child's tour just before close(parent)
        child_tour = self._open[child].root()
        before, after = self._seq.split_at_node(self._close[parent])
        self._seq.merge(self._seq.merge(before, child_tour), after)
        self._parent[child] = parent

    def cut(self, child: Hashable) -> None:
        """Detach ``child``'s subtree into its own tree."""
        if self._parent[child] is None:
            raise ValueError(f"{child!r} is already a root")
        before, rest = self._seq.split_at_node(self._open[child])
        k = self._close[child].index() + 1  # position within `rest`
        subtree, after = self._seq.split(rest, k)
        self._seq.merge(before, after)
        # subtree now stands alone as its own tour
        assert subtree is not None
        self._parent[child] = None

    # ------------------------------------------------------------------
    def subtree_size(self, v: Hashable) -> int:
        """Number of vertices in v's subtree (w.r.t. current roots)."""
        before, rest = self._seq.split_at_node(self._open[v])
        k = self._close[v].index() + 1
        sub, after = self._seq.split(rest, k)
        size = self._seq.size(sub) // 2
        self._seq.merge(self._seq.merge(before, sub), after)
        return size

    def subtree_vertices(self, v: Hashable) -> list[Hashable]:
        """All vertices in v's subtree; O(log n + k)."""
        before, rest = self._seq.split_at_node(self._open[v])
        k = self._close[v].index() + 1
        sub, after = self._seq.split(rest, k)
        out = [n.value[1] for n in self._seq.iterate(sub) if n.value[0] == "open"]
        self._seq.merge(self._seq.merge(before, sub), after)
        return out

    def tree_size(self, v: Hashable) -> int:
        """Number of vertices in v's whole tree."""
        return self._open[v].root().size // 2

    def tour(self, v: Hashable) -> Iterator[tuple[str, Hashable]]:
        """The full Euler tour of v's tree (debugging / tests)."""
        for node in self._seq.iterate(self._open[v].root()):
            yield node.value
