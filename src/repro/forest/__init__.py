"""Dynamic-forest substrate: treap sequences and Euler-tour trees."""

from .euler_tour_tree import EulerTourForest
from .sequence import SeqNode, TreapSequence

__all__ = ["EulerTourForest", "SeqNode", "TreapSequence"]
