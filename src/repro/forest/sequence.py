"""A balanced sequence (treap) with O(log n) split/merge — the ordered
backbone for Euler-tour trees.

The paper's dynamic-forest building block [57] maintains Euler tours in
augmented skip lists; we use randomized treaps, which give the same
O(log n) whp split/merge/locate bounds with simpler invariants.  Each
treap node stores its subtree size so positions and counts resolve in
O(log n).
"""

from __future__ import annotations

import random
from typing import Any, Iterator, Optional

__all__ = ["SeqNode", "TreapSequence"]


class SeqNode:
    """One element of a treap-backed sequence."""

    __slots__ = ("value", "prio", "left", "right", "parent", "size")

    def __init__(self, value: Any, prio: float):
        self.value = value
        self.prio = prio
        self.left: Optional["SeqNode"] = None
        self.right: Optional["SeqNode"] = None
        self.parent: Optional["SeqNode"] = None
        self.size = 1

    def _pull(self) -> None:
        self.size = 1
        if self.left is not None:
            self.size += self.left.size
        if self.right is not None:
            self.size += self.right.size

    def root(self) -> "SeqNode":
        cur = self
        while cur.parent is not None:
            cur = cur.parent
        return cur

    def index(self) -> int:
        """Position of this node within its sequence; O(log n)."""
        idx = self.left.size if self.left is not None else 0
        cur = self
        while cur.parent is not None:
            if cur.parent.right is cur:
                idx += 1 + (
                    cur.parent.left.size if cur.parent.left is not None else 0
                )
            cur = cur.parent
        return idx


class TreapSequence:
    """Functional-style treap sequence operations (roots passed around)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def make(self, value: Any) -> SeqNode:
        return SeqNode(value, self._rng.random())

    # ------------------------------------------------------------------
    @staticmethod
    def size(root: Optional[SeqNode]) -> int:
        return root.size if root is not None else 0

    def merge(
        self, a: Optional[SeqNode], b: Optional[SeqNode]
    ) -> Optional[SeqNode]:
        """Concatenate sequences a ++ b; O(log n) whp."""
        if a is None:
            if b is not None:
                b.parent = None
            return b
        if b is None:
            a.parent = None
            return a
        a.parent = None
        b.parent = None
        if a.prio < b.prio:
            r = self.merge(a.right, b)
            a.right = r
            if r is not None:
                r.parent = a
            a._pull()
            return a
        r = self.merge(a, b.left)
        b.left = r
        if r is not None:
            r.parent = b
        b._pull()
        return b

    def split(
        self, root: Optional[SeqNode], k: int
    ) -> tuple[Optional[SeqNode], Optional[SeqNode]]:
        """Split into (first k elements, rest); O(log n) whp."""
        if root is None:
            return None, None
        root.parent = None
        left_size = root.left.size if root.left is not None else 0
        if k <= left_size:
            l, r = self.split(root.left, k)
            root.left = r
            if r is not None:
                r.parent = root
            root._pull()
            if l is not None:
                l.parent = None
            return l, root
        l, r = self.split(root.right, k - left_size - 1)
        root.right = l
        if l is not None:
            l.parent = root
        root._pull()
        if r is not None:
            r.parent = None
        return root, r

    def split_at_node(
        self, node: SeqNode
    ) -> tuple[Optional[SeqNode], Optional[SeqNode]]:
        """Split the node's sequence into (prefix before node, node..end)."""
        root = node.root()
        return self.split(root, node.index())

    # ------------------------------------------------------------------
    @staticmethod
    def iterate(root: Optional[SeqNode]) -> Iterator[SeqNode]:
        stack: list[SeqNode] = []
        cur = root
        while stack or cur is not None:
            while cur is not None:
                stack.append(cur)
                cur = cur.left
            cur = stack.pop()
            yield cur
            cur = cur.right

    @staticmethod
    def first(root: SeqNode) -> SeqNode:
        cur = root
        while cur.left is not None:
            cur = cur.left
        return cur

    @staticmethod
    def last(root: SeqNode) -> SeqNode:
        cur = root
        while cur.right is not None:
            cur = cur.right
        return cur
