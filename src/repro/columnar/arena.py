"""Columnar query-trie arena: the batch's Patricia trie as flat arrays.

:class:`QueryArena` is the struct-of-arrays replacement for the object
query trie built by :func:`repro.trie.construction.build_query_trie`.
One arena holds, per *row* (node, numbered in preorder, child-0 first —
the same order ``PatriciaTrie.iter_nodes`` yields):

* topology columns: ``parent``, ``child0``, ``child1``, ``subtree_end``
  (the end of the row's preorder interval, so a subtree is the slice
  ``[r, subtree_end[r])``),
* prefix columns: ``depth`` (bits), ``is_key``, ``key_id`` (an index
  into the deduplicated key list whose prefix the row represents — any
  edge label is a bit-window of that key),
* packed key words: ``key_words`` (n_keys × W uint64, MSB-first) with a
  ``key_lens`` column, plus rolling Mersenne-61 digests of every
  64-bit-aligned key prefix and, per hasher, the fingerprint matrix
  those digests finalize to.

Equivalences to the object pipeline (each is exercised by the
differential tests):

* ``np.lexsort`` over (words…, length) is exactly trie order
  (``BitString.__lt__``): zero-padded word comparison plus the
  shorter-first tie-break;
* the spine build below replicates ``patricia_from_sorted`` — for
  sorted distinct strings the ``attach_leaf`` prefix-equal branch is
  unreachable (a prefix sorts first), and the split edge is always the
  child on the previous string's bit at the split ancestor's depth;
* partition/fold mirror ``partition_weighted`` (cumsum crossing of
  bound multiples + LCA closure) and ``PIMTrie._fold_keys``.

Growth policy: an arena is per-batch and immutable once built, so
columns are allocated exactly once at their final size (2n−1 rows at
most for n distinct keys, +1 for the root).  Digest and fingerprint
matrices are computed lazily and cached per hasher parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..bits import BitString
from ..trie.nodes import TrieNode
from .m61 import digest_words, fingerprint_cols, pack_words

__all__ = ["ColNodeRef", "ColPathPos", "QueryArena"]


@dataclass(frozen=True)
class ColNodeRef:
    """A query-trie node in arena coordinates: its preorder row.

    Stands in for :class:`TrieNode` wherever the driver only needs an
    identity (``.uid``) — reply positions, piece routing keys.
    """

    uid: int  # the arena row


@dataclass(frozen=True)
class ColPathPos:
    """Arena analogue of :class:`repro.core.query.PathPos`: a position
    ``back`` bits up the edge entering row ``node.uid``."""

    node: ColNodeRef
    back: int = 0


class _NodeMap:
    """Duck-typed ``{uid: node}`` view over arena rows (read-only)."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        self._n = n

    def get(self, uid: Any, default: Any = None) -> Optional[ColNodeRef]:
        if isinstance(uid, int) and 0 <= uid < self._n:
            return ColNodeRef(uid)
        return default

    def __contains__(self, uid: Any) -> bool:
        return isinstance(uid, int) and 0 <= uid < self._n

    def __len__(self) -> int:
        return self._n


class QueryArena:
    """The query trie of one batch as flat numpy columns."""

    __slots__ = (
        "keys",
        "values",
        "key_vals",
        "key_lens_list",
        "key_lens",
        "key_words",
        "width",
        "num_keys",
        "n_nodes",
        "parent",
        "depth",
        "child0",
        "child1",
        "is_key",
        "key_id",
        "subtree_end",
        "node_weight",
        "is_key_list",
        "depth_list",
        "key_id_list",
        "parent_list",
        "child0_list",
        "child1_list",
        "_word_cost",
        "_digests",
        "_fp_cache",
        "root",
    )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        batch: Sequence[BitString],
        values: Optional[Sequence[Any]] = None,
    ) -> "QueryArena":
        """Sort + dedup + adjacent-LCP + spine build, all in arrays.

        Duplicate keys collapse to the first value in sorted order,
        exactly as ``build_query_trie`` does.  Consumes the same number
        of :class:`TrieNode` uids the object build would, so data-side
        uid allocation (and thus ``extract_blocks``'s set-iteration
        order) stays in lockstep across the two modes.
        """
        if values is not None and len(values) != len(batch):
            raise ValueError("values must align with batch")
        self = cls.__new__(cls)
        n_in = len(batch)
        vals_in = list(values) if values is not None else [None] * n_in

        lens_in = np.fromiter(
            (len(k) for k in batch), dtype=np.int64, count=n_in
        )
        max_len = int(lens_in.max(initial=0))
        width = max(1, -(-max_len // 64))
        words_in = pack_words(
            [k.value for k in batch], [len(k) for k in batch], width
        )
        if n_in:
            order = np.lexsort(
                tuple(
                    [lens_in]
                    + [words_in[:, j] for j in range(width - 1, -1, -1)]
                )
            )
            sl = lens_in[order]
            sw = words_in[order]
            keep = np.ones(n_in, dtype=bool)
            keep[1:] = (sl[1:] != sl[:-1]) | np.any(
                sw[1:] != sw[:-1], axis=1
            )
            didx = order[keep]
        else:
            didx = np.empty(0, dtype=np.int64)

        self.keys = [batch[int(i)] for i in didx]
        self.values = [vals_in[int(i)] for i in didx]
        self.key_vals = [k.value for k in self.keys]
        self.key_lens_list = [len(k) for k in self.keys]
        self.key_lens = np.asarray(self.key_lens_list, dtype=np.int64)
        self.key_words = (
            words_in[didx] if n_in else np.zeros((0, width), dtype=np.uint64)
        )
        self.width = width
        self.num_keys = len(self.keys)
        self._digests = None
        self._fp_cache = {}

        self._build_spine()
        self._derive_columns()
        # scalar mirrors of the hot columns: python-int indexing beats
        # numpy scalar indexing in the per-fragment fallback paths
        self.is_key_list = self.is_key.tolist()
        self.depth_list = self.depth.tolist()
        self.key_id_list = self.key_id.tolist()
        self.parent_list = self.parent.tolist()
        self.child0_list = self.child0.tolist()
        self.child1_list = self.child1.tolist()
        self.root = ColNodeRef(0)
        # uid lockstep with the object build (one uid per trie node)
        TrieNode._next_uid += self.n_nodes
        return self

    # ------------------------------------------------------------------
    def _build_spine(self) -> None:
        """Right-spine Patricia construction over the sorted dedup keys,
        then a preorder renumbering into the arena columns."""
        keys = self.key_vals
        lens = self.key_lens_list
        m = self.num_keys

        # adjacent LCPs over the left-aligned word matrix: XOR adjacent
        # rows, locate the first differing word, then take bit_length of
        # that single word exactly (float log2 of an XOR is off-by-one
        # near powers of two; int.bit_length is exact).  Zero padding
        # past a key's end is safe: any difference it hides lies at or
        # beyond min(len) and the min() below clamps it.
        lcp = [0] * m
        if m > 1:
            sw2 = self.key_words
            diff = sw2[1:] ^ sw2[:-1]
            nz = diff != 0
            has = nz.any(axis=1)
            widx = np.where(has, np.argmax(nz, axis=1), 0)
            dwords = diff[np.arange(m - 1), widx].tolist()
            woff = (widx * 64).tolist()
            for i in range(1, m):
                la, lb = lens[i - 1], lens[i]
                nmin = la if la < lb else lb
                dw = dwords[i - 1]
                if dw:
                    cut = woff[i - 1] + 64 - dw.bit_length()
                    lcp[i] = cut if cut < nmin else nmin
                else:
                    lcp[i] = nmin

        depth = [0]
        ch = [[-1, -1]]
        key_of = [-1]

        def bit_at(i: int, p: int) -> int:
            return (keys[i] >> (lens[i] - 1 - p)) & 1

        if m:
            if lens[0] == 0:
                key_of[0] = 0
                spine = [0]
            else:
                depth.append(lens[0])
                ch.append([-1, -1])
                key_of.append(0)
                ch[0][bit_at(0, 0)] = 1
                spine = [0, 1]
            for i in range(1, m):
                d = lcp[i]
                while depth[spine[-1]] > d:
                    spine.pop()
                top = spine[-1]
                if depth[top] == d:
                    # sorted distinct strings: d < len(key_i), so this is
                    # always a fresh leaf (a prefix would sort first)
                    leaf = len(depth)
                    depth.append(lens[i])
                    ch.append([-1, -1])
                    key_of.append(i)
                    ch[top][bit_at(i, d)] = leaf
                    spine.append(leaf)
                    continue
                # split the spine edge below `top` at depth d: that edge
                # lies on the path to the previous string, so its slot is
                # the previous string's bit at top's depth, and the kept
                # lower part starts with the previous string's bit at d
                b_top = bit_at(i - 1, depth[top])
                lower = ch[top][b_top]
                mid = len(depth)
                depth.append(d)
                ch.append([-1, -1])
                key_of.append(-1)
                ch[mid][bit_at(i - 1, d)] = lower
                ch[top][b_top] = mid
                leaf = len(depth)
                depth.append(lens[i])
                ch.append([-1, -1])
                key_of.append(i)
                ch[mid][bit_at(i, d)] = leaf
                spine.append(mid)
                spine.append(leaf)

        # preorder renumbering, child-0 first (= PatriciaTrie.iter_nodes)
        total = len(depth)
        pre_order: list[int] = []
        stack = [0]
        while stack:
            u = stack.pop()
            pre_order.append(u)
            c1, c0 = ch[u][1], ch[u][0]
            if c1 >= 0:
                stack.append(c1)
            if c0 >= 0:
                stack.append(c0)
        new_of = [0] * total
        for pos, old in enumerate(pre_order):
            new_of[old] = pos

        self.n_nodes = total
        self.depth = np.array([depth[o] for o in pre_order], dtype=np.int64)
        self.is_key = np.array(
            [key_of[o] >= 0 for o in pre_order], dtype=bool
        )
        key_id = np.array([key_of[o] for o in pre_order], dtype=np.int64)
        child0 = np.array(
            [new_of[ch[o][0]] if ch[o][0] >= 0 else -1 for o in pre_order],
            dtype=np.int64,
        )
        child1 = np.array(
            [new_of[ch[o][1]] if ch[o][1] >= 0 else -1 for o in pre_order],
            dtype=np.int64,
        )
        parent = np.full(total, -1, dtype=np.int64)
        kidx = np.flatnonzero(child0 >= 0)
        parent[child0[kidx]] = kidx
        kidx = np.flatnonzero(child1 >= 0)
        parent[child1[kidx]] = kidx

        # propagate a witness key through key-less rows (any key in the
        # row's subtree shares the row's prefix, so its bits spell every
        # edge label on the way down) and close preorder intervals
        subtree_end = np.arange(1, total + 1, dtype=np.int64)
        for r in range(total - 1, -1, -1):
            c0, c1 = child0[r], child1[r]
            last = c1 if c1 >= 0 else c0
            if last >= 0:
                subtree_end[r] = subtree_end[last]
            if key_id[r] < 0:
                witness = c0 if c0 >= 0 else c1
                key_id[r] = key_id[witness] if witness >= 0 else 0
        self.key_id = key_id
        self.child0 = child0
        self.child1 = child1
        self.parent = parent
        self.subtree_end = subtree_end

    def _derive_columns(self) -> None:
        """Edge-label lengths → blocking weights and the trie word cost,
        matching ``node_weight_words`` / ``PatriciaTrie.word_cost``."""
        total = self.n_nodes
        nc = 2 + self.is_key.astype(np.int64)
        if total > 1:
            lab_len = self.depth[1:] - self.depth[self.parent[1:]]
            w_e = 1 + np.maximum(1, -(-lab_len // 64))
            node_weight = nc.copy()
            np.add.at(node_weight, self.parent[1:], w_e)
            wc = int(nc.sum() + w_e.sum())
        else:
            node_weight = nc
            wc = int(nc.sum())
        self.node_weight = node_weight
        self._word_cost = max(1, wc)

    # ------------------------------------------------------------------
    # PatriciaTrie-compatible surface (what the PIMTrie driver calls)
    # ------------------------------------------------------------------
    def num_nodes(self) -> int:
        return self.n_nodes

    def word_cost(self) -> int:
        return self._word_cost

    def node_map(self) -> _NodeMap:
        return _NodeMap(self.n_nodes)

    # ------------------------------------------------------------------
    # hashing columns
    # ------------------------------------------------------------------
    def digests(self) -> np.ndarray:
        """(n_keys, W+1) rolling digests; column j covers the 64j-bit
        prefix (columns past a key's word count are padding garbage)."""
        d = self._digests
        if d is None:
            d = digest_words(self.key_words)
            self._digests = d
        return d

    def fp_matrix(self, hasher) -> np.ndarray:
        """(n_keys, W+1) fingerprints of every aligned key prefix under
        ``hasher``'s affine parameters; cached per parameter triple."""
        params = (hasher._mul, hasher._add, hasher._mask)
        fp = self._fp_cache.get(params)
        if fp is None:
            cols = self.digests().shape[1]
            lengths = np.broadcast_to(
                np.arange(cols, dtype=np.uint64) * np.uint64(64),
                self.digests().shape,
            )
            fp = fingerprint_cols(self.digests(), lengths, *params)
            self._fp_cache[params] = fp
        return fp

    def fp_lists(self, hasher) -> list:
        """:meth:`fp_matrix` as nested python-int lists, for the scalar
        per-fragment matching path (dict probes against ``layer2`` want
        machine ints, not numpy scalars)."""
        params = ("lists", hasher._mul, hasher._add, hasher._mask)
        fl = self._fp_cache.get(params)
        if fl is None:
            fl = self.fp_matrix(hasher).tolist()
            self._fp_cache[params] = fl
        return fl

    def key_window(self, key_idx: int, start: int, stop: int) -> int:
        """Bits ``[start, stop)`` of dedup key ``key_idx`` as an int."""
        l = self.key_lens_list[key_idx]
        return (self.key_vals[key_idx] >> (l - stop)) & ((1 << (stop - start)) - 1)

    # ------------------------------------------------------------------
    # partitioning (mirrors partition_weighted + lca_closure)
    # ------------------------------------------------------------------
    def partition(self, bound: int) -> list[int]:
        """Rows of the block-root partition, ascending (= preorder)."""
        if bound <= 0:
            raise ValueError("partition bound must be positive")
        cs = np.cumsum(self.node_weight)
        prev = np.concatenate(([0], cs[:-1]))
        base = np.flatnonzero((cs // bound) > (prev // bound))
        roots: set[int] = {int(r) for r in base}
        depth = self.depth
        parent = self.parent
        for a, b in zip(base[:-1], base[1:]):
            x, y = int(a), int(b)
            while x != y:
                if depth[x] >= depth[y]:
                    p = int(parent[x])
                    if p < 0:
                        break
                    x = p
                else:
                    p = int(parent[y])
                    if p < 0:
                        break
                    y = p
            if x == y:
                roots.add(x)
        roots.add(0)
        return sorted(roots)

    # ------------------------------------------------------------------
    # per-key folding (mirrors PIMTrie._fold_keys)
    # ------------------------------------------------------------------
    def fold(
        self, outcome, root_block_id: Optional[int]
    ) -> dict[BitString, tuple[int, int, bool, Any]]:
        """(LCP depth, owning block, exact, value) per stored key."""
        out: dict[BitString, tuple[int, int, bool, Any]] = {}
        child0, child1 = self.child0_list, self.child1_list
        is_key = self.is_key_list
        key_id, depth_col = self.key_id_list, self.depth_list
        keys = self.keys
        root_state = (0, root_block_id or 0, False)
        stack: list[tuple[int, tuple[int, int, bool]]] = [(0, root_state)]
        while stack:
            r, state = stack.pop()
            entry = outcome.get(r)
            if entry is not None and not state[2]:
                depth, block, diverged = (
                    entry.depth, entry.block, not entry.full,
                )
                state = (depth, block, diverged)
            else:
                depth, block, diverged = state
            if is_key[r]:
                exact = (
                    entry is not None
                    and entry.full
                    and entry.depth == depth_col[r]
                    and entry.has_key
                    and not diverged
                )
                value = entry.value if exact and entry is not None else None
                out[keys[key_id[r]]] = (depth, block, exact, value)
            c = child0[r]
            if c >= 0:
                stack.append((c, state))
            c = child1[r]
            if c >= 0:
                stack.append((c, state))
        return out

    def __repr__(self) -> str:
        return (
            f"QueryArena(keys={self.num_keys}, nodes={self.n_nodes}, "
            f"words={self._word_cost})"
        )
