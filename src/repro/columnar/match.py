"""Matching primitives over columnar fragments.

Two drop-in replacements for the object-pipeline hot loops, used when
:func:`repro.fastpath.columnar_enabled` is on:

* :func:`hash_match_columnar` — §4.4.2 pivot HashMatching with the
  per-edge pivot enumeration, fingerprint computation, and table
  membership probes batched into whole-array numpy operations.  Only
  lanes whose fingerprint actually hits the two-layer table fall back
  to the scalar redo loop (range check, S_last verification, §4.4.3
  next-shallower chain) — those are rare and carry the metric charges.

* :func:`local_match_columnar` — the simultaneous DFS of
  :func:`repro.core.localmatch.match_block_local`, walking the *object*
  data-block trie with machine-int query labels taken from the arena's
  packed key words (no per-fragment BitString materialization).

Both charge exactly the work ticks, verification counts, and cut
positions of their object counterparts — that equivalence is what the
columnar metric-parity suite asserts byte-for-byte.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .m61 import extract_window
from .span import ColumnarFragment

__all__ = [
    "hash_match_columnar",
    "hash_match_columnar_many",
    "local_match_columnar",
]

# The object-core result types are bound on first use rather than at
# import time: repro.core.__init__ imports pimtrie, which imports this
# package, so a module-level ``from ..core.hashmatch import ...`` here
# would complete the cycle when repro.columnar is imported first.
_MatchCut = None
_LocalMatchResult = None


def _bind_core():
    global _MatchCut, _LocalMatchResult
    if _MatchCut is None:
        from ..core.hashmatch import MatchCut
        from ..core.localmatch import LocalMatchResult

        _MatchCut = MatchCut
        _LocalMatchResult = LocalMatchResult


def _l2cache(table: RecordTable):
    """Sorted layer2 fingerprint keys + aligned family list."""
    cache = table._l2cache
    if cache is None:
        keys = sorted(table.layer2)
        karr = np.array(keys, dtype=np.uint64)
        fams = [table.layer2[k] for k in keys]
        cache = (karr, fams)
        table._l2cache = cache
    return cache


def _family_cols(fam: _Family):
    """Columnar view of one s_pre family, in `_scan_list` order
    (length-descending, ties stable): member lengths/values as numpy
    lanes for the vectorized probe, plus scalar lists mirroring the
    object redo loop — depths, S_last windows, and the next-shallower
    chain (``chain[i]`` = first later member that is a proper prefix of
    member ``i``, or -1)."""
    cols = fam._cols
    if cols is None:
        scan = fam._scan_list()
        m = len(scan)
        lens = [t[0] for t in scan]
        vals = [t[1] for t in scan]
        recs = [t[2] for t in scan]
        depths = [r.depth for r in recs]
        sl_lens = [len(r.s_last) for r in recs]
        sl_vals = [r.s_last.value for r in recs]
        chain = []
        for i in range(m):
            ln, val = lens[i], vals[i]
            nxt = -1
            for j in range(i + 1, m):
                if lens[j] < ln and (val >> (ln - lens[j])) == vals[j]:
                    nxt = j
                    break
            chain.append(nxt)
        # dict probe for the scalar path: member index by (length,
        # value), first occurrence wins (= scan-order tie-break), probed
        # in descending length order (= deepest-prefix-first)
        by_len: dict[int, dict[int, int]] = {}
        for idx, (ln, val) in enumerate(zip(lens, vals)):
            d2 = by_len.setdefault(ln, {})
            if val not in d2:
                d2[val] = idx
        probe = sorted(by_len.items(), reverse=True)
        cols = (
            np.array(lens, dtype=np.int64),
            np.array(vals, dtype=np.uint64),
            depths,
            sl_lens,
            sl_vals,
            chain,
            recs,
            probe,
        )
        fam._cols = cols
    return cols


def warm_table(table: RecordTable) -> None:
    """Eagerly build the columnar probe caches for ``table``.

    The sorted layer2 key array and per-family scan/chain columns are
    pure functions of the record set; building them when the table is
    (re)built — rather than lazily on the first probe — keeps the first
    match batch after a mutation on the warm path.  Metric accounting is
    unaffected: caches never carry ticks."""
    _l2cache(table)
    for fam in table.layer2.values():
        if fam._cols is None:
            _family_cols(fam)


def hash_match_columnar(
    frag: ColumnarFragment,
    table: RecordTable,
    hasher,
    *,
    verify: bool,
    tick: Callable[[int], None],
    log: Optional[CollisionLog] = None,
) -> list[MatchCut]:
    """Pivot HashMatching over one columnar fragment.

    Work parity with `_match_edge_pivot`: per edge
    ``max(1, label//w + n_pivots)``, plus 6 per examined hit lane and 6
    per next-shallower step; ``checked``/``rejected`` count §4.4.3
    verifications identically.  Cuts come out in edge order, at most one
    per edge, deepest hit pivot first.
    """
    if frag.num_edges == 0:
        return []
    ((cuts, checked, rejected, ticks),) = hash_match_columnar_many(
        [(frag, table)], hasher, verify=verify
    )
    tick(ticks)
    if log is not None:
        log.checked += checked
        log.rejected += rejected
    return cuts


def hash_match_columnar_many(
    items, hasher, *, verify: bool
) -> list[tuple[list, int, int, int]]:
    """Pivot HashMatching over many (fragment, table) pairs at once.

    The per-lane pivot enumeration, fingerprint gather, table-membership
    probe, and per-family prefix scan all run as single whole-array
    numpy passes over every fragment sharing a table (one BSP round
    delivers a module's whole request list, so a kernel can fuse them).
    Returns ``(cuts, checked, rejected, ticks)`` per input pair, in
    input order — the caller charges ``ticks`` and folds the collision
    counts so per-request replies stay byte-identical to the one-call-
    per-fragment path.
    """
    _bind_core()
    out: list = [None] * len(items)
    groups: dict = {}
    for i, (frag, table) in enumerate(items):
        if frag.num_edges == 0:
            out[i] = ([], 0, 0, 0)
            continue
        if frag.num_edges <= _SCALAR_EDGE_LIMIT:
            # small fragments: python dict probes beat the fixed cost of
            # a whole-array pass (most piece-scope respans land here)
            out[i] = _match_scalar(frag, table, hasher, verify)
            continue
        key = (id(table), id(frag.arena))
        g = groups.get(key)
        if g is None:
            groups[key] = (table, frag.arena, [i])
        else:
            g[2].append(i)
    for table, arena, idxs in groups.values():
        _match_group(items, idxs, table, arena, hasher, verify, out)
    return out


# Below this many edges the scalar path wins; above it the fused numpy
# pass amortizes its fixed overhead across lanes.
_SCALAR_EDGE_LIMIT = 256

def _match_scalar(frag, table, hasher, verify) -> tuple[list, int, int, int]:
    """One fragment, pure python — byte-for-byte the `_match_group`
    charges (per-edge scan ticks, +6 per table-hit pivot examined
    deepest-first, +6 per next-shallower chain step, identical
    checked/rejected accounting and cut records)."""
    arena = frag.arena
    layer2 = table.layer2
    key_window = arena.key_window
    anchor = frag.aligned_base_depth
    cuts: list = []
    checked = rejected = ticks = 0
    fpl = arena.fp_lists(hasher) if layer2 else None
    for _src, s_abs, d_abs, enc, key in frag.edges:
        top = (s_abs // 64) * 64
        if top < anchor:
            top = anchor
        cnt = (d_abs - top) // 64 + 1
        t = (d_abs - s_abs) // 64 + cnt
        ticks += t if t > 1 else 1
        if not layer2:
            continue
        fp_row = fpl[key]
        for i in range(cnt - 1, -1, -1):  # deepest pivot first
            piv = top + (i << 6)
            fam = layer2.get(fp_row[piv >> 6])
            if fam is None:
                continue
            ticks += 6
            cols = fam._cols
            if cols is None:
                cols = _family_cols(fam)
            take = d_abs - piv
            if take > 64:
                take = 64
            qv = key_window(key, piv, piv + take) if take > 0 else 0
            cand = -1
            for ln, d2 in cols[7]:
                if ln > take:
                    continue
                m = d2.get(qv >> (take - ln))
                if m is not None:
                    cand = m
                    break
            accepted = False
            if cand >= 0:
                depths, sl_lens, sl_vals, chain, recs = cols[2:7]
                while True:
                    d = depths[cand]
                    ok = s_abs < d <= d_abs
                    if ok and verify:
                        checked += 1
                        want = sl_lens[cand]
                        if key_window(key, d - want, d) != sl_vals[cand]:
                            rejected += 1
                            ok = False
                    if ok:
                        cuts.append(
                            _MatchCut(enc, d_abs - d, d, recs[cand])
                        )
                        accepted = True
                        break
                    nxt = chain[cand]
                    ticks += 6
                    if nxt < 0 or depths[nxt] >= depths[cand]:
                        break
                    cand = nxt
            if accepted:
                break
    return cuts, checked, rejected, ticks


def _match_group(items, idxs, table, arena, hasher, verify, out) -> None:
    """One fused pass over every fragment probing one table."""
    frags = [items[i][0] for i in idxs]
    nf = len(frags)
    ne = np.fromiter((f.num_edges for f in frags), np.int64, nf)
    if nf == 1:
        f0 = frags[0]
        src_abs, dst_abs = f0.e_src_abs, f0.e_dst_abs
        keys_e, enc_e = f0.e_key, f0.e_enc
        anchor_e = f0.aligned_base_depth
    else:
        src_abs = np.concatenate([f.e_src_abs for f in frags])
        dst_abs = np.concatenate([f.e_dst_abs for f in frags])
        keys_e = np.concatenate([f.e_key for f in frags])
        enc_e = np.concatenate([f.e_enc for f in frags])
        anchor_e = np.repeat(
            np.fromiter((f.aligned_base_depth for f in frags), np.int64, nf),
            ne,
        )
    starts_e = np.zeros(nf, dtype=np.int64)
    np.cumsum(ne[:-1], out=starts_e[1:])

    # ---- lane fan-out: one lane per w-aligned pivot per edge ---------
    top = np.maximum((src_abs // 64) * 64, anchor_e)
    counts = (dst_abs - top) // 64 + 1
    lab = dst_abs - src_abs
    per_edge_ticks = np.maximum(1, lab // 64 + counts)
    base_ticks = np.add.reduceat(per_edge_ticks, starts_e)
    if not table.layer2:
        for k, i in enumerate(idxs):
            out[i] = ([], 0, 0, int(base_ticks[k]))
        return
    total = int(counts.sum())
    edge_of = np.repeat(np.arange(len(counts)), counts)
    lane_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
    pivot = top[edge_of] + 64 * (
        np.arange(total) - np.repeat(lane_start, counts)
    )
    fp = arena.fp_matrix(hasher)
    fps = fp[keys_e[edge_of], pivot // 64]

    # ---- membership probe against the two-layer table ----------------
    karr, fams = _l2cache(table)
    idx = np.searchsorted(karr, fps)
    idxc = np.minimum(idx, len(karr) - 1)
    hit = karr[idxc] == fps
    if not hit.any():
        for k, i in enumerate(idxs):
            out[i] = ([], 0, 0, int(base_ticks[k]))
        return

    hl = np.flatnonzero(hit)
    e_of = edge_of[hl]
    piv = pivot[hl]
    l_dst = dst_abs[e_of]
    l_src = src_abs[e_of]
    l_key = keys_e[e_of]
    take = np.minimum(64, l_dst - piv)
    # a zero-length window must not index one word past a key's storage
    start = np.where(take > 0, piv, 0)
    qv = extract_window(
        arena.key_words[l_key],
        start.astype(np.uint64),
        take.astype(np.uint64),
    )
    fam_idx = idxc[hl]

    # ---- vectorized per-family probe: deepest member prefixing each
    # lane's query window (== _Family.deepest_prefix, all lanes at once)
    probe = np.full(len(hl), -1, dtype=np.int64)
    for fi in np.unique(fam_idx):
        sel = fam_idx == fi
        lens_np, vals_np = _family_cols(fams[fi])[:2]
        tk = take[sel][:, None]
        qq = qv[sel][:, None]
        in_range = lens_np[None, :] <= tk
        shift = tk - lens_np[None, :]
        big = shift >= 64  # only take==64, len==0: window >> 64 is 0
        shifted = qq >> np.where(big | ~in_range, 0, shift).astype(np.uint64)
        shifted = np.where(big, np.uint64(0), shifted)
        m_ok = in_range & (shifted == vals_np[None, :])
        any_ok = m_ok.any(axis=1)
        probe[sel] = np.where(any_ok, np.argmax(m_ok, axis=1), -1)

    # ---- scalar redo per hit lane, deepest pivot first per edge ------
    frag_of_edge = np.repeat(np.arange(nf), ne)
    e_list = e_of.tolist()
    probe_list = probe.tolist()
    fam_list = fam_idx.tolist()
    dst_list = l_dst.tolist()
    src_list = l_src.tolist()
    key_list = l_key.tolist()
    enc_list = enc_e
    key_window = arena.key_window
    cuts_of = [[] for _ in range(nf)]
    checked_of = [0] * nf
    rejected_of = [0] * nf
    lane_ticks_of = [0] * nf
    i = 0
    n = len(e_list)
    while i < n:
        e = e_list[i]
        j = i
        while j < n and e_list[j] == e:
            j += 1
        k = int(frag_of_edge[e])
        lane_ticks = 0
        accepted = False
        for t in range(j - 1, i - 1, -1):  # lanes are pivot-ascending
            lane_ticks += 6
            cand = probe_list[t]
            if cand >= 0:
                depths, sl_lens, sl_vals, chain, recs = _family_cols(
                    fams[fam_list[t]]
                )[2:7]
                d_abs = dst_list[t]
                s_abs = src_list[t]
                ki = key_list[t]
                while True:
                    d = depths[cand]
                    ok = s_abs < d <= d_abs
                    if ok and verify:
                        checked_of[k] += 1
                        want = sl_lens[cand]
                        if key_window(ki, d - want, d) != sl_vals[cand]:
                            rejected_of[k] += 1
                            ok = False
                    if ok:
                        cuts_of[k].append(
                            _MatchCut(
                                int(enc_list[e]), int(d_abs - d), int(d),
                                recs[cand],
                            )
                        )
                        accepted = True
                        break
                    nxt = chain[cand]
                    lane_ticks += 6
                    if nxt < 0 or depths[nxt] >= depths[cand]:
                        break
                    cand = nxt
            if accepted:
                break
        lane_ticks_of[k] += lane_ticks
        i = j
    for k, i in enumerate(idxs):
        out[i] = (
            cuts_of[k],
            checked_of[k],
            rejected_of[k],
            int(base_ticks[k]) + lane_ticks_of[k],
        )


def local_match_columnar(
    frag: ColumnarFragment,
    block_trie,
    block_id: int,
    block_root_depth: int,
    *,
    tick: Callable[[int], None],
    w: int = 64,
) -> LocalMatchResult:
    """Simultaneous DFS of a columnar fragment against an object data
    block, mirroring :func:`match_block_local` step for step (mirror
    cutoffs before node landings, identical per-comparison ticks,
    node/cutoff records keyed by arena rows)."""
    _bind_core()
    if frag.base_depth != block_root_depth:
        raise ValueError(
            "fragment base must coincide with the block root "
            f"({frag.base_depth} != {block_root_depth})"
        )
    edges = frag.edges
    key_window = frag.arena.key_window
    ch_map = frag.children_map()
    nm: dict = {}
    co: dict = {}
    deepest = block_root_depth
    stack: list = []
    # comparison ticks accumulate locally and post once at the end —
    # the metrics layer records per-round sums, so the total is what
    # parity sees, and one callback beats one per label comparison.
    # node/cutoff recording is likewise inlined: most calls handle a
    # one-or-two-edge fragment, so per-call setup is the hot cost.
    ticks = 0

    def descend(ei, dnode, pos):
        nonlocal ticks, deepest
        _, src_abs, dst_abs, enc, key = edges[ei]
        lab_len = dst_abs - src_abs
        lab_val = key_window(key, src_abs, dst_abs)
        cur = dnode
        while True:
            if cur.mirror_child is not None:
                # child-block root: deeper matching belongs to that block
                d = src_abs + pos
                if enc >= 0:
                    co[enc] = d
                if d > deepest:
                    deepest = d
                return
            if pos == lab_len:
                if enc >= 0:
                    hk = cur.is_key
                    nm[enc] = (
                        dst_abs, True, hk, cur.value if hk else None
                    )
                    if dst_abs > deepest:
                        deepest = dst_abs
                    stack.append((ch_map.get(enc, ()), cur))
                else:
                    stack.append(((), cur))
                return
            dedge = cur.children[(lab_val >> (lab_len - 1 - pos)) & 1]
            if dedge is None:
                d = src_abs + pos
                if enc >= 0:
                    co[enc] = d
                if d > deepest:
                    deepest = d
                return
            dlab = dedge.label
            dv, dl = dlab.value, len(dlab)
            rl = lab_len - pos
            rv = lab_val & ((1 << rl) - 1)
            n = rl if rl < dl else dl
            x = (rv >> (rl - n)) ^ (dv >> (dl - n))
            k = n if x == 0 else n - x.bit_length()
            ticks += 1 if k <= 64 else -(-k // 64)
            if k == dl:
                cur = dedge.dst
                pos += k
                continue
            if pos + k == lab_len:
                # query node lands inside this data edge (hidden match)
                if enc >= 0:
                    nm[enc] = (dst_abs, False, False, None)
                    if dst_abs > deepest:
                        deepest = dst_abs
                within(ei, dedge, k)
                return
            d = src_abs + pos + k
            if enc >= 0:
                co[enc] = d
            if d > deepest:
                deepest = d
            return

    def within(ei, dedge, offset):
        # the query node of edge `ei` sits `offset` bits down `dedge`;
        # walk each of its child edges against the remaining direction
        nonlocal ticks, deepest
        qd = edges[ei][2]
        dlab = dedge.label
        rl2 = len(dlab) - offset
        rv2 = dlab.value & ((1 << rl2) - 1)
        enc_p = edges[ei][3]
        for ci in (ch_map.get(enc_p, ()) if enc_p >= 0 else ()):
            _, c_src_abs, c_dst_abs, c_enc, c_key = edges[ci]
            cl = c_dst_abs - c_src_abs
            cv = key_window(c_key, c_src_abs, c_dst_abs)
            n = cl if cl < rl2 else rl2
            x = (cv >> (cl - n)) ^ (rv2 >> (rl2 - n))
            k = n if x == 0 else n - x.bit_length()
            ticks += 1 if k <= 64 else -(-k // 64)
            if k == cl:
                if k == rl2:
                    dst = dedge.dst
                    if c_enc >= 0:
                        hk = dst.is_key
                        nm[c_enc] = (
                            c_dst_abs, True, hk,
                            dst.value if hk else None,
                        )
                        if c_dst_abs > deepest:
                            deepest = c_dst_abs
                        stack.append((ch_map.get(c_enc, ()), dst))
                    else:
                        stack.append(((), dst))
                else:
                    if c_enc >= 0:
                        nm[c_enc] = (c_dst_abs, False, False, None)
                        if c_dst_abs > deepest:
                            deepest = c_dst_abs
                    within(ci, dedge, offset + k)
            elif k == rl2:
                # consumed the data edge; continue at the node below
                descend(ci, dedge.dst, k)
            else:
                d = qd + k
                if c_enc >= 0:
                    co[c_enc] = d
                if d > deepest:
                    deepest = d

    if -1 in ch_map:
        root_edges = ch_map[-1]
    elif frag.base_back == 0:
        root_edges = ch_map.get(frag.base_row, [])
    else:
        root_edges = []
    root = block_trie.root
    if frag.base_back == 0 and not frag.base_is_boundary:
        hk = root.is_key
        nm[frag.base_row] = (
            block_root_depth, True, hk, root.value if hk else None
        )
    stack.append((root_edges, root))
    while stack:
        edges_here, dnode = stack.pop()
        for ei in edges_here:
            descend(ei, dnode, 0)
    if ticks:
        tick(ticks)
    res = _LocalMatchResult(
        block_id=block_id, node_matches=nm, cutoffs=co, deepest=deepest
    )
    return res
