"""Vectorized Mersenne-61 arithmetic over numpy uint64 arrays.

The columnar core needs the same hash values the object pipeline gets
from :class:`repro.bits.hashing.IncrementalHasher`, but computed for
whole columns at once.  Everything here is exact modular arithmetic on
``q = 2^61 - 1`` carried out in uint64 lanes:

* reduction uses Mersenne folding (``x mod q = (x >> 61) + (x & q)``,
  applied twice, then the ``q -> 0`` normalization — identical to the
  scalar ``_mod_m61``);
* products split operands into 32-bit limbs so no intermediate exceeds
  64 bits (``2^64 ≡ 8`` and ``2^61 ≡ 1 (mod q)`` fold the high limbs
  back down);
* the rolling digest scan uses ``digest(A · word) = digest(A) * 2^64 +
  word (mod q)`` one packed word at a time.

All functions are total over uint64 inputs ``< 2^64``; shift counts are
kept strictly below 64 everywhere (numpy's behaviour at >= 64 is
undefined).
"""

from __future__ import annotations

import numpy as np

from ..bits.hashing import MERSENNE_61

__all__ = [
    "M61",
    "fold",
    "mulmod",
    "digest_words",
    "fingerprint_cols",
    "extract_window",
    "pack_words",
]

#: The Mersenne prime 2^61 - 1 as a numpy scalar.
M61 = np.uint64(MERSENNE_61)

_U64 = np.uint64
_SHIFT61 = _U64(61)
_SHIFT32 = _U64(32)
_SHIFT29 = _U64(29)
_MASK32 = _U64(0xFFFF_FFFF)
_MASK29 = _U64(0x1FFF_FFFF)
_EIGHT = _U64(8)
_ONE = _U64(1)
_ZERO = _U64(0)


def _fold1(x: np.ndarray) -> np.ndarray:
    """One Mersenne fold: result < 2^61 + 8 for any uint64 input."""
    return (x >> _SHIFT61) + (x & M61)


def fold(x: np.ndarray) -> np.ndarray:
    """Full reduction mod q of any uint64 array (q itself maps to 0)."""
    x = _fold1(_fold1(x))
    return np.where(x == M61, _ZERO, x)


def mulmod(a, b) -> np.ndarray:
    """``a * b mod q`` for arrays/scalars already reduced below 2^61.

    32-bit limb split: with ``a = a1*2^32 + a0`` and ``b = b1*2^32 +
    b0``, the product is ``a1*b1*2^64 + (a1*b0 + a0*b1)*2^32 + a0*b0``;
    ``2^64 ≡ 8`` folds the top term and ``m*2^32 = (m >> 29) +
    (m & (2^29-1))*2^32 (mod q)`` folds the cross terms (``2^61 ≡ 1``).
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a1, a0 = a >> _SHIFT32, a & _MASK32
    b1, b0 = b >> _SHIFT32, b & _MASK32
    m = a1 * b0 + a0 * b1  # < 2^62: both terms < 2^61
    hi = _EIGHT * (a1 * b1) + (m >> _SHIFT29) + ((m & _MASK29) << _SHIFT32)
    # hi < 2^61 + 2^33 + 2^61 < 2^62.1; one fold of each addend keeps
    # the final sum below 2^63 before the full reduction.
    x = _fold1(hi) + _fold1(a0 * b0)
    return fold(x)


def digest_words(words: np.ndarray) -> np.ndarray:
    """Rolling digests over packed 64-bit words, one prefix per column.

    ``words`` is an (n, W) uint64 array, row k holding key k MSB-first.
    Returns an (n, W + 1) array ``D`` with ``D[:, j]`` the linear-core
    digest of the length-``64*j`` prefix (``D[:, 0] = 0``).  Columns
    beyond a key's true word count are meaningless (padding enters the
    scan) and must not be read.
    """
    n, width = words.shape
    out = np.zeros((n, width + 1), dtype=np.uint64)
    for j in range(width):
        # digest * 2^64 ≡ digest * 8; both addends folded below 2^62.
        x = _fold1(_EIGHT * out[:, j]) + _fold1(words[:, j])
        out[:, j + 1] = fold(x)
    return out


def fingerprint_cols(digests, lengths, mul: int, add: int, mask: int) -> np.ndarray:
    """Seeded affine fingerprints of (digest, length) columns.

    Exactly ``_mod_m61((digest + length*add + 1) * mul) & mask`` from
    :meth:`IncrementalHasher.fingerprint`, with the ``length * add``
    product routed through :func:`mulmod` (it overflows 64 bits raw).
    """
    digests = np.asarray(digests, dtype=np.uint64)
    lengths = np.asarray(lengths, dtype=np.uint64)
    lm = mulmod(lengths, _U64(add))
    t = fold(digests + lm + _ONE)  # < 2^62 before the fold
    return mulmod(t, _U64(mul)) & _U64(mask)


def extract_window(words: np.ndarray, start, length) -> np.ndarray:
    """Bits ``[start, start + length)`` of each packed row, as uint64.

    ``words`` is (n, W) MSB-first; ``start`` and ``length`` are arrays
    broadcastable to (n,), with ``0 <= length <= 64`` and the window in
    range.  Rows with ``length == 0`` return 0.  Windows may straddle
    one word boundary; shift counts are clipped so no lane shifts by
    >= 64 (the selected branch always uses the valid value).
    """
    n = words.shape[0]
    start = np.broadcast_to(np.asarray(start, dtype=np.uint64), (n,))
    length = np.broadcast_to(np.asarray(length, dtype=np.uint64), (n,))
    j = (start >> np.uint64(6)).astype(np.int64)
    off = start & _U64(63)
    avail = _U64(64) - off  # bits available in the first word: 1..64
    rows = np.arange(n)
    w0 = words[rows, j]
    one_word = length <= avail
    # branch A: fits in the first word -> (w0 >> (avail-length)) masked
    shift_a = np.where(one_word, avail - length, _ZERO)
    res_a = (w0 >> shift_a) & _mask_of(length)
    # branch B: straddles into the next word
    j2 = np.minimum(j + 1, words.shape[1] - 1)
    w1 = words[rows, j2]
    rem = np.where(one_word, _ONE, length - avail)  # 1..63 in branch B
    low_bits = w0 & _mask_of(np.where(one_word, _ZERO, avail))
    res_b = (low_bits << rem) | (w1 >> (_U64(64) - rem))
    out = np.where(one_word, res_a, res_b)
    return np.where(length == _ZERO, _ZERO, out)


def _mask_of(nbits: np.ndarray) -> np.ndarray:
    """``(1 << nbits) - 1`` for nbits in [0, 64] without shifting by 64."""
    nbits = np.asarray(nbits, dtype=np.uint64)
    full = nbits >= _U64(64)
    shift = np.where(full, _ZERO, nbits)
    return np.where(full, ~_ZERO, (_ONE << shift) - _ONE)


def pack_words(values: list[int], lengths: list[int], width: int) -> np.ndarray:
    """Pack bignum bit-strings into an (n, width) MSB-first word matrix.

    Row k holds ``values[k]`` left-aligned: bit 0 of the string is the
    MSB of word 0, and trailing bits of the last partial word are zero.
    """
    n = len(values)
    out = np.zeros((n, width), dtype=np.uint64)
    if width == 0:
        return out
    total = width * 64
    nbytes = width * 8
    for k in range(n):
        padded = values[k] << (total - lengths[k])
        out[k] = np.frombuffer(padded.to_bytes(nbytes, "big"), dtype=">u8")
    return out
