"""Columnar query fragments: Span/respan over arena rows.

A :class:`ColumnarFragment` is the flat-array counterpart of
:class:`repro.core.query.QueryFragment`.  Where the object fragment
clones a sub-trie of per-node objects, the columnar fragment is a view:
edges are parallel arrays in *global* coordinates (absolute bit depths,
arena rows), so nothing is copied or rebased — ``_respan`` becomes pure
index arithmetic and every hash or bit-window a fragment needs comes
from the arena's packed key words and fingerprint matrix.

Encoding.  An edge's destination ``enc`` is either an arena row
(``>= 0``, a mapped copy of that query node) or ``-(k+1)`` referencing
``stops[k]`` — a *boundary* position ``back`` bits up the edge entering
``stops[k].row``, exactly the unmapped boundary nodes `_clone_from`
creates at cut positions.  Cut positions returned by hash matching are
resolved back to global (row, back) pairs through the same table, which
is what lets respans nest without any coordinate rebasing.

Equivalences to the object pipeline (asserted by the differential
tests): fragment word costs equal ``3 + PatriciaTrie.word_cost()`` of
the corresponding clone; edge enumeration order equals ``iter_edges``
(preorder, child-0 first); span dedup keeps the first occurrence per
node with the smallest ``back``; fragments come out in kept-cut order
(the master-match RNG draw order depends on it).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Optional, Sequence

import numpy as np

from ..trie.nodes import TrieNode
from .arena import ColNodeRef, ColPathPos, QueryArena

__all__ = [
    "ColumnarFragment",
    "span_columnar",
    "respan_columnar",
]


class _ColOrigin:
    """Duck-typed ``origin`` map: row encs are mapped to themselves,
    boundary encs (< 0) to nothing — the composition of `_clone_from`
    mappings over any chain of respans is the identity on rows."""

    __slots__ = ("_n",)

    def __init__(self, n: int):
        self._n = n

    def get(self, enc, default=None):
        if isinstance(enc, int) and 0 <= enc < self._n:
            return enc
        return default


class ColumnarFragment:
    """A piece of the arena's query trie, in global coordinates."""

    __slots__ = (
        "arena",
        "base_row",
        "base_back",
        "base_is_boundary",
        "stops",
        "edges",
        "_origin",
        "_base_pos",
        "_np",
        "_wc",
        "_pivot_cache",
        "_fp_cache",
        "_children",
    )

    def __init__(
        self,
        arena: QueryArena,
        base_row: int,
        base_back: int,
        base_is_boundary: bool,
        stops: list[tuple[int, int]],
        edges: list[tuple[int, int, int, int, int]],
    ):
        # edges: (src_row, src_abs, dst_abs, enc, key_id); src_row == -1
        # for the tail edge entering the base copy.  The python tuple
        # list is the primary representation — most fragments are tiny
        # and take the scalar matching path, so the numpy edge columns
        # (like the wrapper objects below) are materialized lazily.
        self.arena = arena
        self.base_row = base_row
        self.base_back = base_back
        self.base_is_boundary = base_is_boundary
        self.stops = stops
        self.edges = edges
        self._origin = None
        self._base_pos = None
        self._np = None
        self._wc: Optional[int] = None
        self._pivot_cache = None
        self._fp_cache: Optional[dict] = None
        self._children = None

    @property
    def origin(self) -> _ColOrigin:
        o = self._origin
        if o is None:
            o = self._origin = _ColOrigin(self.arena.n_nodes)
        return o

    @property
    def base_pos(self) -> ColPathPos:
        bp = self._base_pos
        if bp is None:
            bp = self._base_pos = ColPathPos(
                ColNodeRef(self.base_row), self.base_back
            )
        return bp

    # ------------------------------------------------------------------
    def _arrays(self):
        a = self._np
        if a is None:
            edges = self.edges
            ne = len(edges)
            a = tuple(
                np.fromiter((e[j] for e in edges), np.int64, ne)
                for j in range(5)
            )
            self._np = a
        return a

    @property
    def e_src(self) -> np.ndarray:
        return self._arrays()[0]

    @property
    def e_src_abs(self) -> np.ndarray:
        return self._arrays()[1]

    @property
    def e_dst_abs(self) -> np.ndarray:
        return self._arrays()[2]

    @property
    def e_enc(self) -> np.ndarray:
        return self._arrays()[3]

    @property
    def e_key(self) -> np.ndarray:
        return self._arrays()[4]

    @property
    def base_depth(self) -> int:
        return self.arena.depth_list[self.base_row] - self.base_back

    @property
    def aligned_base_depth(self) -> int:
        return (self.base_depth // 64) * 64

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def word_cost(self) -> int:
        """Identical to ``3 + trie.word_cost()`` of the object clone:
        per node 2 + is_key (boundary nodes and the synthetic root above
        a hidden base carry no key), per edge 1 + ceil(label / 64)."""
        wc = self._wc
        if wc is not None:
            return wc
        is_key_l = self.arena.is_key_list
        edges = self.edges
        if self.base_back == 0 or (self.base_is_boundary and not edges):
            # the base copy is itself the clone root
            root_cost = 2 + (
                0 if self.base_is_boundary else is_key_l[self.base_row]
            )
        else:
            root_cost = 2  # synthetic root; base copy is a tail-edge dst
        total = root_cost
        for _src, s_abs, d_abs, enc, _key in edges:
            total += (
                3
                + -((s_abs - d_abs) // 64)
                + (is_key_l[enc] if enc >= 0 else 0)
            )
        wc = 3 + max(1, total)
        self._wc = wc
        return wc

    def size_words(self) -> int:
        return self.word_cost()

    # ------------------------------------------------------------------
    def pivots(self):
        """(counts, edge_of_lane, pivot_depth_of_lane, base_ticks).

        One lane per candidate w-aligned pivot per edge:
        ``range(max(align(src_abs), aligned_base_depth), dst_abs + 1,
        64)`` ascending within each edge.  ``base_ticks`` is the
        object's per-edge scan charge
        ``sum(max(1, label_bits // 64 + n_pivots))``.
        """
        cached = self._pivot_cache
        if cached is not None:
            return cached
        anchor = self.aligned_base_depth
        top = np.maximum((self.e_src_abs // 64) * 64, anchor)
        counts = (self.e_dst_abs - top) // 64 + 1
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        total = int(counts.sum())
        edge_of = np.repeat(np.arange(len(counts)), counts)
        k = np.arange(total) - np.repeat(starts, counts)
        pivot = top[edge_of] + 64 * k
        lab = self.e_dst_abs - self.e_src_abs
        base_ticks = int(np.sum(np.maximum(1, lab // 64 + counts)))
        cached = (counts, edge_of, pivot, base_ticks)
        self._pivot_cache = cached
        return cached

    def pivot_fps(self, hasher) -> np.ndarray:
        """Fingerprint of each lane's pivot-deep aligned key prefix."""
        if self._fp_cache is None:
            self._fp_cache = {}
        params = (hasher._mul, hasher._add, hasher._mask)
        fps = self._fp_cache.get(params)
        if fps is None:
            _, edge_of, pivot, _ = self.pivots()
            fp = self.arena.fp_matrix(hasher)
            fps = fp[self.e_key[edge_of], pivot // 64]
            self._fp_cache[params] = fps
        return fps

    def children_map(self) -> dict[int, list[int]]:
        """Edge indices by source row (-1 = synthetic root / tail edge),
        child-0 first — edge arrays are already in iter_edges order."""
        ch = self._children
        if ch is None:
            ch = {}
            for i, e in enumerate(self.edges):
                ch.setdefault(e[0], []).append(i)
            self._children = ch
        return ch

    def resolve(self, enc: int, back: int) -> tuple[int, int]:
        """A cut at ``back`` bits above ``enc`` -> global (row, back)."""
        if enc >= 0:
            return enc, back
        row, sback = self.stops[-enc - 1]
        return row, sback + back

    def __repr__(self) -> str:
        return (
            f"ColumnarFragment(base=({self.base_row},{self.base_back}), "
            f"edges={self.num_edges}, words={self.word_cost()})"
        )


# ----------------------------------------------------------------------
# Span / respan
# ----------------------------------------------------------------------
def _dedup(cuts: Sequence[tuple[int, int]]) -> list[tuple[int, int]]:
    """First-occurrence order per row, smallest back wins (two cuts on
    one entering edge delimit a non-critical block; keep the deepest)."""
    by_row: dict[int, int] = {}
    for row, back in cuts:
        prev = by_row.get(row)
        if prev is None or back < prev:
            by_row[row] = back
    return list(by_row.items())


#: stable sort key grouping assembled edges by source row
_by_src = itemgetter(0)


def _assemble(arena, kept, edge_stream, base_info):
    """Shared fragment assembly for span and respan.

    ``kept`` — dedup cut positions (row, global back) in output order.
    ``edge_stream`` — candidate edges ``(src_row, src_abs, dst_abs,
    dst, key)`` with ``dst`` either ``("node", row)`` or ``("stop",
    row, stop_back)``, in destination-row ascending order within each
    source.  Each edge is routed to the fragment owning its source row
    and truncated where a deeper kept cut lands inside it.
    ``base_info(row, back)`` — ``(is_boundary, stop_back_or_None)`` for
    a fragment base (respan bases can sit on inherited boundaries).
    """
    n = arena.n_nodes
    subtree_end = arena.subtree_end
    depth_l = arena.depth_list
    key_id_l = arena.key_id_list
    frag_of = np.full(n, -1, dtype=np.int64)
    order_of = {row: i for i, (row, _) in enumerate(kept)}
    for row in sorted(order_of):  # ascending: nested cuts overwrite
        frag_of[row : subtree_end[row]] = order_of[row]
    frag_of_l = frag_of.tolist()
    cut_back = dict(kept)

    # edge tuples already in fragment shape: (src_row, src_abs, dst_abs,
    # enc, key) — the destination row is recoverable from enc/stops
    edges: list[list] = [[] for _ in kept]
    stops: list[list] = [[] for _ in kept]
    for src_row, src_abs, dst_abs, dst, key in edge_stream:
        ow = frag_of_l[src_row]
        if ow < 0:
            continue  # above every cut: belongs to no fragment
        if dst[0] == "node":
            d = dst[1]
            g2 = cut_back.get(d)
            if g2 is not None and g2 > 0:
                # kept cut inside this edge: truncate, end on a boundary
                st = stops[ow]
                st.append((d, g2))
                edges[ow].append(
                    (src_row, src_abs, depth_l[d] - g2, -len(st), key)
                )
            else:
                # g2 == 0 keeps the node itself as a mapped leaf (its
                # subtree lives in its own fragment via frag_of)
                edges[ow].append((src_row, src_abs, dst_abs, d, key))
        else:
            row, sb = dst[1], dst[2]
            g2 = cut_back.get(row)
            st = stops[ow]
            if g2 is not None and g2 > sb:
                # kept cut above the inherited boundary: truncate more
                st.append((row, g2))
                edges[ow].append(
                    (src_row, src_abs, depth_l[row] - g2, -len(st), key)
                )
            else:
                # unchanged (a cut exactly at the boundary roots its own
                # single-node fragment; this edge is unaffected)
                st.append((row, sb))
                edges[ow].append(
                    (src_row, src_abs, dst_abs, -len(st), key)
                )

    out = []
    for i, (row, back) in enumerate(kept):
        fe = edges[i]
        st = stops[i]
        # stable by src: within a source, destination-row order is the
        # stream order, giving exactly iter_edges (preorder, child-0 1st)
        fe.sort(key=_by_src)
        is_boundary, sb = base_info(row, back)
        d = depth_l[row]
        tail = None
        if is_boundary:
            if back > sb:
                st.append((row, sb))
                tail = (-1, d - back, d - sb, -len(st), key_id_l[row])
        elif back > 0:
            tail = (-1, d - back, d, row, key_id_l[row])
        if tail is not None:
            fe.insert(0, tail)
        out.append(
            ColumnarFragment(arena, row, back, is_boundary, st, fe)
        )
    # uid lockstep with the object pipeline: span_fragments would clone
    # one TrieNode per edge destination plus each fragment's root.  The
    # global uid counter seeds block/piece ids downstream (and set
    # iteration over uids orders block extraction), so columnar runs
    # must consume exactly the same uid stream.
    TrieNode._next_uid += sum(f.num_edges + 1 for f in out)
    return out


def span_columnar(
    arena: QueryArena, cuts: Sequence[ColPathPos]
) -> list[ColumnarFragment]:
    """``Span`` over the whole arena: one fragment per kept cut, running
    from the cut down to the kept cuts strictly below it."""
    kept = _dedup([(p.node.uid, p.back) for p in cuts])
    depth_l = arena.depth_list
    parent_l = arena.parent_list
    key_id_l = arena.key_id_list

    def edge_stream():
        for dst in range(1, arena.n_nodes):
            src = parent_l[dst]
            yield src, depth_l[src], depth_l[dst], ("node", dst), key_id_l[dst]

    return _assemble(
        arena, kept, edge_stream(), lambda row, back: (False, None)
    )


def respan_columnar(frag: ColumnarFragment, cuts) -> list:
    """Split ``frag`` at (fragment-coordinate) MatchCuts: resolve each
    to a global position and re-assemble sub-fragments from the parent's
    own edge arrays.  Returns (sub_fragment, cut) pairs in cut order."""
    resolved = [frag.resolve(cut.node_uid, cut.back) for cut in cuts]
    # hash matching emits at most one cut per edge and every fragment
    # node is the destination of exactly one edge, so dedup cannot merge
    # positions here; it only normalizes the ordering contract
    kept = _dedup(resolved)
    cut_of = dict(zip(resolved, cuts))

    stops = frag.stops

    def edge_stream():
        for src, src_abs, dst_abs, enc, key in frag.edges:
            if src < 0:
                continue  # the old tail edge lies above every cut
            if enc >= 0:
                dst = ("node", enc)
            else:
                row, sb = stops[-enc - 1]
                dst = ("stop", row, sb)
            yield src, src_abs, dst_abs, dst, key

    boundary_back = dict(stops)

    def base_info(row, back):
        sb = boundary_back.get(row)
        if sb is not None and back >= sb:
            return True, sb
        return False, None

    subs = _assemble(frag.arena, kept, edge_stream(), base_info)
    return [(sf, cut_of[(sf.base_row, sf.base_back)]) for sf in subs]
