"""Columnar flat-array query core (struct-of-arrays batch pipeline).

The object pipeline builds a per-node/per-edge query trie, clones it
into fragments, and matches fragment by fragment with BitString
arithmetic.  This package keeps the whole batch in flat numpy arrays
instead:

* :mod:`~repro.columnar.m61` — exact vectorized Mersenne-61 hashing,
  packed-word windows, and fingerprint columns;
* :mod:`~repro.columnar.arena` — :class:`QueryArena`, the
  struct-of-arrays query trie (topology, depths, packed key words,
  per-key fingerprint matrix) built in one vectorized pass;
* :mod:`~repro.columnar.span` — :class:`ColumnarFragment` plus
  span/respan as index arithmetic over arena rows;
* :mod:`~repro.columnar.match` — batched pivot HashMatching and the
  local-match DFS over columnar fragments.

The columnar core is a second tier of the wall-clock fast path (gated
by :func:`repro.fastpath.columnar_enabled`): it must produce answers
and PIM Model metric deltas byte-identical to the object reference —
the columnar parity suite drives both pipelines over the differential
harness and asserts exactly that.
"""

from .arena import ColNodeRef, ColPathPos, QueryArena
from .match import (
    hash_match_columnar,
    hash_match_columnar_many,
    local_match_columnar,
    warm_table,
)
from .span import ColumnarFragment, respan_columnar, span_columnar

__all__ = [
    "ColNodeRef",
    "ColPathPos",
    "QueryArena",
    "ColumnarFragment",
    "span_columnar",
    "respan_columnar",
    "hash_match_columnar",
    "hash_match_columnar_many",
    "local_match_columnar",
    "warm_table",
]
