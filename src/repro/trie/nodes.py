"""Node and edge structures for binary compressed tries (paper §4, "Basic
Structures and Terminology").

A *compressed node* survives path compression: it has two children, or
it terminates a stored key, or both.  Compressed edges carry the omitted
bit-string between compressed nodes.  *Hidden nodes* are the implicit
prefixes lying inside an edge; they have no physical storage and are
addressed by (host edge, offset-in-bits), exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..bits import BitString

__all__ = ["TrieNode", "TrieEdge", "HiddenNodeRef", "NodeRef"]


class TrieNode:
    """A compressed node of a binary radix tree.

    ``depth`` is the node depth in *bits* (the length of the represented
    prefix).  ``children[b]`` is the outgoing edge whose label starts
    with bit ``b`` (or None).  ``value`` is the stored value when the
    node terminates a key (``is_key``).
    """

    __slots__ = (
        "depth",
        "children",
        "parent_edge",
        "is_key",
        "value",
        "uid",
        "mirror_child",
    )

    _next_uid = 0

    def __init__(self, depth: int, *, is_key: bool = False, value: Any = None):
        self.depth = depth
        self.children: list[Optional["TrieEdge"]] = [None, None]
        self.parent_edge: Optional["TrieEdge"] = None
        self.is_key = is_key
        self.value = value
        #: id of the child data-trie block whose root this node mirrors
        #: (None for ordinary nodes; see paper §4.2, "mirror nodes")
        self.mirror_child: Optional[int] = None
        TrieNode._next_uid += 1
        self.uid = TrieNode._next_uid

    # ------------------------------------------------------------------
    @property
    def num_children(self) -> int:
        return (self.children[0] is not None) + (self.children[1] is not None)

    @property
    def is_leaf(self) -> bool:
        return self.num_children == 0

    @property
    def parent(self) -> Optional["TrieNode"]:
        return self.parent_edge.src if self.parent_edge is not None else None

    def child_edge(self, bit: int) -> Optional["TrieEdge"]:
        return self.children[bit]

    def attach(self, edge: "TrieEdge") -> None:
        """Attach an outgoing edge; its label's first bit selects the slot."""
        b = edge.label.bit(0)
        if self.children[b] is not None:
            raise ValueError(f"node already has a child on bit {b}")
        self.children[b] = edge
        edge.src = self

    def detach(self, bit: int) -> "TrieEdge":
        edge = self.children[bit]
        if edge is None:
            raise ValueError(f"no child on bit {bit}")
        self.children[bit] = None
        edge.src = None
        return edge

    def word_cost(self) -> int:
        """Words to ship this node: O(1) plus its value."""
        return 2 + (1 if self.is_key else 0)

    def __repr__(self) -> str:
        return (
            f"TrieNode(depth={self.depth}, key={self.is_key}, "
            f"children={self.num_children}, uid={self.uid})"
        )


class TrieEdge:
    """A compressed edge labelled by a non-empty bit-string."""

    __slots__ = ("src", "dst", "label")

    def __init__(self, label: BitString, dst: TrieNode):
        if len(label) == 0:
            raise ValueError("compressed edges carry non-empty labels")
        self.src: Optional[TrieNode] = None
        self.dst = dst
        self.label = label
        dst.parent_edge = self

    def word_cost(self) -> int:
        """Words to ship this edge: ceil(|label|/w) plus framing."""
        return 1 + self.label.word_count()

    def __repr__(self) -> str:
        lbl = self.label.to_str()
        if len(lbl) > 24:
            lbl = lbl[:21] + "..."
        return f"TrieEdge('{lbl}' -> depth {self.dst.depth})"


@dataclass(frozen=True)
class HiddenNodeRef:
    """A hidden node: (host edge, position on the edge in bits).

    ``offset`` counts bits from the edge source; ``0 < offset <
    len(edge.label)`` (offset 0 is the source compressed node itself and
    offset len(label) the destination).
    """

    edge: TrieEdge
    offset: int

    @property
    def depth(self) -> int:
        src = self.edge.src
        assert src is not None
        return src.depth + self.offset

    def word_cost(self) -> int:
        return 2


#: A match target: either a compressed node or a hidden node reference.
NodeRef = TrieNode | HiddenNodeRef
