"""Batch query-trie construction (paper §4.1, Algorithm 1).

``QTrieConstruct`` builds the query trie for a batch in three stages:

1. string-sort the batch (here: a most-significant-bit-first radix/
   comparison hybrid over packed bit-strings);
2. compute the adjacent-LCP array between neighbouring sorted strings;
3. generate the Patricia trie from the sorted strings and the LCP array
   using the Cartesian-tree construction (a right-spine stack build, the
   sequential realization of [14]).

The sequential build runs in O(n * (1 + k/w)) word operations —
matching Lemma 4.1's work bound up to the sort's log log n factor that
only matters on the PRAM.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..bits import BitString
from .nodes import TrieEdge, TrieNode
from .patricia import PatriciaTrie

__all__ = [
    "argsort",
    "sort_bitstrings",
    "adjacent_lcp_array",
    "patricia_from_sorted",
    "build_query_trie",
]


def argsort(seq: Sequence[Any]) -> list[int]:
    """Indices that sort ``seq`` (stable, using the elements' own order).

    For bit-strings this is trie order: a proper prefix sorts before any
    of its extensions (see :meth:`BitString.__lt__`).
    """
    return sorted(range(len(seq)), key=seq.__getitem__)


def sort_bitstrings(strings: Iterable[BitString]) -> list[BitString]:
    """Sort bit-strings in trie order (prefix sorts before extension).

    Python's sort on (value-aligned key) tuples would not respect the
    prefix rule directly, so we sort with the BitString comparison
    operators, which implement exactly that order via word-level LCP.
    """
    return sorted(strings)


def adjacent_lcp_array(sorted_strings: Sequence[BitString]) -> list[int]:
    """lcp[i] = LCP length of sorted_strings[i-1] and sorted_strings[i].

    lcp[0] is defined as 0.  O(sum l_i / w) word operations.
    """
    out = [0] * len(sorted_strings)
    for i in range(1, len(sorted_strings)):
        out[i] = sorted_strings[i - 1].lcp_len(sorted_strings[i])
    return out


def patricia_from_sorted(
    sorted_strings: Sequence[BitString],
    lcp: Sequence[int],
    values: Sequence[Any] | None = None,
) -> PatriciaTrie:
    """Build a Patricia trie from sorted distinct strings + adjacent LCPs.

    Uses the right-spine stack construction: the rightmost root-to-leaf
    path is kept on a stack of (node, depth); each new string branches
    off at depth lcp[i], possibly splitting the top edge.  O(n) stack
    operations plus O(sum l/w) label slicing.
    """
    trie = PatriciaTrie()
    if not sorted_strings:
        return trie
    n = len(sorted_strings)
    if values is None:
        values = [None] * n
    if len(lcp) != n or len(values) != n:
        raise ValueError("sorted_strings, lcp, values must align")

    # stack of nodes on the rightmost path (root first)
    spine: list[TrieNode] = [trie.root]

    def attach_leaf(parent: TrieNode, s: BitString, v: Any) -> TrieNode:
        if parent.depth == len(s):
            # duplicate or prefix-equal: mark the node itself
            if not parent.is_key:
                parent.is_key = True
                parent.value = v
                trie.num_keys += 1
            return parent
        leaf = TrieNode(len(s), is_key=True, value=v)
        edge = TrieEdge(s.suffix_from(parent.depth), leaf)
        parent.attach(edge)
        trie.edge_bits += len(edge.label)
        trie.num_keys += 1
        return leaf

    prev = attach_leaf(trie.root, sorted_strings[0], values[0])
    if prev is not trie.root:
        spine.append(prev)

    for i in range(1, n):
        s, d, v = sorted_strings[i], lcp[i], values[i]
        if (
            len(sorted_strings[i - 1]) == len(s)
            and d == len(s)
        ):
            continue  # duplicate key: first value wins (paper: batch dedup)
        # pop spine until the top node's depth <= d
        while spine[-1].depth > d:
            spine.pop()
        top = spine[-1]
        if top.depth == d:
            node = attach_leaf(top, s, v)
            if node is not top:
                spine.append(node)
            continue
        # branch point lies inside the edge from `top` toward the
        # previously attached subtree: split that edge at depth d.
        # That edge is top's rightmost (greatest-bit) present child on
        # the current spine path; since we popped to top.depth < d, the
        # edge to split is the one leading to the old spine child.
        child_edge = None
        for b in (1, 0):
            e = top.children[b]
            if e is not None and top.depth + len(e.label) >= d:
                # the spine edge is the lexicographically largest path;
                # prefer bit 1 then bit 0 — but it must lie on the path
                # to the previous string.
                child_edge = e
                if sorted_strings[i - 1].bit(top.depth) == b:
                    break
        assert child_edge is not None, "spine edge not found"
        # split at offset d - top.depth
        mid = trie._split_edge(child_edge, d - top.depth)
        spine.append(mid)
        node = attach_leaf(mid, s, v)
        if node is not mid:
            spine.append(node)
    return trie


def build_query_trie(
    batch: Sequence[BitString],
    values: Sequence[Any] | None = None,
) -> PatriciaTrie:
    """Algorithm 1 (QTrieConstruct): sort, LCP array, Patricia generate.

    Duplicate keys in the batch are collapsed (first value wins), as the
    query trie has one node per distinct key.
    """
    order = argsort(batch)
    ss = [batch[i] for i in order]
    if values is None:
        vv: list[Any] = [None] * len(ss)
    else:
        if len(values) != len(batch):
            raise ValueError("values must align with batch")
        vv = [values[i] for i in order]
    # drop exact duplicates (keep first occurrence in sorted order)
    dedup_s: list[BitString] = []
    dedup_v: list[Any] = []
    for s, v in zip(ss, vv):
        if dedup_s and dedup_s[-1] == s:
            continue
        dedup_s.append(s)
        dedup_v.append(v)
    lcp = adjacent_lcp_array(dedup_s)
    return patricia_from_sorted(dedup_s, lcp, dedup_v)
