"""Trie substrate: Patricia tries, batch construction, Euler-tour tools."""

from .construction import (
    adjacent_lcp_array,
    argsort,
    build_query_trie,
    patricia_from_sorted,
    sort_bitstrings,
)
from .euler import (
    euler_tour,
    lca_closure,
    leaffix,
    node_weight_words,
    partition_weighted,
    rootfix,
)
from .nodes import HiddenNodeRef, NodeRef, TrieEdge, TrieNode
from .patricia import MatchResult, PatriciaTrie

__all__ = [
    "adjacent_lcp_array",
    "argsort",
    "build_query_trie",
    "patricia_from_sorted",
    "sort_bitstrings",
    "euler_tour",
    "lca_closure",
    "leaffix",
    "node_weight_words",
    "partition_weighted",
    "rootfix",
    "HiddenNodeRef",
    "NodeRef",
    "TrieEdge",
    "TrieNode",
    "MatchResult",
    "PatriciaTrie",
]
