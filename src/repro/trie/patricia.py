"""A sequential binary Patricia trie (compressed binary radix tree).

This is the in-block structure of PIM-trie (each data-trie block is one
of these) and also the correctness oracle against which the distributed
index is tested.  It supports the paper's full operation set on
variable-length bit-string keys: insert, delete, exact lookup, longest
common prefix, subtree (prefix) enumeration, and bit-by-bit trie
matching against another Patricia trie (§4.1's matching semantics,
including hidden-node match points).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

from ..bits import EMPTY, BitString
from .nodes import HiddenNodeRef, NodeRef, TrieEdge, TrieNode

__all__ = ["PatriciaTrie", "MatchResult"]


class MatchResult:
    """Result of walking a key down a trie.

    ``lcp_len`` is the longest common prefix length between the key and
    the whole key set.  ``node`` is the deepest node (compressed or
    hidden) representing that prefix.  ``exact`` is True when the key is
    stored.
    """

    __slots__ = ("lcp_len", "node", "exact")

    def __init__(self, lcp_len: int, node: NodeRef, exact: bool):
        self.lcp_len = lcp_len
        self.node = node
        self.exact = exact

    def __repr__(self) -> str:
        return f"MatchResult(lcp={self.lcp_len}, exact={self.exact})"


class PatriciaTrie:
    """Binary compressed trie over :class:`BitString` keys."""

    def __init__(self):
        self.root = TrieNode(0)
        self.num_keys = 0
        #: aggregate length of all edge labels in bits (L_T in the paper)
        self.edge_bits = 0

    # ------------------------------------------------------------------
    # structural metrics (paper Table 2)
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """n_T: number of stored keys."""
        return self.num_keys

    @property
    def L(self) -> int:
        """L_T: aggregate bit-length of compressed edges."""
        return self.edge_bits

    def Q(self, w: int = 64) -> int:
        """Q_T = O(L_T/w + n_T): size of the compressed trie in words."""
        return -(-self.edge_bits // w) + max(1, self.num_nodes())

    def num_nodes(self) -> int:
        return sum(1 for _ in self.iter_nodes())

    def word_cost(self) -> int:
        """Words to ship this whole trie between CPU and PIM."""
        total = 0
        for node in self.iter_nodes():
            total += node.word_cost()
            for e in node.children:
                if e is not None:
                    total += e.word_cost()
        return max(1, total)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[TrieNode]:
        """All compressed nodes, preorder."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for b in (1, 0):
                e = node.children[b]
                if e is not None:
                    stack.append(e.dst)

    def iter_edges(self) -> Iterator[TrieEdge]:
        for node in self.iter_nodes():
            for e in node.children:
                if e is not None:
                    yield e

    def iter_items(self) -> Iterator[tuple[BitString, Any]]:
        """All (key, value) pairs in lexicographic order."""
        stack: list[tuple[TrieNode, BitString]] = [(self.root, EMPTY)]
        while stack:
            node, prefix = stack.pop()
            if node.is_key:
                yield prefix, node.value
            for b in (1, 0):
                e = node.children[b]
                if e is not None:
                    stack.append((e.dst, prefix + e.label))

    def keys(self) -> list[BitString]:
        return [k for k, _ in self.iter_items()]

    def key_of(self, node: TrieNode) -> BitString:
        """Reconstruct the prefix represented by ``node`` (O(depth))."""
        parts: list[BitString] = []
        cur: Optional[TrieNode] = node
        while cur is not None and cur.parent_edge is not None:
            parts.append(cur.parent_edge.label)
            cur = cur.parent_edge.src
        out = EMPTY
        for p in reversed(parts):
            out = out + p
        return out

    # ------------------------------------------------------------------
    # core walk
    # ------------------------------------------------------------------
    def walk(self, key: BitString, tick: Callable[[int], None] | None = None) -> MatchResult:
        """Walk ``key`` from the root; find the deepest matching prefix.

        ``tick`` (if given) meters one unit per word of label compared,
        so kernels can charge PIM work faithfully.
        """
        node = self.root
        pos = 0
        n = len(key)
        while True:
            if pos == n:
                return MatchResult(pos, node, node.is_key)
            edge = node.children[key.bit(pos)]
            if edge is None:
                return MatchResult(pos, node, False)
            label = edge.label
            rest = key.substring(pos, n)
            k = rest.lcp_len(label)
            if tick is not None:
                tick(max(1, -(-k // 64)))
            if k < len(label):
                # diverged (or key exhausted) inside the edge
                pos += k
                if k == 0:
                    return MatchResult(pos, node, False)
                return MatchResult(pos, HiddenNodeRef(edge, k), False)
            node = edge.dst
            pos += k

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, key: BitString) -> Optional[Any]:
        """Value stored at ``key``, or None."""
        r = self.walk(key)
        if r.exact and isinstance(r.node, TrieNode):
            return r.node.value
        return None

    def contains(self, key: BitString) -> bool:
        r = self.walk(key)
        return r.exact

    def lcp(self, key: BitString) -> int:
        """Length of the longest common prefix of ``key`` with the key set.

        Matches the paper's LCP semantics: the longest prefix of ``key``
        that is also a prefix of (i.e. a valid trie node on the path to)
        some stored key.
        """
        if self.num_keys == 0:
            return 0
        return self.walk(key).lcp_len

    def subtree_items(self, prefix: BitString) -> list[tuple[BitString, Any]]:
        """All (key, value) pairs whose key has ``prefix`` as a prefix."""
        r = self.walk(prefix)
        if r.lcp_len < len(prefix):
            return []
        out: list[tuple[BitString, Any]] = []
        if isinstance(r.node, TrieNode):
            start_node, start_prefix = r.node, prefix
        else:
            # hidden node: the only continuation is the rest of the edge
            edge = r.node.edge
            rest = edge.label.suffix_from(r.node.offset)
            start_node, start_prefix = edge.dst, prefix + rest
        stack = [(start_node, start_prefix)]
        while stack:
            node, p = stack.pop()
            if node.is_key:
                out.append((p, node.value))
            for b in (1, 0):
                e = node.children[b]
                if e is not None:
                    stack.append((e.dst, p + e.label))
        return out

    def subtree(self, prefix: BitString) -> "PatriciaTrie":
        """The result trie of a SubtreeQuery (keys keep their full length)."""
        out = PatriciaTrie()
        for k, v in self.subtree_items(prefix):
            out.insert(k, v)
        return out

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, key: BitString, value: Any = None) -> bool:
        """Insert (key, value); returns True if the key was new."""
        r = self.walk(key)
        pos = r.lcp_len
        if isinstance(r.node, TrieNode):
            node = r.node
            if pos == len(key):
                fresh = not node.is_key
                node.is_key = True
                node.value = value
                if fresh:
                    self.num_keys += 1
                return fresh
            # append the remainder as a fresh edge
            leaf = TrieNode(len(key), is_key=True, value=value)
            edge = TrieEdge(key.suffix_from(pos), leaf)
            node.attach(edge)
            self.edge_bits += len(edge.label)
            self.num_keys += 1
            return True
        # diverged inside an edge: split it at the hidden node
        mid = self._split_edge(r.node.edge, r.node.offset)
        if pos == len(key):
            mid.is_key = True
            mid.value = value
        else:
            leaf = TrieNode(len(key), is_key=True, value=value)
            mid.attach(TrieEdge(key.suffix_from(pos), leaf))
            self.edge_bits += len(key) - pos
        self.num_keys += 1
        return True

    def _split_edge(self, edge: TrieEdge, offset: int) -> TrieNode:
        """Materialize the hidden node at ``offset`` inside ``edge``."""
        if not 0 < offset < len(edge.label):
            raise ValueError("split offset must be strictly inside the edge")
        src = edge.src
        assert src is not None
        b = edge.label.bit(0)
        src.children[b] = None
        mid = TrieNode(src.depth + offset)
        top = TrieEdge(edge.label.prefix(offset), mid)
        src.attach(top)
        bottom = TrieEdge(edge.label.suffix_from(offset), edge.dst)
        mid.attach(bottom)
        return mid

    def delete(self, key: BitString) -> bool:
        """Remove ``key``; returns True if it was present.

        Path-compresses afterwards: a non-key node left with one child
        is merged with its parent edge, so the trie stays canonical.
        """
        r = self.walk(key)
        if not (r.exact and isinstance(r.node, TrieNode)):
            return False
        node = r.node
        node.is_key = False
        node.value = None
        self.num_keys -= 1
        self._compress_up(node)
        return True

    def _compress_up(self, node: TrieNode) -> None:
        """Remove/merge ``node`` if path compression no longer keeps it."""
        while node is not self.root and not node.is_key:
            if node.num_children == 0:
                parent_edge = node.parent_edge
                assert parent_edge is not None
                src = parent_edge.src
                assert src is not None
                src.children[parent_edge.label.bit(0)] = None
                self.edge_bits -= len(parent_edge.label)
                node = src
            elif node.num_children == 1:
                self._merge_through(node)
                return
            else:
                return
        # the root may now also be mergeable-through in a child
        if node is self.root:
            return

    def _merge_through(self, node: TrieNode) -> None:
        """Merge a one-child non-key node into a single longer edge."""
        parent_edge = node.parent_edge
        assert parent_edge is not None
        src = parent_edge.src
        assert src is not None
        child_edge = node.children[0] or node.children[1]
        assert child_edge is not None
        b = parent_edge.label.bit(0)
        src.children[b] = None
        merged = TrieEdge(parent_edge.label + child_edge.label, child_edge.dst)
        src.attach(merged)
        # edge_bits unchanged: |merged| = |parent| + |child|

    # ------------------------------------------------------------------
    # validation (used by tests / hypothesis)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert structural invariants of a canonical Patricia trie."""
        seen_bits = 0
        for node in self.iter_nodes():
            if node is not self.root:
                assert node.parent_edge is not None
                assert node.parent_edge.dst is node
                # canonical: every non-root compressed node has 2 children
                # or is a key endpoint
                assert node.num_children == 2 or node.is_key, (
                    f"non-canonical node at depth {node.depth}"
                )
            for b in (0, 1):
                e = node.children[b]
                if e is None:
                    continue
                assert e.src is node
                assert e.label.bit(0) == b
                assert e.dst.depth == node.depth + len(e.label)
                seen_bits += len(e.label)
        assert seen_bits == self.edge_bits, (
            f"edge_bits drifted: {seen_bits} != {self.edge_bits}"
        )
        assert self.num_keys == sum(1 for _ in self.iter_items())

    def __len__(self) -> int:
        return self.num_keys

    def __repr__(self) -> str:
        return f"PatriciaTrie(n={self.num_keys}, L={self.edge_bits} bits)"
