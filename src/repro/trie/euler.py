"""Euler tours, treefix scans, and weighted tree partitioning (paper §4.2).

The blocking algorithm reduces data-trie decomposition to weighted tree
partitioning: assign each compressed node the weight of itself plus its
child edges (in words), lay the nodes on an Euler tour, take prefix sums
of the weights, mark one *base node* each time the running sum crosses a
multiple of the block bound K_B, then close the marked set under lowest
common ancestors.  The marked set is the block-root partition.

Treefix scans (rootfix / leaffix) are provided for trie-wide derived
values: rootfix pushes an associative accumulation from the root down
(e.g. node hashes via the incremental hash), leaffix pulls one up from
the leaves (e.g. "is my whole subtree deleted?", §5.2).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .nodes import TrieNode
from .patricia import PatriciaTrie

__all__ = [
    "euler_tour",
    "rootfix",
    "leaffix",
    "node_weight_words",
    "partition_weighted",
    "lca_closure",
]


def euler_tour(trie: PatriciaTrie) -> list[tuple[TrieNode, bool]]:
    """The Euler tour as (node, is_entry) events, preorder entries.

    Each node appears exactly once with ``is_entry=True`` (first visit)
    and once with ``is_entry=False`` (after its subtree).
    """
    tour: list[tuple[TrieNode, bool]] = []
    stack: list[tuple[TrieNode, bool]] = [(trie.root, True)]
    while stack:
        node, entering = stack.pop()
        tour.append((node, entering))
        if entering:
            stack.append((node, False))
            for b in (1, 0):
                e = node.children[b]
                if e is not None:
                    stack.append((e.dst, True))
    return tour


def rootfix(
    trie: PatriciaTrie,
    init: Any,
    step: Callable[[Any, TrieNode], Any],
) -> dict[int, Any]:
    """Top-down accumulation: value(child) = step(value(parent), child).

    Returns {node.uid: value}.  ``init`` is the root's value.
    """
    out: dict[int, Any] = {trie.root.uid: init}
    stack = [trie.root]
    while stack:
        node = stack.pop()
        acc = out[node.uid]
        for b in (0, 1):
            e = node.children[b]
            if e is not None:
                out[e.dst.uid] = step(acc, e.dst)
                stack.append(e.dst)
    return out


def leaffix(
    trie: PatriciaTrie,
    leaf_value: Callable[[TrieNode], Any],
    combine: Callable[[TrieNode, list[Any]], Any],
) -> dict[int, Any]:
    """Bottom-up accumulation over the trie; returns {node.uid: value}."""
    out: dict[int, Any] = {}
    # post-order via reversed Euler exits
    order: list[TrieNode] = []
    stack = [trie.root]
    while stack:
        node = stack.pop()
        order.append(node)
        for b in (0, 1):
            e = node.children[b]
            if e is not None:
                stack.append(e.dst)
    for node in reversed(order):
        if node.is_leaf:
            out[node.uid] = leaf_value(node)
        else:
            kids = [
                out[e.dst.uid]
                for e in node.children
                if e is not None
            ]
            out[node.uid] = combine(node, kids)
    return out


def node_weight_words(node: TrieNode, w: int = 64) -> int:
    """Blocking weight of a node: itself plus its (≤2) child edges, in words."""
    weight = node.word_cost()
    for e in node.children:
        if e is not None:
            weight += 1 + max(1, -(-len(e.label) // w))
    return weight


def partition_weighted(
    trie: PatriciaTrie,
    bound: int,
    *,
    weight: Callable[[TrieNode], int] | None = None,
) -> set[int]:
    """Weighted tree partitioning; returns the uid set of block roots.

    Implements §4.2's blocking algorithm: Euler-tour prefix sums of node
    weights select base nodes whenever the sum crosses a multiple of
    ``bound``; the returned set is the LCA closure of the base nodes plus
    the root.  The resulting blocks (subtrees hanging below one root,
    cut at descendant roots) have weight < 2 * bound each and number
    O(total_weight / bound).
    """
    if bound <= 0:
        raise ValueError("partition bound must be positive")
    if weight is None:
        weight = node_weight_words
    base: list[TrieNode] = []
    running = 0
    next_mark = bound
    for node, entering in euler_tour(trie):
        if not entering:
            continue
        running += weight(node)
        if running >= next_mark:
            base.append(node)
            while next_mark <= running:
                next_mark += bound
    roots = lca_closure(base)
    roots.add(trie.root.uid)
    return roots


def lca_closure(nodes: Sequence[TrieNode]) -> set[int]:
    """Close a node set under pairwise lowest common ancestors.

    Exploits that consecutive base nodes in Euler order have their LCA
    on the tree path between them; walking up from the shallower of each
    adjacent pair until the paths meet yields all pairwise LCAs.
    """
    result: set[int] = {n.uid for n in nodes}
    by_uid: dict[int, TrieNode] = {n.uid: n for n in nodes}
    for a, b in zip(nodes, nodes[1:]):
        x, y = a, b
        while x is not y:
            if x.depth >= y.depth:
                p = x.parent
                if p is None:
                    break
                x = p
            else:
                p = y.parent
                if p is None:
                    break
                y = p
        if x is y:
            result.add(x.uid)
            by_uid[x.uid] = x
    return result
