"""Scaling-law analysis helpers for the benchmark harness.

The paper's claims are growth laws: O(log P) rounds, O(l/w) words,
O(Q/P) IO time.  These helpers fit measured series against candidate
laws and report which fits best, so EXPERIMENTS.md statements like
"rounds grow logarithmically in P" are backed by a regression rather
than eyeballing.

All fits are least-squares over the design matrix [1, f(x)]; quality is
the coefficient of determination R².
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["FitResult", "fit_law", "best_law", "doubling_deltas", "LAWS"]


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of y ~ a + b * f(x)."""

    law: str
    a: float
    b: float
    r2: float

    def predict(self, x: float) -> float:
        return self.a + self.b * LAWS[self.law](x)

    def __repr__(self) -> str:
        return f"FitResult({self.law}: y = {self.a:.3g} + {self.b:.3g}*f, R2={self.r2:.3f})"


#: candidate growth laws
LAWS: dict[str, Callable[[float], float]] = {
    "constant": lambda x: 0.0,
    "log": lambda x: math.log2(max(x, 1.0)),
    "linear": lambda x: float(x),
    "nlogn": lambda x: float(x) * math.log2(max(x, 2.0)),
    "quadratic": lambda x: float(x) ** 2,
    "sqrt": lambda x: math.sqrt(max(x, 0.0)),
}


def fit_law(
    xs: Sequence[float], ys: Sequence[float], law: str
) -> FitResult:
    """Fit y ~ a + b*f(x) for the named law; returns the fit + R²."""
    if law not in LAWS:
        raise ValueError(f"unknown law {law!r}; choose from {sorted(LAWS)}")
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two aligned samples")
    f = LAWS[law]
    x = np.asarray([f(v) for v in xs], dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if law == "constant":
        a = float(y.mean())
        resid = float(((y - a) ** 2).sum())
        total = float(((y - y.mean()) ** 2).sum())
        r2 = 1.0 if total == 0 else max(0.0, 1 - resid / total)
        return FitResult("constant", a, 0.0, r2)
    A = np.vstack([np.ones_like(x), x]).T
    coef, *_ = np.linalg.lstsq(A, y, rcond=None)
    pred = A @ coef
    total = float(((y - y.mean()) ** 2).sum())
    resid = float(((y - pred) ** 2).sum())
    r2 = 1.0 if total == 0 else max(0.0, 1 - resid / total)
    return FitResult(law, float(coef[0]), float(coef[1]), r2)


def best_law(
    xs: Sequence[float],
    ys: Sequence[float],
    candidates: Sequence[str] = ("constant", "log", "sqrt", "linear"),
) -> FitResult:
    """The candidate law with the highest R², with a flatness guard:
    if the series varies by < 20% of its mean, 'constant' wins outright
    (R² comparisons are meaningless for near-flat data)."""
    y = np.asarray(ys, dtype=np.float64)
    if y.mean() > 0 and (y.max() - y.min()) < 0.2 * y.mean():
        return fit_law(xs, ys, "constant")
    fits = [fit_law(xs, ys, c) for c in candidates]
    return max(fits, key=lambda f: f.r2)


def doubling_deltas(xs: Sequence[float], ys: Sequence[float]) -> list[float]:
    """y-increments between consecutive x-doublings (xs must be an
    increasing geometric series with ratio 2) — O(log) growth shows as
    bounded constant deltas."""
    for a, b in zip(xs, xs[1:]):
        if b != 2 * a:
            raise ValueError("xs must double at each step")
    return [float(b - a) for a, b in zip(ys, ys[1:])]
