"""Recovery protocol: heal a faulted PIM system and retry the batch.

The host always holds enough to reconstruct any module: PIMTrie keeps a
write-through *replica log* (``_block_items``: per-block relative
key→value maps, updated at build/insert/delete/repartition time) plus
the addressing registries (block/piece placement, parents, root
strings).  Recovery therefore never needs the crashed memory:

* **clean recovery** (``PIMTrie.rebuild_modules``) — when the abort hit
  a non-structural round (plain insert/delete/match), every block and
  meta piece resident on a crashed module is rebuilt host-side from the
  replica log and re-shipped, and the master replica is re-broadcast to
  the restarted modules;
* **full rebuild** (``PIMTrie.rebuild_from_mirror``) — when the abort
  unwound a *structural* maintenance path (repartition, HVM
  rebuilds; flagged by ``PIMTrie._dirty_structure``), registries may be
  mid-transition, so the whole index is rebuilt from the union of the
  replica log — the one invariant every maintenance path preserves
  between rounds.

All recovery rounds run with the injector :meth:`~FaultInjector.suspended`
(a real deployment would recover over a control channel that the data
plane's failure schedule does not govern), and they still pass through
``PIMSystem.round`` so their cost lands in the PIM Model metrics;
``FaultStats.rebuild_rounds`` additionally tallies them separately.

Retries are safe because every PIMTrie batch op is idempotent:
``insert_batch`` is a last-write-wins upsert, ``delete_batch`` re-matches
and skips already-gone keys, and reads are pure.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TypeVar

from ..obs.tracer import maybe_span
from .injector import FaultInjector, RoundAborted

__all__ = ["recover", "run_with_recovery"]

T = TypeVar("T")


def recover(trie) -> int:
    """Heal ``trie``'s system after a :class:`RoundAborted`.

    Restarts every crashed module, rebuilds lost state from the host
    replica log (clean per-module rebuild, or a full rebuild if a
    structural maintenance path was interrupted), and returns the number
    of IO rounds the recovery consumed.  A no-op (returning 0) when
    nothing is crashed or dirty — e.g. after a transient kernel error,
    where retrying is all it takes.
    """
    system = trie.system
    inj: Optional[FaultInjector] = getattr(system, "faults", None)
    crashed = sorted(inj.crashed) if inj is not None else []
    dirty = bool(getattr(trie, "_dirty_structure", False))
    if not crashed and not dirty:
        return 0
    before = system.snapshot()
    # recovery gets its own span category so degraded epochs show the
    # rebuild rounds as distinct slices in the trace
    tier = "recovery.rebuild_from_mirror" if dirty else "recovery.rebuild_modules"
    with maybe_span(system, tier, cat="recovery", crashed=crashed):
        if inj is not None:
            with inj.suspended():
                for m in crashed:
                    inj.restart(m)
                if dirty:
                    trie.rebuild_from_mirror()
                else:
                    trie.rebuild_modules(crashed)
        else:
            if dirty:
                trie.rebuild_from_mirror()
    rounds = system.snapshot().delta(before).io_rounds
    if inj is not None:
        inj.stats.recoveries += 1
        inj.stats.rebuild_rounds += rounds
    return rounds


def run_with_recovery(
    trie,
    fn: Callable[..., T],
    *args: Any,
    max_retries: int = 4,
) -> T:
    """Run ``fn(*args)``, recovering and retrying on :class:`RoundAborted`.

    After ``max_retries`` failed retries the last abort propagates (the
    serve layer catches it and degrades gracefully instead).
    """
    inj: Optional[FaultInjector] = getattr(trie.system, "faults", None)
    attempt = 0
    while True:
        try:
            return fn(*args)
        except RoundAborted:
            attempt += 1
            if attempt > max_retries:
                raise
            if inj is not None:
                inj.stats.retries += 1
            recover(trie)
