"""repro.faults — deterministic fault injection and recovery.

Turns the PIM Model simulator into a failure testbed: a seed-driven
:class:`FaultPlan` describes *when* modules crash, straggle, drop or
duplicate round buffers, or suffer transient kernel errors; a
:class:`FaultInjector` installed on a :class:`repro.PIMSystem` fires
those events inside ``PIMSystem.round()`` (aborted rounds raise
:class:`RoundAborted`); and :mod:`repro.faults.recovery` rebuilds a
crashed module's trie shards from the host-retained replica log that
:class:`repro.PIMTrie` maintains, so callers can retry the aborted
batch against a healed system.

Accounting is untouched when no injector is installed, and an
*installed-but-empty* plan is byte-identical in every metric to no
fault layer at all (the differential tests assert this).

Entry point: ``python -m repro faults [--smoke]`` → ``BENCH_faults.json``.
"""

from .injector import FaultInjector, RoundAborted
from .plan import FaultPlan, FaultStats, StragglerSpec
from .recovery import recover, run_with_recovery

__all__ = [
    "FaultPlan",
    "FaultStats",
    "StragglerSpec",
    "FaultInjector",
    "RoundAborted",
    "recover",
    "run_with_recovery",
]
