"""The fault-tolerance benchmark (E16): availability and latency under
crashes, stragglers, lossy transport, and whole-rack loss.

Writes ``BENCH_faults.json``.  Each scenario builds a fresh resident
index and a seeded online trace, installs a :class:`FaultPlan`, replays
the trace through :class:`repro.serve.EpochServer` (which recovers and
retries), and records

* **correctness** — every completed op's reply is compared against a
  direct sequential replay of the same trace on a faultless twin
  (``answers_match_replay``);
* **availability** — fraction of ops answered (vs ``OP_FAILED``);
* **degradation** — degraded epochs, segment retries, recovery rounds,
  and the injector's raw event counters;
* **latency** — p50/p95/p99 in simulated units, so the tail cost of
  crash recovery and stragglers is visible next to the fault-free
  baseline scenario.

Scenario plans are expressed on injected-round indices (round 0 =
first round after install, i.e. the first online round — the resident
build is not subject to faults).  The ``rack-loss`` scenario steps up
a level: instead of killing modules inside one system it kills an
entire rack of a small replicated cluster (``repro.cluster``), using
the same ``one-rack`` schedule as the E17 cluster sweep — one scenario
definition, two benchmarks.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from ..core import PIMTrie, PIMTrieConfig
from ..perf import reset_id_counters
from ..pim import PIMSystem
from ..serve import EpochServer, policy_from_name, replay_direct
from ..serve.trace import make_trace
from ..workloads import uniform_keys
from .plan import FaultPlan, StragglerSpec

__all__ = ["SCENARIOS", "bench_scenario", "run_bench_faults"]

FULL = {"P": 16, "resident": 512, "n_ops": 512, "length": 64, "rate": 0.25}
SMOKE = {"P": 8, "resident": 192, "n_ops": 160, "length": 64, "rate": 0.25}
POLICY = "deadline:20"


def _scenario_plan(name: str, P: int) -> FaultPlan:
    """The named fault schedule, scaled to ``P`` modules."""
    if name == "none":
        return FaultPlan.empty()
    if name == "crash":
        return FaultPlan(crashes={1: 5, P - 1: 40})
    if name == "straggler":
        return FaultPlan(
            stragglers=(
                StragglerSpec(module=0, factor=4.0, start_round=0, end_round=80),
                StragglerSpec(module=2 % P, factor=2.0, start_round=20,
                              end_round=120),
            )
        )
    if name == "crash+straggler":
        return FaultPlan(
            crashes={1: 5, P - 1: 40},
            stragglers=(
                StragglerSpec(module=0, factor=4.0, start_round=0, end_round=80),
            ),
        )
    if name == "lossy":
        return FaultPlan(
            drop_requests={(10, 0), (55, 1 % P)},
            drop_replies={(25, m) for m in range(P)},
            duplicate_replies={(35, 0), (35, 1 % P)},
            transient_errors={(70, 2 % P)},
        )
    raise ValueError(f"unknown fault scenario {name!r}")


#: shards / replication shape of the ``rack-loss`` scenario (module
#: crashes strike one system; this one kills an entire rack of a small
#: replicated cluster instead — the schedule itself comes from
#: ``repro.cluster.plan.rack_loss_schedule``, shared with E17)
RACK_LOSS_SHARDS = 2
RACK_LOSS_REPLICATION = 2

SCENARIOS = ("none", "crash", "straggler", "crash+straggler", "lossy",
             "rack-loss")


def _bench_rack_loss(
    *,
    P: int,
    resident: int,
    n_ops: int,
    length: int,
    rate: float,
    seed: int,
    policy: str = POLICY,
) -> dict[str, Any]:
    """The whole-rack crash + recovery scenario: one rack of a
    2-shard, K=2 cluster dies mid-epoch (the ``one-rack`` schedule E17
    also runs), reads fail over, and rebalancing rebuilds the slot from
    the surviving replica's log."""
    from ..cluster import ClusterService, PIMCluster, rack_loss_schedule
    from ..cluster.sharding import HashSharding

    keys = uniform_keys(resident, length, seed=seed + 1)
    trace = make_trace(
        n_ops, length=length, rate=rate, seed=seed, name="faults-rack-loss"
    )
    plan = rack_loss_schedule(
        "one-rack",
        num_shards=RACK_LOSS_SHARDS,
        replication=RACK_LOSS_REPLICATION,
    )
    reset_id_counters()
    cluster = PIMCluster(
        HashSharding(RACK_LOSS_SHARDS), replication=RACK_LOSS_REPLICATION,
        modules_per_rack=P, root_seed=seed, keys=keys, values=keys,
    )
    service = ClusterService(
        cluster, policy_from_name(policy), plan=plan
    )
    report = service.run(trace)

    reset_id_counters()
    twin_system = PIMSystem(P, seed=1)
    twin = PIMTrie(
        twin_system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
    )
    direct = dict(replay_direct(twin, trace.ops))
    served = {c.seq: c.reply for c in report.completed if c.ok}
    matches = all(direct[seq] == reply for seq, reply in served.items())

    lat = report.latency()
    return {
        "scenario": "rack-loss",
        "plan": plan.as_dict(),
        "policy": report.policy,
        "num_ops": report.num_ops,
        "completed": len(report.completed),
        "failed": report.failed,
        "availability": report.availability,
        "answers_match_replay": matches,
        "degraded_epochs": report.degraded_epochs,
        "retries": report.total_retries,
        "recovery_rounds": report.total_recovery_rounds,
        "faults": dict(report.faults),
        "makespan": report.makespan,
        "latency": {k: lat[k] for k in ("p50", "p95", "p99", "max")},
        "io_rounds": report.metrics.io_rounds,
        "communication": report.metrics.total_communication,
    }


def bench_scenario(
    name: str,
    *,
    P: int,
    resident: int,
    n_ops: int,
    length: int,
    rate: float,
    seed: int = 7,
    policy: str = POLICY,
) -> dict[str, Any]:
    """Run one fault scenario; returns its JSON record.

    ``policy`` is any :func:`repro.serve.policy_from_name` spec — e.g.
    ``"deadline:20@deg=8"`` to exercise degraded-mode admission while
    the scenario's faults are live.
    """
    if name == "rack-loss":
        return _bench_rack_loss(
            P=P, resident=resident, n_ops=n_ops, length=length,
            rate=rate, seed=seed, policy=policy,
        )

    def fresh() -> tuple[PIMSystem, PIMTrie]:
        reset_id_counters()
        system = PIMSystem(P, seed=1)
        keys = uniform_keys(resident, length, seed=seed + 1)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
        )
        return system, trie

    trace = make_trace(
        n_ops, length=length, rate=rate, seed=seed, name=f"faults-{name}"
    )
    system, trie = fresh()
    plan = _scenario_plan(name, P)
    system.install_faults(plan)
    server = EpochServer(trie, policy_from_name(policy))
    report = server.run(trace)

    # ground truth: the same trace applied sequentially, fault-free
    _, twin = fresh()
    direct = dict(replay_direct(twin, trace.ops))
    served = {c.seq: c.reply for c in report.completed if c.ok}
    matches = all(direct[seq] == reply for seq, reply in served.items())

    lat = report.latency()
    return {
        "scenario": name,
        "plan": plan.as_dict(),
        "policy": report.policy,
        "num_ops": report.num_ops,
        "completed": len(report.completed),
        "failed": report.failed,
        "availability": report.availability,
        "answers_match_replay": matches,
        "degraded_epochs": report.degraded_epochs,
        "retries": report.total_retries,
        "recovery_rounds": report.total_recovery_rounds,
        "faults": dict(report.faults),
        "makespan": report.makespan,
        "latency": {k: lat[k] for k in ("p50", "p95", "p99", "max")},
        "io_rounds": report.metrics.io_rounds,
        "communication": report.metrics.total_communication,
    }


def run_bench_faults(
    out: Optional[str] = "BENCH_faults.json",
    *,
    smoke: bool = False,
    seed: int = 7,
    policy: str = POLICY,
) -> dict[str, Any]:
    """Run every scenario; writes ``out`` and returns the report dict."""
    cfg = dict(SMOKE if smoke else FULL)
    rows = [
        bench_scenario(name, seed=seed, policy=policy, **cfg)
        for name in SCENARIOS
    ]
    baseline = next(r for r in rows if r["scenario"] == "none")
    report = {
        "bench": "faults",
        "profile": "smoke" if smoke else "full",
        "config": {**cfg, "policy": policy, "seed": seed},
        "scenarios": rows,
        "headline": {
            "all_correct": all(r["answers_match_replay"] for r in rows),
            "min_availability": min(r["availability"] for r in rows),
            "baseline_p99": baseline["latency"]["p99"],
            "worst_p99": max(r["latency"]["p99"] for r in rows),
            "total_recovery_rounds": sum(r["recovery_rounds"] for r in rows),
        },
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report
