"""Fault plans: deterministic, seed-driven failure schedules.

A :class:`FaultPlan` is a pure description of *what goes wrong when*,
keyed on the injector's round counter (rounds are numbered from 0
starting at the moment the plan is installed, so plans compose with an
arbitrary build phase that ran before them).  Five failure modes cover
what UPMEM-class deployments report:

* **crashes** — module ``m`` loses its entire local memory at the start
  of round ``k`` and answers nothing until the host restarts and
  rebuilds it;
* **drop_requests** — the host→module buffer of round ``k`` is lost
  before the kernel runs (the words still crossed the bus and are
  charged);
* **drop_replies** — the module→host buffer of round ``k`` is lost
  *after* the kernel ran (crash-before-ack: side effects landed, the
  host must retry idempotently);
* **duplicate_replies** — the module's reply buffer is transmitted
  twice (charged twice, delivered once);
* **stragglers** — module ``m`` takes ``factor``× the round time over a
  round interval (consumed by the serve layer's service model; PIM
  Model counters stay exact);
* **transient_errors** — the kernel launch of round ``k`` on module
  ``m`` fails once (retry succeeds).

Everything is hashable/immutable so a plan can be shared between twin
runs, and :meth:`FaultPlan.random` derives a whole schedule from one
seed for randomized testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Optional

import numpy as np

__all__ = ["StragglerSpec", "FaultPlan", "FaultStats"]


@dataclass(frozen=True)
class StragglerSpec:
    """Module ``module`` runs ``factor``× slower on rounds in
    [``start_round``, ``end_round``) (``end_round=None`` = forever)."""

    module: int
    factor: float
    start_round: int = 0
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.module < 0:
            raise ValueError("straggler module must be >= 0")
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1.0")
        if self.start_round < 0:
            raise ValueError("start_round must be >= 0")
        if self.end_round is not None and self.end_round < self.start_round:
            raise ValueError("end_round must be >= start_round")

    def active(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic failure schedule (see module docstring)."""

    #: module id -> round at which it crashes (memory wiped)
    crashes: Mapping[int, int] = field(default_factory=dict)
    #: (round, module) pairs whose host->module buffer is lost
    drop_requests: frozenset = frozenset()
    #: (round, module) pairs whose module->host buffer is lost
    drop_replies: frozenset = frozenset()
    #: (round, module) pairs whose reply buffer is transmitted twice
    duplicate_replies: frozenset = frozenset()
    #: slow modules over round intervals
    stragglers: tuple = ()
    #: (round, module) pairs whose kernel launch fails once
    transient_errors: frozenset = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", dict(self.crashes))
        object.__setattr__(self, "drop_requests", frozenset(self.drop_requests))
        object.__setattr__(self, "drop_replies", frozenset(self.drop_replies))
        object.__setattr__(
            self, "duplicate_replies", frozenset(self.duplicate_replies)
        )
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(
            self, "transient_errors", frozenset(self.transient_errors)
        )
        for m, r in self.crashes.items():
            if m < 0 or r < 0:
                raise ValueError(f"bad crash entry module={m} round={r}")
        for name in ("drop_requests", "drop_replies", "duplicate_replies",
                     "transient_errors"):
            for r, m in getattr(self, name):
                if r < 0 or m < 0:
                    raise ValueError(f"bad {name} entry (round={r}, module={m})")
        for s in self.stragglers:
            if not isinstance(s, StragglerSpec):
                raise TypeError("stragglers must be StragglerSpec instances")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    def is_empty(self) -> bool:
        return not (
            self.crashes
            or self.drop_requests
            or self.drop_replies
            or self.duplicate_replies
            or self.stragglers
            or self.transient_errors
        )

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_modules: int,
        *,
        seed: int,
        horizon: int = 200,
        crash_rate: float = 0.1,
        drop_rate: float = 0.01,
        duplicate_rate: float = 0.005,
        straggler_rate: float = 0.1,
        transient_rate: float = 0.01,
        max_straggle_factor: float = 8.0,
    ) -> "FaultPlan":
        """Derive a whole schedule from one seed.

        ``crash_rate``/``straggler_rate`` are per-module probabilities;
        the drop/duplicate/transient rates are per (round, module) cell
        over the ``horizon``.  At most ``num_modules - 1`` modules crash
        so the system always keeps a survivor.
        """
        if num_modules < 1:
            raise ValueError("num_modules must be >= 1")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        rng = np.random.default_rng(seed)
        crashes: dict[int, int] = {}
        for m in range(num_modules):
            if len(crashes) >= num_modules - 1:
                break
            if rng.random() < crash_rate:
                crashes[m] = int(rng.integers(horizon))
        stragglers = []
        for m in range(num_modules):
            if rng.random() < straggler_rate:
                start = int(rng.integers(horizon))
                end = start + int(rng.integers(1, horizon))
                factor = 1.0 + float(rng.random()) * (max_straggle_factor - 1.0)
                stragglers.append(StragglerSpec(m, factor, start, end))

        def cells(rate: float) -> frozenset:
            n = rng.binomial(horizon * num_modules, min(1.0, rate))
            out = set()
            for _ in range(int(n)):
                out.add((int(rng.integers(horizon)), int(rng.integers(num_modules))))
            return frozenset(out)

        return cls(
            crashes=crashes,
            drop_requests=cells(drop_rate),
            drop_replies=cells(drop_rate),
            duplicate_replies=cells(duplicate_rate),
            stragglers=tuple(stragglers),
            transient_errors=cells(transient_rate),
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        return {
            "crashes": {str(m): r for m, r in sorted(self.crashes.items())},
            "drop_requests": sorted(self.drop_requests),
            "drop_replies": sorted(self.drop_replies),
            "duplicate_replies": sorted(self.duplicate_replies),
            "stragglers": [
                [s.module, s.factor, s.start_round, s.end_round]
                for s in self.stragglers
            ],
            "transient_errors": sorted(self.transient_errors),
        }

    def __repr__(self) -> str:
        return (
            f"FaultPlan(crashes={len(self.crashes)}, "
            f"drops={len(self.drop_requests)}+{len(self.drop_replies)}, "
            f"dups={len(self.duplicate_replies)}, "
            f"stragglers={len(self.stragglers)}, "
            f"transients={len(self.transient_errors)})"
        )


@dataclass
class FaultStats:
    """Counters the injector and recovery layer accumulate."""

    crashes: int = 0
    transient_errors: int = 0
    dropped_requests: int = 0
    dropped_replies: int = 0
    duplicated_replies: int = 0
    straggle_events: int = 0
    aborted_rounds: int = 0
    restarts: int = 0
    retries: int = 0
    recoveries: int = 0
    rebuild_rounds: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Mapping[str, int]) -> "FaultStats":
        names = {f.name for f in fields(cls)}
        unknown = set(d) - names
        if unknown:
            raise ValueError(f"unknown FaultStats fields: {sorted(unknown)}")
        return cls(**{k: int(v) for k, v in d.items()})

    def any_faults(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))
