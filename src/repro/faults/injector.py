"""The fault injector: fires a :class:`FaultPlan` inside ``round()``.

The injector hangs off a :class:`repro.PIMSystem` (``system.faults``)
and is consulted twice per BSP round:

* :meth:`begin_round` — advances the round counter, fires crash wipes
  scheduled for this round, and decides whether the round aborts before
  any kernel runs (a request addressed a crashed module, a transient
  kernel error, or a lost host→module buffer).  Aborted rounds are still
  *recorded*: the host wrote its buffers, so ``words_to`` is charged,
  with zero kernel work and zero reply words — then :class:`RoundAborted`
  propagates to the caller, whose host-side driver state unwinds.
* :meth:`end_round` — after the kernels ran: duplicated reply buffers
  double ``words_from`` for their module (transmitted twice, delivered
  once), and lost reply buffers turn the round into a *post*-abort —
  the full round is recorded (the work happened, crash-before-ack), and
  the caller must retry idempotently.

Round indices count *injected* rounds from 0 at install time, so plans
are relative to the moment the injector was installed and are immune to
however many rounds the build phase consumed.  Rounds executed under
:meth:`suspended` (the recovery path) neither advance the counter nor
fire events, so scheduled faults cannot re-fire mid-recovery.

With an installed-but-empty plan, ``begin_round`` returns after an
integer increment and one emptiness check — it never touches the
accounting arrays, which is what keeps the empty plan byte-identical to
no fault layer at all.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from .plan import FaultPlan, FaultStats

__all__ = ["RoundAborted", "FaultInjector"]


class RoundAborted(RuntimeError):
    """A BSP round failed; the caller should recover and retry.

    ``cause`` is one of ``"crash"``, ``"transient"``, ``"request_lost"``,
    ``"reply_lost"``; ``modules`` names the modules involved and
    ``round_index`` the injected round that failed.  ``kernels_ran`` is
    True for post-kernel aborts (side effects landed on the modules —
    the retry must be idempotent, which every PIMTrie batch op is).
    """

    def __init__(self, cause: str, round_index: int, modules: tuple[int, ...],
                 *, kernels_ran: bool):
        self.cause = cause
        self.round_index = round_index
        self.modules = modules
        self.kernels_ran = kernels_ran
        super().__init__(
            f"round {round_index} aborted ({cause}) on modules {list(modules)}"
            f"{' after kernels ran' if kernels_ran else ''}"
        )


@dataclass(frozen=True)
class _RoundVerdict:
    """begin_round's instructions to ``PIMSystem.round``."""

    error: Optional[RoundAborted]  # abort before any kernel runs
    duplicate: tuple[int, ...] = ()  # modules whose reply ships twice
    drop_reply: tuple[int, ...] = ()  # modules whose reply is lost


class FaultInjector:
    """Stateful executor of one :class:`FaultPlan` on one system."""

    def __init__(self, system, plan: FaultPlan):
        self.system = system
        self.plan = plan
        self.stats = FaultStats()
        #: modules currently down (wiped, unrecovered)
        self.crashed: set[int] = set()
        #: injected-round counter; -1 = no round seen yet
        self.round_index = -1
        self._suspend = 0
        self._straggle_pending = 0.0
        self._empty = plan.is_empty()
        self._crash_rounds: dict[int, list[int]] = {}
        for m, r in sorted(plan.crashes.items()):
            self._crash_rounds.setdefault(r, []).append(m)

    # ------------------------------------------------------------------
    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Run rounds without advancing the clock or firing events
        (the recovery protocol rebuilds modules under this)."""
        self._suspend += 1
        try:
            yield
        finally:
            self._suspend -= 1

    @property
    def active(self) -> bool:
        return self._suspend == 0

    # ------------------------------------------------------------------
    def begin_round(self, requests: Mapping[int, list]) -> Optional[_RoundVerdict]:
        if self._suspend:
            return None
        self.round_index += 1
        if self._empty:
            return None
        r = self.round_index
        plan = self.plan
        # crashes fire at the start of their round whether or not the
        # round addresses the module: the memory is gone either way
        for m in self._crash_rounds.get(r, ()):
            if m not in self.crashed and m < self.system.num_modules:
                self.system.modules[m].wipe()
                self.crashed.add(m)
                self.stats.crashes += 1
        addressed = [m for m, reqs in requests.items() if reqs]
        crashed_hit = tuple(sorted(m for m in addressed if m in self.crashed))
        if crashed_hit:
            self.stats.aborted_rounds += 1
            return _RoundVerdict(
                RoundAborted("crash", r, crashed_hit, kernels_ran=False)
            )
        transient = tuple(
            sorted(m for m in addressed if (r, m) in plan.transient_errors)
        )
        if transient:
            self.stats.transient_errors += len(transient)
            self.stats.aborted_rounds += 1
            return _RoundVerdict(
                RoundAborted("transient", r, transient, kernels_ran=False)
            )
        req_lost = tuple(
            sorted(m for m in addressed if (r, m) in plan.drop_requests)
        )
        if req_lost:
            self.stats.dropped_requests += len(req_lost)
            self.stats.aborted_rounds += 1
            return _RoundVerdict(
                RoundAborted("request_lost", r, req_lost, kernels_ran=False)
            )
        if plan.stragglers:
            hit = set(addressed)
            for s in plan.stragglers:
                if s.module in hit and s.active(r):
                    self._straggle_pending += s.factor - 1.0
                    self.stats.straggle_events += 1
        duplicate = tuple(
            sorted(m for m in addressed if (r, m) in plan.duplicate_replies)
        )
        drop_reply = tuple(
            sorted(m for m in addressed if (r, m) in plan.drop_replies)
        )
        if duplicate or drop_reply:
            return _RoundVerdict(None, duplicate, drop_reply)
        return None

    # ------------------------------------------------------------------
    def end_round(
        self,
        verdict: _RoundVerdict,
        replies: Mapping[int, list],
        words_from: list[int],
    ) -> Optional[RoundAborted]:
        """Apply post-kernel events; returns the abort to raise, if any."""
        for m in verdict.duplicate:
            if m in replies:
                words_from[m] *= 2
                self.stats.duplicated_replies += 1
        lost = tuple(m for m in verdict.drop_reply if m in replies)
        if lost:
            self.stats.dropped_replies += len(lost)
            self.stats.aborted_rounds += 1
            return RoundAborted(
                "reply_lost", self.round_index, lost, kernels_ran=True
            )
        return None

    # ------------------------------------------------------------------
    def restart(self, module: int) -> None:
        """Bring a crashed module back (empty-memoried); the caller is
        responsible for re-shipping its state (see repro.faults.recovery)."""
        if module in self.crashed:
            self.crashed.discard(module)
            self.stats.restarts += 1

    def take_straggle_penalty(self) -> float:
        """Consume the accumulated straggler round-time penalty (in
        round-equivalents); the serve layer folds it into service time."""
        p = self._straggle_pending
        self._straggle_pending = 0.0
        return p

    def __repr__(self) -> str:
        return (
            f"FaultInjector(round={self.round_index}, "
            f"crashed={sorted(self.crashed)}, plan={self.plan!r})"
        )
