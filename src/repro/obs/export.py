"""Trace exporters: Chrome trace-event JSON and a per-phase roll-up.

``chrome_trace`` emits the Trace Event Format's JSON-object flavor —
``{"traceEvents": [...]}`` with complete ("X") events — loadable in
``chrome://tracing`` and Perfetto.  Spans nest on one track by time
containment, which holds by construction (spans are a stack).  Each
event's ``args`` carries the span's PIM-metric delta, so clicking a
slice in the viewer shows exactly where IO rounds, words, and PIM time
went.

``rollup`` aggregates spans by (name, category) into a profile table
with both *inclusive* metrics (span + descendants) and *self* metrics
(inclusive minus direct children) — self columns sum to the run total,
inclusive columns answer "what does this op cost end-to-end".
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .tracer import METRIC_FIELDS, Span

__all__ = [
    "chrome_trace",
    "validate_chrome_trace",
    "rollup",
    "rollup_index",
    "phase_self_times",
    "sched_decisions",
    "format_rollup",
]


def chrome_trace(tracer_or_spans: Any, *, pid: int = 1) -> dict:
    """Chrome trace-event JSON document for a tracer (or span list)."""
    spans: Sequence[Span] = getattr(tracer_or_spans, "spans", tracer_or_spans)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro PIM simulator"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "host"},
        },
    ]
    for s in spans:
        events.append(
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": round(s.t0 * 1e6, 3),  # microseconds
                "dur": round(s.dur * 1e6, 3),
                "pid": pid,
                "tid": 0,
                "args": {
                    "sid": s.sid,
                    "parent": s.parent,
                    **s.metric_deltas(),
                    **s.args,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: Any) -> list[str]:
    """Schema check for :func:`chrome_trace` output; [] means valid."""
    problems: list[str] = []
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        return ["document must be a dict with a 'traceEvents' list"]
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"{where}: unexpected phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur"):
                v = ev.get(key)
                if not isinstance(v, (int, float)) or v < 0:
                    problems.append(f"{where}: bad {key!r}: {v!r}")
            args = ev.get("args")
            if not isinstance(args, dict):
                problems.append(f"{where}: 'X' event lacks args")
            else:
                for f in METRIC_FIELDS:
                    if not isinstance(args.get(f), int):
                        problems.append(
                            f"{where}: args[{f!r}] missing or non-int"
                        )
    return problems


# ----------------------------------------------------------------------
def rollup(tracer_or_spans: Any) -> list[dict]:
    """Per-(name, cat) profile rows, sorted by inclusive wall time.

    Each row has ``count``, ``wall_s``, inclusive metric sums (the
    METRIC_FIELDS), and ``self_<field>`` exclusive sums (inclusive
    minus direct children — self columns across all rows sum to the
    run's total).
    """
    spans: Sequence[Span] = getattr(tracer_or_spans, "spans", tracer_or_spans)
    child_sums: dict[int, list[int]] = {}
    for s in spans:
        if s.parent is not None:
            acc = child_sums.setdefault(s.parent, [0] * len(METRIC_FIELDS))
            for i, f in enumerate(METRIC_FIELDS):
                acc[i] += getattr(s, f)
    rows: dict[tuple[str, str], dict] = {}
    for s in spans:
        row = rows.setdefault(
            (s.name, s.cat),
            {
                "name": s.name,
                "cat": s.cat,
                "count": 0,
                "wall_s": 0.0,
                **{f: 0 for f in METRIC_FIELDS},
                **{f"self_{f}": 0 for f in METRIC_FIELDS},
            },
        )
        row["count"] += 1
        row["wall_s"] += s.dur
        sub = child_sums.get(s.sid)
        for i, f in enumerate(METRIC_FIELDS):
            v = getattr(s, f)
            row[f] += v
            row[f"self_{f}"] += v - (sub[i] if sub is not None else 0)
    return sorted(rows.values(), key=lambda r: -r["wall_s"])


def rollup_index(rows_or_tracer: Any) -> dict[tuple[str, str], dict]:
    """Rollup rows keyed by ``(name, cat)`` for point lookups.

    Accepts either the output of :func:`rollup` or a tracer/span list
    (which is rolled up first).
    """
    rows = (
        rows_or_tracer
        if isinstance(rows_or_tracer, list)
        and (not rows_or_tracer or isinstance(rows_or_tracer[0], dict))
        else rollup(rows_or_tracer)
    )
    return {(r["name"], r["cat"]): r for r in rows}


def phase_self_times(tracer_or_spans: Any) -> dict[str, dict]:
    """Per-phase *self* profile of the serve epoch pipeline.

    Returns ``{phase_name: row}`` for the ``cat == "phase"`` spans the
    epoch server emits (``epoch.prep`` / ``epoch.rounds`` /
    ``epoch.assemble``), each row being the rollup entry — ``count``,
    ``wall_s``, inclusive and ``self_*`` metric sums.  This is the
    observability view of the quantities the adaptive scheduler's
    controller consumes (the controller itself is fed the simulated
    values directly, so runs stay byte-identical without a tracer).
    """
    return {
        name: row
        for (name, cat), row in rollup_index(tracer_or_spans).items()
        if cat == "phase"
    }


def sched_decisions(tracer_or_spans: Any) -> list[dict]:
    """The adaptive scheduler's ``sched.*`` decision markers, in order.

    Each entry is ``{"action", "epoch", "max_wait", "max_batch"}`` from
    the zero-delta spans the server emits when the closed-loop
    controller commits a knob change.
    """
    spans: Sequence[Span] = getattr(tracer_or_spans, "spans", tracer_or_spans)
    out: list[dict] = []
    for s in spans:
        if s.cat == "sched" and s.name.startswith("sched."):
            out.append(
                {"action": s.name.partition(".")[2], **s.args}
            )
    return out


def format_rollup(rows: Iterable[dict]) -> str:
    """Aligned text table for :func:`rollup` output."""
    headers = (
        "span", "cat", "n", "wall_ms",
        "io_rounds", "io_time", "words", "pim_time", "cpu_work",
        "self_io_time", "self_words",
    )
    table = [headers]
    for r in rows:
        table.append(
            (
                r["name"], r["cat"], str(r["count"]),
                f"{r['wall_s'] * 1e3:.2f}",
                str(r["io_rounds"]), str(r["io_time"]), str(r["words"]),
                str(r["pim_time"]), str(r["cpu_work"]),
                str(r["self_io_time"]), str(r["self_words"]),
            )
        )
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(table):
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i < 2 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
