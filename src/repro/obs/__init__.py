"""repro.obs — span tracing + phase profiling for the simulator stack.

Attach a :class:`Tracer` to a ``PIMSystem`` and every layer above it
(trie batch ops, serve epochs, fault recovery) records hierarchical
spans down to individual BSP rounds, each carrying its PIM-metric
delta and wall-clock timing.  Export with :func:`chrome_trace`
(``chrome://tracing`` / Perfetto) or summarize with :func:`rollup`.
Tracing is off by default (``system.obs is None``) and the disabled
path is a true no-op.  See ``python -m repro trace`` for the CLI.
"""

from .export import (
    chrome_trace,
    format_rollup,
    phase_self_times,
    rollup,
    rollup_index,
    sched_decisions,
    validate_chrome_trace,
)
from .tracer import METRIC_FIELDS, Span, Tracer, maybe_span, root_metric_sums

__all__ = [
    "METRIC_FIELDS",
    "Span",
    "Tracer",
    "maybe_span",
    "root_metric_sums",
    "chrome_trace",
    "validate_chrome_trace",
    "rollup",
    "rollup_index",
    "phase_self_times",
    "sched_decisions",
    "format_rollup",
]
