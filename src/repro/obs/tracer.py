"""Span-based tracer for the PIM simulator stack.

A :class:`Tracer` attaches to one :class:`~repro.pim.PIMSystem` as its
``obs`` hook and records a tree of spans:

* **op spans** — one per ``PIMTrie`` batch operation (``op.lcp``,
  ``op.insert``, ...);
* **phase spans** — trie-internal phases nested inside op spans (query
  folding/dedup, the three match phases, block splitting, maintenance);
* **round spans** — one leaf per BSP round, emitted by
  ``PIMSystem.round`` itself, carrying that round's exact
  ``RoundRecord``-derived costs (aborted rounds included — they stay on
  the metrics books, so they stay on the trace);
* **epoch / segment / recovery spans** — emitted by the serve layer's
  epoch loop and the fault-recovery path.

Every span carries the PIM-metric delta accumulated while it was open
(``io_rounds`` / ``io_time`` / ``words`` / ``pim_time`` / ``cpu_work``)
plus wall-clock start and duration.  Non-round spans measure their
delta by reading the system's ``MetricsCollector`` counters at
begin/end — tracing never writes to the collector, so a traced run's
``MetricsSnapshot``s are byte-identical to an untraced one.  Because
every metric is additive across rounds (``io_time`` is the per-round
max *summed* over rounds), sibling spans partition their parent's
delta and the root spans partition the whole run.

When no tracer is attached (``system.obs is None``) every
instrumentation site is a single attribute check plus, at batch-op
granularity, one shared ``nullcontext`` — the disabled path is a true
no-op.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..pim.metrics import RoundRecord

__all__ = [
    "METRIC_FIELDS",
    "Span",
    "Tracer",
    "maybe_span",
    "root_metric_sums",
]

#: span metric fields, in wire order (``words`` is the span-local name
#: for the snapshot's ``total_communication``)
METRIC_FIELDS = ("io_rounds", "io_time", "words", "pim_time", "cpu_work")

#: shared no-op context manager returned by :func:`maybe_span` when no
#: tracer is attached (``nullcontext`` is reusable and reentrant)
_NULL = nullcontext(None)


@dataclass
class Span:
    """One traced interval: a node in the span tree.

    ``t0``/``dur`` are wall-clock seconds relative to the tracer's
    origin; the five metric fields are the PIM-metric delta accumulated
    while the span was open (inclusive of children).
    """

    sid: int
    parent: Optional[int]
    name: str
    cat: str  # "op" | "phase" | "maint" | "round" | "epoch" | "segment" | "recovery"
    depth: int
    t0: float
    dur: float = 0.0
    io_rounds: int = 0
    io_time: int = 0
    words: int = 0
    pim_time: int = 0
    cpu_work: int = 0
    args: dict = field(default_factory=dict)
    #: collector counters at begin; ``None`` once the span is closed
    _m0: Optional[tuple[int, ...]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def closed(self) -> bool:
        return self._m0 is None

    def metric_deltas(self) -> dict[str, int]:
        return {f: getattr(self, f) for f in METRIC_FIELDS}


class Tracer:
    """Records a span tree over one ``PIMSystem``'s activity.

    Usage::

        tracer = Tracer(system)          # sets system.obs = tracer
        with tracer.span("op.lcp", cat="op", batch=64):
            trie.lcp_batch(keys)         # rounds appear as child spans
        doc = chrome_trace(tracer)       # see repro.obs.export

    Spans follow strict stack discipline (begin/end are LIFO); the
    ``span()`` context manager guarantees it even when the body raises
    (e.g. ``RoundAborted`` unwinding out of a segment).
    """

    def __init__(
        self,
        system: Any = None,
        *,
        clock=time.perf_counter,
        tags: Optional[dict] = None,
    ):
        self.clock = clock
        self._origin = clock()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_sid = 0
        #: constant args stamped onto every span this tracer records
        #: (e.g. ``{"shard": 2}`` so a cluster's per-rack traces stay
        #: attributable after merging); explicit span args win on clash
        self.tags: dict = dict(tags or {})
        self.system: Any = None
        if system is not None:
            self.attach(system)

    # ------------------------------------------------------------------
    def attach(self, system: Any) -> "Tracer":
        """Install this tracer as ``system.obs``; returns self."""
        if self.system is not None and self.system is not system:
            raise ValueError("tracer is already attached to another system")
        self.system = system
        system.obs = self
        return self

    def detach(self) -> None:
        """Remove this tracer from its system (spans are kept)."""
        if self.system is not None and getattr(self.system, "obs", None) is self:
            self.system.obs = None
        self.system = None

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.clock() - self._origin

    def _counters(self) -> tuple[int, int, int, int, int]:
        m = self.system.metrics
        return (
            m.io_rounds,
            m.io_time,
            m.total_communication,
            m.pim_time,
            m.cpu_work,
        )

    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "phase", **args: Any) -> Span:
        """Open a span; it must be closed with :meth:`end` (LIFO)."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            sid=self._next_sid,
            parent=parent.sid if parent is not None else None,
            name=name,
            cat=cat,
            depth=len(self._stack),
            t0=self._now(),
            args={**self.tags, **args},
            _m0=self._counters(),
        )
        self._next_sid += 1
        # appended at begin so self.spans is in tree order (parents
        # precede children), which the exporter and rollup rely on
        self.spans.append(sp)
        self._stack.append(sp)
        return sp

    def end(self, span: Span) -> Span:
        """Close ``span``, filling in its metric delta and duration."""
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} ended out of order "
                f"(open: {[s.name for s in self._stack]})"
            )
        self._stack.pop()
        m0, m1 = span._m0, self._counters()
        span.io_rounds = m1[0] - m0[0]
        span.io_time = m1[1] - m0[1]
        span.words = m1[2] - m0[2]
        span.pim_time = m1[3] - m0[3]
        span.cpu_work = m1[4] - m0[4]
        span.dur = self._now() - span.t0
        span._m0 = None
        return span

    @contextmanager
    def span(self, name: str, cat: str = "phase", **args: Any):
        """Context-managed span; yields the :class:`Span` object."""
        sp = self.begin(name, cat=cat, **args)
        try:
            yield sp
        finally:
            self.end(sp)

    # ------------------------------------------------------------------
    def on_round(
        self,
        kernel: str,
        words_to: Sequence[int],
        words_from: Sequence[int],
        kernel_work: Sequence[int],
        t_start: float,
        aborted: Optional[str] = None,
    ) -> Span:
        """Record one BSP round as a closed leaf span.

        Called by ``PIMSystem.round`` right after
        ``metrics.record_round`` (on the abort path too); ``t_start``
        is ``tracer.clock()`` taken at round entry.  Costs are computed
        through :class:`RoundRecord` — the same arithmetic the
        collector just applied — so round spans sum exactly to the
        enclosing span's delta.
        """
        rec = RoundRecord(tuple(words_to), tuple(words_from), tuple(kernel_work))
        parent = self._stack[-1] if self._stack else None
        sp = Span(
            sid=self._next_sid,
            parent=parent.sid if parent is not None else None,
            name=f"round:{kernel}",
            cat="round",
            depth=len(self._stack),
            t0=t_start - self._origin,
            dur=self.clock() - t_start,
            io_rounds=1,
            io_time=rec.io_time,
            words=rec.total_words,
            pim_time=rec.pim_time,
            cpu_work=0,
            args={**self.tags, "modules": sum(1 for w in words_to if w)},
        )
        self._next_sid += 1
        if aborted is not None:
            sp.args["aborted"] = aborted
        self.spans.append(sp)
        return sp


# ----------------------------------------------------------------------
def maybe_span(system: Any, name: str, cat: str = "phase", **args: Any):
    """A tracer span if ``system`` has one attached, else a shared no-op.

    The instrumentation idiom for optional tracing sites::

        with maybe_span(self.system, "match.master", cat="phase"):
            ...
    """
    obs = getattr(system, "obs", None)
    if obs is None:
        return _NULL
    return obs.span(name, cat=cat, **args)


def root_metric_sums(spans: Iterable[Span]) -> dict[str, int]:
    """Summed inclusive metric deltas over the root spans.

    When every round of a run happened inside some root span, this
    equals the run's overall ``MetricsSnapshot`` delta (with ``words``
    standing in for ``total_communication``) — the exactness property
    `python -m repro trace` verifies.
    """
    out = dict.fromkeys(METRIC_FIELDS, 0)
    for s in spans:
        if s.parent is None:
            for f in METRIC_FIELDS:
                out[f] += getattr(s, f)
    return out
