"""Ordered snapshot of the live key set, backed by the Euler-tour
sequence machinery in :mod:`repro.forest`.

An :class:`OrderedSnapshot` is a *consistent* ordered-index view built
from the host replica log's key/value union
(:meth:`repro.core.PIMTrie.replica_log_items`): at round boundaries the
union equals the stored key set exactly, so a snapshot taken between
batches is a point-in-time image of the index — later mutations build a
new snapshot and never disturb one a caller still holds (snapshot
isolation for reads).

The ordered backbone is a :class:`~repro.forest.TreapSequence` whose
in-order traversal is the key set in trie order — the same sequence an
Euler tour of the trie's key leaves yields.  Because the in-order
sequence is sorted, the treap doubles as a balanced BST over keys:

* ``rank``/``select`` resolve in O(log n) via the subtree sizes,
* predecessor / successor are a rank plus a select,
* range scans walk in-order successors and stop at the bound or the
  ``limit`` — genuine early termination, never a full enumeration,
* subtree (prefix) intervals come from the prefix-first total order of
  :class:`~repro.bits.BitString`: the keys extending a prefix ``p`` are
  exactly the contiguous interval ``[p, p·111…]`` (padded past the
  longest stored key), so ``prefix_count`` is two ranks and ``top_k``
  is a bounded walk from the interval's left edge.

Snapshots are pure host-side state: building or querying one moves no
PIM words and runs no rounds.  The accounted cost (``tick_cpu``) is
charged by the :class:`~repro.core.PIMTrie` wrappers, which also wrap
every call in ``op.*``/``phase`` spans so the obs span-sum invariant
stays byte-exact.
"""

from __future__ import annotations

from typing import Any, Optional

from ..bits import BitString
from ..forest import SeqNode, TreapSequence

__all__ = ["OrderedSnapshot"]

#: fixed treap seed: snapshot shape is a pure function of the key set,
#: so rebuilds (and every pipeline / shard / adapt mode) agree exactly
_TREAP_SEED = 51


class OrderedSnapshot:
    """A frozen, totally ordered view of ``{key: value}`` at one version.

    ``version`` is the content version of the replica-log union the
    snapshot was built from (the trie's counter); the trie uses it to
    reuse a snapshot until the key set actually changes — placement
    maintenance (split / replicate / merge) preserves the union, so it
    never invalidates a snapshot.
    """

    def __init__(self, items: dict[BitString, Any], *, version: int = 0):
        self.version = version
        self._values: dict[BitString, Any] = dict(items)
        self.max_len = max((len(k) for k in self._values), default=0)
        seq = TreapSequence(seed=_TREAP_SEED)
        self._seq = seq
        root: Optional[SeqNode] = None
        for key in sorted(self._values):
            root = seq.merge(root, seq.make(key))
        self._root = root

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return TreapSequence.size(self._root)

    def __contains__(self, key: BitString) -> bool:
        return key in self._values

    def value(self, key: BitString) -> Any:
        return self._values[key]

    def items(self) -> list[tuple[BitString, Any]]:
        """Full enumeration in key order (tests' reference walk)."""
        return [
            (node.value, self._values[node.value])
            for node in TreapSequence.iterate(self._root)
        ]

    # -- rank / select over the treap ----------------------------------
    def rank(self, key: BitString, *, strict: bool = True) -> int:
        """Number of stored keys ``< key`` (``<= key`` when not strict);
        O(log n) BST descent — in-order is sorted, so the sequence *is*
        a search tree over keys."""
        cur, r = self._root, 0
        while cur is not None:
            below = cur.value < key if strict else cur.value <= key
            if below:
                r += 1 + TreapSequence.size(cur.left)
                cur = cur.right
            else:
                cur = cur.left
        return r

    def select(self, i: int) -> Optional[SeqNode]:
        """The node at in-order position ``i`` (None out of range)."""
        cur = self._root
        if cur is None or not 0 <= i < cur.size:
            return None
        while True:
            left = TreapSequence.size(cur.left)
            if i < left:
                cur = cur.left
            elif i == left:
                return cur
            else:
                i -= left + 1
                cur = cur.right

    @staticmethod
    def _next(node: SeqNode) -> Optional[SeqNode]:
        """In-order successor via parent pointers; amortized O(1)."""
        if node.right is not None:
            cur = node.right
            while cur.left is not None:
                cur = cur.left
            return cur
        cur = node
        while cur.parent is not None and cur.parent.right is cur:
            cur = cur.parent
        return cur.parent

    # -- the ordered query surface -------------------------------------
    def predecessor(self, key: BitString) -> Optional[tuple[BitString, Any]]:
        """Largest stored key strictly below ``key`` (with its value)."""
        node = self.select(self.rank(key) - 1)
        if node is None:
            return None
        return node.value, self._values[node.value]

    def successor(self, key: BitString) -> Optional[tuple[BitString, Any]]:
        """Smallest stored key strictly above ``key`` (with its value)."""
        node = self.select(self.rank(key, strict=False))
        if node is None:
            return None
        return node.value, self._values[node.value]

    def range(
        self,
        lo: BitString,
        hi: BitString,
        limit: Optional[int] = None,
    ) -> list[tuple[BitString, Any]]:
        """Stored ``(key, value)`` pairs with ``lo <= key <= hi`` in key
        order, truncated to the first ``limit``.  The walk terminates at
        the bound or the limit — it never visits past either."""
        out: list[tuple[BitString, Any]] = []
        if limit is not None and limit <= 0:
            return out
        node = self.select(self.rank(lo))
        while node is not None and node.value <= hi:
            out.append((node.value, self._values[node.value]))
            if limit is not None and len(out) >= limit:
                break
            node = self._next(node)
        return out

    def prefix_interval(self, prefix: BitString) -> tuple[int, int]:
        """In-order rank interval ``[lo, hi)`` of keys extending
        ``prefix``: the prefix-first total order puts them contiguously
        between ``prefix`` and ``prefix`` padded with 1-bits past the
        longest stored key."""
        upper = prefix.pad_to(max(len(prefix), self.max_len) + 1, 1)
        return self.rank(prefix), self.rank(upper, strict=False)

    def prefix_count(self, prefix: BitString) -> int:
        """How many stored keys extend ``prefix``; two O(log n) ranks."""
        lo, hi = self.prefix_interval(prefix)
        return hi - lo

    def top_k(self, prefix: BitString, k: int) -> list[tuple[BitString, Any]]:
        """The ``k`` smallest stored keys extending ``prefix`` (with
        values) — a prefix of the sorted subtree enumeration, walked
        with early termination."""
        out: list[tuple[BitString, Any]] = []
        if k <= 0:
            return out
        lo, hi = self.prefix_interval(prefix)
        node = self.select(lo)
        take = min(k, hi - lo)
        while node is not None and len(out) < take:
            out.append((node.value, self._values[node.value]))
            node = self._next(node)
        return out

    def __repr__(self) -> str:
        return f"OrderedSnapshot(n={len(self)}, version={self.version})"
