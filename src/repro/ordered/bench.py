"""E19 benchmark: the ordered-index op surface (``python -m repro
ordered`` → ``BENCH_ordered.json``).

One seeded mixed op sequence (writes + pred / succ / range / count /
top-k) is replayed across the full execution grid —

* single trie × {reference, object fast path, columnar} pipelines,
  each with the adaptive controller off and on;
* cluster × {hash, range} sharding × adapt off/on —

and every execution must produce the *same* replies: the report carries
one ``answer_digest`` (sha256 over the canonicalized reply stream) plus
an ``oracle_match`` gate against an independent bisect-over-sorted-list
oracle.  A traced single-trie run additionally checks span-sum
exactness (root spans sum to the metrics delta, integer-for-integer).

The wall-clock headline times the snapshot-backed ordered reads against
a naive linear-scan reference answering the same queries; the committed
report's *naive* ops/sec is the floor the optimized path must clear on
later runs (:func:`check_floor_ordered` — same cross-tier idiom as
``repro.perf.check_floor``, so the guard has honest machine-variance
headroom).
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from pathlib import Path
from typing import Any, Optional

from .. import fastpath
from ..bits import BitString
from ..core import PIMTrie, PIMTrieConfig
from ..obs.tracer import Tracer, root_metric_sums
from ..perf import reset_id_counters
from ..pim import PIMSystem

__all__ = ["check_floor_ordered", "run_bench_ordered"]

SMOKE = dict(P=4, resident=96, batches=6, batch_size=8, length=24,
             timed_queries=400)
FULL = dict(P=8, resident=512, batches=12, batch_size=32, length=32,
            timed_queries=4000)


# ----------------------------------------------------------------------
# op sequence + independent oracle
# ----------------------------------------------------------------------
def _gen_sequence(seed: int, cfg: dict) -> tuple[list, list]:
    """Resident (key, value) load plus mixed write/ordered-read batches.

    Keys cluster on shared prefixes (the skew adversary), so ranges and
    prefix counts straddle dense regions rather than empty space.
    """
    rng = random.Random(seed)
    length = cfg["length"]

    def key() -> BitString:
        if rng.random() < 0.6:  # hot region: shared 6-bit prefix
            hot = rng.randrange(4)
            return BitString(
                (hot << (length - 2)) | rng.getrandbits(length - 2), length
            )
        n = rng.randint(6, length)
        return BitString(rng.getrandbits(n), n)

    resident = sorted({key() for _ in range(cfg["resident"])})
    load = [(k, f"r{i}") for i, k in enumerate(resident)]

    batches: list[tuple[str, Any]] = []
    serial = 0
    pool = list(resident)
    for _ in range(cfg["batches"]):
        kind = rng.choices(
            ["insert", "delete", "pred", "succ", "range", "count", "topk"],
            weights=[2, 1, 3, 3, 3, 2, 2],
        )[0]
        size = rng.randint(1, cfg["batch_size"])
        if kind == "insert":
            payload = []
            for _ in range(size):
                k = key()
                payload.append((k, f"v{serial}"))
                serial += 1
                pool.append(k)
        elif kind == "delete":
            payload = [rng.choice(pool) if pool and rng.random() < 0.7
                       else key() for _ in range(size)]
        elif kind == "range":
            payload = []
            for _ in range(size):
                a, b = key(), key()
                payload.append((a, b) if a <= b else (b, a))
            payload = (payload, rng.choice([None, 1, 4, 16]))
        elif kind == "topk":
            payload = (
                [key().prefix(rng.randint(1, 6)) for _ in range(size)],
                rng.randint(1, 8),
            )
        elif kind == "count":
            payload = [key().prefix(rng.randint(1, 8)) for _ in range(size)]
        else:  # pred / succ
            payload = [rng.choice(pool) if pool and rng.random() < 0.5
                       else key() for _ in range(size)]
        batches.append((kind, payload))
    return load, batches


def _canon(reply: Any) -> Any:
    """Canonical JSON-able form of one batch reply (keys stringified)."""
    if reply is None:
        return None
    out = []
    for r in reply:
        if r is None or isinstance(r, int):
            out.append(r)
        elif isinstance(r, tuple):
            out.append([str(r[0]), r[1]])
        else:  # list of (key, value) pairs, order-significant
            out.append([[str(k), v] for k, v in r])
    return out


def _apply(index: Any, kind: str, payload: Any) -> Any:
    if kind == "insert":
        index.insert_batch([k for k, _ in payload], [v for _, v in payload])
        return None
    if kind == "delete":
        index.delete_batch(list(payload))
        return None
    if kind == "pred":
        return index.predecessor_batch(list(payload))
    if kind == "succ":
        return index.successor_batch(list(payload))
    if kind == "count":
        return index.prefix_count_batch(list(payload))
    if kind == "range":
        bounds, limit = payload
        return index.range_batch(list(bounds), limit=limit)
    if kind == "topk":
        prefixes, k = payload
        return index.topk_batch(list(prefixes), k)
    raise ValueError(f"unknown bench op kind {kind!r}")


class _BisectOracle:
    """Independent reference: a plain dict + per-query sorted scan."""

    def __init__(self) -> None:
        self.store: dict[BitString, Any] = {}

    def insert_batch(self, keys, values):
        for k, v in zip(keys, values):
            self.store[k] = v

    def delete_batch(self, keys):
        for k in keys:
            self.store.pop(k, None)

    def _sorted(self):
        return sorted(self.store)

    def predecessor_batch(self, keys):
        import bisect

        s = self._sorted()
        return [
            None if (i := bisect.bisect_left(s, k)) == 0
            else (s[i - 1], self.store[s[i - 1]])
            for k in keys
        ]

    def successor_batch(self, keys):
        import bisect

        s = self._sorted()
        return [
            None if (i := bisect.bisect_right(s, k)) == len(s)
            else (s[i], self.store[s[i]])
            for k in keys
        ]

    def range_batch(self, bounds, limit=None):
        import bisect

        s = self._sorted()
        out = []
        for lo, hi in bounds:
            i, j = bisect.bisect_left(s, lo), bisect.bisect_right(s, hi)
            items = [(k, self.store[k]) for k in s[i:j]]
            out.append(items if limit is None else items[:limit])
        return out

    def prefix_count_batch(self, prefixes):
        return [
            sum(1 for k in self.store if k.starts_with(p)) for p in prefixes
        ]

    def topk_batch(self, prefixes, k):
        out = []
        for p in prefixes:
            items = sorted(
                (key, v) for key, v in self.store.items()
                if key.starts_with(p)
            )
            out.append(items[:k])
        return out


# ----------------------------------------------------------------------
# execution grid
# ----------------------------------------------------------------------
def _digest(replies: list) -> str:
    blob = json.dumps([_canon(r) for r in replies], sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _eager_policy():
    from ..adapt import AdaptPolicy

    return AdaptPolicy(
        hot_fraction=0.05, cold_fraction=0.02, min_window=4.0, cooldown=0,
        max_replicas=2, split_min_keys=2, max_actions_per_epoch=8,
    )


def _run_single(load, batches, cfg, *, mode: str, adaptive: bool):
    from ..adapt import AdaptiveController

    ctx = {
        "columnar": None,
        "object": fastpath.columnar_disabled,
        "baseline": fastpath.disabled,
    }[mode]
    reset_id_counters()
    with (ctx() if ctx else _null()):
        system = PIMSystem(cfg["P"], seed=1)
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=cfg["P"]),
            keys=[k for k, _ in load], values=[v for _, v in load],
        )
        ctl = AdaptiveController(trie, _eager_policy()) if adaptive else None
        replies = []
        for kind, payload in batches:
            replies.append(_apply(trie, kind, payload))
            if ctl is not None:
                ctl.step()
        snap = system.snapshot().as_dict()
    return replies, snap, trie


def _run_cluster(load, batches, cfg, *, policy: str, adaptive: bool):
    from ..adapt import ClusterAdaptiveController
    from ..cluster import PIMCluster
    from ..cluster.sharding import policy_from_name

    reset_id_counters()
    cluster = PIMCluster(
        policy_from_name(
            policy, 4, resident_keys=[k for k, _ in load]
        ),
        replication=1, modules_per_rack=max(2, cfg["P"] // 4), root_seed=1,
        keys=[k for k, _ in load], values=[v for _, v in load],
    )
    ctl = (
        ClusterAdaptiveController(cluster, _eager_policy())
        if adaptive else None
    )
    replies = []
    for kind, payload in batches:
        replies.append(_apply(cluster, kind, payload))
        if ctl is not None:
            ctl.step()
    return replies


def _null():
    from contextlib import nullcontext

    return nullcontext()


def _span_sum_check(load, batches, cfg) -> bool:
    """Replay ordered reads under a tracer: root spans must sum exactly
    (integer equality, field for field) to the system's metric delta."""
    reset_id_counters()
    system = PIMSystem(cfg["P"], seed=1)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=cfg["P"]),
        keys=[k for k, _ in load], values=[v for _, v in load],
    )
    tracer = Tracer(system)
    before = system.snapshot()
    for kind, payload in batches:
        _apply(trie, kind, payload)
    delta = system.snapshot().delta(before)
    return root_metric_sums(tracer.spans) == {
        "io_rounds": delta.io_rounds,
        "io_time": delta.io_time,
        "words": delta.total_communication,
        "pim_time": delta.pim_time,
        "cpu_work": delta.cpu_work,
    }


# ----------------------------------------------------------------------
# wall-clock: snapshot-backed ordered reads vs naive linear scan
# ----------------------------------------------------------------------
def _timed_queries(trie, cfg, seed: int) -> dict[str, Any]:
    rng = random.Random(seed + 101)
    keys = [k for k, _ in trie.ordered_snapshot().items()]
    probes = [rng.choice(keys) for _ in range(cfg["timed_queries"])]

    t0 = time.perf_counter()
    got = trie.predecessor_batch(probes)
    fast = time.perf_counter() - t0

    items = trie.ordered_snapshot().items()
    t0 = time.perf_counter()
    naive = []
    for q in probes:  # O(n) scan per probe: the unindexed reference
        best = None
        for k, v in items:
            if k < q:
                best = (k, v)
            else:
                break
        naive.append(best)
    slow = time.perf_counter() - t0
    assert naive == got, "naive reference diverged from snapshot path"
    n = len(probes)
    return {
        "queries": n,
        "ordered": {"seconds": round(fast, 6),
                    "ops_per_sec": round(n / max(fast, 1e-9), 1)},
        "naive": {"seconds": round(slow, 6),
                  "ops_per_sec": round(n / max(slow, 1e-9), 1)},
        "speedup": round(slow / max(fast, 1e-9), 2),
    }


# ----------------------------------------------------------------------
def run_bench_ordered(
    out: Optional[str] = "BENCH_ordered.json",
    *,
    smoke: bool = False,
    seed: int = 7,
) -> dict[str, Any]:
    """Full execution grid + oracle + span sums; writes ``out``."""
    cfg = dict(SMOKE if smoke else FULL)
    load, batches = _gen_sequence(seed, cfg)

    oracle = _BisectOracle()
    oracle.insert_batch([k for k, _ in load], [v for _, v in load])
    oracle_replies = [_apply(oracle, k, p) for k, p in batches]
    oracle_digest = _digest(oracle_replies)

    runs: list[dict[str, Any]] = []
    pipeline_metrics: dict[str, Any] = {}
    last_trie = None
    for mode in ("baseline", "object", "columnar"):
        for adaptive in (False, True):
            replies, snap, trie = _run_single(
                load, batches, cfg, mode=mode, adaptive=adaptive
            )
            runs.append({
                "target": f"single-{mode}" + ("-adapt" if adaptive else ""),
                "digest": _digest(replies),
            })
            if not adaptive:
                pipeline_metrics[mode] = snap
                last_trie = trie
    for policy in ("hash", "range"):
        for adaptive in (False, True):
            replies = _run_cluster(
                load, batches, cfg, policy=policy, adaptive=adaptive
            )
            runs.append({
                "target": f"cluster-{policy}" + ("-adapt" if adaptive else ""),
                "digest": _digest(replies),
            })

    all_match = all(r["digest"] == oracle_digest for r in runs)
    metric_parity = (
        pipeline_metrics["baseline"]
        == pipeline_metrics["object"]
        == pipeline_metrics["columnar"]
    )
    span_ok = _span_sum_check(load, batches, cfg)
    timing = _timed_queries(last_trie, cfg, seed)

    headline = {
        "answer_digest": oracle_digest,
        "all_digests_match": all_match,
        "targets": len(runs),
        "pipeline_metric_parity": metric_parity,
        "span_sums_exact": span_ok,
        "ordered": timing["ordered"],
        "naive": timing["naive"],
        "speedup_vs_naive": timing["speedup"],
    }
    report = {
        "bench": "ordered",
        "profile": "smoke" if smoke else "full",
        "config": {**cfg, "seed": seed, "num_batches": len(batches)},
        "runs": runs,
        "timing": timing,
        "headline": headline,
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report


def check_floor_ordered(report: dict, recorded_path: str) -> int:
    """Regression guard for ``BENCH_ordered.json``.

    Returns 0 when this run's snapshot-backed ordered ops/sec is at or
    above the *naive linear-scan* ops/sec recorded in ``recorded_path``
    — the optimized path must never regress below what the unindexed
    reference achieved on the recording machine (the same cross-tier
    margin idiom as :func:`repro.perf.check_floor`).
    """
    import sys

    recorded = json.loads(Path(recorded_path).read_text())
    floor = recorded["headline"]["naive"]["ops_per_sec"]
    got = report["headline"]["ordered"]["ops_per_sec"]
    if got < floor:
        print(
            f"FAIL: ordered reads {got:.0f} ops/s dropped below the "
            f"recorded naive-scan floor {floor:.0f} ops/s "
            f"({recorded_path})",
            file=sys.stderr,
        )
        return 1
    print(f"floor check OK: ordered reads {got:.0f} ops/s >= recorded "
          f"naive-scan floor {floor:.0f} ops/s")
    return 0
