"""repro.ordered — the ordered-index query surface.

:class:`OrderedSnapshot` is the consistent host-side ordered view the
:class:`repro.core.PIMTrie` batch ops (``predecessor_batch`` /
``successor_batch`` / ``range_batch`` / ``prefix_count_batch`` /
``top_k``) answer from; :mod:`repro.ordered.bench` is the benchmark
behind ``python -m repro ordered`` (→ ``BENCH_ordered.json``).

The bench module is imported lazily by the CLI (it pulls in the serve
and cluster layers); importing this package only loads the snapshot.
"""

from .snapshot import OrderedSnapshot

__all__ = ["OrderedSnapshot"]
