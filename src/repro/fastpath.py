"""Global switch for the simulator's wall-clock fast path.

The fast path changes *how fast* the simulator runs, never *what it
counts*: cached word costs, the type-dispatch cache in
:func:`repro.pim.system.default_word_cost`, the linear ``Span``
implementation, per-piece match-table caching, and batch fingerprinting
all produce bit-identical PIM Model metrics (IO rounds, IO time,
communication, PIM time) to the unoptimized reference path.  That
equivalence is what the metric-parity tests and the wall-clock harness
(:mod:`repro.perf`) assert.

``ENABLED`` defaults to True.  The harness flips it off via
:func:`disabled` to measure the pre-optimization baseline and to prove
parity; tests use the same context manager.  The flag is process-global
(the simulator is single-threaded by construction).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["ENABLED", "enable", "is_enabled", "disabled"]

#: Whether hot-loop caches and fast algorithms are active.
ENABLED: bool = True


def enable(flag: bool = True) -> None:
    """Turn the fast path on or off globally."""
    global ENABLED
    ENABLED = bool(flag)


def is_enabled() -> bool:
    return ENABLED


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the unoptimized reference path (baseline mode)."""
    global ENABLED
    prev = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = prev
