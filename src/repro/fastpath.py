"""Global switch for the simulator's wall-clock fast path.

The fast path changes *how fast* the simulator runs, never *what it
counts*: cached word costs, the type-dispatch cache in
:func:`repro.pim.system.default_word_cost`, the linear ``Span``
implementation, per-piece match-table caching, and batch fingerprinting
all produce bit-identical PIM Model metrics (IO rounds, IO time,
communication, PIM time) to the unoptimized reference path.  That
equivalence is what the metric-parity tests and the wall-clock harness
(:mod:`repro.perf`) assert.

``ENABLED`` defaults to True.  The harness flips it off via
:func:`disabled` to measure the pre-optimization baseline and to prove
parity; tests use the same context manager.  The flag is process-global
(the simulator is single-threaded by construction).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "ENABLED",
    "COLUMNAR",
    "enable",
    "is_enabled",
    "disabled",
    "enable_columnar",
    "columnar_enabled",
    "columnar_disabled",
]

#: Whether hot-loop caches and fast algorithms are active.
ENABLED: bool = True

#: Whether the columnar flat-array core (:mod:`repro.columnar`) may
#: replace the object query pipeline for batch phases.  Only consulted
#: while ``ENABLED`` is also true: the columnar core is a further tier
#: of the same fast path and obeys the same contract — bit-identical
#: PIM Model metrics and answers to the object reference.
COLUMNAR: bool = True


def enable(flag: bool = True) -> None:
    """Turn the fast path on or off globally."""
    global ENABLED
    ENABLED = bool(flag)


def is_enabled() -> bool:
    return ENABLED


def enable_columnar(flag: bool = True) -> None:
    """Turn the columnar flat-array core on or off globally."""
    global COLUMNAR
    COLUMNAR = bool(flag)


def columnar_enabled() -> bool:
    """True when batch phases should use the columnar arrays."""
    return ENABLED and COLUMNAR


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block on the unoptimized reference path (baseline mode)."""
    global ENABLED
    prev = ENABLED
    ENABLED = False
    try:
        yield
    finally:
        ENABLED = prev


@contextmanager
def columnar_disabled() -> Iterator[None]:
    """Run a block with the columnar core off (plain fast path)."""
    global COLUMNAR
    prev = COLUMNAR
    COLUMNAR = False
    try:
        yield
    finally:
        COLUMNAR = prev
