"""Baseline 3 (§3.2): a range-partitioned PIM index.

The key space is split into disjoint ranges by a small set of separator
keys cached on the host CPU; each range lives wholly on one PIM module
as a local sorted index.  Point operations cost O(1) communication —
the strength the paper credits this family with — but a skewed batch
that targets one key range serializes on a single module, which is the
load-imbalance failure mode PIM-trie is designed to avoid (experiment
E10 measures exactly this contrast).
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Any, Iterable, Optional, Sequence

from ..bits import BitString
from ..pim import ModuleContext, PIMSystem
from ..trie import PatriciaTrie, argsort

__all__ = ["RangePartitionedIndex"]


class RangePartitionedIndex:
    """CPU-cached separators routing to per-module Patricia tries."""

    _COUNTER = 0

    def __init__(
        self,
        system: PIMSystem,
        keys: Optional[Iterable[BitString]] = None,
        values: Optional[Iterable[Any]] = None,
    ):
        self.system = system
        RangePartitionedIndex._COUNTER += 1
        self.name = f"rangeidx{RangePartitionedIndex._COUNTER}"
        self.num_keys = 0
        #: separator keys: queries with key < separators[i] route to
        #: partition i; len == P - 1
        self.separators: list[BitString] = []
        #: per-partition key counts (CPU-cached metadata, like the
        #: separators themselves) — used to skip empty partitions when
        #: probing neighbors for LCP
        self._counts = [0] * system.num_modules

        def kernel(ctx: ModuleContext, reqs: list) -> list:
            trie: PatriciaTrie = ctx.scratch.setdefault(self.name, PatriciaTrie())
            out = []
            for op, key, value in reqs:
                ctx.tick(max(1, len(key) // 64 + 1))
                if op == "lcp":
                    out.append(trie.lcp(key))
                elif op == "get":
                    out.append(trie.lookup(key))
                elif op == "put":
                    out.append(trie.insert(key, value))
                elif op == "del":
                    out.append(trie.delete(key))
                elif op == "subtree":
                    items = trie.subtree_items(key)
                    ctx.tick(len(items))
                    out.append(items)
                else:
                    raise ValueError(op)
            return out

        system.register_kernel(f"{self.name}.kernel", kernel)
        self._kernel = f"{self.name}.kernel"
        if keys is not None:
            keys = list(keys)
            vals = list(values) if values is not None else [None] * len(keys)
            self._bulk_load(keys, vals)

    # ------------------------------------------------------------------
    def _bulk_load(self, keys: list[BitString], vals: list[Any]) -> None:
        """Choose separators by equal-count splits of the initial keys
        (the CPU-side lookup structure of §3.2), then scatter."""
        P = self.system.num_modules
        order = argsort(keys)
        if len(keys) >= P:
            self.separators = [
                keys[order[(i * len(keys)) // P]] for i in range(1, P)
            ]
        self.insert_batch(keys, vals)

    def _route(self, key: BitString) -> int:
        """CPU-local separator search: O(log P) CPU work, no rounds."""
        self.system.tick_cpu(max(1, len(self.separators).bit_length()))
        return bisect.bisect_right(self.separators, key)

    def _batch(self, ops: Sequence[tuple[str, BitString, Any]]) -> list[Any]:
        sends: dict[int, list] = defaultdict(list)
        slots: dict[int, list[int]] = defaultdict(list)
        for i, (op, key, value) in enumerate(ops):
            m = self._route(key)
            sends[m].append((op, key, value))
            slots[m].append(i)
        out: list[Any] = [None] * len(ops)
        if not sends:
            return out
        replies = self.system.round(self._kernel, sends)
        for m, reply in replies.items():
            for i, r in zip(slots[m], reply):
                out[i] = r
        return out

    # ------------------------------------------------------------------
    def lcp_batch(self, keys: Sequence[BitString]) -> list[int]:
        """Two rounds: own partition plus the nearest *non-empty*
        neighbor partition on each side.

        The max-LCP key for q is always its lexicographic predecessor or
        successor in the key set, and those live in q's partition or the
        nearest non-empty partitions around it — the constant-factor fix
        real range-partitioned systems use (empty partitions arise from
        duplicate separators and deletions)."""
        first = self._batch([("lcp", k, None) for k in keys])
        sends: dict[int, list] = defaultdict(list)
        slots: dict[int, list[int]] = defaultdict(list)
        P = self.system.num_modules
        for i, k in enumerate(keys):
            m = self._route(k)
            lo = m - 1
            while lo >= 0 and self._counts[lo] == 0:
                lo -= 1
            hi = m + 1
            while hi < P and self._counts[hi] == 0:
                hi += 1
            for nb in (lo, hi):
                if 0 <= nb < P:
                    sends[nb].append(("lcp", k, None))
                    slots[nb].append(i)
        best = list(first)
        if sends:
            replies = self.system.round(self._kernel, sends)
            for m, reply in replies.items():
                for i, r in zip(slots[m], reply):
                    best[i] = max(best[i], r)
        return best

    def lookup_batch(self, keys: Sequence[BitString]) -> list[Any]:
        return self._batch([("get", k, None) for k in keys])

    def insert_batch(
        self, keys: Sequence[BitString], values: Optional[Sequence[Any]] = None
    ) -> int:
        vals = list(values) if values is not None else [None] * len(keys)
        fresh = self._batch(
            [("put", k, v) for k, v in zip(keys, vals)]
        )
        added = 0
        for k, f in zip(keys, fresh):
            if f:
                added += 1
                self._counts[self._route(k)] += 1
        self.num_keys += added
        return added

    def delete_batch(self, keys: Sequence[BitString]) -> int:
        gone = self._batch([("del", k, None) for k in keys])
        removed = 0
        for k, f in zip(keys, gone):
            if f:
                removed += 1
                self._counts[self._route(k)] -= 1
        self.num_keys -= removed
        return removed

    def subtree_batch(
        self, prefixes: Sequence[BitString]
    ) -> list[list[tuple[BitString, Any]]]:
        """A prefix range may span several partitions: query every
        partition whose range intersects [prefix, prefix|111...)."""
        out: list[list[tuple[BitString, Any]]] = [[] for _ in prefixes]
        sends: dict[int, list] = defaultdict(list)
        slots: dict[int, list[int]] = defaultdict(list)
        for i, p in enumerate(prefixes):
            lo = self._route(p)
            # the upper end of the prefix range
            hi_key = p.pad_to(max(len(p), 256), 1)
            hi = self._route(hi_key)
            for m in range(lo, hi + 1):
                sends[m].append(("subtree", p, None))
                slots[m].append(i)
        if sends:
            replies = self.system.round(self._kernel, sends)
            for m, reply in replies.items():
                for i, items in zip(slots[m], reply):
                    out[i].extend(items)
        return [sorted(r, key=lambda kv: kv[0]) for r in out]

    def space_words(self) -> int:
        return self.system.total_memory_words()
