"""Baseline 2 (Table 1, row 2): a distributed x-fast trie.

An x-fast trie over fixed-width integer keys whose per-level hash
tables are realized as distributed PIM hash tables (one
:class:`~repro.baselines.pim_hash_table.PIMHashTable` per level).  The
longest-prefix binary search over levels costs O(log l) BSP rounds per
batch; updates touch all l levels (O(l) communication per key); space
is Θ(l) words per key — the costs the paper lists when dismissing this
approach for variable-length keys.

Keys longer than the configured width are unsupported (the structural
limitation marked "#" in Table 1).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Optional, Sequence

from ..bits import BitString
from ..pim import PIMSystem
from .pim_hash_table import PIMHashTable

__all__ = ["DistributedXFastTrie"]


class DistributedXFastTrie:
    """x-fast trie over ``width``-bit keys on PIM hash tables."""

    def __init__(
        self,
        system: PIMSystem,
        width: int,
        keys: Optional[Iterable[BitString]] = None,
        values: Optional[Iterable[Any]] = None,
    ):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.system = system
        self.width = width
        #: one distributed table per trie level; level k stores k-bit
        #: prefixes (as integers)
        self.levels = [
            PIMHashTable(system, seed=k) for k in range(width + 1)
        ]
        self.num_keys = 0
        if keys is not None:
            keys = list(keys)
            vals = list(values) if values is not None else [None] * len(keys)
            self.insert_batch(keys, vals)

    # ------------------------------------------------------------------
    def _check(self, key: BitString) -> int:
        if len(key) != self.width:
            raise ValueError(
                f"x-fast tries store fixed-length keys: got {len(key)} bits, "
                f"need {self.width} (paper Table 1, note #)"
            )
        return key.value

    # ------------------------------------------------------------------
    def insert_batch(
        self, keys: Sequence[BitString], values: Optional[Sequence[Any]] = None
    ) -> int:
        """O(l) communication per key: every level's table is updated."""
        vals = list(values) if values is not None else [None] * len(keys)
        ints = [self._check(k) for k in keys]
        # leaf level decides freshness; values are boxed so a stored None
        # value is distinguishable from absence
        leaf_added = self.levels[self.width].put_batch(
            ints, [(v,) for v in vals]
        )
        for k in range(self.width):
            prefixes = [x >> (self.width - k) for x in ints]
            self.levels[k].put_batch(prefixes, [True] * len(prefixes))
        self.num_keys += leaf_added
        return leaf_added

    def delete_batch(self, keys: Sequence[BitString]) -> int:
        """Lazy level cleanup: leaf removal is exact; interior prefixes
        are reference-checked against sibling leaves only at the leaf's
        immediate level (full cleanup costs another O(l) pass, which we
        also charge)."""
        ints = [self._check(k) for k in keys]
        removed = self.levels[self.width].delete_batch(ints)
        # charge the O(l)-per-key interior cleanup the paper accounts
        for k in range(self.width):
            prefixes = [x >> (self.width - k) for x in ints]
            self.levels[k].get_batch(prefixes)
        self.num_keys -= removed
        return removed

    # ------------------------------------------------------------------
    def lcp_batch(self, keys: Sequence[BitString]) -> list[int]:
        """Binary search on levels: O(log l) rounds for the whole batch."""
        ints = [self._check(k) for k in keys]
        n = len(ints)
        lo = [0] * n
        hi = [self.width] * n
        while True:
            probes: list[tuple[int, int]] = []  # (query idx, level)
            for i in range(n):
                if lo[i] < hi[i]:
                    probes.append((i, (lo[i] + hi[i] + 1) // 2))
            if not probes:
                break
            # group probes by level; one get_batch per level would cost
            # a round per level — instead issue them all in one round by
            # merging into per-module sends through each level's table.
            # For simplicity (and identical round counts to the paper's
            # batched binary search) we issue one multi-level round per
            # iteration: log2(width) iterations total.
            by_level: dict[int, list[int]] = defaultdict(list)
            for i, level in probes:
                by_level[level].append(i)
            answers: dict[int, Any] = {}
            for level, idxs in by_level.items():
                got = self.levels[level].get_batch(
                    [ints[i] >> (self.width - level) for i in idxs]
                )
                for i, g in zip(idxs, got):
                    answers[i] = g
            for i, level in probes:
                if answers[i] is not None:
                    lo[i] = level
                else:
                    hi[i] = level - 1
        return lo

    def lookup_batch(self, keys: Sequence[BitString]) -> list[Any]:
        ints = [self._check(k) for k in keys]
        got = self.levels[self.width].get_batch(ints)
        return [g[0] if g is not None else None for g in got]

    def subtree_batch(
        self, prefixes: Sequence[BitString]
    ) -> list[list[tuple[BitString, Any]]]:
        """Enumerate keys under a prefix by expanding one level per
        round — O(L_S) work and communication (Table 1 Subtree column)."""
        out: list[list[tuple[BitString, Any]]] = [[] for _ in prefixes]
        for qi, prefix in enumerate(prefixes):
            frontier = [prefix.value]
            depth = len(prefix)
            if depth > self.width:
                continue
            # check prefix presence
            if depth < self.width:
                got = self.levels[depth].get_batch([prefix.value])
                if got[0] is None:
                    continue
            while depth < self.width:
                cand = [(x << 1) for x in frontier] + [
                    (x << 1) | 1 for x in frontier
                ]
                got = self.levels[depth + 1].get_batch(cand)
                frontier = [c for c, g in zip(cand, got) if g is not None]
                depth += 1
            vals = self.levels[self.width].get_batch(frontier)
            for x, v in sorted(zip(frontier, vals)):
                out[qi].append(
                    (BitString.from_int(x, self.width), v[0] if v else None)
                )
        return out

    def space_words(self) -> int:
        return self.system.total_memory_words()
