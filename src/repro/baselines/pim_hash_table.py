"""A distributed PIM hash table (paper [30]'s building block, §3.4).

Keys are hashed to a uniformly random module ("bucket-to-module"
placement); batched get/insert/delete operations execute in one BSP
round each.  This is the substrate beneath the distributed x-fast
baseline (Table 1 row 2) and is also useful on its own as the simplest
PIM-balanced index for exact-match keys.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Iterable, Optional, Sequence

from ..pim import ModuleContext, PIMSystem

__all__ = ["PIMHashTable"]


class PIMHashTable:
    """A batch-parallel hash table over ``P`` PIM modules."""

    _COUNTER = 0

    def __init__(self, system: PIMSystem, *, seed: int = 0, name: str | None = None):
        self.system = system
        self.seed = seed
        PIMHashTable._COUNTER += 1
        self.name = name or f"pimht{PIMHashTable._COUNTER}"
        self._size = 0

        def kernel(ctx: ModuleContext, reqs: list) -> list:
            table = ctx.scratch.setdefault(self.name, {})
            out = []
            for op, key, value in reqs:
                ctx.tick(1)
                if op == "get":
                    out.append(table.get(key))
                elif op == "put":
                    out.append(key not in table)
                    table[key] = value
                elif op == "del":
                    out.append(table.pop(key, None) is not None)
                else:
                    raise ValueError(f"bad op {op!r}")
            return out

        system.register_kernel(f"{self.name}.kernel", kernel)
        self._kernel = f"{self.name}.kernel"

    # ------------------------------------------------------------------
    def _module_of(self, key: Hashable) -> int:
        return hash((self.seed, key)) % self.system.num_modules

    def _batch(
        self, ops: Sequence[tuple[str, Hashable, Any]]
    ) -> list[Any]:
        """One BSP round executing mixed operations, replies in order."""
        sends: dict[int, list] = defaultdict(list)
        slots: dict[int, list[int]] = defaultdict(list)
        for i, (op, key, value) in enumerate(ops):
            m = self._module_of(key)
            sends[m].append((op, key, value))
            slots[m].append(i)
        out: list[Any] = [None] * len(ops)
        if not sends:
            return out
        replies = self.system.round(self._kernel, sends)
        for m, reply in replies.items():
            for i, r in zip(slots[m], reply):
                out[i] = r
        return out

    # ------------------------------------------------------------------
    def get_batch(self, keys: Sequence[Hashable]) -> list[Any]:
        return self._batch([("get", k, None) for k in keys])

    def put_batch(
        self, keys: Sequence[Hashable], values: Sequence[Any]
    ) -> int:
        fresh = self._batch(
            [("put", k, v) for k, v in zip(keys, values)]
        )
        added = sum(bool(f) for f in fresh)
        self._size += added
        return added

    def delete_batch(self, keys: Sequence[Hashable]) -> int:
        removed = sum(bool(f) for f in self._batch([("del", k, None) for k in keys]))
        self._size -= removed
        return removed

    def __len__(self) -> int:
        return self._size
