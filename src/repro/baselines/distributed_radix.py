"""Baseline 1 (Table 1, row 1): a distributed radix tree.

A span-``s`` radix tree (fanout ``2^s``) whose nodes are placed on
uniformly random PIM modules.  Queries pointer-chase from the root, one
BSP round per node visited — ``O(l/s)`` rounds and ``O(l/s)`` words for
an l-bit key, exactly the costs the paper lists.  Shared search paths
also concentrate traffic on the modules holding the top of the tree, so
this baseline exhibits the skew problem PIM-trie removes.

Batches are executed level-synchronously: in each round every active
query sends one descend request to the module holding its current node.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Any, Iterable, Optional, Sequence

from ..bits import BitString
from ..pim import ModuleContext, PIMSystem

__all__ = ["DistributedRadixTree"]

_ids = itertools.count(1)


class _Node:
    """A span-s radix node resident on one module's heap."""

    __slots__ = ("node_id", "children", "is_key", "value", "depth")

    def __init__(self, node_id: int, depth: int):
        self.node_id = node_id
        self.depth = depth  # in bits
        #: chunk value -> (module, node_id); sparse
        self.children: dict[int, tuple[int, int]] = {}
        self.is_key = False
        self.value: Any = None


class DistributedRadixTree:
    """Span-``s`` radix tree with random node placement (§3.4)."""

    _COUNTER = 0

    def __init__(
        self,
        system: PIMSystem,
        span: int = 4,
        keys: Optional[Iterable[BitString]] = None,
        values: Optional[Iterable[Any]] = None,
    ):
        if span < 1:
            raise ValueError("span must be >= 1")
        self.system = system
        self.span = span
        DistributedRadixTree._COUNTER += 1
        self.name = f"dradix{DistributedRadixTree._COUNTER}"
        self.num_keys = 0
        self._num_nodes = 0

        def kernel(ctx: ModuleContext, reqs: list) -> list:
            store: dict[int, _Node] = ctx.scratch.setdefault(self.name, {})
            out = []
            for req in reqs:
                op = req[0]
                ctx.tick(1)
                if op == "descend":
                    # (op, node_id, chunk, want_value)
                    _, node_id, chunk, want_value = req
                    node = store[node_id]
                    child = node.children.get(chunk)
                    out.append(
                        (
                            child,
                            node.is_key if want_value else False,
                            node.value if want_value and node.is_key else None,
                            node.depth,
                        )
                    )
                elif op == "make":
                    # (op, node_id, depth)
                    _, node_id, depth = req
                    store[node_id] = _Node(node_id, depth)
                    out.append(node_id)
                elif op == "link":
                    # (op, node_id, chunk, child_module, child_id)
                    _, node_id, chunk, cm, cid = req
                    store[node_id].children[chunk] = (cm, cid)
                    out.append(True)
                elif op == "set_key":
                    # (op, node_id, value, flag)
                    _, node_id, value, flag = req
                    node = store[node_id]
                    was = node.is_key
                    node.is_key = flag
                    node.value = value if flag else None
                    out.append(was)
                elif op == "read":
                    _, node_id = req
                    node = store[node_id]
                    ctx.tick(len(node.children))
                    out.append(
                        (
                            dict(node.children),
                            node.is_key,
                            node.value,
                            node.depth,
                        )
                    )
                else:
                    raise ValueError(op)
            return out

        system.register_kernel(f"{self.name}.kernel", kernel)
        self._kernel = f"{self.name}.kernel"
        self.root = self._make_nodes([0])[0]
        if keys is not None:
            keys = list(keys)
            vals = list(values) if values is not None else [None] * len(keys)
            self.insert_batch(keys, vals)

    # ------------------------------------------------------------------
    def _make_nodes(self, depths: Sequence[int]) -> list[tuple[int, int]]:
        """Allocate nodes at random modules; one round."""
        sends: dict[int, list] = defaultdict(list)
        placed: list[tuple[int, int]] = []
        for d in depths:
            nid = next(_ids)
            m = self.system.random_module()
            sends[m].append(("make", nid, d))
            placed.append((m, nid))
        if sends:
            self.system.round(self._kernel, sends)
        self._num_nodes += len(depths)
        return placed

    def _chunks(self, key: BitString) -> list[int]:
        """The key cut into span-sized chunks (last chunk zero-padded)."""
        out = []
        for start in range(0, len(key), self.span):
            stop = min(start + self.span, len(key))
            piece = key.substring(start, stop)
            out.append((piece.pad_to(self.span, 0).value, stop - start))
        return out

    # ------------------------------------------------------------------
    def lcp_batch(self, keys: Sequence[BitString]) -> list[int]:
        """Per-key LCP by level-synchronous pointer chasing.

        Exact for span=1 (binary trie) and for keys/queries whose
        lengths are multiples of the span (chunk-aligned semantics of a
        fixed-span radix tree) — the Table-1 cost experiments use such
        workloads.  One BSP round per tree level touched.
        """
        results = [0] * len(keys)
        # active: query idx -> (module, node_id, chunk list, pos)
        active = {
            i: (self.root[0], self.root[1], self._chunks(k), 0)
            for i, k in enumerate(keys)
            if len(k) > 0
        }
        while active:
            sends: dict[int, list] = defaultdict(list)
            slots: dict[int, list[int]] = defaultdict(list)
            for i, (m, nid, chunks, pos) in active.items():
                sends[m].append(("descend", nid, chunks[pos][0], False))
                slots[m].append(i)
            replies = self.system.round(self._kernel, sends)
            nxt = {}
            for m, reply in replies.items():
                for i, (child, _k, _v, depth) in zip(slots[m], reply):
                    _m, _nid, chunks, pos = active[i]
                    if child is None:
                        results[i] = depth
                        continue
                    width = chunks[pos][1]
                    results[i] = depth + width
                    if pos + 1 < len(chunks):
                        nxt[i] = (child[0], child[1], chunks, pos + 1)
            active = nxt
        return results

    def insert_batch(
        self, keys: Sequence[BitString], values: Optional[Sequence[Any]] = None
    ) -> int:
        """Insert keys one level per round (paths shared within a batch)."""
        vals = list(values) if values is not None else [None] * len(keys)
        # walk/extend the tree level-synchronously; create missing nodes
        # per level in a second sub-round
        new_count = 0
        active = [
            (self.root, self._chunks(k), 0, k, v)
            for k, v in zip(keys, vals)
            if len(k) > 0 or not self._mark_root_key(k, v)
        ]
        while active:
            # phase 1: descend
            sends: dict[int, list] = defaultdict(list)
            slots: dict[int, list[int]] = defaultdict(list)
            for idx, ((m, nid), chunks, pos, key, v) in enumerate(active):
                sends[m].append(("descend", nid, chunks[pos][0], False))
                slots[m].append(idx)
            replies = self.system.round(self._kernel, sends)
            child_of: dict[int, Optional[tuple[int, int]]] = {}
            for m, reply in replies.items():
                for idx, (child, _k, _v, _d) in zip(slots[m], reply):
                    child_of[idx] = child
            # phase 2: create missing children (dedup by (node, chunk))
            need: dict[tuple[int, int, int], list[int]] = defaultdict(list)
            for idx, ((m, nid), chunks, pos, key, v) in enumerate(active):
                if child_of[idx] is None:
                    need[(m, nid, chunks[pos][0])].append(idx)
            if need:
                made = self._make_nodes(
                    [
                        (active[idxs[0]][2] + 1) * self.span
                        for idxs in need.values()
                    ]
                )
                sends = defaultdict(list)
                for ((m, nid, chunk), idxs), (cm, cid) in zip(
                    need.items(), made
                ):
                    sends[m].append(("link", nid, chunk, cm, cid))
                    for idx in idxs:
                        child_of[idx] = (cm, cid)
                self.system.round(self._kernel, sends)
            # phase 3: advance; finalize keys ending at this level
            nxt = []
            finals: dict[int, list] = defaultdict(list)
            for idx, ((m, nid), chunks, pos, key, v) in enumerate(active):
                child = child_of[idx]
                assert child is not None
                if pos + 1 >= len(chunks):
                    finals[child[0]].append(("set_key", child[1], v, True))
                else:
                    nxt.append((child, chunks, pos + 1, key, v))
            if finals:
                replies = self.system.round(self._kernel, finals)
                for reply in replies.values():
                    new_count += sum(1 for was in reply if not was)
            active = nxt
        self.num_keys += new_count
        return new_count

    def _mark_root_key(self, key: BitString, value: Any) -> bool:
        if len(key) != 0:
            return False
        replies = self.system.round(
            self._kernel, {self.root[0]: [("set_key", self.root[1], value, True)]}
        )
        if not replies[self.root[0]][0]:
            self.num_keys += 1
        return True

    def delete_batch(self, keys: Sequence[BitString]) -> int:
        """Unmark keys (lazy deletion: nodes are not reclaimed, the
        standard trade-off for concurrent radix trees)."""
        removed = 0
        active = {
            i: (self.root[0], self.root[1], self._chunks(k), 0)
            for i, k in enumerate(keys)
            if len(k) > 0
        }
        for i, k in enumerate(keys):
            if len(k) == 0:
                replies = self.system.round(
                    self._kernel,
                    {self.root[0]: [("set_key", self.root[1], None, False)]},
                )
                removed += sum(1 for was in replies[self.root[0]] if was)
        targets: dict[int, tuple[int, int]] = {}
        while active:
            sends: dict[int, list] = defaultdict(list)
            slots: dict[int, list[int]] = defaultdict(list)
            for i, (m, nid, chunks, pos) in active.items():
                sends[m].append(("descend", nid, chunks[pos][0], False))
                slots[m].append(i)
            replies = self.system.round(self._kernel, sends)
            nxt = {}
            for m, reply in replies.items():
                for i, (child, _k, _v, _d) in zip(slots[m], reply):
                    _m, _nid, chunks, pos = active[i]
                    if child is None:
                        continue  # key absent
                    if pos + 1 >= len(chunks):
                        targets[i] = child
                    else:
                        nxt[i] = (child[0], child[1], chunks, pos + 1)
            active = nxt
        if targets:
            sends = defaultdict(list)
            for i, (m, nid) in targets.items():
                sends[m].append(("set_key", nid, None, False))
            replies = self.system.round(self._kernel, sends)
            for reply in replies.values():
                removed += sum(1 for was in reply if was)
        self.num_keys -= removed
        return removed

    def subtree_batch(
        self, prefixes: Sequence[BitString]
    ) -> list[list[tuple[BitString, Any]]]:
        """Collect all keys under each prefix by frontier expansion —
        O(n_S) rounds in the worst case (Table 1's Subtree column)."""
        out: list[list[tuple[BitString, Any]]] = [[] for _ in prefixes]
        for qi, prefix in enumerate(prefixes):
            if len(prefix) % self.span != 0:
                # only chunk-aligned prefixes supported by a span-s tree
                raise ValueError(
                    f"prefix length must be a multiple of span={self.span}"
                )
            # descend to the prefix node
            cur = self.root
            ok = True
            for chunk, width in self._chunks(prefix):
                replies = self.system.round(
                    self._kernel, {cur[0]: [("descend", cur[1], chunk, False)]}
                )
                child = replies[cur[0]][0][0]
                if child is None:
                    ok = False
                    break
                cur = child
            if not ok:
                continue
            frontier = [(cur, prefix)]
            while frontier:
                sends: dict[int, list] = defaultdict(list)
                slots: dict[int, list[tuple[tuple[int, int], BitString]]] = defaultdict(list)
                for (m, nid), s in frontier:
                    sends[m].append(("read", nid))
                    slots[m].append(((m, nid), s))
                replies = self.system.round(self._kernel, sends)
                frontier = []
                for m, reply in replies.items():
                    for (_addr, s), (children, is_key, value, _d) in zip(
                        slots[m], reply
                    ):
                        if is_key:
                            out[qi].append((s, value))
                        for chunk, child in children.items():
                            cs = s + BitString.from_int(chunk, self.span)
                            frontier.append((child, cs))
            out[qi].sort(key=lambda kv: kv[0])
        return out

    def space_words(self) -> int:
        return self.system.total_memory_words()
