"""Table-1 baselines and their substrates (paper §3.2, §3.4)."""

from .distributed_radix import DistributedRadixTree
from .distributed_xfast import DistributedXFastTrie
from .pim_hash_table import PIMHashTable
from .range_partitioned import RangePartitionedIndex

__all__ = [
    "DistributedRadixTree",
    "DistributedXFastTrie",
    "PIMHashTable",
    "RangePartitionedIndex",
]
