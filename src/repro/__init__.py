"""PIM-trie reproduction: a skew-resistant trie for Processing-in-Memory
(Kang et al., SPAA 2023), on an executable PIM Model simulator.

Quickstart::

    from repro import PIMSystem, PIMTrie, BitString

    system = PIMSystem(num_modules=16, seed=1)
    trie = PIMTrie(system, keys=[BitString.from_str("0101"),
                                 BitString.from_str("0110")])
    trie.lcp_batch([BitString.from_str("0111")])   # -> [2]
"""

from . import fastpath
from .bits import BitString, HashValue, IncrementalHasher
from .core import MatchOutcome, PIMTrie, PIMTrieConfig
from .pim import MetricsSnapshot, PIMSystem
from . import faults
from . import obs
from . import serve

__version__ = "1.3.0"

__all__ = [
    "BitString",
    "HashValue",
    "IncrementalHasher",
    "MatchOutcome",
    "PIMTrie",
    "PIMTrieConfig",
    "MetricsSnapshot",
    "PIMSystem",
    "fastpath",
    "faults",
    "obs",
    "serve",
    "__version__",
]
