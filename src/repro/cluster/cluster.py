"""Multi-rack PIM cluster: shards of replicated ``PIMTrie`` racks
behind a host-side router.

A :class:`PIMCluster` is N *shards* × K *replica slots* of
:class:`Rack`s, where each rack is a full, independent
:class:`~repro.pim.PIMSystem` running its own
:class:`~repro.core.PIMTrie`.  The router owns a
:class:`~repro.cluster.sharding.ShardingPolicy` and exposes the same
five batch APIs as a single trie:

* the batch is split into per-shard sub-batches (input order preserved
  inside each sub-batch),
* each sub-batch runs on its shard's racks — reads on the first alive
  replica starting at the primary slot (failover read-routing), writes
  on *every* alive replica (K-way replication),
* replies fan back in preserving input order; multi-shard reads
  combine pointwise (LCP takes the per-key max across probed shards,
  subtree merges the per-shard item lists — key sets are disjoint
  across shards, so the merge is a sort, never a dedup).

The result is answer-identical to one big trie: routing is
deterministic in the key alone, every key lives on exactly one shard
(times K replicas), and per-shard sub-batches preserve arrival order —
the differential harness replays the same adversarial sequences
against a dict oracle to prove it (``tests/test_cluster.py``).

**Failure model.**  :meth:`fail_rack` kills a whole rack (system,
trie, replica log — everything), modeling a rack-scale outage rather
than the module-scale faults of :mod:`repro.faults`.  Reads fail over
to surviving replicas; :meth:`rebalance` then provisions a replacement
rack into the dead slot and rebuilds it from a survivor's host replica
log (``PIMTrie.replica_log_items`` — the same log module-crash
recovery replays, reused at rack scale).  A shard whose last replica
dies is *lost*: its keys are unrecoverable and operations needing it
raise :class:`ShardUnavailable` (the serve wrapper converts that into
per-op ``OP_FAILED`` answers, which is where the availability numbers
in ``BENCH_cluster.json`` come from).

Every rack's RNG seed derives from the cluster root seed and the
rack's identity (:func:`~repro.cluster.sharding.derive_rack_seed`), so
cluster behaviour is a pure function of ``(root_seed, policy, keys,
ops, loss plan)`` — independent of shard count for the answers, and
bit-reproducible for the metrics.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Iterator, Optional, Sequence

from ..bits import BitString
from ..core import PIMTrie, PIMTrieConfig
from ..obs import Tracer, maybe_span
from ..pim import MetricsSnapshot, PIMSystem
from .sharding import ShardingPolicy, derive_rack_seed

__all__ = ["PIMCluster", "Rack", "ShardUnavailable"]

#: router CPU work per (op, target-shard) routing decision
_ROUTE_TICKS = 1


class ShardUnavailable(RuntimeError):
    """Raised when an operation needs a shard with no alive replica."""

    def __init__(self, shard: int):
        super().__init__(f"shard {shard} has no alive replica")
        self.shard = shard


class Rack:
    """One rack: a private PIM system running one trie replica."""

    def __init__(
        self,
        shard: int,
        slot: int,
        incarnation: int,
        *,
        num_modules: int,
        seed: int,
        config: Optional[PIMTrieConfig] = None,
        keys: Optional[Sequence[BitString]] = None,
        values: Optional[Sequence[Any]] = None,
        trace: bool = False,
        build_span: str = "rack.build",
        build_cat: str = "op",
    ):
        self.shard = shard
        self.slot = slot
        self.incarnation = incarnation
        self.seed = seed
        self.alive = True
        self.system = PIMSystem(num_modules, seed=seed)
        self.tracer: Optional[Tracer] = None
        if trace:
            self.tracer = Tracer(
                self.system,
                tags={"shard": shard, "replica": slot,
                      "incarnation": incarnation},
            )
        cfg = config if config is not None else PIMTrieConfig(
            num_modules=num_modules
        )
        span = (
            self.tracer.span(build_span, cat=build_cat,
                             keys=len(keys) if keys is not None else 0)
            if self.tracer is not None
            else nullcontext()
        )
        with span:
            self.trie = PIMTrie(self.system, cfg, keys=keys, values=values)

    @property
    def uid(self) -> tuple[int, int, int]:
        """Stable identity: ``(shard, slot, incarnation)``."""
        return (self.shard, self.slot, self.incarnation)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (f"Rack(shard={self.shard}, slot={self.slot}, "
                f"inc={self.incarnation}, {state})")


class PIMCluster:
    """Sharded, K-way replicated cluster of PIM-trie racks."""

    def __init__(
        self,
        policy: ShardingPolicy,
        *,
        replication: int = 1,
        modules_per_rack: int = 4,
        root_seed: int = 0,
        config: Optional[PIMTrieConfig] = None,
        keys: Optional[Sequence[BitString]] = None,
        values: Optional[Sequence[Any]] = None,
        trace: bool = False,
    ):
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.policy = policy
        self.num_shards = policy.num_shards
        self.replication = replication
        self.modules_per_rack = modules_per_rack
        self.root_seed = root_seed
        self.config = config
        self.trace = trace
        #: shards irrecoverably lost (every replica died before heal)
        self.lost_shards: set[int] = set()
        #: loss / rebuild / shard-lost event records, in order
        self.events: list[dict[str, Any]] = []
        #: racks that died and were replaced (kept for metrics history)
        self.retired: list[Rack] = []

        if keys is not None:
            keys = list(keys)
            vals = (
                list(values) if values is not None else [None] * len(keys)
            )
            by_shard: dict[int, tuple[list, list]] = {}
            for k, v in zip(keys, vals):
                bucket = by_shard.setdefault(self.policy.home(k), ([], []))
                bucket[0].append(k)
                bucket[1].append(v)
        else:
            by_shard = {}

        self.racks: list[list[Rack]] = []
        for s in range(self.num_shards):
            sk, sv = by_shard.get(s, ([], []))
            self.racks.append(
                [
                    self._provision(s, r, 0, keys=sk, values=sv)
                    for r in range(replication)
                ]
            )
        #: host-cached per-shard live-key census (routing metadata,
        #: like the range baseline's ``_counts``)
        self._counts = [
            self.racks[s][0].trie.num_keys() for s in range(self.num_shards)
        ]

    # ------------------------------------------------------------------
    # provisioning / topology
    # ------------------------------------------------------------------
    def _provision(
        self,
        shard: int,
        slot: int,
        incarnation: int,
        *,
        keys: Sequence[BitString],
        values: Sequence[Any],
        build_span: str = "rack.build",
        build_cat: str = "op",
    ) -> Rack:
        return Rack(
            shard,
            slot,
            incarnation,
            num_modules=self.modules_per_rack,
            seed=derive_rack_seed(self.root_seed, shard, slot, incarnation),
            config=self.config,
            keys=keys,
            values=values,
            trace=self.trace,
            build_span=build_span,
            build_cat=build_cat,
        )

    def iter_racks(self) -> Iterator[Rack]:
        """Every current rack (alive or dead), shard-major order."""
        for row in self.racks:
            yield from row

    def alive_racks(self, shard: int) -> list[Rack]:
        return [r for r in self.racks[shard] if r.alive]

    def read_rack(self, shard: int) -> Rack:
        """Failover read-routing: primary slot first, then survivors."""
        for rack in self.racks[shard]:
            if rack.alive:
                return rack
        raise ShardUnavailable(shard)

    # ------------------------------------------------------------------
    # failure and healing
    # ------------------------------------------------------------------
    def fail_rack(self, shard: int, slot: int) -> Optional[Rack]:
        """Kill the rack in ``(shard, slot)``: system, trie, replica
        log — all of it.  Idempotent on an already-dead slot."""
        rack = self.racks[shard][slot]
        if not rack.alive:
            return None
        rack.alive = False
        self.events.append(
            {"event": "rack-loss", "shard": shard, "replica": slot,
             "incarnation": rack.incarnation}
        )
        if not self.alive_racks(shard):
            self.lost_shards.add(shard)
            self.events.append({"event": "shard-lost", "shard": shard})
        return rack

    def rebalance(self) -> int:
        """Heal dead slots: provision replacement racks re-replicated
        from a surviving replica's host log.

        Returns the IO rounds spent rebuilding (the cluster's recovery
        cost; the serve wrapper charges them to epoch service time).
        Shards with no survivor are skipped — their keys are gone, and
        an empty stand-in that answered wrongly would be worse than
        :class:`ShardUnavailable`.
        """
        rounds = 0
        for s in range(self.num_shards):
            survivors = self.alive_racks(s)
            if not survivors:
                continue
            for slot in range(self.replication):
                old = self.racks[s][slot]
                if old.alive:
                    continue
                items = survivors[0].trie.replica_log_items()
                ordered = sorted(items)
                fresh = self._provision(
                    s, slot, old.incarnation + 1,
                    keys=ordered, values=[items[k] for k in ordered],
                    build_span="rack.rebuild", build_cat="recovery",
                )
                rounds += fresh.system.snapshot().io_rounds
                self.racks[s][slot] = fresh
                self.retired.append(old)
                self.events.append(
                    {"event": "rebuild", "shard": s, "replica": slot,
                     "incarnation": fresh.incarnation,
                     "keys": len(ordered)}
                )
        return rounds

    @property
    def degraded(self) -> bool:
        """Any dead slot that rebalancing could still heal?"""
        return any(
            not r.alive and self.alive_racks(r.shard)
            for r in self.iter_racks()
        )

    # ------------------------------------------------------------------
    # metrics aggregation
    # ------------------------------------------------------------------
    def snapshots(self) -> dict[tuple[int, int, int], MetricsSnapshot]:
        """Current cumulative snapshot of every rack ever provisioned
        (dead and retired racks freeze at their final counters)."""
        out = {r.uid: r.system.snapshot() for r in self.iter_racks()}
        for r in self.retired:
            out[r.uid] = r.system.snapshot()
        return out

    def mark(self) -> dict[tuple[int, int, int], MetricsSnapshot]:
        """A resumable measurement point for :meth:`delta`."""
        return self.snapshots()

    def delta_by_rack(
        self, mark: dict[tuple[int, int, int], MetricsSnapshot]
    ) -> dict[tuple[int, int, int], MetricsSnapshot]:
        """Per-rack metric deltas since ``mark`` (racks provisioned
        after the mark report their full counters)."""
        out = {}
        for uid, snap in self.snapshots().items():
            base = mark.get(uid)
            out[uid] = snap if base is None else snap.delta(base)
        return out

    def delta(
        self, mark: dict[tuple[int, int, int], MetricsSnapshot]
    ) -> MetricsSnapshot:
        """Cluster-wide metric delta since ``mark``: the per-rack
        deltas merged rack-major (``MetricsSnapshot.merge``)."""
        deltas = self.delta_by_rack(mark)
        return MetricsSnapshot.merge(*(deltas[u] for u in sorted(deltas)))

    def shard_traffic(
        self, mark: dict[tuple[int, int, int], MetricsSnapshot]
    ) -> list[int]:
        """Per-shard words moved since ``mark`` (replicas included) —
        the numerator of the cross-shard imbalance table in E17."""
        out = [0] * self.num_shards
        for (s, _r, _i), d in self.delta_by_rack(mark).items():
            out[s] += d.total_communication
        return out

    # ------------------------------------------------------------------
    # routed batch execution
    # ------------------------------------------------------------------
    def _targets(self, kind: str, key: Any) -> list[int]:
        if kind in ("insert", "delete", "lookup"):
            return [self.policy.home(key)]
        if kind == "lcp":
            return self.policy.lcp_targets(key, self._counts)
        if kind in ("subtree", "count", "topk"):
            return self.policy.subtree_targets(key)
        if kind == "pred":
            return self.policy.pred_targets(key)
        if kind == "succ":
            return self.policy.succ_targets(key)
        if kind == "range":  # routed on the bound pair, not one key
            lo, hi = key
            return self.policy.range_targets(lo, hi)
        raise ValueError(f"unknown op kind {kind!r}")

    def _execute(
        self,
        kind: str,
        keys: Sequence[Any],
        values: Optional[Sequence[Any]] = None,
        *,
        extra: Optional[int] = None,
    ) -> tuple[list[Any], list[bool], int]:
        """Route, fan out, fan in.

        Returns ``(replies, ok, changed)``: per-op replies in input
        order, per-op availability (an op is unavailable iff *any*
        shard its answer needs has no alive replica — a partial LCP or
        subtree answer would be silently wrong), and for write kinds
        the number of keys actually added/removed.

        ``keys`` entries are ``(lo, hi)`` bound pairs for ``range`` and
        plain keys otherwise; ``extra`` carries the per-call scalar of
        the ordered kinds (``range``'s limit, ``topk``'s k).
        """
        keys = list(keys)
        vals = list(values) if values is not None else [None] * len(keys)
        sends: dict[int, list[int]] = {}
        ok = [True] * len(keys)
        for i, k in enumerate(keys):
            targets = self._targets(kind, k)
            if any(not self.alive_racks(s) for s in targets):
                ok[i] = False
                continue
            for s in targets:
                sends.setdefault(s, []).append(i)

        replies: list[Any] = [
            None if kind in ("lookup", "pred", "succ") else
            True if kind in ("insert", "delete") else
            [] if kind in ("subtree", "range", "topk") else 0
            for _ in keys
        ]
        for i, good in enumerate(ok):
            if not good:
                replies[i] = None
        changed = 0
        for s in sorted(sends):
            slots = sends[s]
            sub_keys = [keys[i] for i in slots]
            if kind in ("insert", "delete"):
                primary_reply: Optional[int] = None
                for rack in self.alive_racks(s):
                    # the cluster span keeps router CPU ticks inside a
                    # root span, so per-rack span sums stay exact
                    with maybe_span(
                        rack.system, f"cluster.{kind}", cat="op",
                        ops=len(slots),
                    ):
                        rack.system.tick_cpu(_ROUTE_TICKS * len(slots))
                        if kind == "insert":
                            r = rack.trie.insert_batch(
                                sub_keys, [vals[i] for i in slots]
                            )
                        else:
                            r = rack.trie.delete_batch(sub_keys)
                    if primary_reply is None:
                        primary_reply = r
                changed += primary_reply or 0
                self._counts[s] = self.read_rack(s).trie.num_keys()
            else:
                rack = self.read_rack(s)
                with maybe_span(
                    rack.system, f"cluster.{kind}", cat="op",
                    ops=len(slots),
                ):
                    rack.system.tick_cpu(_ROUTE_TICKS * len(slots))
                    if kind == "lcp":
                        for i, r in zip(
                            slots, rack.trie.lcp_batch(sub_keys)
                        ):
                            replies[i] = max(replies[i], r)
                    elif kind == "lookup":
                        for i, r in zip(
                            slots, rack.trie.lookup_batch(sub_keys)
                        ):
                            replies[i] = r
                    elif kind == "pred":
                        # the global predecessor is the largest of the
                        # per-shard predecessors (shards hold disjoint
                        # key sets, each reports its own largest < q)
                        for i, r in zip(
                            slots, rack.trie.predecessor_batch(sub_keys)
                        ):
                            if r is not None and (
                                replies[i] is None or r[0] > replies[i][0]
                            ):
                                replies[i] = r
                    elif kind == "succ":
                        for i, r in zip(
                            slots, rack.trie.successor_batch(sub_keys)
                        ):
                            if r is not None and (
                                replies[i] is None or r[0] < replies[i][0]
                            ):
                                replies[i] = r
                    elif kind == "count":
                        # disjoint shard key sets: counts add exactly
                        for i, r in zip(
                            slots, rack.trie.prefix_count_batch(sub_keys)
                        ):
                            replies[i] += r
                    elif kind == "range":
                        # cross-shard stitching: each shard returns its
                        # own first `limit` matches; re-merge by key and
                        # keep the globally smallest `limit`.  Under
                        # hash sharding consecutive keys interleave
                        # across shards, so concatenating per-shard
                        # answers in shard order would both break the
                        # global order and over-fill the limit — the
                        # merge-then-truncate keeps exactly the answer a
                        # single trie would return.
                        for i, items in zip(
                            slots,
                            rack.trie.range_batch(sub_keys, limit=extra),
                        ):
                            merged = sorted(
                                list(replies[i]) + list(items),
                                key=lambda kv: kv[0],
                            )
                            replies[i] = (
                                merged if extra is None else merged[:extra]
                            )
                    elif kind == "topk":
                        # same stitching as range: per-shard top-k lists
                        # merge into the global smallest k
                        for i, items in zip(
                            slots, rack.trie.topk_batch(sub_keys, extra)
                        ):
                            merged = sorted(
                                list(replies[i]) + list(items),
                                key=lambda kv: kv[0],
                            )
                            replies[i] = merged[:extra]
                    else:  # subtree: shard key sets are disjoint, so
                        # the cross-shard merge is a sort, not a dedup
                        for i, items in zip(
                            slots, rack.trie.subtree_batch(sub_keys)
                        ):
                            replies[i] = sorted(
                                list(replies[i]) + list(items),
                                key=lambda kv: kv[0],
                            )
        return replies, ok, changed

    def _strict(
        self,
        kind: str,
        keys: Sequence[Any],
        values: Optional[Sequence[Any]] = None,
        *,
        extra: Optional[int] = None,
    ) -> tuple[list[Any], int]:
        replies, ok, changed = self._execute(kind, keys, values, extra=extra)
        if not all(ok):
            bad = next(
                s
                for i, k in enumerate(keys)
                if not ok[i]
                for s in self._targets(kind, k)
                if not self.alive_racks(s)
            )
            raise ShardUnavailable(bad)
        return replies, changed

    # -- the single-trie batch surface ---------------------------------
    def lcp_batch(self, keys: Sequence[BitString]) -> list[int]:
        return self._strict("lcp", keys)[0]

    def lookup_batch(self, keys: Sequence[BitString]) -> list[Any]:
        return self._strict("lookup", keys)[0]

    def insert_batch(
        self,
        keys: Sequence[BitString],
        values: Optional[Sequence[Any]] = None,
    ) -> int:
        return self._strict("insert", keys, values)[1]

    def delete_batch(self, keys: Sequence[BitString]) -> int:
        return self._strict("delete", keys)[1]

    def subtree_batch(
        self, prefixes: Sequence[BitString]
    ) -> list[list[tuple[BitString, Any]]]:
        return self._strict("subtree", prefixes)[0]

    # -- the ordered-index surface (repro.ordered) ---------------------
    def predecessor_batch(
        self, keys: Sequence[BitString]
    ) -> list[Optional[tuple[BitString, Any]]]:
        return self._strict("pred", keys)[0]

    def successor_batch(
        self, keys: Sequence[BitString]
    ) -> list[Optional[tuple[BitString, Any]]]:
        return self._strict("succ", keys)[0]

    def range_batch(
        self,
        bounds: Sequence[tuple[BitString, BitString]],
        limit: Optional[int] = None,
    ) -> list[list[tuple[BitString, Any]]]:
        return self._strict("range", bounds, extra=limit)[0]

    def prefix_count_batch(self, prefixes: Sequence[BitString]) -> list[int]:
        return self._strict("count", prefixes)[0]

    def topk_batch(
        self, prefixes: Sequence[BitString], k: int
    ) -> list[list[tuple[BitString, Any]]]:
        return self._strict("topk", prefixes, extra=k)[0]

    def top_k(
        self, prefix: BitString, k: int
    ) -> list[tuple[BitString, Any]]:
        return self.topk_batch([prefix], k)[0]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def num_keys(self) -> int:
        """Live keys across available shards (lost shards excluded)."""
        return sum(
            c
            for s, c in enumerate(self._counts)
            if self.alive_racks(s)
        )

    def keys(self) -> list[BitString]:
        """All stored keys across available shards (debug facility)."""
        out: list[BitString] = []
        for s in range(self.num_shards):
            if self.alive_racks(s):
                out.extend(self.read_rack(s).trie.keys())
        return sorted(out)

    def validate(self) -> None:
        """Cross-rack invariants (test oracle, not an accounted op):
        every alive trie validates, replicas of a shard hold identical
        items, every stored key routes home, and the census is live."""
        for s in range(self.num_shards):
            racks = self.alive_racks(s)
            if not racks:
                assert s in self.lost_shards
                continue
            reference: Optional[dict] = None
            for rack in racks:
                rack.trie.validate()
                items = rack.trie.replica_log_items()
                if reference is None:
                    reference = items
                else:
                    assert items == reference, (
                        f"shard {s}: replica {rack.slot} diverges"
                    )
            assert reference is not None
            for k in reference:
                assert self.policy.home(k) == s, (
                    f"key {k} stored on shard {s}, routes to "
                    f"{self.policy.home(k)}"
                )
            assert self._counts[s] == len(reference)

    def __repr__(self) -> str:
        alive = sum(1 for r in self.iter_racks() if r.alive)
        return (
            f"PIMCluster({self.policy.describe()}, S={self.num_shards}, "
            f"K={self.replication}, racks={alive}/"
            f"{self.num_shards * self.replication} alive, "
            f"keys={self.num_keys()})"
        )
