"""Sharding policies: which rack group owns which key.

A :class:`ShardingPolicy` is host-side routing state (like the range
baseline's CPU-cached separators): it maps every key to its *home*
shard and, for the two multi-shard read kinds, to the shard set a
correct answer needs:

* **LCP** — the max-LCP partner of a query is not constrained to the
  query's home shard, so LCP fans out: :class:`HashSharding` must probe
  every shard (hashing destroys order, any shard may hold the longest
  prefix match), while :class:`RangeSharding` probes the home shard
  plus the nearest non-empty neighbor on each side — the same
  constant-factor argument as
  :class:`repro.baselines.RangePartitionedIndex` (the max-LCP partner
  is the query's lexicographic predecessor or successor);
* **Subtree** — all shards whose key range can intersect the prefix's
  extension range.  Hash routing keeps a subtree on one shard exactly
  when the prefix pins all hashed bits (``len(prefix) >= prefix_bits``),
  otherwise it must broadcast; range routing scans the contiguous
  shard interval covering ``[prefix, prefix·111…]``.

Routing never moves data: both policies answer from host state in O(1)
or O(log S) CPU work per key, and both are *deterministic in the key
alone* — re-routing the same key always lands on the same shard, which
is what makes the cluster answer-identical to a single-trie oracle.

Per-rack RNG seeds come from :func:`derive_rack_seed`, a pure mix of
``(root_seed, shard, replica, incarnation)`` — never of shard *count*
or construction order — so the same root seed gives every rack the
same seed no matter how many shards the cluster has or in which order
racks are (re)provisioned.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Optional, Sequence

from ..bits import BitString

__all__ = [
    "HashSharding",
    "RangeSharding",
    "ShardingPolicy",
    "derive_rack_seed",
    "policy_from_name",
]

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a cheap, well-distributed 64-bit mix."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def derive_rack_seed(
    root_seed: int, shard: int, replica: int, incarnation: int = 0
) -> int:
    """Deterministic per-rack seed from a single root seed.

    Depends only on the rack's *identity* — ``(shard, replica,
    incarnation)`` — so seeds are stable across shard counts and
    independent of the order racks are built or replaced
    (``incarnation`` increments when a replacement rack takes over a
    failed one's slot, so the replacement never replays its
    predecessor's random choices).
    """
    h = _mix64(root_seed ^ 0x9E3779B97F4A7C15)
    h = _mix64(h ^ (shard + 1) * 0xD1B54A32D192ED03)
    h = _mix64(h ^ (replica + 1) * 0x8CB92BA72F3D8DD7)
    h = _mix64(h ^ (incarnation + 1) * 0xEB44ACCAB455D165)
    # PIMSystem seeds feed random.Random; keep them small and positive
    return h % (1 << 31)


class ShardingPolicy:
    """Base class: key -> shard routing for a :class:`PIMCluster`."""

    name = "abstract"

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards

    # -- required overrides --------------------------------------------
    def home(self, key: BitString) -> int:
        """The single shard that stores ``key``."""
        raise NotImplementedError

    def lcp_targets(
        self, key: BitString, counts: Sequence[int]
    ) -> list[int]:
        """Shards that must be probed for a correct LCP answer.

        ``counts`` is the router's live per-shard key census (the same
        CPU-cached metadata the range baseline keeps).
        """
        raise NotImplementedError

    def subtree_targets(self, prefix: BitString) -> list[int]:
        """Shards whose ranges can hold extensions of ``prefix``."""
        raise NotImplementedError

    def pred_targets(self, key: BitString) -> list[int]:
        """Shards that can hold the predecessor (largest key < query)."""
        raise NotImplementedError

    def succ_targets(self, key: BitString) -> list[int]:
        """Shards that can hold the successor (smallest key > query)."""
        raise NotImplementedError

    def range_targets(self, lo: BitString, hi: BitString) -> list[int]:
        """Shards whose key sets can intersect ``[lo, hi]``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()}, S={self.num_shards})"


class HashSharding(ShardingPolicy):
    """Hash of the key's leading ``prefix_bits`` bits — skew-flat.

    Hot key *ranges* (the Zipf and flood adversaries concentrate on
    shared prefixes much shorter than ``prefix_bits``) are spattered
    across shards because the hash sees the random bits past the hot
    prefix.  The cost is broadcast LCP and broadcast short-prefix
    subtree queries; point ops stay single-shard.

    ``prefix_bits`` must be long enough to reach past the workload's
    hot prefixes (default 48, past the 32-bit hot region of the 64-bit
    skew workloads) — keys shorter than ``prefix_bits`` hash on their
    full length.
    """

    name = "hash"

    def __init__(self, num_shards: int, *, prefix_bits: int = 48, seed: int = 0):
        super().__init__(num_shards)
        if prefix_bits < 1:
            raise ValueError("prefix_bits must be >= 1")
        self.prefix_bits = prefix_bits
        self.seed = seed

    def home(self, key: BitString) -> int:
        b = min(len(key), self.prefix_bits)
        p = key if b == len(key) else key.prefix(b)
        # fold the prefix value 64 bits at a time so long keys hash on
        # all of their routed bits, then bind the prefix length (the
        # empty key and a zero prefix must not collide by construction)
        h = _mix64(self.seed ^ 0xA0761D6478BD642F)
        v = p.value
        while True:
            h = _mix64(h ^ (v & _M64))
            v >>= 64
            if not v:
                break
        h = _mix64(h ^ b)
        return h % self.num_shards

    def lcp_targets(
        self, key: BitString, counts: Sequence[int]
    ) -> list[int]:
        # hashing scatters lexicographic neighbors arbitrarily: every
        # shard is a candidate.  Empty shards answer LCP 0 without any
        # rounds, so the broadcast costs nothing on them.
        return list(range(self.num_shards))

    def subtree_targets(self, prefix: BitString) -> list[int]:
        if len(prefix) >= self.prefix_bits:
            # every extension of the prefix shares all hashed bits
            return [self.home(prefix)]
        return list(range(self.num_shards))

    # hashing scatters lexicographic neighbors and intervals alike, so
    # every ordered read is a broadcast (cheap on shards with no keys
    # near the query: a pred/succ probe there is host CPU work only)
    def pred_targets(self, key: BitString) -> list[int]:
        return list(range(self.num_shards))

    def succ_targets(self, key: BitString) -> list[int]:
        return list(range(self.num_shards))

    def range_targets(self, lo: BitString, hi: BitString) -> list[int]:
        return list(range(self.num_shards))


class RangeSharding(ShardingPolicy):
    """Contiguous key ranges split by host-cached separators.

    The cluster-level analogue of the range-partitioned baseline — and
    it inherits the same failure mode: a skewed batch whose hot keys
    share a range serializes on one shard (E17 measures exactly this
    against :class:`HashSharding`).  Point ops are single-shard; LCP
    probes home plus the nearest non-empty neighbors; subtree scans the
    covering shard interval.
    """

    name = "range"

    def __init__(
        self, num_shards: int, separators: Iterable[BitString] = ()
    ):
        super().__init__(num_shards)
        self.separators: list[BitString] = list(separators)
        if len(self.separators) > num_shards - 1:
            raise ValueError(
                f"{len(self.separators)} separators split the space into "
                f"more ranges than {num_shards} shards"
            )
        if self.separators != sorted(self.separators):
            raise ValueError("separators must be sorted")

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_keys(
        cls, keys: Sequence[BitString], num_shards: int
    ) -> "RangeSharding":
        """Equal-count splits of ``keys`` (the baseline's bulk-load
        heuristic, lifted to shard granularity)."""
        ordered = sorted(keys)
        if len(ordered) >= num_shards:
            seps = [
                ordered[(i * len(ordered)) // num_shards]
                for i in range(1, num_shards)
            ]
        else:
            seps = []
        return cls(num_shards, seps)

    @classmethod
    def uniform(cls, num_shards: int, *, width: int = 8) -> "RangeSharding":
        """Evenly spaced ``width``-bit separators over the key space —
        the bootstrap choice for a cluster built empty (tests use this
        so routing is non-trivial before any key arrives)."""
        seps = [
            BitString((i * (1 << width)) // num_shards, width)
            for i in range(1, num_shards)
        ]
        return cls(num_shards, seps)

    # -- routing --------------------------------------------------------
    def home(self, key: BitString) -> int:
        return bisect.bisect_right(self.separators, key)

    def lcp_targets(
        self, key: BitString, counts: Sequence[int]
    ) -> list[int]:
        m = self.home(key)
        out = [m]
        lo = m - 1
        while lo >= 0 and counts[lo] == 0:
            lo -= 1
        if lo >= 0:
            out.append(lo)
        hi = m + 1
        while hi < self.num_shards and counts[hi] == 0:
            hi += 1
        if hi < self.num_shards:
            out.append(hi)
        return sorted(out)

    def subtree_targets(self, prefix: BitString) -> list[int]:
        lo = self.home(prefix)
        hi = self.home(prefix.pad_to(max(len(prefix), 256), 1))
        return list(range(lo, hi + 1))

    # ordered reads exploit the contiguity range sharding preserves:
    # keys below the query live at or left of home, keys above at or
    # right of it, and an interval covers a contiguous shard run
    def pred_targets(self, key: BitString) -> list[int]:
        return list(range(0, self.home(key) + 1))

    def succ_targets(self, key: BitString) -> list[int]:
        return list(range(self.home(key), self.num_shards))

    def range_targets(self, lo: BitString, hi: BitString) -> list[int]:
        if hi < lo:
            lo, hi = hi, lo
        return list(range(self.home(lo), self.home(hi) + 1))

    def describe(self) -> str:
        return f"range[{len(self.separators) + 1}]"


def policy_from_name(
    name: str,
    num_shards: int,
    *,
    resident_keys: Optional[Sequence[BitString]] = None,
    prefix_bits: int = 48,
    seed: int = 0,
) -> ShardingPolicy:
    """Build a policy from its CLI name (``hash`` or ``range``).

    ``range`` derives separators from ``resident_keys`` when given
    (the bulk-load path) and falls back to uniform 8-bit separators.
    """
    if name == "hash":
        return HashSharding(num_shards, prefix_bits=prefix_bits, seed=seed)
    if name == "range":
        if resident_keys:
            return RangeSharding.from_keys(resident_keys, num_shards)
        return RangeSharding.uniform(num_shards)
    raise ValueError(f"unknown sharding policy {name!r}")
