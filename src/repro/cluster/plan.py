"""Rack-loss schedules: whole-rack failures on the cluster clock.

A :class:`RackLossPlan` is the cluster-level sibling of
:class:`repro.faults.FaultPlan`: where a fault plan kills individual
PIM *modules* inside one system, a rack-loss plan kills entire racks —
a full ``PIMSystem`` plus its ``PIMTrie`` — at deterministic points of
a service run.  Losses are indexed by *epoch*: a loss fires while its
epoch is executing, immediately before the doomed rack's shard would
run its sub-batch (i.e. mid-epoch from the cluster's point of view),
so failover is exercised inside the epoch, not between epochs.  Losses
whose shard has no work in that epoch fire at the epoch's end.

The named schedules in :func:`rack_loss_schedule` are shared between
the cluster availability sweep (``python -m repro cluster``,
``BENCH_cluster.json``) and the fault-tolerance sweep's ``rack-loss``
scenario (``BENCH_faults.json``) — one definition, two benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RACK_LOSS_SCENARIOS", "RackLoss", "RackLossPlan", "rack_loss_schedule"]


@dataclass(frozen=True)
class RackLoss:
    """One scheduled whole-rack failure."""

    epoch: int  # service epoch during which the rack dies
    shard: int
    replica: int  # replica slot within the shard (0 = initial primary)

    def as_dict(self) -> dict[str, int]:
        return {"epoch": self.epoch, "shard": self.shard,
                "replica": self.replica}


@dataclass(frozen=True)
class RackLossPlan:
    """A deterministic schedule of rack losses for one service run."""

    losses: tuple[RackLoss, ...] = ()
    #: heal at epoch boundaries: provision replacement racks for dead
    #: slots (only where a surviving replica exists to copy from)
    rebalance: bool = True

    @classmethod
    def empty(cls) -> "RackLossPlan":
        return cls()

    def any_losses(self) -> bool:
        return bool(self.losses)

    def for_epoch(self, epoch: int) -> list[RackLoss]:
        return [l for l in self.losses if l.epoch == epoch]

    def as_dict(self) -> dict[str, Any]:
        return {
            "losses": [l.as_dict() for l in self.losses],
            "rebalance": self.rebalance,
        }


#: named schedules shared by the cluster and faults sweeps
RACK_LOSS_SCENARIOS = ("none", "one-rack", "rolling", "shard-wipe")


def rack_loss_schedule(
    name: str, *, num_shards: int, replication: int, epoch: int = 2
) -> RackLossPlan:
    """The named schedule, scaled to the cluster's shape.

    * ``none`` — fault-free control;
    * ``one-rack`` — the primary rack of shard 0 dies once (the
      headline scenario: K>=2 must keep availability at 1.0);
    * ``rolling`` — one rack per epoch, walking across shards, each
      healed by rebalancing before the next strikes;
    * ``shard-wipe`` — every *original* replica of shard 0 dies, one
      per alternating epoch.  Rebalancing refills each dead slot from a
      survivor before the next strike, so with K>=2 the shard outlives
      the loss of all K racks it started with — answers after the last
      loss come entirely from replacement racks rebuilt off the replica
      log.  With K=1 the first loss has no survivor and the shard (and
      its keys) is gone for good: the availability floor rebalancing
      cannot save.
    """
    if name == "none":
        return RackLossPlan.empty()
    if name == "one-rack":
        return RackLossPlan(losses=(RackLoss(epoch, 0, 0),))
    if name == "rolling":
        return RackLossPlan(
            losses=tuple(
                RackLoss(epoch + i, i % num_shards, 0)
                for i in range(min(3, num_shards) if num_shards > 1 else 1)
            )
        )
    if name == "shard-wipe":
        # alternate epochs: the heal at each epoch boundary refills the
        # previous victim's slot before the next original rack dies
        return RackLossPlan(
            losses=tuple(
                RackLoss(epoch + 2 * r, 0, r) for r in range(replication)
            )
        )
    raise ValueError(f"unknown rack-loss scenario {name!r}")
