"""The cluster benchmark (E17): sharding skew-resistance and
availability under rack loss.

Writes ``BENCH_cluster.json``.  Three sections, all driven through
:class:`ClusterService` with the same continuous-batching policy as
the serve and faults sweeps, each row checked against a direct
sequential replay on a single faultless trie
(``answers_match_replay``):

* **skew** — hash vs range sharding under uniform / Zipf / flood
  traffic: per-shard traffic and its max/mean imbalance.  Range
  sharding reproduces the range-partitioned baseline's failure mode at
  rack scale (the hot range serializes on one shard); hash stays flat;
* **parity** — both policies × shard counts {1, 2, 4, 8}: the answer
  digest must be identical for every shard count and policy (the
  cluster is an execution strategy, not a semantic change).  These
  digests are the determinism contract ``tests/test_cluster.py``
  re-checks;
* **availability** — shards × replication × rack-loss scenario
  (:func:`repro.cluster.plan.rack_loss_schedule` — definitions shared
  with ``BENCH_faults``): K>=2 must hold availability at 1.0 through
  every scenario, K=1 shows the floor (a lost shard takes its keys,
  and every broadcast read, down with it).

Every quantity reported is simulated (counts and simulated time
units), so the JSON is byte-deterministic for a fixed seed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional

from ..core import PIMTrie, PIMTrieConfig
from ..perf import reset_id_counters
from ..pim import PIMSystem
from ..serve import ServiceReport, make_trace, policy_from_name, replay_direct
from ..workloads import uniform_keys
from .cluster import PIMCluster
from .plan import RACK_LOSS_SCENARIOS, rack_loss_schedule
from .service import ClusterService
from .sharding import policy_from_name as sharding_from_name

__all__ = ["answers_digest", "bench_cluster_run", "run_bench_cluster"]

FULL = {"P_rack": 4, "resident": 384, "n_ops": 256, "length": 64,
        "rate": 0.25}
SMOKE = {"P_rack": 4, "resident": 128, "n_ops": 96, "length": 64,
         "rate": 0.25}
POLICY = "deadline:20"


def answers_digest(report: ServiceReport) -> str:
    """Order-independent digest of the successful answers.

    Stable across shard counts, policies, and replication factors by
    construction — the determinism invariant E17 asserts.  Failed ops
    are excluded (availability is reported separately), so fault-free
    configurations of the same trace share one digest.
    """
    blob = repr(
        [
            (c.seq, c.kind, c.reply)
            for c in sorted(report.completed, key=lambda c: c.seq)
            if c.ok
        ]
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def bench_cluster_run(
    *,
    sharding: str,
    shards: int,
    replication: int,
    skew: str = "uniform",
    scenario: str = "none",
    P_rack: int,
    resident: int,
    n_ops: int,
    length: int,
    rate: float,
    seed: int = 7,
) -> dict[str, Any]:
    """One cluster configuration end to end; returns its JSON row."""
    keys = uniform_keys(resident, length, seed=seed + 1)
    trace = make_trace(
        n_ops, length=length, rate=rate, skew=skew, seed=seed,
        name=f"cluster-{skew}",
    )

    reset_id_counters()
    policy = sharding_from_name(sharding, shards, resident_keys=keys)
    cluster = PIMCluster(
        policy, replication=replication, modules_per_rack=P_rack,
        root_seed=seed, keys=keys, values=keys,
    )
    plan = rack_loss_schedule(
        scenario, num_shards=shards, replication=replication
    )
    service = ClusterService(
        cluster, policy_from_name(POLICY), plan=plan
    )
    mark = cluster.mark()
    report = service.run(trace)
    shard_traffic = cluster.shard_traffic(mark)
    mean = sum(shard_traffic) / len(shard_traffic) if shard_traffic else 0
    imbalance = max(shard_traffic) / mean if mean > 0 else 1.0

    # ground truth: the same trace applied sequentially to one trie
    reset_id_counters()
    twin = PIMTrie(
        PIMSystem(P_rack, seed=1), PIMTrieConfig(num_modules=P_rack),
        keys=keys, values=keys,
    )
    direct = dict(replay_direct(twin, trace.ops))
    served = {c.seq: c.reply for c in report.completed if c.ok}
    matches = all(direct[seq] == reply for seq, reply in served.items())

    lat = report.latency()
    return {
        "sharding": sharding,
        "shards": shards,
        "replication": replication,
        "skew": skew,
        "scenario": scenario,
        "plan": plan.as_dict(),
        "num_ops": report.num_ops,
        "completed": len(report.completed),
        "failed": report.failed,
        "availability": report.availability,
        "answers_match_replay": matches,
        "answers_digest": answers_digest(report),
        "rack_losses": report.faults.get("rack_losses", 0),
        "rebuilds": report.faults.get("rebuilds", 0),
        "lost_shards": sorted(cluster.lost_shards),
        "recovery_rounds": report.total_recovery_rounds,
        "degraded_epochs": report.degraded_epochs,
        "makespan": report.makespan,
        "latency": {k: lat[k] for k in ("p50", "p95", "p99", "max")},
        "io_rounds": report.metrics.io_rounds,
        "communication": report.metrics.total_communication,
        "shard_traffic": shard_traffic,
        "shard_imbalance": imbalance,
    }


def run_bench_cluster(
    out: Optional[str] = "BENCH_cluster.json",
    *,
    smoke: bool = False,
    seed: int = 7,
) -> dict[str, Any]:
    """The full sweep; writes ``out`` and returns the report dict."""
    cfg = dict(SMOKE if smoke else FULL)
    run = lambda **kw: bench_cluster_run(seed=seed, **cfg, **kw)  # noqa: E731

    skew_rows = [
        run(sharding=pol, shards=4, replication=1, skew=skew)
        for pol in ("hash", "range")
        for skew in ("uniform", "zipf", "flood")
    ]

    shard_counts = (1, 2) if smoke else (1, 2, 4, 8)
    parity_rows = [
        run(sharding=pol, shards=s, replication=1)
        for pol in ("hash", "range")
        for s in shard_counts
    ]

    scenarios = ("one-rack",) if smoke else tuple(
        s for s in RACK_LOSS_SCENARIOS if s != "none"
    )
    avail_shards = (2,) if smoke else (2, 4)
    avail_rows = [
        run(sharding="hash", shards=s, replication=k, scenario=sc)
        for s in avail_shards
        for k in (1, 2)
        for sc in scenarios
    ]

    rows = skew_rows + parity_rows + avail_rows
    digests = {r["answers_digest"] for r in parity_rows}

    def _imb(pol: str, skew: str) -> float:
        return next(
            r["shard_imbalance"]
            for r in skew_rows
            if r["sharding"] == pol and r["skew"] == skew
        )

    k2 = [r for r in avail_rows if r["replication"] >= 2]
    k1 = [r for r in avail_rows if r["replication"] == 1]
    headline = {
        "all_correct": all(r["answers_match_replay"] for r in rows),
        "parity_digests": sorted(digests),
        "digest_consistent": len(digests) == 1,
        "availability_k2": min(r["availability"] for r in k2),
        "availability_k1": min(r["availability"] for r in k1),
        "zipf_imbalance_hash": _imb("hash", "zipf"),
        "zipf_imbalance_range": _imb("range", "zipf"),
        "flood_imbalance_hash": _imb("hash", "flood"),
        "flood_imbalance_range": _imb("range", "flood"),
        "skew_resistant": (
            _imb("hash", "zipf") < _imb("range", "zipf")
            and _imb("hash", "flood") < _imb("range", "flood")
        ),
    }
    report = {
        "bench": "cluster",
        "profile": "smoke" if smoke else "full",
        "config": {**cfg, "policy": POLICY, "seed": seed},
        "skew": skew_rows,
        "parity": parity_rows,
        "availability": avail_rows,
        "headline": headline,
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report
