"""repro.cluster — a multi-rack sharded PIM cluster with K-way
replication and rack-loss failover.

Scales the single-system reproduction out: N shards × K replicas of
independent :class:`~repro.pim.PIMSystem` + :class:`~repro.core.PIMTrie`
racks behind a host router (:mod:`~repro.cluster.cluster`), with
pluggable sharding (:mod:`~repro.cluster.sharding` — skew-flat
hash-of-prefix vs baseline-like prefix-range), deterministic rack-loss
schedules (:mod:`~repro.cluster.plan`), a serve-layer frontend that
runs each shard as per-shard epochs under the continuous-batching
scheduler (:mod:`~repro.cluster.service`), and the E17 availability /
imbalance sweep (:mod:`~repro.cluster.bench` →
``BENCH_cluster.json``).

Entry point: ``python -m repro cluster [--smoke]``.
"""

from .cluster import PIMCluster, Rack, ShardUnavailable
from .plan import RACK_LOSS_SCENARIOS, RackLoss, RackLossPlan, rack_loss_schedule
from .service import ClusterService
from .sharding import (
    HashSharding,
    RangeSharding,
    ShardingPolicy,
    derive_rack_seed,
    policy_from_name,
)

__all__ = [
    "PIMCluster",
    "Rack",
    "ShardUnavailable",
    "RACK_LOSS_SCENARIOS",
    "RackLoss",
    "RackLossPlan",
    "rack_loss_schedule",
    "ClusterService",
    "HashSharding",
    "RangeSharding",
    "ShardingPolicy",
    "derive_rack_seed",
    "policy_from_name",
]
