"""Serve-layer frontend for a cluster: per-shard epochs, rack-loss
injection, failover availability.

:class:`ClusterService` is the cluster sibling of
:class:`repro.serve.EpochServer`: the same arrival loop, the same
continuous-batching scheduler and admission control, the same
same-kind segment decomposition (:func:`repro.serve.server.segments`)
— but each epoch fans out through the :class:`PIMCluster` router, so
one service epoch becomes per-shard sub-epochs executing on
independent racks.

**Service model.**  Racks run in parallel, so an epoch's simulated
service time is the *maximum* over racks of that rack's
``round_time * io_rounds + word_time * io_time`` delta — the critical
path — rather than the sum.  (The epoch's :class:`EpochRecord` still
carries the summed deltas, merged via ``MetricsSnapshot.merge``, for
throughput accounting.)

**Rack loss.**  A :class:`~repro.cluster.plan.RackLossPlan` schedules
whole-rack deaths on the epoch clock.  A loss fires *inside* its epoch,
immediately before the first segment that routes work to the doomed
rack's shard (losses whose shard stays idle fire at epoch end) — so
the remainder of the epoch exercises failover read-routing, not a
clean restart.  Dead slots are healed by a proactive
:meth:`PIMCluster.rebalance` sweep at the next epoch launch (the
cluster analogue of ``EpochServer``'s proactive module recovery);
rebuild rounds are charged to that epoch's service time.  Operations
that need a shard with no surviving replica complete with
:data:`~repro.serve.slo.OP_FAILED` — the availability metric of
``BENCH_cluster.json``.
"""

from __future__ import annotations

import time as _time
from typing import Any, Optional

from ..pim import MetricsSnapshot
from ..serve.scheduler import ContinuousBatchingScheduler, SchedulerPolicy
from ..serve.server import (
    ORDERED_KINDS,
    WRITE_KINDS,
    decide_cut,
    segments,
)
from ..serve.slo import OP_FAILED, CompletedOp, EpochRecord, ServiceReport
from ..serve.trace import Operation, Trace
from .cluster import PIMCluster
from .plan import RackLossPlan

__all__ = ["ClusterService"]


class ClusterService:
    """Continuous-batching frontend over a :class:`PIMCluster`."""

    def __init__(
        self,
        cluster: PIMCluster,
        policy: SchedulerPolicy,
        *,
        round_time: float = 1.0,
        word_time: float = 0.001,
        plan: Optional[RackLossPlan] = None,
        adapt: Optional[Any] = None,
        pipelined: bool = False,
        prep_time: float = 0.0,
        asm_time: float = 0.0,
    ):
        if round_time < 0 or word_time < 0:
            raise ValueError("service-model coefficients must be >= 0")
        if prep_time < 0 or asm_time < 0:
            raise ValueError("host-phase costs must be >= 0")
        self.cluster = cluster
        self.policy = policy
        self.round_time = round_time
        self.word_time = word_time
        #: two-stage pipelined BSP on the router's host: prep of epoch
        #: k+1 overlaps the racks' rounds of epoch k, with the same
        #: write/recovery drain-hazard rule as EpochServer
        self.pipelined = pipelined
        self.prep_time = prep_time
        self.asm_time = asm_time
        self.plan = plan if plan is not None else RackLossPlan.empty()
        #: optional repro.adapt ClusterAdaptiveController stepped once
        #: per epoch (per-rack sketches; see adapt.controller)
        self.adapt = adapt

    # ------------------------------------------------------------------
    def _rack_service(self, delta: MetricsSnapshot) -> float:
        return self.round_time * delta.io_rounds + self.word_time * delta.io_time

    def _apply_losses(
        self, pending: set, shards: set[int], causes: list[str]
    ) -> None:
        """Fire the pending losses whose shard is in ``shards``."""
        for shard, slot in sorted(pending):
            if shard in shards:
                if self.cluster.fail_rack(shard, slot) is not None:
                    causes.append(f"rack-loss:{shard}.{slot}")
                pending.discard((shard, slot))

    def _segment_shards(self, kind: str, ops: list[Operation]) -> set[int]:
        # range ops route on their (lo, hi) interval — lo is the op key,
        # hi rides in value[0] next to the limit
        return {
            s
            for op in ops
            for s in self.cluster._targets(
                kind,
                (op.key, op.value[0]) if kind == "range" else op.key,
            )
        }

    def _run_segment(self, kind: str, ops: list[Operation]) -> list[Any]:
        if kind in ("range", "topk"):
            # per-op limit / k rides in the value; group same-parameter
            # runs onto one router call each (host-side reads — grouping
            # has no effect on round structure)
            replies: list[Any] = [None] * len(ops)
            oks: list[bool] = [True] * len(ops)
            groups: dict[Any, list[int]] = {}
            for i, op in enumerate(ops):
                extra = op.value[1] if kind == "range" else op.value
                groups.setdefault(extra, []).append(i)
            for extra, idxs in groups.items():
                keys = [
                    (ops[i].key, ops[i].value[0]) if kind == "range"
                    else ops[i].key
                    for i in idxs
                ]
                sub, ok, _ = self.cluster._execute(kind, keys, None, extra=extra)
                for j, i in enumerate(idxs):
                    replies[i] = sub[j]
                    oks[i] = ok[j]
            return [
                r if good else OP_FAILED for r, good in zip(replies, oks)
            ]
        keys = [op.key for op in ops]
        values = [op.value for op in ops] if kind == "insert" else None
        replies, ok, _ = self.cluster._execute(kind, keys, values)
        if kind in ("insert", "delete"):
            replies = [True] * len(ops)
        return [
            r if good else OP_FAILED for r, good in zip(replies, ok)
        ]

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> ServiceReport:
        """Drive the event loop over ``trace``; returns the report."""
        cluster = self.cluster
        ops = trace.ops
        n = len(ops)
        policy = self.policy
        sched = ContinuousBatchingScheduler(policy)

        completed: list[CompletedOp] = []
        epochs: list[EpochRecord] = []
        rounds_at_admit: dict[int, int] = {}
        wall_at_admit: dict[int, float] = {}
        cum_rounds = 0
        cum_wall = 0.0
        failed_total = 0
        losses_fired = 0
        host_free = 0.0
        module_free = 0.0
        hazard_until = 0.0
        idx = [0]
        mark_all = cluster.mark()

        def admit(op: Operation) -> None:
            if sched.admit(op, degraded=cluster.degraded):
                rounds_at_admit[op.seq] = cum_rounds
                wall_at_admit[op.seq] = cum_wall
            idx[0] += 1

        while idx[0] < n or sched.pending:
            if not sched.pending:
                admit(ops[idx[0]])
                continue

            # launch-time decision: shared with EpochServer (the
            # scheduler contract is one audited implementation, only
            # the executor differs).  Same hazard rule as EpochServer:
            # only a prep that reads index state (ordered-kind ops whose
            # per-rack snapshots fan-in consults) waits for the drain
            reads_state = self.pipelined and any(
                op.kind in ORDERED_KINDS for op in sched.pending
            )
            ready = max(host_free, hazard_until) if reads_state else host_free
            launch = decide_cut(sched, ops, idx, ready, admit)

            depth = len(sched.pending)
            batch = sched.take_epoch(launch)
            assert batch, "scheduler cut an empty epoch"
            prep_dur = self.prep_time * len(batch)
            asm_dur = self.asm_time * len(batch)

            e = len(epochs)
            pending = {
                (loss.shard, loss.replica) for loss in self.plan.for_epoch(e)
            }
            causes: list[str] = []
            recovery_rounds = 0
            mark = cluster.mark()
            t0 = _time.perf_counter()

            # proactive heal: replacement racks for slots lost in
            # earlier epochs come up before new work launches, so their
            # rebuild rounds land in this epoch's service time
            if self.plan.rebalance and cluster.degraded:
                recovery_rounds += cluster.rebalance()

            replies: list[Any] = []
            kinds: list[str] = []
            for kind, seg in segments(batch):
                kinds.append(kind)
                # a death scheduled for this epoch strikes the moment
                # its shard is about to run — mid-epoch, not between
                self._apply_losses(
                    pending, self._segment_shards(kind, seg), causes
                )
                replies.extend(self._run_segment(kind, seg))
            # losses whose shard saw no work this epoch still happen
            self._apply_losses(
                pending, set(range(cluster.num_shards)), causes
            )
            losses_fired += len(causes)
            adapt_acted = False
            if self.adapt is not None:
                # per-rack adaptive maintenance inside the epoch's
                # metrics window — billed to the racks it rebalances
                stats = self.adapt.step()
                if isinstance(stats, dict) and any(
                    stats.get(k)
                    for k in (
                        "actions", "split", "replicate", "dereplicate",
                        "merge",
                    )
                ):
                    adapt_acted = True

            wall = _time.perf_counter() - t0
            deltas = cluster.delta_by_rack(mark)
            merged = MetricsSnapshot.merge(
                *(deltas[u] for u in sorted(deltas))
            )
            # racks run in parallel: the epoch's module-round phase
            # takes as long as its slowest rack (recovery included)
            module = max(
                (self._rack_service(d) for d in deltas.values()),
                default=0.0,
            )
            ep_failed = sum(1 for r in replies if r is OP_FAILED)
            failed_total += ep_failed
            if self.pipelined:
                rounds_start = max(launch + prep_dur, module_free)
                completion = rounds_start + module + asm_dur
                module_free = rounds_start + module
                host_free = rounds_start
                if (
                    any(k in WRITE_KINDS for k in kinds)
                    or causes or recovery_rounds or ep_failed or adapt_acted
                ):
                    # write/recovery hazard: a state-reading prep must
                    # wait until this epoch's rounds end (cluster state
                    # is final then; assembly only merges replies)
                    hazard_until = module_free
            else:
                rounds_start = launch + prep_dur
                completion = rounds_start + module + asm_dur
                host_free = completion
            service = completion - launch
            cum_rounds += merged.io_rounds
            cum_wall += wall
            epochs.append(
                EpochRecord(
                    index=e, launch=launch, service=service,
                    completion=completion, size=len(batch),
                    kinds=tuple(kinds), queue_depth=depth,
                    io_rounds=merged.io_rounds, io_time=merged.io_time,
                    communication=merged.total_communication,
                    pim_time=merged.pim_time, wall_seconds=wall,
                    degraded=bool(causes or recovery_rounds or ep_failed),
                    retries=0,
                    recovery_rounds=recovery_rounds,
                    causes=tuple(causes),
                    prep=prep_dur, asm=asm_dur, rounds_start=rounds_start,
                )
            )
            for op, reply in zip(batch, replies):
                completed.append(
                    CompletedOp(
                        seq=op.seq, client_id=op.client_id, kind=op.kind,
                        arrival=op.time, launch=launch,
                        completion=completion, epoch=e, reply=reply,
                        latency_rounds=cum_rounds - rounds_at_admit[op.seq],
                        wall_seconds=cum_wall - wall_at_admit[op.seq],
                        ok=reply is not OP_FAILED,
                    )
                )

        rebuilds = sum(
            1 for ev in cluster.events if ev["event"] == "rebuild"
        )
        fault_stats = (
            {
                "rack_losses": losses_fired,
                "rebuilds": rebuilds,
                "lost_shards": sorted(cluster.lost_shards),
            }
            if losses_fired
            else {}
        )
        return ServiceReport(
            policy=policy.describe(),
            trace=trace.name,
            num_ops=n,
            completed=completed,
            dropped=len(sched.dropped),
            epochs=epochs,
            metrics=cluster.delta(mark_all),
            round_time=self.round_time,
            word_time=self.word_time,
            max_batch=policy.max_batch,
            pipelined=self.pipelined,
            prep_time=self.prep_time,
            asm_time=self.asm_time,
            failed=failed_total,
            faults=fault_stats,
            extra={
                "sharding": cluster.policy.describe(),
                "shards": cluster.num_shards,
                "replication": cluster.replication,
                "modules_per_rack": cluster.modules_per_rack,
                **(
                    {"adapt": self.adapt.summary()}
                    if self.adapt is not None
                    else {}
                ),
            },
        )
