"""Command-line experiment runner: ``python -m repro <command>``.

Gives downstream users a zero-setup way to watch the paper's claims
reproduce, without pytest:

* ``python -m repro demo``                — the Figure-1 example, annotated
* ``python -m repro table1 [--p 16]``     — the Table-1 LCP comparison
* ``python -m repro skew [--p 16]``       — the E10 load-balance contrast
* ``python -m repro scaling``             — O(log P) round growth + fit
* ``python -m repro bench-all``           — all of the above

* ``python -m repro perf [--smoke]``      — wall-clock harness (BENCH_wallclock.json)
* ``python -m repro serve [--smoke]``     — online service simulation
  (continuous batching over a timestamped trace, latency percentiles)
* ``python -m repro faults [--smoke]``    — fault-injection sweep (E16):
  availability and latency under crashes, stragglers, and lossy
  transport (BENCH_faults.json)
* ``python -m repro cluster [--smoke]``   — multi-rack cluster sweep
  (E17): hash vs range sharding under skew, availability under
  whole-rack loss with K-way replication (BENCH_cluster.json)
* ``python -m repro trace [--smoke]``     — span tracing + phase
  profiling (repro.obs): runs a traced workload (batch ops plus a
  faulted serve leg), writes a Chrome trace-event JSON, prints the
  per-phase roll-up, and verifies span deltas sum to the run's metrics

All numbers are PIM Model counts from the simulator (IO rounds, words,
per-module balance), not wall-clock times — except ``perf``, which
times the simulator itself (fast path vs baseline, with a
metric-parity proof), and the wall-clock section of ``serve``.
"""

from __future__ import annotations

import argparse
import sys

from . import BitString, PIMSystem, PIMTrie, PIMTrieConfig
from .analysis import best_law, fit_law
from .baselines import DistributedRadixTree, DistributedXFastTrie, RangePartitionedIndex
from .workloads import single_range_flood, uniform_keys

bs = BitString.from_str


def _measure(system, fn, *args):
    before = system.snapshot()
    out = fn(*args)
    return out, system.snapshot().delta(before)


# ----------------------------------------------------------------------
def cmd_demo(args: argparse.Namespace) -> int:
    print("PIM-trie demo — the paper's Figure 1 example\n")
    keys = ["000010", "00001101", "1010000", "1010111", "101011"]
    system = PIMSystem(args.p, seed=1)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=args.p),
        keys=[bs(k) for k in keys], values=keys,
    )
    print(f"data trie: {len(keys)} keys -> {trie.num_blocks()} blocks on "
          f"{args.p} modules")
    queries = ["00001001", "101001", "101011"]
    lcps, m = _measure(system, trie.lcp_batch, [bs(q) for q in queries])
    for q, l in zip(queries, lcps):
        note = "  <- ends on hidden nodes (paper's example)" if l == 5 else ""
        print(f"  LCP({q!r}) = {l}{note}")
    print(f"\ncost: {m.io_rounds} IO rounds, {m.total_communication} words, "
          f"imbalance {m.traffic_imbalance():.2f}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    P = args.p
    print(f"Table 1 (LCP column), P={P}, batch=256\n")
    print(f"{'l (bits)':>9} {'structure':<14} {'rounds':>7} {'words/op':>9}")
    for length in (32, 64, 128, 256):
        keys = uniform_keys(256, length, seed=10)
        queries = keys[:128] + uniform_keys(128, length, seed=20)
        rows = []
        system = PIMSystem(P, seed=1)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys)
        _, m = _measure(system, trie.lcp_batch, queries)
        rows.append(("pim-trie", m))
        system = PIMSystem(P, seed=1)
        radix = DistributedRadixTree(system, span=4, keys=keys)
        _, m = _measure(system, radix.lcp_batch, queries)
        rows.append(("dist-radix", m))
        if length <= 128:
            system = PIMSystem(P, seed=1)
            xfast = DistributedXFastTrie(system, width=length, keys=keys)
            _, m = _measure(system, xfast.lcp_batch, queries)
            rows.append(("dist-xfast", m))
        for name, m in rows:
            print(f"{length:>9} {name:<14} {m.io_rounds:>7} "
                  f"{m.total_communication / 256:>9.1f}")
        print()
    print("shape: radix rounds = l/s; x-fast ~ log l (fixed-length only);")
    print("       pim-trie flat in l (O(log P)), words/op ~ l/w.")
    return 0


def cmd_skew(args: argparse.Namespace) -> int:
    P = args.p
    print(f"Skew resistance (E10), P={P}: traffic imbalance = max/mean "
          f"per-module words (1.0 perfect, {P}.0 serialized)\n")
    keys = uniform_keys(1024, 64, seed=200)
    workloads = {
        "uniform": uniform_keys(1024, 64, seed=201),
        "flood": single_range_flood(1024, 64, seed=203),
    }
    print(f"{'workload':<10} {'index':<18} {'imbalance':>10} {'io_time':>9}")
    for wname, queries in workloads.items():
        for iname in ("pim-trie", "range-partition"):
            system = PIMSystem(P, seed=1)
            if iname == "pim-trie":
                idx = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys)
            else:
                idx = RangePartitionedIndex(system, keys=keys)
            _, m = _measure(system, idx.lcp_batch, queries)
            print(f"{wname:<10} {iname:<18} {m.traffic_imbalance():>10.2f} "
                  f"{m.io_time:>9}")
        print()
    print("shape: the flood serializes range partitioning on one module;")
    print("       pim-trie stays near its uniform balance (Theorem 4.3).")
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    print("IO rounds per LCP batch vs P (Theorem 4.3: O(log P))\n")
    keys = uniform_keys(512, 64, seed=300)
    xs, ys = [], []
    for P in (4, 8, 16, 32, 64):
        system = PIMSystem(P, seed=1)
        trie = PIMTrie(system, PIMTrieConfig(num_modules=P), keys=keys)
        _, m = _measure(system, trie.lcp_batch, keys[:256])
        xs.append(P)
        ys.append(m.io_rounds)
        print(f"  P={P:>3}: {m.io_rounds} rounds")
    fit = best_law(xs, ys)
    lin = fit_law(xs, ys, "linear")
    print(f"\nbest fit: {fit.law} (R²={fit.r2:.3f}); "
          f"linear slope would be {lin.b:.3f} rounds/module")
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    from .perf import check_floor, run_bench

    report = run_bench(out=args.out, smoke=args.smoke, reps=args.reps)
    head = report["headline"]
    print(f"\nheadline (P={head['P']}, n={head['n']}, l={head['l']}): "
          f"batched-LCP speedup {head['lcp_speedup']:.2f}x vs baseline "
          f"({head['lcp_columnar_vs_fast']:.2f}x over the object fast "
          f"path), metric parity "
          f"{'OK' if head['metric_parity'] else 'FAILED'}")
    if args.check_floor:
        return check_floor(report, args.check_floor)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .perf import reset_id_counters
    from .serve import EpochServer, make_trace, policy_from_name

    if args.smoke:
        P, resident, n_ops, length, rate = 8, 192, 160, 64, 0.25
    else:
        P, resident, n_ops, length, rate = (
            args.p, args.resident, args.n, args.length, args.rate
        )
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    keys = uniform_keys(resident, length, seed=args.seed + 1)
    trie = PIMTrie(
        system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
    )
    trace = make_trace(
        n_ops, length=length, arrival=args.arrival, rate=rate,
        skew=args.skew, seed=args.seed,
    )
    policy = policy_from_name(
        args.policy, max_batch=args.max_batch,
        queue_capacity=args.queue_capacity,
        degraded_capacity=args.degraded_capacity,
    )
    server = EpochServer(
        trie, policy, pipelined=args.pipelined,
        prep_time=args.prep_time, asm_time=args.asm_time,
    )
    report = server.run(trace)
    print(f"serve — continuous batching over PIM-trie (P={P}, "
          f"{resident} resident keys, {n_ops} ops)\n")
    # the smoke output is byte-deterministic for a fixed seed: print
    # only simulated quantities (wall-clock varies run to run)
    print(report.format_summary(deterministic_only=args.smoke))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults.bench import run_bench_faults

    report = run_bench_faults(out=args.out, smoke=args.smoke, seed=args.seed)
    print(f"faults — availability under injected failures "
          f"({report['profile']} profile)\n")
    print(f"{'scenario':<16} {'avail':>6} {'correct':>8} {'degraded':>9} "
          f"{'retries':>8} {'recovery':>9} {'p99 lat':>9}")
    for row in report["scenarios"]:
        print(f"{row['scenario']:<16} {row['availability']:>6.3f} "
              f"{str(row['answers_match_replay']):>8} "
              f"{row['degraded_epochs']:>9} {row['retries']:>8} "
              f"{row['recovery_rounds']:>9} {row['latency']['p99']:>9.2f}")
    head = report["headline"]
    print(f"\nheadline: all answers match sequential replay: "
          f"{head['all_correct']}; min availability "
          f"{head['min_availability']:.3f}; p99 {head['baseline_p99']:.2f} "
          f"(fault-free) -> {head['worst_p99']:.2f} (worst scenario); "
          f"{head['total_recovery_rounds']} recovery rounds total")
    if args.out:
        print(f"wrote {args.out}")
    return 0 if head["all_correct"] else 1


def cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster.bench import run_bench_cluster

    report = run_bench_cluster(out=args.out, smoke=args.smoke, seed=args.seed)
    head = report["headline"]
    print(f"cluster — sharded racks with replication and rack loss "
          f"({report['profile']} profile)\n")
    print("skew (4 shards, K=1): per-shard traffic imbalance (max/mean)")
    print(f"{'sharding':<10} {'skew':<9} {'imbalance':>10} {'correct':>8}")
    for row in report["skew"]:
        print(f"{row['sharding']:<10} {row['skew']:<9} "
              f"{row['shard_imbalance']:>10.3f} "
              f"{str(row['answers_match_replay']):>8}")
    print("\navailability under rack loss (uniform traffic):")
    print(f"{'scenario':<12} {'shards':>6} {'K':>3} {'avail':>7} "
          f"{'correct':>8} {'rebuilds':>9} {'lost':>5}")
    for row in report["availability"]:
        print(f"{row['scenario']:<12} {row['shards']:>6} "
              f"{row['replication']:>3} {row['availability']:>7.3f} "
              f"{str(row['answers_match_replay']):>8} "
              f"{row['rebuilds']:>9} {len(row['lost_shards']):>5}")
    print(f"\nheadline: answers match single-trie replay: "
          f"{head['all_correct']}; digest identical across "
          f"policies x shard counts: {head['digest_consistent']}; "
          f"availability K>=2: {head['availability_k2']:.3f} "
          f"(K=1 floor {head['availability_k1']:.3f}); "
          f"zipf imbalance hash {head['zipf_imbalance_hash']:.2f} vs "
          f"range {head['zipf_imbalance_range']:.2f}, flood "
          f"{head['flood_imbalance_hash']:.2f} vs "
          f"{head['flood_imbalance_range']:.2f}")
    if args.out:
        print(f"wrote {args.out}")
    ok = (
        head["all_correct"]
        and head["digest_consistent"]
        and head["availability_k2"] == 1.0
        and head["skew_resistant"]
    )
    return 0 if ok else 1


def cmd_ordered(args: argparse.Namespace) -> int:
    from .ordered.bench import check_floor_ordered, run_bench_ordered

    report = run_bench_ordered(out=args.out, smoke=args.smoke,
                               seed=args.seed)
    head = report["headline"]
    print(f"ordered — pred/succ/range/count/top-k op surface "
          f"({report['profile']} profile)\n")
    print(f"{'target':<24} {'digest':<16}")
    for run in report["runs"]:
        print(f"{run['target']:<24} {run['digest'][:16]}")
    print(f"\nheadline: answer digest {head['answer_digest'][:16]} across "
          f"{head['targets']} targets — all match oracle: "
          f"{head['all_digests_match']}; pipeline metric parity: "
          f"{head['pipeline_metric_parity']}; span sums exact: "
          f"{head['span_sums_exact']}; ordered reads "
          f"{head['ordered']['ops_per_sec']:.0f} ops/s "
          f"({head['speedup_vs_naive']:.1f}x over naive scan)")
    if args.out:
        print(f"wrote {args.out}")
    ok = (
        head["all_digests_match"]
        and head["pipeline_metric_parity"]
        and head["span_sums_exact"]
    )
    if not ok:
        return 1
    if args.check_floor:
        return check_floor_ordered(report, args.check_floor)
    return 0


def cmd_adapt(args: argparse.Namespace) -> int:
    from .adapt.bench import run_bench_adapt

    report = run_bench_adapt(out=args.out, smoke=args.smoke, seed=args.seed)
    head = report["headline"]
    print(f"adapt — sketch-guided hot-block split/replicate vs static "
          f"layout ({report['profile']} profile)\n")
    print(f"{'pattern':<15} {'side':<9} {'r/op':>7} {'w/op':>8} "
          f"{'p50':>9} {'p99':>10} {'actions':>30}")
    for row in report["patterns"]:
        acts = row["adapt_actions"]
        act_s = (f"s{acts['split']} r{acts['replicate']} "
                 f"d{acts['dereplicate']} m{acts['merge']}")
        for side, label in (("adaptive", act_s), ("static", "-")):
            s = row[side]
            print(f"{row['pattern']:<15} {side:<9} "
                  f"{s['rounds_per_op']:>7.3f} {s['words_per_op']:>8.2f} "
                  f"{s['latency']['p50']:>9.2f} {s['latency']['p99']:>10.2f} "
                  f"{label:>30}")
    print(f"\nheadline: digests adaptive==static: "
          f"{head['all_digests_match']}; all answers == dict oracle: "
          f"{head['all_oracle_match']}; adaptive wins (p99 or rounds/op) "
          f"on {head['patterns_won']}/{len(report['patterns'])} patterns; "
          f"p99 speedups {head['p99_speedups']}")
    if args.out:
        print(f"wrote {args.out}")
    ok = head["all_digests_match"] and head["all_oracle_match"]
    if report["profile"] == "full":
        ok = ok and head["adaptive_beats_static"]
    return 0 if ok else 1


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .faults import FaultPlan
    from .obs import (
        Tracer,
        chrome_trace,
        format_rollup,
        rollup,
        root_metric_sums,
        validate_chrome_trace,
    )
    from .perf import reset_id_counters
    from .serve import EpochServer, make_trace, policy_from_name

    if args.smoke:
        P, resident, n_q, length = 8, 256, 96, 64
    else:
        P, resident, n_q, length = args.p, args.resident, args.n, args.length
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    tracer = Tracer(system)
    before = system.snapshot()

    keys = uniform_keys(resident, length, seed=args.seed + 1)
    with tracer.span("build", cat="op", n=resident):
        trie = PIMTrie(
            system, PIMTrieConfig(num_modules=P), keys=keys, values=keys
        )
    queries = uniform_keys(n_q, length, seed=args.seed + 2)
    # the trie records its own op/phase spans; these calls are the roots
    trie.lcp_batch(queries)
    trie.insert_batch(
        queries[: n_q // 2], [str(k) for k in queries[: n_q // 2]]
    )
    trie.delete_batch(queries[: n_q // 4])
    trie.subtree_batch([k.prefix(6) for k in queries[: n_q // 8]])

    # a short faulted serve leg: epochs, segments, and the recovery
    # rounds of the injected crash all land in distinct spans
    trace = make_trace(
        max(32, n_q // 2), length=length, rate=0.25, seed=args.seed + 3
    )
    server = EpochServer(trie, policy_from_name("deadline:20"))
    system.install_faults(FaultPlan(crashes={1: 2}))
    with tracer.span("serve", cat="op", ops=len(trace.ops)):
        report = server.run(trace)
    system.clear_faults()

    overall = system.snapshot().delta(before)
    want = {
        "io_rounds": overall.io_rounds,
        "io_time": overall.io_time,
        "words": overall.total_communication,
        "pim_time": overall.pim_time,
        "cpu_work": overall.cpu_work,
    }
    got = root_metric_sums(tracer.spans)
    doc = chrome_trace(tracer)
    problems = validate_chrome_trace(doc)

    print(f"trace — {len(tracer.spans)} spans over {overall.io_rounds} "
          f"IO rounds (P={P}, {resident} resident keys)\n")
    print(format_rollup(rollup(tracer)))
    degraded = [e for e in report.epochs if e.degraded]
    if degraded:
        links = ", ".join(f"epoch {e.index} -> span {e.span_id}"
                          for e in degraded)
        print(f"\ndegraded epochs traced: {links}")
    print(f"\nspan-sum check: root spans {got}")
    print(f"                overall    {want}")
    exact = got == want
    print(f"span deltas sum exactly to the run's metrics delta: {exact}")
    if problems:
        print("chrome-export schema problems:")
        for p in problems[:10]:
            print(f"  {p}")
    if args.out:
        with open(args.out, "w") as f:
            json.dump(doc, f)
        print(f"wrote {args.out} (load in chrome://tracing or Perfetto)")
    return 0 if exact and not problems else 1


def cmd_bench_all(args: argparse.Namespace) -> int:
    rc = 0
    for fn in (cmd_demo, cmd_table1, cmd_skew, cmd_scaling):
        print("=" * 64)
        rc |= fn(args)
        print()
    return rc


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PIM-trie reproduction experiment runner",
    )
    parser.add_argument(
        "--p", type=int, default=16, help="number of PIM modules (default 16)"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in (
        ("demo", cmd_demo),
        ("table1", cmd_table1),
        ("skew", cmd_skew),
        ("scaling", cmd_scaling),
        ("bench-all", cmd_bench_all),
    ):
        p = sub.add_parser(name)
        p.set_defaults(fn=fn)
        p.add_argument("--p", type=int, default=16)
    p = sub.add_parser(
        "perf", help="wall-clock perf harness (writes BENCH_wallclock.json)"
    )
    p.set_defaults(fn=cmd_perf)
    p.add_argument("--smoke", action="store_true")
    p.add_argument("--out", default="BENCH_wallclock.json")
    p.add_argument("--reps", type=int, default=None)
    p.add_argument("--check-floor", metavar="RECORDED_JSON", default=None,
                   help="exit 1 if columnar batched-LCP ops/sec falls "
                   "below the fastpath floor recorded in RECORDED_JSON")
    p = sub.add_parser(
        "serve", help="online service simulation (continuous batching)"
    )
    p.set_defaults(fn=cmd_serve)
    p.add_argument("--smoke", action="store_true",
                   help="small deterministic run (fixed P/n/rate)")
    p.add_argument("--p", type=int, default=16)
    p.add_argument("--resident", type=int, default=1024,
                   help="resident keys built before the trace")
    p.add_argument("--n", type=int, default=1024, help="trace length (ops)")
    p.add_argument("--length", type=int, default=64, help="key length (bits)")
    p.add_argument("--rate", type=float, default=0.25,
                   help="mean arrivals per simulated time unit")
    p.add_argument("--arrival", choices=("poisson", "burst"),
                   default="poisson")
    p.add_argument("--skew", choices=("uniform", "zipf", "flood"),
                   default="uniform")
    p.add_argument("--policy", default="deadline:20",
                   help="eager | deadline:<max_wait> | affinity[:<max_wait>] "
                        "| adaptive[:<target_p99>]; append @deg=<n> for a "
                        "degraded-mode queue bound")
    p.add_argument("--max-batch", type=int, default=256)
    p.add_argument("--queue-capacity", type=int, default=None,
                   help="bounded admission (rejects arrivals when full)")
    p.add_argument("--degraded-capacity", type=int, default=None,
                   help="tighter queue bound while the system is degraded "
                        "(same as the @deg=<n> policy suffix)")
    p.add_argument("--pipelined", action="store_true",
                   help="overlap host prep of epoch k+1 with module "
                        "rounds of epoch k (answers stay byte-identical)")
    p.add_argument("--prep-time", type=float, default=0.0,
                   help="host prep cost per op (simulated units)")
    p.add_argument("--asm-time", type=float, default=0.0,
                   help="host reply-assembly cost per op (simulated units)")
    p.add_argument("--seed", type=int, default=7)
    p = sub.add_parser(
        "faults",
        help="fault-injection sweep: crashes/stragglers/lossy transport "
             "(writes BENCH_faults.json)",
    )
    p.set_defaults(fn=cmd_faults)
    p.add_argument("--smoke", action="store_true",
                   help="small deterministic run (fixed P/n/rate)")
    p.add_argument("--out", default="BENCH_faults.json")
    p.add_argument("--seed", type=int, default=7)
    p = sub.add_parser(
        "cluster",
        help="multi-rack sharded cluster sweep (E17): sharding skew "
             "resistance + availability under rack loss "
             "(writes BENCH_cluster.json)",
    )
    p.set_defaults(fn=cmd_cluster)
    p.add_argument("--smoke", action="store_true",
                   help="small deterministic run (fixed shapes)")
    p.add_argument("--out", default="BENCH_cluster.json")
    p.add_argument("--seed", type=int, default=7)
    p = sub.add_parser(
        "adapt",
        help="sketch-guided adaptive skew defense (E18): hot-block "
             "split/replicate vs static layout under time-varying skew "
             "(writes BENCH_adapt.json)",
    )
    p.set_defaults(fn=cmd_adapt)
    p.add_argument("--smoke", action="store_true",
                   help="small deterministic run (correctness gates only)")
    p.add_argument("--out", default="BENCH_adapt.json")
    p.add_argument("--seed", type=int, default=7)
    p = sub.add_parser(
        "ordered",
        help="ordered-index op surface (E19): pred/succ/range/count/"
             "top-k answer parity across pipelines, cluster policies, "
             "and adapt on/off (writes BENCH_ordered.json)",
    )
    p.set_defaults(fn=cmd_ordered)
    p.add_argument("--smoke", action="store_true",
                   help="small deterministic run (correctness gates only)")
    p.add_argument("--out", default="BENCH_ordered.json")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--check-floor", metavar="RECORDED_JSON", default=None,
                   help="exit 1 if ordered-read ops/sec falls below the "
                   "naive-scan floor recorded in RECORDED_JSON")
    p = sub.add_parser(
        "trace",
        help="span tracing + phase profiling (writes a Chrome "
             "trace-event JSON; see repro.obs)",
    )
    p.set_defaults(fn=cmd_trace)
    p.add_argument("--smoke", action="store_true",
                   help="small run (fixed P/n)")
    p.add_argument("--out", default="TRACE.json")
    p.add_argument("--p", type=int, default=16)
    p.add_argument("--resident", type=int, default=1024,
                   help="resident keys built before the traced ops")
    p.add_argument("--n", type=int, default=256,
                   help="query batch size for the traced ops")
    p.add_argument("--length", type=int, default=64, help="key length (bits)")
    p.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
