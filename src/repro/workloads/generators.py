"""Workload generators for every experiment (DESIGN.md, system S20).

All generators are seeded and return lists of :class:`BitString`.  The
adversarial generators realize the worst cases the paper's theorems
defend against:

* ``shared_prefix_flood`` — every key extends one long common prefix,
  so a naive tree concentrates the whole batch on the path to one
  subtree (worst-case *data and query* skew, §1 challenge C1/C2);
* ``zipf_prefix`` — queries pick prefixes with a Zipf distribution, the
  classic skew model for range-partitioned indexes (§3.2);
* ``single_range_flood`` — the §3.2 killer: the entire batch targets
  one key range / one PIM module.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional, Sequence

import numpy as np

from ..bits import BitString

__all__ = [
    "uniform_keys",
    "uniform_variable_keys",
    "shared_prefix_flood",
    "zipf_prefix",
    "single_range_flood",
    "ip_prefixes",
    "text_keys",
    "TimedOp",
    "OP_KINDS",
    "operation_stream",
    "drifting_zipf_stream",
    "flash_crowd_stream",
    "diurnal_stream",
]


def uniform_keys(n: int, length: int, seed: int = 0) -> list[BitString]:
    """``n`` uniformly random fixed-length keys (may repeat)."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        v = int.from_bytes(rng.bytes((length + 7) // 8), "big")
        out.append(BitString(v & ((1 << length) - 1), length))
    return out


def uniform_variable_keys(
    n: int, min_len: int, max_len: int, seed: int = 0
) -> list[BitString]:
    """Uniform keys with lengths uniform in [min_len, max_len]."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        length = int(rng.integers(min_len, max_len + 1))
        if length == 0:
            out.append(BitString(0, 0))
            continue
        v = int.from_bytes(rng.bytes((length + 7) // 8), "big")
        out.append(BitString(v & ((1 << length) - 1), length))
    return out


def shared_prefix_flood(
    n: int,
    prefix_len: int,
    suffix_len: int,
    seed: int = 0,
    prefix_bit: int = 1,
) -> list[BitString]:
    """Adversarial skew: all keys share one ``prefix_len``-bit prefix.

    The shared prefix is a repeating pattern (not all-zeros, so path
    compression cannot trivialize it across unrelated keys).
    """
    rng = np.random.default_rng(seed)
    pattern = "10" if prefix_bit else "01"
    prefix = BitString.from_str((pattern * prefix_len)[:prefix_len])
    out = []
    for _ in range(n):
        v = int.from_bytes(rng.bytes((suffix_len + 7) // 8), "big")
        out.append(prefix + BitString(v & ((1 << suffix_len) - 1), suffix_len))
    return out


def zipf_prefix(
    n: int,
    length: int,
    num_hot: int = 16,
    theta: float = 1.2,
    seed: int = 0,
) -> list[BitString]:
    """Zipf-skewed keys: a Zipf(θ) choice among ``num_hot`` hot prefixes
    (half the key) followed by random low bits."""
    rng = np.random.default_rng(seed)
    half = length // 2
    hots = uniform_keys(num_hot, half, seed=seed + 1)
    ranks = np.arange(1, num_hot + 1, dtype=np.float64)
    probs = ranks ** (-theta)
    probs /= probs.sum()
    out = []
    for _ in range(n):
        hot = hots[int(rng.choice(num_hot, p=probs))]
        v = int.from_bytes(rng.bytes((length - half + 7) // 8), "big")
        out.append(hot + BitString(v & ((1 << (length - half)) - 1), length - half))
    return out


def single_range_flood(
    n: int, length: int, seed: int = 0
) -> list[BitString]:
    """§3.2's worst case: the whole batch falls into one tiny key range.

    Half the bits are a fixed shared prefix (capped at 64), so the keys
    stay distinct while the batch still lands in a single partition of
    any range-partitioned index.
    """
    fixed = min(length // 2, 64)
    return shared_prefix_flood(n, fixed, length - fixed, seed=seed)


def ip_prefixes(n: int, seed: int = 0) -> list[BitString]:
    """Synthetic IPv4 routing prefixes: /8-/28 CIDR blocks clustered the
    way routing tables cluster (many /24s, a spread of shorter blocks).

    This is the variable-length workload the introduction motivates
    (radix trees in IP routing).
    """
    rng = np.random.default_rng(seed)
    lengths = rng.choice(
        [8, 12, 16, 20, 22, 24, 26, 28],
        p=[0.02, 0.04, 0.14, 0.15, 0.15, 0.40, 0.07, 0.03],
        size=n,
    )
    out = []
    for plen in lengths:
        plen = int(plen)
        addr = int(rng.integers(0, 1 << 32))
        out.append(BitString(addr >> (32 - plen), plen))
    return out


# ----------------------------------------------------------------------
# timestamped operation streams (the serve layer's arrival model)
# ----------------------------------------------------------------------
# the ordered kinds (pred/succ/range/count/topk) extend the original
# four at the tail, with zero default mix weight — streams generated
# with the historical mixes stay draw-for-draw identical
OP_KINDS = (
    "lcp", "insert", "delete", "subtree",
    "pred", "succ", "range", "count", "topk",
)


class TimedOp(NamedTuple):
    """One timestamped operation of a mixed online stream."""

    time: float
    kind: str  # one of OP_KINDS
    key: BitString
    value: Any  # payload for inserts, None otherwise


def operation_stream(
    n: int,
    length: int = 64,
    *,
    mix: Optional[dict[str, float]] = None,
    arrival: str = "poisson",
    rate: float = 2.0,
    burst_factor: float = 8.0,
    kind_corr: float = 0.5,
    skew: str = "uniform",
    subtree_prefix: int = 12,
    range_limit: Optional[int] = 16,
    topk_k: int = 8,
    seed: int = 0,
    keys: Optional[Sequence[BitString]] = None,
    times: Optional[Sequence[float]] = None,
) -> list[TimedOp]:
    """``n`` timestamped mixed operations, deterministic under ``seed``.

    The op *kinds* follow a Markov chain whose stationary distribution
    is ``mix`` (ratios over :data:`OP_KINDS`, default 60% LCP / 20%
    Insert / 10% Delete / 10% Subtree): each op repeats the previous
    kind with probability ``kind_corr`` and redraws from ``mix``
    otherwise — clients issue streaks of like operations (scans, bulk
    loads), which is what gives an order-preserving batcher same-kind
    runs to coalesce.  ``kind_corr=0`` recovers iid kinds.  *Keys* come
    from the seeded generators above, selected by ``skew``
    (``"uniform"``, ``"zipf"``, or ``"flood"`` — the E10 adversary);
    subtree ops query a ``subtree_prefix``-bit prefix of their drawn
    key.  The ordered kinds carry zero weight in the default mix; a mix
    that includes them gets pred/succ on the drawn key, count/topk on
    its ``subtree_prefix``-bit prefix (topk ops carry ``value=topk_k``),
    and range ops spanning that prefix's whole extension interval with
    ``value=(hi, range_limit)``.  *Arrival times* are either

    * ``"poisson"`` — iid exponential gaps at ``rate`` ops per
      simulated time unit, or
    * ``"burst"`` — alternating on/off phases: bursts of 8–32 ops with
      gaps ``burst_factor``× shorter than the base rate, separated by
      quiet stretches of 16–64 ops at the base rate.

    Returned times are strictly sorted cumulative sums.  Insert values
    are ``"v<i>"`` strings so replays can check which write won.

    ``keys`` / ``times`` override the internal key and arrival-time
    generation with explicit per-op sequences (at least ``n`` long) —
    the hook the time-varying skew generators below use to drift the
    key distribution or modulate the arrival rate while keeping the
    kind chain and everything else identical.  Passing only ``keys``
    leaves the main RNG's draw sequence unchanged.
    """
    if n <= 0:
        return []
    if rate <= 0:
        raise ValueError("rate must be positive")
    if not 0.0 <= kind_corr < 1.0:
        raise ValueError("kind_corr must be in [0, 1)")
    ratios = dict(mix) if mix else {"lcp": 0.6, "insert": 0.2,
                                    "delete": 0.1, "subtree": 0.1}
    unknown = set(ratios) - set(OP_KINDS)
    if unknown:
        raise ValueError(f"unknown op kinds in mix: {sorted(unknown)}")
    probs = np.array([ratios.get(k, 0.0) for k in OP_KINDS], dtype=np.float64)
    if probs.sum() <= 0:
        raise ValueError("mix must have positive total weight")
    probs /= probs.sum()

    rng = np.random.default_rng(seed)
    if keys is not None:
        if len(keys) < n:
            raise ValueError(f"need >= {n} explicit keys, got {len(keys)}")
        keys = list(keys[:n])
    elif skew == "uniform":
        keys = uniform_keys(n, length, seed=seed + 1)
    elif skew == "zipf":
        keys = zipf_prefix(n, length, seed=seed + 1)
    elif skew == "flood":
        keys = single_range_flood(n, length, seed=seed + 1)
    else:
        raise ValueError(f"unknown skew {skew!r}")

    if times is not None:
        if len(times) < n:
            raise ValueError(f"need >= {n} explicit times, got {len(times)}")
        times = np.asarray(times[:n], dtype=np.float64)
    else:
        if arrival == "poisson":
            gaps = rng.exponential(1.0 / rate, size=n)
        elif arrival == "burst":
            gaps = np.empty(n, dtype=np.float64)
            i, in_burst = 0, True
            while i < n:
                if in_burst:
                    m = int(rng.integers(8, 33))
                    scale = 1.0 / (rate * burst_factor)
                else:
                    m = int(rng.integers(16, 65))
                    scale = 1.0 / rate
                m = min(m, n - i)
                gaps[i : i + m] = rng.exponential(scale, size=m)
                i += m
                in_burst = not in_burst
        else:
            raise ValueError(f"unknown arrival model {arrival!r}")
        times = np.cumsum(gaps)

    fresh = rng.choice(len(OP_KINDS), size=n, p=probs)
    stay = rng.random(n) < kind_corr
    kinds = np.empty(n, dtype=np.int64)
    kinds[0] = fresh[0]
    for i in range(1, n):
        kinds[i] = kinds[i - 1] if stay[i] else fresh[i]
    out: list[TimedOp] = []
    for i in range(n):
        kind = OP_KINDS[int(kinds[i])]
        key = keys[i]
        value = None
        if kind == "insert":
            value = f"v{i}"
        elif kind in ("subtree", "count"):
            key = key.prefix(min(subtree_prefix, len(key)))
        elif kind == "topk":
            key = key.prefix(min(subtree_prefix, len(key)))
            value = topk_k
        elif kind == "range":
            lo = key.prefix(min(subtree_prefix, len(key)))
            hi = lo.pad_to(max(len(lo), length), 1)
            key, value = lo, (hi, range_limit)
        out.append(TimedOp(float(times[i]), kind, key, value))
    return out


# ----------------------------------------------------------------------
# time-varying skew (repro.adapt's benchmark adversaries)
# ----------------------------------------------------------------------
def drifting_zipf_stream(
    n: int,
    length: int = 64,
    *,
    num_phases: int = 4,
    num_hot: int = 8,
    theta: float = 1.2,
    seed: int = 0,
    **stream_kw: Any,
) -> list[TimedOp]:
    """Zipf hot-prefix traffic whose hot set *drifts*: the stream is cut
    into ``num_phases`` equal phases, each drawing its keys from a fresh
    Zipf(θ) choice over ``num_hot`` hot prefixes.  A static layout tuned
    for phase 0 is wrong for every later phase — the adaptive
    controller's bread-and-butter case.  Extra keyword arguments pass
    through to :func:`operation_stream`."""
    if n <= 0:
        return []
    num_phases = max(1, num_phases)
    keys: list[BitString] = []
    for p in range(num_phases):
        m = (n // num_phases) + (1 if p < n % num_phases else 0)
        keys.extend(
            zipf_prefix(
                m, length, num_hot=num_hot, theta=theta,
                seed=seed + 1 + 101 * p,
            )
        )
    return operation_stream(n, length, seed=seed, keys=keys, **stream_kw)


def flash_crowd_stream(
    n: int,
    length: int = 64,
    *,
    num_crowds: int = 3,
    crowd_fraction: float = 0.85,
    prefix_len: Optional[int] = None,
    seed: int = 0,
    **stream_kw: Any,
) -> list[TimedOp]:
    """Flash crowds that *move*: ``num_crowds`` consecutive phases, each
    sending ``crowd_fraction`` of its ops into one shared
    ``prefix_len``-bit prefix (a different prefix per phase) over a
    trickle of uniform background traffic.  The §3.2 single-range flood,
    made time-varying: whichever block holds the crowd's range is
    suddenly the whole workload — until the crowd moves."""
    if n <= 0:
        return []
    if not 0.0 <= crowd_fraction <= 1.0:
        raise ValueError("crowd_fraction must be in [0, 1]")
    num_crowds = max(1, num_crowds)
    if prefix_len is None:
        prefix_len = min(length // 2, 64)
    rng = np.random.default_rng(seed + 0xF1A5)
    crowds = uniform_keys(num_crowds, prefix_len, seed=seed + 0xC0FFEE)
    suffix = length - prefix_len
    keys: list[BitString] = []
    for p in range(num_crowds):
        m = (n // num_crowds) + (1 if p < n % num_crowds else 0)
        in_crowd = rng.random(m) < crowd_fraction
        background = uniform_keys(m, length, seed=seed + 7 + 13 * p)
        for i in range(m):
            if in_crowd[i]:
                v = int.from_bytes(rng.bytes((suffix + 7) // 8), "big")
                keys.append(
                    crowds[p] + BitString(v & ((1 << suffix) - 1), suffix)
                )
            else:
                keys.append(background[i])
    return operation_stream(n, length, seed=seed, keys=keys, **stream_kw)


def diurnal_stream(
    n: int,
    length: int = 64,
    *,
    periods: float = 2.0,
    rate: float = 2.0,
    rate_swing: float = 0.75,
    num_hot: int = 8,
    theta: float = 1.2,
    seed: int = 0,
    **stream_kw: Any,
) -> list[TimedOp]:
    """Diurnal traffic: ``periods`` day/night cycles over the stream.
    The arrival rate swings sinusoidally by ``±rate_swing`` around
    ``rate``, and the key mix swings with it — "daytime" ops hit one
    Zipf hot set, "nighttime" ops another, with the blend following the
    same phase.  Both the load level and the hot set therefore migrate
    smoothly and repeatedly."""
    if n <= 0:
        return []
    if not 0.0 <= rate_swing < 1.0:
        raise ValueError("rate_swing must be in [0, 1)")
    rng = np.random.default_rng(seed + 0xD1A)
    phase = 2.0 * np.pi * periods * np.arange(n) / max(1, n)
    day = 0.5 * (1.0 + np.sin(phase))  # 0 = night, 1 = day
    rates = rate * (1.0 + rate_swing * np.sin(phase))
    gaps = rng.exponential(1.0, size=n) / rates
    times = np.cumsum(gaps)
    day_keys = zipf_prefix(
        n, length, num_hot=num_hot, theta=theta, seed=seed + 11
    )
    night_keys = zipf_prefix(
        n, length, num_hot=num_hot, theta=theta, seed=seed + 23
    )
    pick_day = rng.random(n) < day
    keys = [
        day_keys[i] if pick_day[i] else night_keys[i] for i in range(n)
    ]
    return operation_stream(
        n, length, seed=seed, keys=keys, times=times, rate=rate,
        **stream_kw,
    )


def text_keys(n: int, seed: int = 0, words: Optional[Sequence[str]] = None) -> list[BitString]:
    """Variable-length text keys (synthetic URL-path-like strings)."""
    rng = np.random.default_rng(seed)
    if words is None:
        words = [
            "api", "v1", "v2", "users", "items", "orders", "search",
            "static", "img", "css", "js", "index", "detail", "edit",
            "a", "b", "c", "data", "report", "x",
        ]
    out = []
    for _ in range(n):
        depth = int(rng.integers(1, 6))
        path = "/" + "/".join(
            words[int(rng.integers(len(words)))] for _ in range(depth)
        )
        out.append(BitString.from_text(path))
    return out
