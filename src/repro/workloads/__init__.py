"""Seeded workload generators (uniform, skewed, adversarial)."""

from .generators import (
    ip_prefixes,
    shared_prefix_flood,
    single_range_flood,
    text_keys,
    uniform_keys,
    uniform_variable_keys,
    zipf_prefix,
)

__all__ = [
    "ip_prefixes",
    "shared_prefix_flood",
    "single_range_flood",
    "text_keys",
    "uniform_keys",
    "uniform_variable_keys",
    "zipf_prefix",
]
