"""Seeded workload generators (uniform, skewed, adversarial, streams)."""

from .generators import (
    OP_KINDS,
    TimedOp,
    diurnal_stream,
    drifting_zipf_stream,
    flash_crowd_stream,
    ip_prefixes,
    operation_stream,
    shared_prefix_flood,
    single_range_flood,
    text_keys,
    uniform_keys,
    uniform_variable_keys,
    zipf_prefix,
)

__all__ = [
    "OP_KINDS",
    "TimedOp",
    "diurnal_stream",
    "drifting_zipf_stream",
    "flash_crowd_stream",
    "ip_prefixes",
    "operation_stream",
    "shared_prefix_flood",
    "single_range_flood",
    "text_keys",
    "uniform_keys",
    "uniform_variable_keys",
    "zipf_prefix",
]
