"""Packed bit-string values used as keys throughout the PIM-trie.

The paper's keys are arbitrary-length bit-strings.  We represent a
bit-string by an arbitrary-precision integer plus an explicit length, with
the *first* bit of the string stored as the most-significant bit of the
integer.  Python integers are backed by contiguous machine words, so
slicing / concatenation / LCP all run as O(l/w) word operations in C, the
same asymptotic cost the paper charges for handling an l-bit string on a
machine with w-bit words.

All BitString instances are immutable and hashable.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["BitString", "EMPTY"]


class BitString:
    """An immutable sequence of bits.

    Bit 0 is the leftmost (most significant) bit.  Supports slicing,
    concatenation, prefix tests, and longest-common-prefix computation.
    """

    __slots__ = ("_value", "_length", "_hash")

    def __init__(self, value: int, length: int):
        # accept anything integer-like (numpy scalars included) but
        # store true Python ints so bignum slicing stays exact
        value = int(value)
        length = int(length)
        if length < 0:
            raise ValueError("bit-string length must be non-negative")
        if value < 0:
            raise ValueError("bit-string value must be non-negative")
        if value >> length:
            raise ValueError(
                f"value {value:#x} does not fit in {length} bits"
            )
        self._value = value
        self._length = length
        self._hash = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitString":
        """Build from an iterable of 0/1 values, first element leftmost."""
        value = 0
        length = 0
        for b in bits:
            if b not in (0, 1):
                raise ValueError(f"bit must be 0 or 1, got {b!r}")
            value = (value << 1) | b
            length += 1
        return cls(value, length)

    @classmethod
    def from_str(cls, s: str) -> "BitString":
        """Build from a string of '0'/'1' characters (e.g. ``"00101"``)."""
        if s and set(s) - {"0", "1"}:
            raise ValueError(f"not a binary string: {s!r}")
        return cls(int(s, 2) if s else 0, len(s))

    @classmethod
    def from_bytes(cls, data: bytes) -> "BitString":
        """Build from raw bytes, 8 bits per byte, big-endian within bytes."""
        return cls(int.from_bytes(data, "big"), 8 * len(data))

    @classmethod
    def from_int(cls, x: int, width: int) -> "BitString":
        """Build the ``width``-bit binary representation of ``x``."""
        if x < 0:
            raise ValueError("from_int requires a non-negative integer")
        if x >> width:
            raise ValueError(f"{x} does not fit in {width} bits")
        return cls(x, width)

    @classmethod
    def from_text(cls, s: str, *, encoding: str = "utf-8") -> "BitString":
        """Build from a text key (each character contributes its bytes)."""
        return cls.from_bytes(s.encode(encoding))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """The integer whose binary representation (MSB-first) is this string."""
        return self._value

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def bit(self, i: int) -> int:
        """Return bit ``i`` (0 = leftmost)."""
        if not 0 <= i < self._length:
            raise IndexError(f"bit index {i} out of range [0, {self._length})")
        return (self._value >> (self._length - 1 - i)) & 1

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            start, stop, step = idx.indices(self._length)
            if step != 1:
                raise ValueError("bit-string slices must have step 1")
            return self.substring(start, stop)
        return self.bit(idx)

    def __iter__(self) -> Iterator[int]:
        v, n = self._value, self._length
        for i in range(n - 1, -1, -1):
            yield (v >> i) & 1

    # ------------------------------------------------------------------
    # slicing / composition
    # ------------------------------------------------------------------
    def substring(self, start: int, stop: int) -> "BitString":
        """Bits ``[start, stop)`` as a new BitString."""
        if not 0 <= start <= stop <= self._length:
            raise IndexError(
                f"substring [{start}, {stop}) out of range for length {self._length}"
            )
        width = stop - start
        shifted = self._value >> (self._length - stop)
        return BitString(shifted & ((1 << width) - 1), width)

    def prefix(self, n: int) -> "BitString":
        """The first ``n`` bits."""
        return self.substring(0, n)

    def suffix_from(self, n: int) -> "BitString":
        """All bits from position ``n`` onward."""
        return self.substring(n, self._length)

    def concat(self, other: "BitString") -> "BitString":
        return BitString(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def __add__(self, other: "BitString") -> "BitString":
        return self.concat(other)

    def append_bit(self, b: int) -> "BitString":
        if b not in (0, 1):
            raise ValueError("bit must be 0 or 1")
        return BitString((self._value << 1) | b, self._length + 1)

    def pad_to(self, width: int, fill: int) -> "BitString":
        """Right-pad with ``fill`` bits up to ``width`` (paper §4.4.2)."""
        if width < self._length:
            raise ValueError("cannot pad to a shorter width")
        if fill not in (0, 1):
            raise ValueError("fill bit must be 0 or 1")
        extra = width - self._length
        tail = ((1 << extra) - 1) if fill else 0
        return BitString((self._value << extra) | tail, width)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def lcp_len(self, other: "BitString") -> int:
        """Length of the longest common prefix with ``other``.

        O(min(l)/w) word operations: align both prefixes, XOR, and read
        the position of the highest set bit.
        """
        m = min(self._length, other._length)
        if m == 0:
            return 0
        a = self._value >> (self._length - m)
        b = other._value >> (other._length - m)
        x = a ^ b
        if x == 0:
            return m
        return m - x.bit_length()

    def is_prefix_of(self, other: "BitString") -> bool:
        return (
            self._length <= other._length
            and other._value >> (other._length - self._length) == self._value
        )

    def starts_with(self, other: "BitString") -> bool:
        return other.is_prefix_of(self)

    # Lexicographic order with the trie convention: a proper prefix sorts
    # before any of its extensions.
    def __lt__(self, other: "BitString") -> bool:
        k = self.lcp_len(other)
        if k == self._length:
            return self._length < other._length
        if k == other._length:
            return False
        return self.bit(k) < other.bit(k)

    def __le__(self, other: "BitString") -> bool:
        return self == other or self < other

    def __gt__(self, other: "BitString") -> bool:
        return other < self

    def __ge__(self, other: "BitString") -> bool:
        return self == other or other < self

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BitString)
            and self._length == other._length
            and self._value == other._value
        )

    def __hash__(self) -> int:
        # keys act as dict keys on every hash-table probe of the
        # simulator's hot loop; the tuple hash over a bignum is worth
        # caching (hash() never returns -1, so None is a safe sentinel)
        h = self._hash
        if h is None:
            h = hash((self._value, self._length))
            self._hash = h
        return h

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def word_count(self, w: int = 64) -> int:
        """Number of w-bit machine words needed to store this string."""
        return max(1, -(-self._length // w)) if self._length else 0

    def word_cost(self) -> int:
        """Words to ship this string CPU<->PIM: ceil(l/w), at least 1."""
        return max(1, -(-self._length // 64))

    def to_str(self) -> str:
        if self._length == 0:
            return ""
        return format(self._value, f"0{self._length}b")

    def __repr__(self) -> str:
        s = self.to_str()
        if len(s) > 64:
            s = s[:61] + "..."
        return f"BitString('{s}', len={self._length})"


#: The empty bit-string (the trie root's represented prefix).
EMPTY = BitString(0, 0)
