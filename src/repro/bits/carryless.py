"""CRC-style carryless (GF(2)) incremental hashing (paper §4.4,
"Hash Function": CRC [44] is binary associatively incremental).

A bit-string is read as a polynomial over GF(2); its hash is the
residue modulo a fixed degree-``deg`` irreducible polynomial.  Because
GF(2)[x] arithmetic is linear,

    crc(AB) = crc(A) * x^{|B|} + crc(B)      (mod g(x))

holds exactly — Definition 3 with XOR as addition — so this class is a
drop-in alternative to the Mersenne rolling hash for every incremental
use in PIM-trie (node hashes by rootfix, pivot hashes by prefix scan).

The implementation reduces 61-bit chunks with precomputed shift tables,
so hashing costs O(l/w) word operations like the modular variant.
"""

from __future__ import annotations

from typing import Sequence

from .bitstring import BitString
from .hashing import HashValue

__all__ = ["CarrylessHasher", "GF2_POLY_61"]

#: x^61 + x^5 + x^2 + x + 1 — a degree-61 irreducible polynomial over
#: GF(2) (low bits 0b100111), giving 61-bit residues like the Mersenne
#: variant so the two hashers are interchangeable.
GF2_POLY_61 = (1 << 61) | 0b100111


def _gf2_mulmod(a: int, b: int, poly: int, deg: int) -> int:
    """Carryless multiply of residues a*b mod poly (schoolbook)."""
    acc = 0
    while b:
        if b & 1:
            acc ^= a
        b >>= 1
        a <<= 1
        if a >> deg:
            a ^= poly
    return acc


class CarrylessHasher:
    """GF(2) polynomial hash with the same interface as
    :class:`~repro.bits.hashing.IncrementalHasher`.

    ``seed`` selects the affine fingerprint scrambler; the linear core
    (the CRC residue) is seed-independent, exactly as for the modular
    hasher.  ``width`` truncates fingerprints for collision studies.
    """

    DEG = 61

    def __init__(self, seed: int = 0x5151_7EA7, width: int = 61):
        if not 1 <= width <= self.DEG:
            raise ValueError(f"hash width must be in [1, {self.DEG}]")
        self.seed = seed
        self.width = width
        self.poly = GF2_POLY_61
        self._mask = (1 << width) - 1
        s = (seed * 6364136223846793005 + 1442695040888963407) & (1 << 64) - 1
        # a non-zero odd multiplier for the integer scrambler
        self._mul = (s | 1) & ((1 << self.DEG) - 1)
        self._add = (s >> 3) & ((1 << self.DEG) - 1)

    # x^n mod g is seed-independent (the modulus polynomial is fixed),
    # so the memo table is shared by all hasher instances, mirroring
    # IncrementalHasher._POW2_TABLE.  Bounded against unbounded growth.
    _POWX_TABLE: dict[int, int] = {1: 2}

    # ------------------------------------------------------------------
    def _pow_x(self, n: int) -> int:
        """x^n mod g(x) by square-and-multiply with memoization."""
        table = CarrylessHasher._POWX_TABLE
        cached = table.get(n)
        if cached is not None:
            return cached
        if n == 0:
            return 1
        half = self._pow_x(n // 2)
        out = _gf2_mulmod(half, half, self.poly, self.DEG)
        if n & 1:
            out = _gf2_mulmod(out, 2, self.poly, self.DEG)
        if len(table) < 1 << 16:
            table[n] = out
        return out

    def _reduce(self, value: int, length: int) -> int:
        """Residue of a length-bit chunk value, chunk folding."""
        digest = 0
        pos = 0
        while pos < length:
            take = min(self.DEG - 1, length - pos)
            chunk = (value >> (length - pos - take)) & ((1 << take) - 1)
            digest = _gf2_mulmod(digest, self._pow_x(take), self.poly, self.DEG)
            digest ^= chunk
            pos += take
        return digest

    # ------------------------------------------------------------------
    # linear core (interface-compatible with IncrementalHasher)
    # ------------------------------------------------------------------
    def hash(self, s: BitString) -> HashValue:
        return HashValue(self._reduce(s.value, len(s)), len(s))

    def extend(self, prefix: HashValue, suffix: BitString) -> HashValue:
        return self.combine(prefix, self.hash(suffix))

    def combine(self, a: HashValue, b: HashValue) -> HashValue:
        digest = _gf2_mulmod(a.digest, self._pow_x(b.length), self.poly, self.DEG)
        return HashValue(digest ^ b.digest, a.length + b.length)

    def prefix_hashes(
        self, s: BitString, positions: Sequence[int]
    ) -> list[HashValue]:
        out: list[HashValue] = []
        n = len(s)
        v = s.value
        prev_p = 0
        digest = 0
        for p in positions:
            if not 0 <= p <= n:
                raise ValueError(f"prefix position {p} out of range")
            if p < prev_p:
                raise ValueError("positions must be non-decreasing")
            step = p - prev_p
            if step:
                chunk = (v >> (n - p)) & ((1 << step) - 1)
                digest = _gf2_mulmod(
                    digest, self._pow_x(step), self.poly, self.DEG
                )
                digest ^= self._reduce(chunk, step)
            prev_p = p
            out.append(HashValue(digest, p))
        return out

    def empty(self) -> HashValue:
        return HashValue(0, 0)

    def hash_batch(self, strings: Sequence[BitString]) -> list[HashValue]:
        """Batch form of :meth:`hash` (interface parity with
        :class:`~repro.bits.hashing.IncrementalHasher`)."""
        reduce = self._reduce
        return [HashValue(reduce(s.value, len(s)), len(s)) for s in strings]

    def pivot_fingerprints(
        self, base: HashValue, s: BitString, positions: Sequence[int]
    ) -> list[int]:
        """``fingerprint(combine(base, prefix_hash(s, p)))`` per position
        (interface parity with the modular hasher's fused pivot probe)."""
        hashes = self.prefix_hashes(s, positions)
        combine = self.combine
        return self.fingerprint_batch([combine(base, h) for h in hashes])

    # ------------------------------------------------------------------
    # seeded fingerprints
    # ------------------------------------------------------------------
    def fingerprint(self, h: HashValue) -> int:
        mixed = (h.digest ^ (h.length * 0x9E3779B97F4A7C15)) & (
            (1 << self.DEG) - 1
        )
        f = (mixed * self._mul + self._add) & ((1 << self.DEG) - 1)
        f ^= f >> 29
        return f & self._mask

    def fingerprint_of(self, s: BitString) -> int:
        return self.fingerprint(self.hash(s))

    def fingerprint_batch(self, hashes: Sequence[HashValue]) -> list[int]:
        """Batch form of :meth:`fingerprint`, parameters bound once."""
        mul, add, mask = self._mul, self._add, self._mask
        deg_mask = (1 << self.DEG) - 1
        out: list[int] = []
        for h in hashes:
            mixed = (h.digest ^ (h.length * 0x9E3779B97F4A7C15)) & deg_mask
            f = (mixed * mul + add) & deg_mask
            f ^= f >> 29
            out.append(f & mask)
        return out

    def __repr__(self) -> str:
        return f"CarrylessHasher(seed={self.seed:#x}, width={self.width})"
