"""Bit-string keys and incremental hashing (paper §4, Defs. 2–3)."""

from .bitstring import BitString, EMPTY
from .carryless import CarrylessHasher, GF2_POLY_61
from .hashing import HashValue, IncrementalHasher, MERSENNE_61

__all__ = [
    "BitString",
    "EMPTY",
    "CarrylessHasher",
    "GF2_POLY_61",
    "HashValue",
    "IncrementalHasher",
    "MERSENNE_61",
]
