"""Incremental hashing of bit-strings (paper Definitions 2 and 3).

PIM-trie requires an *incremental* hash: after decomposing a query trie
into blocks, the full string of a node may be absent from its block, so
node hashes must be derivable from a prefix hash plus a suffix string.

We use a two-stage design:

* **Linear core.**  ``digest(s) = value(s) mod q`` with the Mersenne
  prime ``q = 2^61 - 1``, paired with the bit length.  This is the
  rolling polynomial hash with base ``x = 2`` and is *binary
  associatively incremental* (Definition 3) exactly:

      digest(AB) = digest(A) * 2^{|B|} + digest(B)   (mod q)

  so node hashes over a trie can be produced by a rootfix scan and
  pivot hashes by a prefix sum (Lemmas 4.4 / 4.9), at O(l/w) word cost
  per l-bit string (Python's bignum arithmetic does the word loop in C).

* **Seeded fingerprint.**  Wherever hash values are *compared* (hash
  tables in the hash value manager, block-root matching), the linear
  digest is finalized through a seed-derived affine map and truncated to
  ``width`` bits.  Re-seeding realizes the paper's global re-hash
  (§4.4.3); narrowing ``width`` injects collisions for the verification
  experiments (E13).  Because the affine map is applied only at
  comparison time, incrementality of the core is preserved.

Collision behaviour: two equal-length strings share a fingerprint iff
their affine-mapped digests agree in the low ``width`` bits — for
``width = 61`` this needs ``value(A) ≡ value(B) (mod q)``, i.e. a
difference divisible by ~2.3e18, which the synthetic workloads never
produce; narrow widths collide freely, as E13 requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .bitstring import BitString

__all__ = ["IncrementalHasher", "HashValue", "MERSENNE_61"]

#: Modulus for the rolling hash: the Mersenne prime 2^61 - 1.
MERSENNE_61 = (1 << 61) - 1


def _mod_m61(x: int) -> int:
    """x mod (2^61 - 1) via Mersenne folding (no division on the hot path)."""
    while x >> 61:
        x = (x & MERSENNE_61) + (x >> 61)
    return x if x != MERSENNE_61 else 0


@dataclass(frozen=True)
class HashValue:
    """Linear-core hash of a bit-string together with the hashed length.

    The length is required by the associative combine (Definition 3
    permits the combiner to use operand lengths) and disambiguates
    equal-value strings of different lengths (e.g. "1" vs "01").
    """

    digest: int
    length: int

    def __index__(self) -> int:
        return self.digest


class IncrementalHasher:
    """Binary-associatively-incremental hash with seeded fingerprints.

    Parameters
    ----------
    seed:
        Selects the affine fingerprint map; a global re-hash (paper
        §4.4.3) constructs a new hasher with a fresh seed.
    width:
        Number of fingerprint bits retained (1..61).  ``width=61`` is
        effectively collision-free at simulated scales, matching the
        paper's 5*log2(N)-bit choice; narrow it to force collisions.
    """

    def __init__(self, seed: int = 0x5151_7EA7, width: int = 61):
        if not 1 <= width <= 61:
            raise ValueError("hash width must be in [1, 61]")
        self.seed = seed
        self.width = width
        # Affine finalizer parameters in [1, q-1] derived from the seed.
        s = (seed * 6364136223846793005 + 1442695040888963407) & (1 << 64) - 1
        self._mul = 1 + _mod_m61(s ^ (s >> 7)) % (MERSENNE_61 - 1)
        s = (s * 6364136223846793005 + 1442695040888963407) & (1 << 64) - 1
        self._add = 1 + _mod_m61(s ^ (s >> 11)) % (MERSENNE_61 - 1)
        self._mask = (1 << width) - 1
        # cache of 2^n mod q keyed by n (lengths repeat heavily)
        self._pow_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _pow2(self, n: int) -> int:
        """2^n mod q with memoization on n."""
        cached = self._pow_cache.get(n)
        if cached is None:
            cached = pow(2, n, MERSENNE_61)
            if len(self._pow_cache) < 1 << 16:
                self._pow_cache[n] = cached
        return cached

    # ------------------------------------------------------------------
    # linear core
    # ------------------------------------------------------------------
    def hash(self, s: BitString) -> HashValue:
        """Hash a full bit-string: O(l/w) word operations."""
        return HashValue(s.value % MERSENNE_61, len(s))

    def extend(self, prefix: HashValue, suffix: BitString) -> HashValue:
        """h(AB) from h(A) and the bit-string B (Definition 2)."""
        return self.combine(prefix, self.hash(suffix))

    def combine(self, a: HashValue, b: HashValue) -> HashValue:
        """Associative combine h(AB) from h(A), h(B), |B| (Definition 3)."""
        digest = _mod_m61(a.digest * self._pow2(b.length) + b.digest)
        return HashValue(digest, a.length + b.length)

    def prefix_hashes(
        self, s: BitString, positions: Sequence[int]
    ) -> list[HashValue]:
        """Hashes of ``s[:p]`` for each non-decreasing position ``p``.

        The sequential realization of the parallel prefix sum in Lemma
        4.4: one pass, O(l/w + #positions) word operations.
        """
        out: list[HashValue] = []
        n = len(s)
        v = s.value
        prev_p = 0
        digest = 0
        for p in positions:
            if not 0 <= p <= n:
                raise ValueError(f"prefix position {p} out of range")
            if p < prev_p:
                raise ValueError("positions must be non-decreasing")
            step = p - prev_p
            if step:
                chunk = (v >> (n - p)) & ((1 << step) - 1)
                digest = _mod_m61(digest * self._pow2(step) + chunk % MERSENNE_61)
            prev_p = p
            out.append(HashValue(digest, p))
        return out

    def empty(self) -> HashValue:
        """Hash of the empty string (the trie root)."""
        return HashValue(0, 0)

    # ------------------------------------------------------------------
    # seeded fingerprints (what hash tables compare)
    # ------------------------------------------------------------------
    def fingerprint(self, h: HashValue) -> int:
        """Comparison key for ``h``: the seeded, truncated node hash.

        The string length is folded into the digest (so "1" and "01"
        fingerprint differently despite equal values), then the result
        is passed through the seed-derived affine map and truncated to
        ``width`` bits.  At narrow widths any two strings may collide,
        exactly the false-positive source §4.4.3's verification handles.
        """
        f = _mod_m61((h.digest + h.length * self._add + 1) * self._mul)
        return f & self._mask

    def fingerprint_of(self, s: BitString) -> int:
        return self.fingerprint(self.hash(s))

    def __repr__(self) -> str:
        return f"IncrementalHasher(seed={self.seed:#x}, width={self.width})"
