"""Incremental hashing of bit-strings (paper Definitions 2 and 3).

PIM-trie requires an *incremental* hash: after decomposing a query trie
into blocks, the full string of a node may be absent from its block, so
node hashes must be derivable from a prefix hash plus a suffix string.

We use a two-stage design:

* **Linear core.**  ``digest(s) = value(s) mod q`` with the Mersenne
  prime ``q = 2^61 - 1``, paired with the bit length.  This is the
  rolling polynomial hash with base ``x = 2`` and is *binary
  associatively incremental* (Definition 3) exactly:

      digest(AB) = digest(A) * 2^{|B|} + digest(B)   (mod q)

  so node hashes over a trie can be produced by a rootfix scan and
  pivot hashes by a prefix sum (Lemmas 4.4 / 4.9), at O(l/w) word cost
  per l-bit string (Python's bignum arithmetic does the word loop in C).

* **Seeded fingerprint.**  Wherever hash values are *compared* (hash
  tables in the hash value manager, block-root matching), the linear
  digest is finalized through a seed-derived affine map and truncated to
  ``width`` bits.  Re-seeding realizes the paper's global re-hash
  (§4.4.3); narrowing ``width`` injects collisions for the verification
  experiments (E13).  Because the affine map is applied only at
  comparison time, incrementality of the core is preserved.

Collision behaviour: two equal-length strings share a fingerprint iff
their affine-mapped digests agree in the low ``width`` bits — for
``width = 61`` this needs ``value(A) ≡ value(B) (mod q)``, i.e. a
difference divisible by ~2.3e18, which the synthetic workloads never
produce; narrow widths collide freely, as E13 requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .bitstring import BitString

__all__ = ["IncrementalHasher", "HashValue", "MERSENNE_61"]

#: Modulus for the rolling hash: the Mersenne prime 2^61 - 1.
MERSENNE_61 = (1 << 61) - 1


def _mod_m61(x: int) -> int:
    """x mod (2^61 - 1) via Mersenne folding (no division on the hot path)."""
    while x >> 61:
        x = (x & MERSENNE_61) + (x >> 61)
    return x if x != MERSENNE_61 else 0


@dataclass(frozen=True)
class HashValue:
    """Linear-core hash of a bit-string together with the hashed length.

    The length is required by the associative combine (Definition 3
    permits the combiner to use operand lengths) and disambiguates
    equal-value strings of different lengths (e.g. "1" vs "01").
    """

    digest: int
    length: int

    def __index__(self) -> int:
        return self.digest


class IncrementalHasher:
    """Binary-associatively-incremental hash with seeded fingerprints.

    Parameters
    ----------
    seed:
        Selects the affine fingerprint map; a global re-hash (paper
        §4.4.3) constructs a new hasher with a fresh seed.
    width:
        Number of fingerprint bits retained (1..61).  ``width=61`` is
        effectively collision-free at simulated scales, matching the
        paper's 5*log2(N)-bit choice; narrow it to force collisions.
    """

    def __init__(self, seed: int = 0x5151_7EA7, width: int = 61):
        if not 1 <= width <= 61:
            raise ValueError("hash width must be in [1, 61]")
        self.seed = seed
        self.width = width
        # Affine finalizer parameters in [1, q-1] derived from the seed.
        s = (seed * 6364136223846793005 + 1442695040888963407) & (1 << 64) - 1
        self._mul = 1 + _mod_m61(s ^ (s >> 7)) % (MERSENNE_61 - 1)
        s = (s * 6364136223846793005 + 1442695040888963407) & (1 << 64) - 1
        self._add = 1 + _mod_m61(s ^ (s >> 11)) % (MERSENNE_61 - 1)
        self._mask = (1 << width) - 1

    # 2^n mod q is seed-independent, so the memo table is shared by all
    # hasher instances (class-level): rootfix scans and pivot prefix
    # sums (Lemmas 4.4 / 4.9) across many tries and re-seeded hashers
    # stop paying per-call pow().  Bounded with FIFO eviction (dicts
    # iterate in insertion order) so adversarial key lengths can neither
    # grow it without limit nor pin it full of stale exponents.
    _POW2_TABLE: dict[int, int] = {}

    #: Hard cap on the pow2 memo; eviction is oldest-inserted-first.
    _POW2_TABLE_MAX = 1 << 16

    # ------------------------------------------------------------------
    def _pow2(self, n: int) -> int:
        """2^n mod q with bounded class-level memoization on n."""
        table = IncrementalHasher._POW2_TABLE
        cached = table.get(n)
        if cached is None:
            cached = pow(2, n, MERSENNE_61)
            if len(table) >= IncrementalHasher._POW2_TABLE_MAX:
                del table[next(iter(table))]
            table[n] = cached
        return cached

    # ------------------------------------------------------------------
    # linear core
    # ------------------------------------------------------------------
    def hash(self, s: BitString) -> HashValue:
        """Hash a full bit-string: O(l/w) word operations."""
        return HashValue(s.value % MERSENNE_61, len(s))

    def extend(self, prefix: HashValue, suffix: BitString) -> HashValue:
        """h(AB) from h(A) and the bit-string B (Definition 2)."""
        return self.combine(prefix, self.hash(suffix))

    def combine(self, a: HashValue, b: HashValue) -> HashValue:
        """Associative combine h(AB) from h(A), h(B), |B| (Definition 3)."""
        digest = _mod_m61(a.digest * self._pow2(b.length) + b.digest)
        return HashValue(digest, a.length + b.length)

    def prefix_hashes(
        self, s: BitString, positions: Sequence[int]
    ) -> list[HashValue]:
        """Hashes of ``s[:p]`` for each non-decreasing position ``p``.

        The sequential realization of the parallel prefix sum in Lemma
        4.4: one pass, O(l/w + #positions) word operations.
        """
        out: list[HashValue] = []
        n = len(s)
        v = s.value
        prev_p = 0
        digest = 0
        for p in positions:
            if not 0 <= p <= n:
                raise ValueError(f"prefix position {p} out of range")
            if p < prev_p:
                raise ValueError("positions must be non-decreasing")
            step = p - prev_p
            if step:
                chunk = (v >> (n - p)) & ((1 << step) - 1)
                digest = _mod_m61(digest * self._pow2(step) + chunk % MERSENNE_61)
            prev_p = p
            out.append(HashValue(digest, p))
        return out

    def empty(self) -> HashValue:
        """Hash of the empty string (the trie root)."""
        return HashValue(0, 0)

    def hash_batch(self, strings: Sequence[BitString]) -> list[HashValue]:
        """Hash many full bit-strings in one call.

        Same values as ``[self.hash(s) for s in strings]`` with the
        per-call dispatch hoisted out of the loop — batch scans hash
        every edge of a fragment, so the constant matters.
        """
        q = MERSENNE_61
        return [HashValue(s.value % q, len(s)) for s in strings]

    # ------------------------------------------------------------------
    # seeded fingerprints (what hash tables compare)
    # ------------------------------------------------------------------
    def fingerprint(self, h: HashValue) -> int:
        """Comparison key for ``h``: the seeded, truncated node hash.

        The string length is folded into the digest (so "1" and "01"
        fingerprint differently despite equal values), then the result
        is passed through the seed-derived affine map and truncated to
        ``width`` bits.  At narrow widths any two strings may collide,
        exactly the false-positive source §4.4.3's verification handles.
        """
        f = _mod_m61((h.digest + h.length * self._add + 1) * self._mul)
        return f & self._mask

    def fingerprint_of(self, s: BitString) -> int:
        return self.fingerprint(self.hash(s))

    def pivot_fingerprints(
        self, base: HashValue, s: BitString, positions: Sequence[int]
    ) -> list[int]:
        """``fingerprint(combine(base, prefix_hash(s, p)))`` per position.

        The fused form of the pivot probe in §4.4.2 matching: one pass
        over ``s`` with no intermediate :class:`HashValue` allocations.
        Positions must be non-decreasing in ``[0, len(s)]``.
        """
        q = MERSENNE_61
        mul, add, mask = self._mul, self._add, self._mask
        pow2 = self._pow2
        base_digest, base_length = base.digest, base.length
        n = len(s)
        v = s.value
        prev_p = 0
        digest = 0
        out: list[int] = []
        for p in positions:
            if not 0 <= p <= n:
                raise ValueError(f"prefix position {p} out of range")
            if p < prev_p:
                raise ValueError("positions must be non-decreasing")
            step = p - prev_p
            if step:
                x = digest * pow2(step) + ((v >> (n - p)) & ((1 << step) - 1)) % q
                while x >> 61:
                    x = (x & q) + (x >> 61)
                digest = 0 if x == q else x
            prev_p = p
            # combine(base, (digest, p)) then the affine fingerprint
            x = base_digest * pow2(p) + digest
            while x >> 61:
                x = (x & q) + (x >> 61)
            if x == q:
                x = 0
            f = (x + (base_length + p) * add + 1) * mul
            while f >> 61:
                f = (f & q) + (f >> 61)
            if f == q:
                f = 0
            out.append(f & mask)
        return out

    def fingerprint_batch(self, hashes: Sequence[HashValue]) -> list[int]:
        """Fingerprints of many hash values in one call.

        Identical to ``[self.fingerprint(h) for h in hashes]``; the
        affine parameters are bound once so per-edge bottom-up probes
        and pivot scans stop re-reading instance attributes per value.
        """
        mul, add, mask = self._mul, self._add, self._mask
        q = MERSENNE_61
        out: list[int] = []
        for h in hashes:
            f = (h.digest + h.length * add + 1) * mul
            while f >> 61:
                f = (f & q) + (f >> 61)
            if f == q:
                f = 0
            out.append(f & mask)
        return out

    def __repr__(self) -> str:
        return f"IncrementalHasher(seed={self.seed:#x}, width={self.width})"
