"""HashMatching: decompose a query fragment by a table of block-root
hashes (paper Algorithm 3, plus the §4.4.2 pivot / two-layer efficient
variant and the §4.4.3 S_last verification).

The primitive is side-agnostic — the same function runs inside a PIM
kernel (push) and on the CPU against fetched records (pull); only the
work-metering callback differs.

Semantics.  For every compressed edge of the fragment, find the
*deepest* position (compressed or hidden node) whose node hash appears
in the record table, and emit a :class:`MatchCut` for it.  Deeper
shallower hits on the same edge delimit non-critical blocks and are
skipped (they are instead verified via S_last when requested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from .. import fastpath
from ..bits import BitString, HashValue, IncrementalHasher, MERSENNE_61
from ..fasttrie import ZFastTrie
from ..trie import PatriciaTrie, TrieEdge, TrieNode
from .meta import MetaRecord
from .query import PathPos, QueryFragment

__all__ = ["MatchCut", "RecordTable", "hash_match_fragment", "CollisionLog"]


@dataclass(frozen=True)
class MatchCut:
    """A match between a fragment position and a block-root record.

    ``node``/``back`` use fragment coordinates (see PathPos);
    ``abs_depth`` is the global depth of the matched prefix.
    """

    node_uid: int
    back: int
    abs_depth: int
    record: MetaRecord

    def word_cost(self) -> int:
        return 3


@dataclass
class CollisionLog:
    """Counts §4.4.3 verification events for the E13 experiments."""

    checked: int = 0
    rejected: int = 0


class _Family:
    """One s_pre family of the two-layer index: the stored S_rem strings
    plus an O(log w) deepest-prefix structure over them (§4.4.2).

    The prefix structure is a bounded-height z-fast trie — the paper
    deploys z-fast shortcuts on the pull side and the padded
    y-fast/validity-vector index on the push side; both answer the same
    deepest-on-path query in O(log w), and the validity variant is
    implemented and validated separately (:mod:`repro.fasttrie.validity`,
    experiment E9).
    """

    __slots__ = ("members", "zfast", "dirty", "_scan", "_chain", "_cols")

    def __init__(self):
        self.members: dict[BitString, MetaRecord] = {}
        self.zfast = ZFastTrie()
        self.dirty = True
        #: fast-path lookup list: (length, value, record) sorted by
        #: descending length; None when stale
        self._scan: Optional[list[tuple[int, int, MetaRecord]]] = None
        #: fast-path redo chain: member -> its deepest proper-prefix
        #: member (None when stale)
        self._chain: Optional[dict[BitString, Optional[MetaRecord]]] = None
        #: columnar scan/chain arrays (repro.columnar.match); None when
        #: stale — invalidated alongside _scan/_chain
        self._cols = None

    def ensure(self) -> None:
        if self.dirty:
            self.zfast.bulk_build({s: None for s in self.members})
            self.dirty = False

    def _scan_list(self) -> list[tuple[int, int, MetaRecord]]:
        scan = self._scan
        if scan is None:
            scan = sorted(
                ((len(s), s.value, r) for s, r in self.members.items()),
                key=lambda t: t[0],
                reverse=True,
            )
            self._scan = scan
        return scan

    def deepest_prefix(self, q: BitString) -> Optional[MetaRecord]:
        """Deepest member that is a prefix of ``q`` (members are < w
        bits, so the answer fits one probe structure per family)."""
        if fastpath.ENABLED:
            # members are < w-bit strings: a length-descending scan with
            # machine-int prefix tests returns the same answer as the
            # z-fast probe sequence with a far smaller constant (the
            # accounted O(log w) probe cost is charged by the caller
            # identically in both modes)
            qlen = len(q)
            qv = q.value
            for ln, val, rec in self._scan_list():
                if ln <= qlen and (qv >> (qlen - ln)) == val:
                    return rec
            return None
        self.ensure()
        got = self.zfast.lookup_deepest_prefix(q)
        return self.members.get(got) if got is not None else None

    def next_shallower(self, s: BitString) -> Optional[MetaRecord]:
        """Deepest member that is a proper prefix of ``s`` (redo path)."""
        if len(s) == 0:
            return None
        if fastpath.ENABLED:
            # the redo loop always asks about members, and the answer is
            # a pure function of the member set — precompute the chain
            # once per family version instead of rescanning per step
            chain = self._chain
            if chain is None:
                scan = self._scan_list()
                chain = {}
                for i, (ln, val, rec) in enumerate(scan):
                    nxt = None
                    for lj, vj, rj in scan[i + 1 :]:
                        if lj < ln and (val >> (ln - lj)) == vj:
                            nxt = rj
                            break
                    chain[rec.s_rem] = nxt
                self._chain = chain
            if s in chain:
                return chain[s]
            # non-member query: fall back to the scan
            qlen = len(s) - 1
            qv = s.value >> 1
            for ln, val, rec in self._scan_list():
                if ln <= qlen and (qv >> (qlen - ln)) == val:
                    return rec
            return None
        return self.deepest_prefix(s.prefix(len(s) - 1))


class RecordTable:
    """A lookup view over a set of MetaRecords for HashMatching.

    Provides both the naive ``fingerprint -> records`` map (Algorithm 3)
    and the two-layer pivot index of §4.4.2 (``s_pre_fp`` -> deepest
    S_rem prefix per family).
    """

    def __init__(self, records: Iterable[MetaRecord], w: int):
        self.w = w
        self.by_fp: dict[int, list[MetaRecord]] = {}
        self.layer2: dict[int, _Family] = {}
        self.by_id: dict[int, MetaRecord] = {}
        #: sorted layer2-key array for columnar membership probes
        #: (repro.columnar.match); None when stale
        self._l2cache = None
        for rec in records:
            self.add(rec)

    def add(self, rec: MetaRecord) -> None:
        self.by_id[rec.block_id] = rec
        self.by_fp.setdefault(rec.fingerprint, []).append(rec)
        fam = self.layer2.get(rec.s_pre_fp)
        if fam is None:
            fam = _Family()
            self.layer2[rec.s_pre_fp] = fam
            self._l2cache = None
        fam.members[rec.s_rem] = rec
        fam.dirty = True
        fam._scan = None
        fam._chain = None
        fam._cols = None

    def remove(self, rec: MetaRecord) -> None:
        self.by_id.pop(rec.block_id, None)
        recs = self.by_fp.get(rec.fingerprint)
        if recs is not None:
            recs[:] = [r for r in recs if r.block_id != rec.block_id]
            if not recs:
                del self.by_fp[rec.fingerprint]
        fam = self.layer2.get(rec.s_pre_fp)
        if fam is not None:
            cur = fam.members.get(rec.s_rem)
            if cur is not None and cur.block_id == rec.block_id:
                del fam.members[rec.s_rem]
                fam.dirty = True
                fam._scan = None
                fam._chain = None
                fam._cols = None
            if not fam.members:
                del self.layer2[rec.s_pre_fp]
                self._l2cache = None

    def __len__(self) -> int:
        return len(self.by_id)


# ----------------------------------------------------------------------
# verification helper (§4.4.3): compare a record's S_last against the
# actual bits of the query path ending at the candidate position.
# ----------------------------------------------------------------------
def _path_bits_upto(
    frag: QueryFragment,
    node: TrieNode,
    back: int,
    want: int,
    frag_strings: dict[int, BitString],
) -> BitString:
    """Last ``want`` bits of the fragment path ending ``back`` bits above
    ``node``, extending into ``frag.base_tail`` if the window crosses
    the fragment base."""
    rel = frag_strings[node.uid]
    rel = rel.prefix(len(rel) - back)
    if len(rel) >= want:
        return rel.suffix_from(len(rel) - want)
    missing = want - len(rel)
    tail = frag.base_tail
    take = min(missing, len(tail))
    return tail.suffix_from(len(tail) - take) + rel


def _verify_record(
    frag: QueryFragment,
    node: TrieNode,
    back: int,
    rec: MetaRecord,
    frag_strings: dict[int, BitString],
    log: Optional[CollisionLog],
) -> bool:
    """S_last check: the candidate's trailing bits must equal the query
    path's trailing bits at the matched depth."""
    if log is not None:
        log.checked += 1
    got = _path_bits_upto(frag, node, back, len(rec.s_last), frag_strings)
    ok = got == rec.s_last
    if log is not None and not ok:
        log.rejected += 1
    return ok


# ----------------------------------------------------------------------
# the matching primitive
# ----------------------------------------------------------------------
def hash_match_fragment(
    frag: QueryFragment,
    table: RecordTable,
    hasher: IncrementalHasher,
    *,
    use_pivots: bool,
    verify: bool,
    tick: Callable[[int], None],
    log: Optional[CollisionLog] = None,
    exclude: Optional[set[int]] = None,
) -> list[MatchCut]:
    """Algorithm 3 over one fragment: per-edge deepest record match.

    ``exclude`` suppresses block ids already found colliding this batch
    (the redo loop of §4.4.3).  Returns fragment-coordinate cuts.
    """
    frag_strings = _relative_strings(frag.trie)
    cuts: list[MatchCut] = []

    # the fragment base itself may coincide with a record (depth match):
    # the caller handles base-level matches; here we scan edges.
    for edge in frag.trie.iter_edges():
        hit = _match_edge(
            frag,
            edge,
            table,
            hasher,
            frag_strings,
            use_pivots=use_pivots,
            verify=verify,
            tick=tick,
            log=log,
            exclude=exclude,
        )
        if hit is not None:
            cuts.append(hit)
    return cuts


def _relative_strings(trie: PatriciaTrie) -> dict[int, BitString]:
    out: dict[int, BitString] = {trie.root.uid: BitString(0, 0)}
    stack = [trie.root]
    while stack:
        node = stack.pop()
        s = out[node.uid]
        for b in (0, 1):
            e = node.children[b]
            if e is not None:
                out[e.dst.uid] = s + e.label
                stack.append(e.dst)
    return out


def _match_edge(
    frag: QueryFragment,
    edge: TrieEdge,
    table: RecordTable,
    hasher: IncrementalHasher,
    frag_strings: dict[int, BitString],
    *,
    use_pivots: bool,
    verify: bool,
    tick: Callable[[int], None],
    log: Optional[CollisionLog],
    exclude: Optional[set[int]],
) -> Optional[MatchCut]:
    """Deepest record hit on ``edge`` (positions (src, dst], fragment
    coordinates), or None."""
    if use_pivots:
        return _match_edge_pivot(
            frag, edge, table, hasher, frag_strings,
            verify=verify, tick=tick, log=log, exclude=exclude,
        )
    src = edge.src
    assert src is not None
    dst = edge.dst
    base_depth = frag.base_depth
    src_abs = base_depth + src.depth
    dst_abs = base_depth + dst.depth

    # --- naive Algorithm 3: probe every position bottom-up -------------
    # compute prefix digests along the edge incrementally (top-down),
    # then scan bottom-up for the deepest fingerprint hit.
    src_rel = frag_strings[src.uid]
    h = hasher.combine(frag.base_hash, hasher.hash(src_rel))
    label = edge.label
    digests: list[HashValue] = []
    digest, length = h.digest, h.length
    for i in range(len(label)):
        digest = (digest * 2 + label.bit(i)) % MERSENNE_61
        length += 1
        digests.append(HashValue(digest, length))
    tick(max(1, len(label) // 64 + len(label)))
    # the scan probes (almost) every position on a miss-dominated edge,
    # so fingerprinting the whole edge in one batch call wins; the per-
    # position tick stays inside the loop for exact work parity
    fps = hasher.fingerprint_batch(digests) if fastpath.ENABLED else None
    for i in range(len(label) - 1, -1, -1):
        fp = fps[i] if fps is not None else hasher.fingerprint(digests[i])
        tick(1)
        recs = table.by_fp.get(fp)
        if not recs:
            continue
        back = len(label) - 1 - i
        abs_depth = dst_abs - back
        for rec in recs:
            if exclude is not None and rec.block_id in exclude:
                continue
            if rec.depth != abs_depth:
                continue
            if verify and not _verify_record(
                frag, dst, back, rec, frag_strings, log
            ):
                continue
            return MatchCut(dst.uid, back, abs_depth, rec)
    return None


def _match_edge_pivot(
    frag: QueryFragment,
    edge: TrieEdge,
    table: RecordTable,
    hasher: IncrementalHasher,
    frag_strings: dict[int, BitString],
    *,
    verify: bool,
    tick: Callable[[int], None],
    log: Optional[CollisionLog],
    exclude: Optional[set[int]],
) -> Optional[MatchCut]:
    """§4.4.2 efficient matching: probe only w-aligned pivots, then one
    validity-index query below the deepest hit pivot.

    Hashes are anchored at the fragment's aligned base (``base_pre_hash``
    at depth ``aligned_base_depth`` plus the residual ``base_rem`` bits),
    so every w-aligned pivot hosting the edge is computable locally.
    """
    w = table.w
    src = edge.src
    assert src is not None
    dst = edge.dst
    base_depth = frag.base_depth
    src_abs = base_depth + src.depth
    dst_abs = base_depth + dst.depth
    anchor = frag.aligned_base_depth  # w-aligned, <= base_depth

    # bits from the anchor down to dst, all locally available
    src_rel = frag_strings[src.uid]
    ext_path = frag.base_rem + src_rel + edge.label

    # candidate pivots hosting this edge: the pivot at/above src, plus
    # every w-multiple inside (src_abs, dst_abs]
    top_pivot = max((src_abs // w) * w, anchor)
    pivots = range(top_pivot, dst_abs + 1, w)
    positions = [p - anchor for p in pivots]
    tick(max(1, len(edge.label) // w + len(positions)))
    hits: list[tuple[int, int]] = []  # (pivot_depth, s_pre_fp)
    if fastpath.ENABLED:
        # fused prefix-hash + combine + fingerprint: one pass over the
        # edge, no intermediate HashValue allocations
        fps = hasher.pivot_fingerprints(
            frag.base_pre_hash, ext_path, positions
        )
        layer2 = table.layer2
        for p, fp in zip(pivots, fps):
            if fp in layer2:
                hits.append((p, fp))
    else:
        pivot_hashes = hasher.prefix_hashes(ext_path, positions)
        for p, hv in zip(pivots, pivot_hashes):
            fp = hasher.fingerprint(hasher.combine(frag.base_pre_hash, hv))
            if fp in table.layer2:
                hits.append((p, fp))
    if not hits:
        return None
    # deepest hit pivot first = critical pivot; gather S'_rem below it
    for pivot_depth, pre_fp in sorted(hits, reverse=True):
        fam = table.layer2[pre_fp]
        start = pivot_depth - anchor
        take = min(w, len(ext_path) - start, dst_abs - pivot_depth)
        if take < 0:
            continue
        s_rem_q = ext_path.substring(start, start + take)
        # deepest family member lying on the query path (O(log w));
        # on rejection (excluded id, off-window depth, or a failed
        # S_last verification — the §4.4.3 redo) step to the next
        # shallower prefix member.
        rec = fam.deepest_prefix(s_rem_q)
        tick(6)
        while rec is not None:
            abs_depth = rec.depth
            ok = (
                (exclude is None or rec.block_id not in exclude)
                and src_abs < abs_depth <= dst_abs
            )
            if ok and verify and not _verify_record(
                frag, dst, dst_abs - abs_depth, rec, frag_strings, log
            ):
                ok = False
            if ok:
                return MatchCut(
                    dst.uid, dst_abs - abs_depth, abs_depth, rec
                )
            nxt = fam.next_shallower(rec.s_rem)
            tick(6)
            if nxt is None or nxt.depth >= rec.depth:
                break
            rec = nxt
    return None
