"""Query-trie fragments: the unit shipped between CPU and PIM during
trie matching (paper §4.1, §4.3).

A :class:`QueryFragment` is a standalone piece of the query trie
(produced by ``Span``/decomposition) carrying everything a remote
HashMatching or block-matching kernel needs:

* the relative sub-trie (a PatriciaTrie),
* the absolute depth and linear hash of its base (so node hashes of any
  fragment node are derivable by the incremental combine — Definition 2),
* the last ≤ w bits of the base string (``base_tail``), the §4.4.3
  verification payload for matches whose S_last window crosses the base,
* a map from fragment node uids back to original query-trie node uids,
  so match results can be merged on the CPU (Algorithm 2 line 14).

Cut positions inside the query trie are described by :class:`PathPos`:
a node, or an (edge, offset) hidden position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import fastpath
from ..bits import BitString, HashValue, IncrementalHasher
from ..trie import HiddenNodeRef, PatriciaTrie, TrieEdge, TrieNode

__all__ = ["PathPos", "QueryFragment", "span_fragments", "fragment_whole_trie"]


@dataclass(frozen=True)
class PathPos:
    """A position in a trie: a compressed node, or ``offset`` bits down
    the edge *entering* ``node`` (offset counted back from the node, so
    ``back == 0`` is the node itself)."""

    node: TrieNode
    back: int = 0  # bits above `node` on its parent edge

    @property
    def depth(self) -> int:
        return self.node.depth - self.back

    def __post_init__(self):
        if self.back < 0:
            raise ValueError("back must be >= 0")
        if self.back > 0:
            edge = self.node.parent_edge
            if edge is None or self.back >= len(edge.label):
                raise ValueError("hidden position outside the entering edge")


class QueryFragment:
    """A relative sub-trie of the query trie, ready to ship.

    ``base_pre_hash`` is the hash of the base string's longest w-aligned
    prefix and ``base_rem`` the remaining < w bits — the anchor that
    lets a remote kernel compute the hash of *any* w-aligned pivot at or
    below the base (§4.4.2's data augmentation, mirrored on the query
    side).
    """

    def __init__(
        self,
        trie: PatriciaTrie,
        base_depth: int,
        base_hash: HashValue,
        base_tail: BitString,
        origin: dict[int, int],
        base_pos: Optional[PathPos] = None,
        base_pre_hash: Optional[HashValue] = None,
        base_rem: Optional[BitString] = None,
    ):
        self.trie = trie
        self.base_depth = base_depth
        self.base_hash = base_hash
        self.base_tail = base_tail
        #: fragment node uid -> original query-trie node uid
        self.origin = origin
        #: where this fragment's base sits in the original query trie
        self.base_pos = base_pos
        if base_rem is None:
            base_rem = BitString(0, 0)
        self.base_rem = base_rem
        self.base_pre_hash = (
            base_pre_hash if base_pre_hash is not None else base_hash
        )
        self._wc: Optional[int] = None

    @property
    def aligned_base_depth(self) -> int:
        return self.base_depth - len(self.base_rem)

    def word_cost(self) -> int:
        """Compressed size + O(1) metadata, the cost Algorithm 2 charges.

        The fragment trie is frozen after Span (``_respan`` rebases only
        the ``base_*`` anchor fields, never the trie), so the full-trie
        walk is cached after the first call.
        """
        if fastpath.ENABLED and self._wc is not None:
            return self._wc
        wc = 3 + self.trie.word_cost()
        self._wc = wc
        return wc

    def size_words(self) -> int:
        return self.word_cost()

    def __repr__(self) -> str:
        return (
            f"QueryFragment(base_depth={self.base_depth}, "
            f"n={self.trie.num_keys}, words={self.word_cost()})"
        )


def fragment_whole_trie(
    query_trie: PatriciaTrie, hasher: IncrementalHasher, w: int
) -> QueryFragment:
    """Wrap the entire query trie as one fragment based at the root."""
    origin: dict[int, int] = {}
    clone, mapping = _clone_from(query_trie.root, 0, None)
    origin.update(mapping)
    return QueryFragment(
        trie=clone,
        base_depth=0,
        base_hash=hasher.empty(),
        base_tail=BitString(0, 0),
        origin=origin,
        base_pos=PathPos(query_trie.root),
        base_pre_hash=hasher.empty(),
        base_rem=BitString(0, 0),
    )


def _clone_from(
    node: TrieNode,
    entry_back: int,
    stop: Optional[dict[int, int]],
) -> tuple[PatriciaTrie, dict[int, int]]:
    """Clone the subtree at a position ``entry_back`` bits above ``node``,
    cutting at positions in ``stop`` ({node_uid: back}).

    Returns the relative trie and the fragment-uid -> original-uid map.
    The base position itself becomes the clone's root.  A stop position
    with ``back > 0`` truncates the entering edge of that node; the
    truncated edge's endpoint is kept as a (non-key) boundary node.
    """
    out = PatriciaTrie()
    mapping: dict[int, int] = {}
    base_depth = node.depth - entry_back

    if entry_back == 0:
        out.root.is_key = node.is_key
        out.root.value = node.value
        out.root.mirror_child = node.mirror_child
        if node.is_key:
            out.num_keys += 1
        mapping[out.root.uid] = node.uid
        stack = [(node, out.root)]
    else:
        edge = node.parent_edge
        assert edge is not None
        tail = edge.label.suffix_from(len(edge.label) - entry_back)
        copy = TrieNode(entry_back, is_key=node.is_key, value=node.value)
        copy.mirror_child = node.mirror_child
        out.root.attach(TrieEdge(tail, copy))
        out.edge_bits += entry_back
        if node.is_key:
            out.num_keys += 1
        mapping[copy.uid] = node.uid
        stack = [(node, copy)]

    while stack:
        src, dst = stack.pop()
        if stop is not None and src.uid in stop and dst is not out.root:
            # stop *at* this node: children are cut away entirely
            continue
        for b in (0, 1):
            edge = src.children[b]
            if edge is None:
                continue
            child = edge.dst
            cut_back = stop.get(child.uid) if stop is not None else None
            if cut_back is not None and cut_back > 0:
                # cut inside this edge: keep the top part, end on a
                # boundary node at the cut position
                keep = len(edge.label) - cut_back
                if keep == 0:
                    continue
                boundary = TrieNode(dst.depth + keep)
                dst.attach(TrieEdge(edge.label.prefix(keep), boundary))
                out.edge_bits += keep
                continue
            copy = TrieNode(
                child.depth - base_depth, is_key=child.is_key, value=child.value
            )
            copy.mirror_child = child.mirror_child
            dst.attach(TrieEdge(edge.label, copy))
            out.edge_bits += len(edge.label)
            if child.is_key:
                out.num_keys += 1
            mapping[copy.uid] = child.uid
            if cut_back == 0:
                # stop at the node itself: keep it, drop its children
                continue
            stack.append((child, copy))
    return out, mapping


def span_fragments(
    query_trie: PatriciaTrie,
    cuts: list[PathPos],
    strings: dict[int, BitString],
    hasher: IncrementalHasher,
    w: int,
) -> list[QueryFragment]:
    """``Span``: split the query trie at ``cuts`` into standalone
    fragments, one per cut position (Algorithm 2 line 2 / Algorithm 5).

    ``strings`` maps node uid -> absolute string (precomputed once per
    batch by a rootfix).  Each fragment runs from its cut position down
    to the next cut positions strictly below (which become boundary
    nodes / are excluded).  Cut positions must be distinct.
    """
    # Two cuts on the same entering edge delimit a pure-edge segment with
    # no compressed node strictly inside — a *non-critical block* (§4.3),
    # which the matching skips.  Keep only the deepest cut per node.
    by_node: dict[int, PathPos] = {}
    for pos in cuts:
        prev = by_node.get(pos.node.uid)
        if prev is None or pos.back < prev.back:
            by_node[pos.node.uid] = pos
    kept = list(by_node.values())
    # The per-fragment stop set is "every other kept cut strictly below
    # this one".  After per-node dedup, depth filtering is redundant for
    # subtree clones: a kept cut q with q.node a strict descendant of
    # pos.node always has q.depth > pos.depth (q.back stays inside
    # q.node's entering edge, so q.depth > q.node.parent.depth >=
    # pos.node.depth >= pos.depth), and uids outside pos's subtree are
    # never consulted by _clone_from.  So one shared stop dict works for
    # all fragments — we only pop the fragment's own entry while cloning
    # (its cut is the clone's base, not a cut inside it).  The fallback
    # branch keeps the original per-fragment dictcomp, which is O(k) per
    # fragment and dominated large-batch Span wall-clock.
    stop_all: Optional[dict[int, int]] = None
    if fastpath.ENABLED:
        stop_all = {p.node.uid: p.back for p in kept}
    out: list[QueryFragment] = []
    for pos in kept:
        node_string = strings[pos.node.uid]
        base_string = node_string.prefix(len(node_string) - pos.back)
        if stop_all is not None:
            uid = pos.node.uid
            own_back = stop_all.pop(uid)
            try:
                clone, mapping = _clone_from(pos.node, pos.back, stop_all)
            finally:
                stop_all[uid] = own_back
        else:
            # children cuts: every other kept cut strictly below this one
            child_stop = {
                p.node.uid: p.back
                for p in kept
                if p is not pos and p.depth > pos.depth
            }
            clone, mapping = _clone_from(pos.node, pos.back, child_stop)
        pre_len = (len(base_string) // w) * w
        out.append(
            QueryFragment(
                trie=clone,
                base_depth=len(base_string),
                base_hash=hasher.hash(base_string),
                base_tail=base_string.suffix_from(
                    max(0, len(base_string) - w)
                ),
                origin=mapping,
                base_pos=pos,
                base_pre_hash=hasher.hash(base_string.prefix(pre_len)),
                base_rem=base_string.suffix_from(pre_len),
            )
        )
    return out
