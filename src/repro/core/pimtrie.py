"""PIM-trie: the batch-parallel skew-resistant trie (paper §4–§5).

The :class:`PIMTrie` facade owns

* the distributed data-trie blocks (§4.2),
* the hash value manager — meta pieces, meta-block trees, master-tree
  (§4.4, :mod:`repro.core.meta`),
* the trie-matching driver (Algorithms 2, 4, 5),
* the batch operations LCP / Insert / Delete / SubtreeQuery (§5).

Every CPU↔PIM data transfer goes through ``PIMSystem.round`` with real
word costs, so the PIM Model metrics (IO rounds, IO time, communication,
PIM time) measured around a batch are exactly the quantities the
paper's theorems bound.  The CPU driver additionally keeps *addressing
registries* (block → module, piece → module, parent/child ids) plus a
record mirror used only for maintenance: these stand in for the
remote-pointer metadata the distributed structure itself encodes and
carry no per-batch key data; see DESIGN.md §7.
"""

from __future__ import annotations

import functools
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Sequence

from .. import fastpath
from ..bits import BitString, IncrementalHasher
from ..obs.tracer import maybe_span
from ..pim import ModuleContext, PIMSystem
from ..pim.system import default_word_cost
from ..trie import (
    PatriciaTrie,
    TrieEdge,
    TrieNode,
    build_query_trie,
    partition_weighted,
    rootfix,
)
from ..columnar import (
    ColNodeRef,
    ColPathPos,
    ColumnarFragment,
    QueryArena,
    hash_match_columnar,
    hash_match_columnar_many,
    local_match_columnar,
    warm_table,
    respan_columnar,
    span_columnar,
)
from ..ordered import OrderedSnapshot
from .blocks import DataBlock, extract_blocks
from .config import PIMTrieConfig
from .hashmatch import CollisionLog, MatchCut, RecordTable, hash_match_fragment
from .localmatch import LocalMatchResult, match_block_local
from .meta import MetaPiece, MetaRecord, decompose_component, make_record, next_piece_id
from .query import PathPos, QueryFragment, span_fragments

__all__ = ["PIMTrie", "MatchOutcome", "MatchEntry"]


# ----------------------------------------------------------------------
# matched-trie representation
# ----------------------------------------------------------------------
class MatchEntry:
    """Deepest match information for one query-trie compressed node.

    A plain slotted record (not a dataclass): one is allocated per
    surviving query node per match batch, so construction cost is on
    the batch hot path.
    """

    __slots__ = ("depth", "full", "on_node", "has_key", "value", "block")

    def __init__(
        self,
        depth: int,
        #: True: the path to this node fully matches (depth == node
        #: depth); False: the subtree below diverges at `depth`
        full: bool,
        #: the match coincides with a data compressed node
        on_node: bool,
        #: that data node stores a key
        has_key: bool,
        value: Any,
        block: int,
    ):
        self.depth = depth
        self.full = full
        self.on_node = on_node
        self.has_key = has_key
        self.value = value
        self.block = block

    def __repr__(self) -> str:
        return (
            f"MatchEntry(depth={self.depth}, full={self.full}, "
            f"on_node={self.on_node}, has_key={self.has_key}, "
            f"value={self.value!r}, block={self.block})"
        )


@dataclass
class MatchOutcome:
    """The matched trie: per query-node deepest match state."""

    entries: dict[int, MatchEntry] = field(default_factory=dict)
    collisions: int = 0

    def get(self, uid: int) -> Optional[MatchEntry]:
        return self.entries.get(uid)


# ----------------------------------------------------------------------
# wire messages
# ----------------------------------------------------------------------
@dataclass
class _StoreBlock:
    block: DataBlock

    def word_cost(self) -> int:
        return self.block.word_cost()


@dataclass
class _StorePiece:
    piece: MetaPiece

    def word_cost(self) -> int:
        return self.piece.word_cost()


@dataclass
class _MasterDelta:
    add: list[tuple[MetaRecord, int]]  # (record, root piece id)
    remove: list[int]  # block ids
    full: bool = False  # replace the table wholesale
    _wc: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    def word_cost(self) -> int:
        if fastpath.ENABLED and self._wc is not None:
            return self._wc
        wc = max(1, 6 * len(self.add) + len(self.remove))
        self._wc = wc
        return wc


@dataclass
class _FragMatch:
    frag: QueryFragment
    scope: str  # "master" | "piece"
    piece_id: int = 0

    def word_cost(self) -> int:
        # the fragment itself caches its trie walk
        return self.frag.word_cost()


@dataclass
class _BlockOp:
    op: str
    block_id: int
    frag: Optional[QueryFragment] = None
    payload: Any = None
    #: messages are immutable once enqueued for a round, so the payload
    #: walk is computed once (lazily, to keep construction free)
    _wc: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    def word_cost(self) -> int:
        if fastpath.ENABLED and self._wc is not None:
            return self._wc
        cost = 2
        if self.frag is not None:
            cost += self.frag.word_cost()
        if self.payload is not None:
            cost += default_word_cost(self.payload)
        self._wc = cost
        return cost


@dataclass
class _PieceOp:
    op: str
    piece_id: int
    payload: Any = None
    _wc: Optional[int] = field(default=None, init=False, repr=False, compare=False)

    def word_cost(self) -> int:
        if fastpath.ENABLED and self._wc is not None:
            return self._wc
        cost = 2
        if self.payload is not None:
            cost += default_word_cost(self.payload)
        self._wc = cost
        return cost


# ----------------------------------------------------------------------
# structural-maintenance tracking (recovery support, repro.faults)
# ----------------------------------------------------------------------
def _structural(fn):
    """Mark a maintenance method whose interruption leaves the host
    registries mid-transition.  While any structural frame is on the
    stack, ``_dirty_structure`` is set; it is cleared only when the
    outermost frame exits *cleanly* — an abort (RoundAborted) skips the
    clear, which steers recovery to the full rebuild-from-mirror path
    instead of the cheap per-module one.

    Structural methods are also tracing sites: each call records a
    ``maint.<name>`` span when a tracer is attached."""

    span_name = "maint." + fn.__name__.lstrip("_")

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        with maybe_span(self.system, span_name, cat="maint"):
            self._maint_depth += 1
            self._dirty_structure = True
            try:
                out = fn(self, *args, **kwargs)
            except BaseException:
                self._maint_depth -= 1
                raise
            self._maint_depth -= 1
            if self._maint_depth == 0:
                self._dirty_structure = False
            return out

    return wrapper


def _traced_op(name):
    """Wrap a public batch operation in an ``op.<name>`` span.

    The first positional argument is the batch; its length is recorded
    as the span's ``batch`` arg.  With no tracer attached the wrapper
    is one attribute check."""

    def deco(fn):
        @functools.wraps(fn)
        def wrapper(self, batch, *args, **kwargs):
            obs = getattr(self.system, "obs", None)
            if obs is None:
                return fn(self, batch, *args, **kwargs)
            with obs.span(name, cat="op", batch=len(batch)):
                return fn(self, batch, *args, **kwargs)

        return wrapper

    return deco


# ----------------------------------------------------------------------
# the index
# ----------------------------------------------------------------------
class PIMTrie:
    """A skew-resistant batch-parallel trie on a simulated PIM system."""

    def __init__(
        self,
        system: PIMSystem,
        config: Optional[PIMTrieConfig] = None,
        keys: Optional[Iterable[BitString]] = None,
        values: Optional[Iterable[Any]] = None,
    ):
        self.system = system
        self.config = config or PIMTrieConfig(num_modules=system.num_modules)
        if self.config.num_modules != system.num_modules:
            raise ValueError("config.num_modules must match the PIM system")
        self.hasher = self.config.make_hasher()
        self.w = self.config.word_bits
        #: the columnar flat-array core hard-codes 64-bit words, the
        #: modular (Mersenne-61) hash, and pivot matching; any other
        #: configuration falls back to the object pipeline
        self._columnar_ok = (
            self.w == 64
            and self.config.hash_kind == "modular"
            and self.config.use_pivots
        )

        # addressing registries + maintenance mirrors (DESIGN.md §7)
        self.block_module: dict[int, int] = {}
        self.block_parent: dict[int, Optional[int]] = {}
        self.block_children: dict[int, set[int]] = defaultdict(set)
        self.block_keys: dict[int, int] = {}
        self.block_depth: dict[int, int] = {}
        self._records: dict[int, MetaRecord] = {}
        self._root_strings: dict[int, BitString] = {}
        #: host replica log: block id -> {relative key -> value}, kept
        #: write-through by every mutating path so a crashed module's
        #: shards can be rebuilt without its memory (repro.faults)
        self._block_items: dict[int, dict[BitString, Any]] = {}
        #: extra read copies per block (repro.adapt): block id -> list
        #: of modules holding an identical copy, primary excluded.
        #: Reads round-robin over {primary} + replicas; writes fan out
        #: to every copy so the copies never diverge.
        self.block_replicas: dict[int, list[int]] = {}
        #: round-robin read cursor per replicated block
        self._block_rr: dict[int, int] = {}
        #: host-side per-block access counters since the last
        #: :meth:`take_block_touches` drain (pure bookkeeping — no
        #: rounds, no metric effect; feeds the repro.adapt sketch)
        self.block_touches: dict[int, int] = {}

        self.piece_module: dict[int, int] = {}
        self.piece_parent: dict[int, Optional[int]] = {}
        self.piece_children: dict[int, list[int]] = defaultdict(list)
        self.piece_owned: dict[int, set[int]] = defaultdict(set)
        self.piece_of_block: dict[int, int] = {}
        #: piece id -> root block of its record subtree (recovery needs
        #: it to reconstruct child_roots without the piece's memory)
        self.piece_root_block: dict[int, int] = {}
        #: meta-block-tree root pieces registered in the master-tree,
        #: mapped to their component root block
        self.master_pieces: dict[int, int] = {}

        self.root_block_id: Optional[int] = None
        self._query_trie: Optional[PatriciaTrie] = None
        self._query_nodes: dict[int, TrieNode] = {}
        self._query_strings: dict[int, BitString] = {}

        # recovery bookkeeping: structural-maintenance nesting depth and
        # the dirty flag an aborted maintenance path leaves behind
        self._maint_depth = 0
        self._dirty_structure = False

        #: content version of the replica-log key/value union; bumped
        #: only where the union changes (insert apply, delete apply,
        #: bulk build).  Placement maintenance — repartition, split,
        #: replicate, merge, empty-block collection — rewrites the log's
        #: *layout* but preserves the union, so ordered snapshots keyed
        #: on this version survive it untouched (which is exactly what
        #: makes ordered answers invisible to repro.adapt).
        self._ordered_version = 0
        self._ordered_cache: Optional[OrderedSnapshot] = None

        self._register_kernels()
        keys = list(keys or [])
        vals = list(values) if values is not None else None
        self._bulk_build(keys, vals)

    # ==================================================================
    # kernels
    # ==================================================================
    def _register_kernels(self) -> None:
        sys = self.system
        cfg = self.config
        hasher = self.hasher
        w = self.w

        def k_store(ctx: ModuleContext, reqs: list) -> list:
            out = []
            for r in reqs:
                if isinstance(r, _StoreBlock):
                    ctx.scratch.setdefault("blocks", {})[r.block.block_id] = r.block
                    ctx.tick(r.block.word_cost())
                    out.append(("block", r.block.block_id))
                elif isinstance(r, _StorePiece):
                    ctx.scratch.setdefault("pieces", {})[r.piece.piece_id] = r.piece
                    ctx.tick(r.piece.word_cost())
                    if fastpath.columnar_enabled():
                        table = RecordTable(r.piece.table.values(), w)
                        r.piece._match_cache = (r.piece.version, table)
                        warm_table(table)
                    out.append(("piece", r.piece.piece_id))
                else:
                    raise TypeError(f"bad store request {r!r}")
            return out

        def k_master(ctx: ModuleContext, reqs: list) -> list:
            table: Optional[RecordTable] = ctx.scratch.get("master")
            piece_of: dict[int, int] = ctx.scratch.get("master_piece", {})
            for r in reqs:
                assert isinstance(r, _MasterDelta)
                if r.full or table is None:
                    table = RecordTable([], w)
                    piece_of = {}
                for bid in r.remove:
                    rec = table.by_id.pop(bid, None)
                    piece_of.pop(bid, None)
                    if rec is not None:
                        table.remove(rec)
                    ctx.tick(1)
                for rec, pid in r.add:
                    table.add(rec)
                    piece_of[rec.block_id] = pid
                    ctx.tick(1)
            ctx.scratch["master"] = table
            ctx.scratch["master_piece"] = piece_of
            if table is not None and fastpath.columnar_enabled():
                # rebuild the probe caches now so the next match batch
                # starts warm (pure caches — no metric effect)
                warm_table(table)
            return []

        def k_match(ctx: ModuleContext, reqs: list) -> list:
            out: list = [None] * len(reqs)
            batched: list[tuple[int, _FragMatch, Any]] = []
            for i, r in enumerate(reqs):
                assert isinstance(r, _FragMatch)
                if r.scope == "master":
                    table = ctx.scratch.get("master") or RecordTable([], w)
                else:
                    piece: MetaPiece = ctx.scratch["pieces"][r.piece_id]
                    # the derived lookup table is a function of the
                    # piece's record set; key the cached build on the
                    # piece version so record mutations invalidate it.
                    # The tick models O(1) table addressing either way.
                    table = None
                    if fastpath.ENABLED:
                        cached = getattr(piece, "_match_cache", None)
                        if cached is not None and cached[0] == piece.version:
                            table = cached[1]
                    if table is None:
                        table = RecordTable(piece.table.values(), w)
                        piece._match_cache = (piece.version, table)
                    ctx.tick(1)
                if isinstance(r.frag, ColumnarFragment):
                    batched.append((i, r, table))
                    continue
                log = CollisionLog()
                cuts = hash_match_fragment(
                    r.frag, table, hasher,
                    use_pivots=cfg.use_pivots, verify=cfg.verify,
                    tick=ctx.tick, log=log,
                )
                out[i] = (r, cuts, log.rejected)
            if batched:
                # every columnar request in the round in one fused pass
                results = hash_match_columnar_many(
                    [(r.frag, table) for _, r, table in batched],
                    hasher, verify=cfg.verify,
                )
                for (i, r, _), (cuts, _ch, rejected, ticks) in zip(
                    batched, results
                ):
                    ctx.tick(ticks)
                    out[i] = (r, cuts, rejected)
            piece_of = ctx.scratch.get("master_piece", {})
            for i, (r, cuts, rejected) in enumerate(out):
                if r.scope == "master":
                    out[i] = (
                        [(c, piece_of.get(c.record.block_id)) for c in cuts],
                        rejected,
                    )
                else:
                    out[i] = ([(c, None) for c in cuts], rejected)
            return out

        def k_piece(ctx: ModuleContext, reqs: list) -> list:
            out = []
            pieces: dict[int, MetaPiece] = ctx.scratch.setdefault("pieces", {})
            touched: dict[int, MetaPiece] = {}
            for r in reqs:
                assert isinstance(r, _PieceOp)
                if r.op == "children":
                    piece = pieces[r.piece_id]
                    ctx.tick(len(piece.child_pieces) + 1)
                    out.append(
                        [
                            (cid, piece.table.get(piece.child_roots.get(cid)))
                            for cid in piece.child_pieces
                        ]
                    )
                elif r.op == "fetch":
                    piece = pieces[r.piece_id]
                    ctx.tick(len(piece.table))
                    out.append(list(piece.table.values()))
                elif r.op == "add":
                    piece = pieces[r.piece_id]
                    for rec, owned in r.payload:
                        piece.add_record(rec, owned=owned)
                        ctx.tick(1)
                    touched[r.piece_id] = piece
                    out.append(piece.own_size())
                elif r.op == "remove":
                    piece = pieces[r.piece_id]
                    for bid in r.payload:
                        piece.remove_record(bid)
                        ctx.tick(1)
                    touched[r.piece_id] = piece
                    out.append(piece.own_size())
                elif r.op == "free":
                    pieces.pop(r.piece_id, None)
                    touched.pop(r.piece_id, None)
                    ctx.tick(1)
                    out.append(True)
                elif r.op == "subtree":
                    piece = pieces[r.piece_id]
                    roots: set[int] = set(r.payload)
                    kids: dict[int, list[int]] = defaultdict(list)
                    for rec in piece.table.values():
                        if rec.parent_block is not None:
                            kids[rec.parent_block].append(rec.block_id)
                    found: list[MetaRecord] = []
                    stack = [b for b in roots if b in piece.table]
                    seen: set[int] = set()
                    while stack:
                        b = stack.pop()
                        if b in seen:
                            continue
                        seen.add(b)
                        found.append(piece.table[b])
                        stack.extend(kids.get(b, ()))
                        ctx.tick(1)
                    out.append(found)
                else:
                    raise ValueError(f"bad piece op {r.op!r}")
            if touched and fastpath.columnar_enabled():
                # refresh the per-piece match table eagerly so the next
                # match batch finds a warm cache (pure caches — no
                # metric effect; k_match still ticks table addressing)
                for pid, piece in touched.items():
                    table = RecordTable(piece.table.values(), w)
                    piece._match_cache = (piece.version, table)
                    warm_table(table)
            return out

        def k_block(ctx: ModuleContext, reqs: list) -> list:
            out = []
            blocks: dict[int, DataBlock] = ctx.scratch.setdefault("blocks", {})
            for r in reqs:
                assert isinstance(r, _BlockOp)
                blk = blocks.get(r.block_id)
                if r.op == "match":
                    assert blk is not None and r.frag is not None
                    if isinstance(r.frag, ColumnarFragment):
                        out.append(
                            local_match_columnar(
                                r.frag, blk.trie, blk.block_id,
                                blk.root_depth, tick=ctx.tick, w=w,
                            )
                        )
                    else:
                        out.append(
                            match_block_local(
                                r.frag, blk.trie, blk.block_id, blk.root_depth,
                                tick=ctx.tick, w=w,
                            )
                        )
                elif r.op == "insert":
                    assert blk is not None
                    for key, value in r.payload:
                        blk.trie.insert(key, value)
                        ctx.tick(max(1, len(key) // 64 + 1))
                    blk.mark_dirty()
                    out.append((blk.block_id, blk.trie.num_keys, blk.word_cost()))
                elif r.op == "delete":
                    assert blk is not None
                    removed = 0
                    for key in r.payload:
                        if blk.trie.delete(key):
                            removed += 1
                        ctx.tick(max(1, len(key) // 64 + 1))
                    blk.mark_dirty()
                    out.append(
                        (blk.block_id, blk.trie.num_keys, blk.word_cost(), removed)
                    )
                elif r.op == "subtree":
                    assert blk is not None
                    rel_prefix: BitString = r.payload
                    items = blk.trie.subtree_items(rel_prefix)
                    kids = []
                    for n in blk.trie.iter_nodes():
                        if n.mirror_child is None:
                            continue
                        s = blk.trie.key_of(n)
                        if s.starts_with(rel_prefix):
                            kids.append(n.mirror_child)
                    ctx.tick(len(items) + len(kids) + 1)
                    out.append((blk.root_depth, items, kids))
                elif r.op == "fetch":
                    assert blk is not None
                    ctx.tick(blk.word_cost())
                    out.append(blk)
                elif r.op == "free":
                    blocks.pop(r.block_id, None)
                    ctx.tick(1)
                    out.append(True)
                elif r.op == "drop_mirror":
                    assert blk is not None
                    removed_m = _remove_mirror(blk.trie, r.payload)
                    blk.mark_dirty()
                    ctx.tick(4)
                    out.append(removed_m)
                elif r.op == "set_parent":
                    assert blk is not None
                    blk.parent_id = r.payload
                    ctx.tick(1)
                    out.append(True)
                elif r.op == "store":
                    blocks[r.payload.block_id] = r.payload
                    ctx.tick(r.payload.word_cost())
                    out.append(r.payload.block_id)
                else:
                    raise ValueError(f"bad block op {r.op!r}")
            return out

        def k_wipe(ctx: ModuleContext, reqs: list) -> list:
            # full-rebuild recovery: forget every pimtrie structure on
            # this module (other scratch tenants are left alone)
            for key in ("blocks", "pieces", "master", "master_piece"):
                ctx.scratch.pop(key, None)
            ctx.tick(1)
            return []

        sys.register_kernel("pimtrie.store", k_store)
        sys.register_kernel("pimtrie.master", k_master)
        sys.register_kernel("pimtrie.match", k_match)
        sys.register_kernel("pimtrie.piece", k_piece)
        sys.register_kernel("pimtrie.block", k_block)
        sys.register_kernel("pimtrie.wipe", k_wipe)

    # ==================================================================
    # construction
    # ==================================================================
    def _bulk_build(self, keys: list[BitString], values: Optional[list[Any]]) -> None:
        data_trie = build_query_trie(keys, values)
        blocks, root_strings = extract_blocks(
            data_trie, self.config.block_bound, self.hasher, self.w
        )
        sends: dict[int, list] = defaultdict(list)
        for blk in blocks:
            if blk.parent_id is None:
                self.root_block_id = blk.block_id
            m = self.system.random_module()
            self.block_module[blk.block_id] = m
            self.block_parent[blk.block_id] = blk.parent_id
            if blk.parent_id is not None:
                self.block_children[blk.parent_id].add(blk.block_id)
            self.block_keys[blk.block_id] = blk.trie.num_keys
            self.block_depth[blk.block_id] = blk.root_depth
            self._root_strings[blk.block_id] = root_strings[blk.block_id]
            self._block_items[blk.block_id] = dict(blk.trie.iter_items())
            sends[m].append(_StoreBlock(blk))
        if sends:
            self.system.round("pimtrie.store", sends)
        for blk in blocks:
            self._records[blk.block_id] = make_record(
                blk.block_id,
                root_strings[blk.block_id],
                self.block_module[blk.block_id],
                self.hasher,
                blk.parent_id,
                self.w,
            )
        self._ordered_version += 1
        self._rebuild_hvm()

    # ==================================================================
    # HVM construction / replication / maintenance
    # ==================================================================
    @_structural
    def _rebuild_hvm(self) -> None:
        """(Re)build every meta piece and the master from the record
        mirror (bulk build, and the fallback for structural rebuilds)."""
        frees: dict[int, list] = defaultdict(list)
        for pid, m in self.piece_module.items():
            frees[m].append(_PieceOp("free", pid))
        if frees:
            self.system.round("pimtrie.piece", frees)
        self.piece_module.clear()
        self.piece_parent.clear()
        self.piece_children.clear()
        self.piece_owned.clear()
        self.piece_of_block.clear()
        self.piece_root_block.clear()
        self.master_pieces.clear()
        if not self._records:
            self._broadcast_master(full=True)
            return
        kids: dict[int, list[int]] = defaultdict(list)
        root = None
        for rec in self._records.values():
            if rec.parent_block is None or rec.parent_block not in self._records:
                root = rec.block_id
            else:
                kids[rec.parent_block].append(rec.block_id)
        assert root is not None, "meta-tree has no root"
        self._build_trees_for(root, kids)
        self._broadcast_master(full=True)

    def _build_trees_for(self, root: int, kids: dict[int, list[int]]) -> None:
        """Stage 1 + stage 2 decomposition for the component under
        ``root``; ships pieces and registers tree roots in the master."""
        cfg = self.config
        comp_members, comp_children, _ = decompose_component(
            root, kids, cfg.meta_block_bound
        )
        sends: dict[int, list] = defaultdict(list)
        for comp_key, members in comp_members.items():
            member_set = set(members)
            local_kids = {
                b: [c for c in kids.get(b, ()) if c in member_set] for b in members
            }
            pm, pc, proot = decompose_component(
                comp_key, local_kids, cfg.small_meta_bound
            )
            id_of = {key: next_piece_id() for key in pm}

            def subtree_records(key: int) -> list[int]:
                out: list[int] = []
                stack = [key]
                while stack:
                    k = stack.pop()
                    out.extend(pm[k])
                    stack.extend(pc[k])
                return out

            for key in pm:
                pid = id_of[key]
                module = self.system.random_module()
                piece = MetaPiece(pid, module, self.w)
                piece.root_block = key
                owned = set(pm[key])
                for b in subtree_records(key):
                    piece.add_record(self._records[b], owned=b in owned)
                piece.child_pieces = [id_of[c] for c in pc[key]]
                piece.child_roots = {id_of[c]: c for c in pc[key]}
                self.piece_module[pid] = module
                self.piece_children[pid] = list(piece.child_pieces)
                self.piece_owned[pid] = owned
                self.piece_root_block[pid] = key
                for b in owned:
                    self.piece_of_block[b] = pid
                sends[module].append(_StorePiece(piece))
            for key in pm:
                for c in pc[key]:
                    self.piece_parent[id_of[c]] = id_of[key]
            self.piece_parent.setdefault(id_of[proot], None)
            self.master_pieces[id_of[proot]] = comp_key
        if sends:
            self.system.round("pimtrie.store", sends)

    def _broadcast_master(self, full: bool = False, add=None, remove=None) -> None:
        if full:
            adds = [
                (self._records[rb], pid)
                for pid, rb in self.master_pieces.items()
                if rb in self._records
            ]
            msg = _MasterDelta(add=adds, remove=[], full=True)
        else:
            msg = _MasterDelta(add=add or [], remove=remove or [], full=False)
        self.system.round(
            "pimtrie.master",
            {m: [msg] for m in range(self.system.num_modules)},
        )

    # ------------------------------------------------------------------
    def _piece_ancestors(self, pid: int) -> list[int]:
        out = []
        cur = self.piece_parent.get(pid)
        while cur is not None:
            out.append(cur)
            cur = self.piece_parent.get(cur)
        return out

    def _tree_root_of(self, pid: int) -> int:
        cur = pid
        while self.piece_parent.get(cur) is not None:
            cur = self.piece_parent[cur]
        return cur

    def _tree_pieces(self, root_pid: int) -> list[int]:
        out = []
        stack = [root_pid]
        while stack:
            p = stack.pop()
            out.append(p)
            stack.extend(self.piece_children.get(p, ()))
        return out

    def _subtree_owned_count(self, pid: int) -> int:
        return sum(
            len(self.piece_owned.get(p, ())) for p in self._tree_pieces(pid)
        )

    @_structural
    def _hvm_add_records(self, recs: list[MetaRecord]) -> None:
        """Incremental §5.2 insert maintenance: each new record joins the
        leaf piece owning its parent block and is replicated up the piece
        path; overflowing or alpha-imbalanced trees are rebuilt."""
        cfg = self.config
        sends: dict[int, list[tuple[int, list]]] = defaultdict(list)
        msgs: dict[int, dict[int, list]] = defaultdict(lambda: defaultdict(list))
        dirty_trees: set[int] = set()
        for rec in recs:
            self._records[rec.block_id] = rec
            parent = rec.parent_block
            pid = self.piece_of_block.get(parent) if parent is not None else None
            if pid is None:
                dirty_trees.add(-1)  # force full rebuild
                continue
            self.piece_of_block[rec.block_id] = pid
            self.piece_owned[pid].add(rec.block_id)
            msgs[self.piece_module[pid]][pid].append((rec, True))
            for anc in self._piece_ancestors(pid):
                msgs[self.piece_module[anc]][anc].append((rec, False))
            if len(self.piece_owned[pid]) > cfg.small_meta_bound:
                dirty_trees.add(self._tree_root_of(pid))
        if msgs:
            round_reqs = {
                m: [_PieceOp("add", pid, payload=items) for pid, items in per.items()]
                for m, per in msgs.items()
            }
            self.system.round("pimtrie.piece", round_reqs)
        # alpha-imbalance and K_MB checks on affected trees
        affected_roots = {
            self._tree_root_of(self.piece_of_block[r.block_id])
            for r in recs
            if r.block_id in self.piece_of_block
        }
        for root_pid in affected_roots:
            total = self._subtree_owned_count(root_pid)
            if total > cfg.meta_block_bound:
                dirty_trees.add(root_pid)
                continue
            for p in self._tree_pieces(root_pid):
                mine = self._subtree_owned_count(p)
                for c in self.piece_children.get(p, ()):
                    if self._subtree_owned_count(c) > cfg.alpha * mine:
                        dirty_trees.add(root_pid)
        if -1 in dirty_trees:
            self._rebuild_hvm()
            return
        for root_pid in dirty_trees:
            self._rebuild_tree(root_pid)

    @_structural
    def _hvm_update_records(self, recs: list[MetaRecord]) -> None:
        """Replace existing records in place (e.g. parent pointer moved
        during block re-partitioning)."""
        msgs: dict[int, dict[int, list]] = defaultdict(lambda: defaultdict(list))
        for rec in recs:
            self._records[rec.block_id] = rec
            pid = self.piece_of_block.get(rec.block_id)
            if pid is None:
                continue
            msgs[self.piece_module[pid]][pid].append((rec, True))
            for anc in self._piece_ancestors(pid):
                msgs[self.piece_module[anc]][anc].append((rec, False))
        if msgs:
            round_reqs = {
                m: [_PieceOp("add", pid, payload=items) for pid, items in per.items()]
                for m, per in msgs.items()
            }
            self.system.round("pimtrie.piece", round_reqs)
        master_updates = [
            (self._records[rb], pid)
            for pid, rb in self.master_pieces.items()
            if any(r.block_id == rb for r in recs)
        ]
        if master_updates:
            self._broadcast_master(add=master_updates)

    @_structural
    def _hvm_remove_records(self, block_ids: list[int]) -> None:
        msgs: dict[int, dict[int, list]] = defaultdict(lambda: defaultdict(list))
        dirty = False
        for bid in block_ids:
            self._records.pop(bid, None)
            pid = self.piece_of_block.pop(bid, None)
            if pid is None:
                continue
            self.piece_owned[pid].discard(bid)
            msgs[self.piece_module[pid]][pid].append(bid)
            for anc in self._piece_ancestors(pid):
                msgs[self.piece_module[anc]][anc].append(bid)
            if not self.piece_owned[pid]:
                dirty = True
            if pid in self.master_pieces and self.master_pieces[pid] == bid:
                dirty = True
        if msgs:
            round_reqs = {
                m: [
                    _PieceOp("remove", pid, payload=items)
                    for pid, items in per.items()
                ]
                for m, per in msgs.items()
            }
            self.system.round("pimtrie.piece", round_reqs)
        if dirty:
            self._rebuild_hvm()

    @_structural
    def _rebuild_tree(self, root_pid: int) -> None:
        """Scapegoat rebuild of one meta-block tree (§5.2): free its
        pieces, re-decompose its records, ship fresh pieces, fix master."""
        pieces = self._tree_pieces(root_pid)
        blocks = [b for p in pieces for b in self.piece_owned.get(p, ())]
        frees: dict[int, list] = defaultdict(list)
        for p in pieces:
            frees[self.piece_module[p]].append(_PieceOp("free", p))
            self.piece_owned.pop(p, None)
            self.piece_children.pop(p, None)
            self.piece_parent.pop(p, None)
            self.piece_module.pop(p, None)
            self.piece_root_block.pop(p, None)
        if frees:
            self.system.round("pimtrie.piece", frees)
        old_root_block = self.master_pieces.pop(root_pid, None)
        block_set = set(blocks)
        kids: dict[int, list[int]] = defaultdict(list)
        root_block = None
        for b in blocks:
            rec = self._records[b]
            if rec.parent_block in block_set:
                kids[rec.parent_block].append(b)
            else:
                root_block = b
        assert root_block is not None
        before = set(self.master_pieces)
        self._build_trees_for(root_block, kids)
        new_roots = set(self.master_pieces) - before
        adds = [(self._records[self.master_pieces[p]], p) for p in new_roots]
        removes = [old_root_block] if old_root_block is not None else []
        self._broadcast_master(add=adds, remove=removes)

    # ==================================================================
    # trie matching (Algorithms 2, 4, 5)
    # ==================================================================
    def _build_query(self, keys, values=None):
        """The batch's query trie: a columnar arena when the flat-array
        core is enabled and applicable, the object trie otherwise."""
        if fastpath.columnar_enabled() and self._columnar_ok:
            return QueryArena.build(list(keys), values)
        return build_query_trie(list(keys), values)

    def _prepare_query(self, qt) -> None:
        self._query_trie = qt
        if isinstance(qt, QueryArena):
            self._query_nodes = qt.node_map()
            self._query_strings = {}
        else:
            self._query_nodes = {n.uid: n for n in qt.iter_nodes()}
            self._query_strings = rootfix(
                qt, BitString(0, 0), lambda acc, n: acc + n.parent_edge.label
            )
        self.system.tick_cpu(qt.num_nodes())

    @staticmethod
    def _make_pos(node, back: int = 0):
        """A PathPos in whichever coordinate system ``node`` lives in."""
        if isinstance(node, ColNodeRef):
            return ColPathPos(node, back)
        return PathPos(node, back)

    def _span(self, qt, positions):
        """Span dispatch: arena fragments or object clones."""
        if isinstance(qt, QueryArena):
            return span_columnar(qt, positions)
        return span_fragments(
            qt, positions, self._query_strings, self.hasher, self.w
        )

    def _hash_match(self, frag, table, tick, log):
        """HashMatching dispatch for CPU-side (pull) matching."""
        cfg = self.config
        if isinstance(frag, ColumnarFragment):
            return hash_match_columnar(
                frag, table, self.hasher,
                verify=cfg.verify, tick=tick, log=log,
            )
        return hash_match_fragment(
            frag, table, self.hasher,
            use_pivots=cfg.use_pivots, verify=cfg.verify,
            tick=tick, log=log,
        )

    def match_batch(self, query_trie: PatriciaTrie) -> MatchOutcome:
        """Full trie matching for a prepared query trie (Algorithm 2)."""
        outcome = MatchOutcome()
        if self.root_block_id is None or query_trie.num_keys == 0:
            return outcome
        if self._query_trie is not query_trie:
            self._prepare_query(query_trie)
        with maybe_span(self.system, "match.master", cat="phase"):
            master_cuts = self._master_match(query_trie)
        with maybe_span(self.system, "match.meta", cat="phase"):
            block_cut_map = self._match_critical_blocks(master_cuts, outcome)
        with maybe_span(self.system, "match.blocks", cat="phase"):
            block_frags = self._spawn_block_fragments(block_cut_map)
            self._match_blocks(block_frags, outcome)
        return outcome

    # ------------------------------------------------------------------
    def _master_match(
        self, query_trie: PatriciaTrie
    ) -> list[tuple[PathPos, MetaRecord, Optional[int]]]:
        """Algorithm 4: split the query trie into O(P log P) similar-size
        pieces, send to random modules, HashMatch against the master."""
        cfg = self.config
        P = self.system.num_modules
        total = query_trie.word_cost()
        target = max(8, total // max(1, P * cfg.log_p))
        if isinstance(query_trie, QueryArena):
            # partition rows come out ascending == preorder, the same
            # order the object path's iter_nodes filter yields
            cuts = [
                ColPathPos(ColNodeRef(r)) for r in query_trie.partition(target)
            ]
        else:
            root_uids = partition_weighted(query_trie, target)
            cuts = [
                PathPos(n) for n in query_trie.iter_nodes() if n.uid in root_uids
            ]
        frags = self._span(query_trie, cuts)
        sends: dict[int, list] = defaultdict(list)
        order: dict[int, list[QueryFragment]] = defaultdict(list)
        for f in frags:
            m = self.system.random_module()
            sends[m].append(_FragMatch(f, "master"))
            order[m].append(f)
        out: list[tuple[PathPos, MetaRecord, Optional[int]]] = []
        if not sends:
            return out
        replies = self.system.round("pimtrie.match", sends)
        for m, reply in replies.items():
            for frag, (result, _collisions) in zip(order[m], reply):
                for cut, piece_id in result:
                    origin_uid = frag.origin.get(cut.node_uid)
                    if origin_uid is None:
                        continue
                    node = self._query_nodes.get(origin_uid)
                    if node is None:
                        continue
                    out.append(
                        (self._make_pos(node, cut.back), cut.record, piece_id)
                    )
        return out

    # ------------------------------------------------------------------
    def _match_critical_blocks(
        self,
        master_cuts: list[tuple[PathPos, MetaRecord, Optional[int]]],
        outcome: MatchOutcome,
    ) -> dict[tuple[int, int], MetaRecord]:
        """Algorithm 5: divide query meta-blocks down the piece trees
        with push-pull; returns critical block cuts in query-trie
        coordinates."""
        cfg = self.config
        qt = self._query_trie
        assert qt is not None
        # span the query trie at the master hits (plus the root seed)
        positions: list = [self._make_pos(qt.root)]
        piece_at: dict[tuple[int, int], int] = {}
        root_pid = None
        for pid, rb in self.master_pieces.items():
            if rb == self.root_block_id:
                root_pid = pid
        if root_pid is not None:
            piece_at[(qt.root.uid, 0)] = root_pid
        block_cut_map: dict[tuple[int, int], MetaRecord] = {}
        for pos, rec, pid in master_cuts:
            positions.append(pos)
            if pid is not None:
                piece_at[(pos.node.uid, pos.back)] = pid
            # component roots are block roots themselves: they are
            # critical cuts in their own right
            key = (pos.node.uid, pos.back)
            prev = block_cut_map.get(key)
            if prev is None or rec.depth > prev.depth:
                block_cut_map[key] = rec
        frags = self._span(qt, positions)
        pending: list[tuple[QueryFragment, int, bool]] = []
        for f in frags:
            key = (f.base_pos.node.uid, f.base_pos.back)
            pid = piece_at.get(key, root_pid)
            if pid is not None:
                pending.append((f, pid, False))

        rounds_guard = 0
        while pending:
            rounds_guard += 1
            force_all = rounds_guard > 4 * (cfg.log_p + 2)
            pushes: list[tuple[QueryFragment, int]] = []
            pulls: list[tuple[QueryFragment, int]] = []
            descents: list[tuple[QueryFragment, int]] = []
            for frag, pid, force_pull in pending:
                small = frag.word_cost() <= cfg.pull_threshold
                if not cfg.use_push_pull:
                    small = True
                if force_pull or force_all:
                    pulls.append((frag, pid))
                elif small:
                    pushes.append((frag, pid))
                elif self.piece_children.get(pid):
                    descents.append((frag, pid))
                else:
                    pulls.append((frag, pid))
            pending = []

            if pushes:
                sends: dict[int, list] = defaultdict(list)
                order: dict[int, list[QueryFragment]] = defaultdict(list)
                for frag, pid in pushes:
                    m = self.piece_module[pid]
                    sends[m].append(_FragMatch(frag, "piece", pid))
                    order[m].append(frag)
                replies = self.system.round("pimtrie.match", sends)
                for m, reply in replies.items():
                    for frag, (result, coll) in zip(order[m], reply):
                        outcome.collisions += coll
                        self._absorb_block_cuts(
                            frag, [c for c, _ in result], block_cut_map
                        )

            if pulls:
                sends = defaultdict(list)
                order2: dict[int, list[QueryFragment]] = defaultdict(list)
                for frag, pid in pulls:
                    m = self.piece_module[pid]
                    sends[m].append(_PieceOp("fetch", pid))
                    order2[m].append(frag)
                replies = self.system.round("pimtrie.piece", sends)
                for m, reply in replies.items():
                    for frag, records in zip(order2[m], reply):
                        table = RecordTable(records, self.w)
                        log = CollisionLog()
                        cuts = self._hash_match(
                            frag, table, self.system.tick_cpu, log
                        )
                        outcome.collisions += log.rejected
                        self._absorb_block_cuts(frag, cuts, block_cut_map)

            if descents:
                sends = defaultdict(list)
                order3: dict[int, list[tuple[QueryFragment, int]]] = defaultdict(list)
                for frag, pid in descents:
                    m = self.piece_module[pid]
                    sends[m].append(_PieceOp("children", pid))
                    order3[m].append((frag, pid))
                replies = self.system.round("pimtrie.piece", sends)
                for m, reply in replies.items():
                    for (frag, pid), kids in zip(order3[m], reply):
                        child_recs = [
                            (cid, rec) for cid, rec in kids if rec is not None
                        ]
                        table = RecordTable(
                            [rec for _, rec in child_recs], self.w
                        )
                        piece_by_block = {
                            rec.block_id: cid for cid, rec in child_recs
                        }
                        log = CollisionLog()
                        cuts = self._hash_match(
                            frag, table, self.system.tick_cpu, log
                        )
                        outcome.collisions += log.rejected
                        if not cuts:
                            pending.append((frag, pid, True))
                            continue
                        # child piece roots are block roots: critical cuts
                        self._absorb_block_cuts(frag, cuts, block_cut_map)
                        for sf, cut in self._respan(frag, cuts):
                            cid = piece_by_block[cut.record.block_id]
                            pending.append((sf, cid, False))
                        # the remainder above the cuts still needs this
                        # piece's own records
                        pending.append((frag, pid, True))
        return block_cut_map

    # ------------------------------------------------------------------
    def _absorb_block_cuts(
        self,
        frag: QueryFragment,
        cuts: list[MatchCut],
        block_cut_map: dict[tuple[int, int], MetaRecord],
    ) -> None:
        for cut in cuts:
            origin_uid = frag.origin.get(cut.node_uid)
            if origin_uid is None:
                continue
            key = (origin_uid, cut.back)
            prev = block_cut_map.get(key)
            if prev is None or cut.record.depth > prev.depth:
                block_cut_map[key] = cut.record

    def _respan(
        self, frag: QueryFragment, cuts: list[MatchCut]
    ) -> list[tuple[QueryFragment, MatchCut]]:
        """Split a fragment at (fragment-coordinate) cuts; rebase each
        sub-fragment to absolute coordinates and compose origin maps."""
        if isinstance(frag, ColumnarFragment):
            return respan_columnar(frag, cuts)
        frag_strings = rootfix(
            frag.trie, BitString(0, 0), lambda acc, n: acc + n.parent_edge.label
        )
        node_of = {n.uid: n for n in frag.trie.iter_nodes()}
        positions: list[tuple[PathPos, MatchCut]] = []
        for cut in cuts:
            node = node_of.get(cut.node_uid)
            if node is None:
                continue
            positions.append((PathPos(node, cut.back), cut))
        subs = span_fragments(
            frag.trie,
            [p for p, _ in positions],
            frag_strings,
            self.hasher,
            self.w,
        )
        by_pos = {(p.node.uid, p.back): c for p, c in positions}
        out: list[tuple[QueryFragment, MatchCut]] = []
        for sf in subs:
            cut = by_pos.get((sf.base_pos.node.uid, sf.base_pos.back))
            if cut is None:
                continue
            rel_base = frag_strings[sf.base_pos.node.uid]
            rel_base = rel_base.prefix(len(rel_base) - sf.base_pos.back)
            abs_base = frag.base_depth + len(rel_base)
            abs_hash = self.hasher.combine(
                frag.base_hash, self.hasher.hash(rel_base)
            )
            tail_bits = min(self.w, abs_base)
            if len(rel_base) >= tail_bits:
                tail = rel_base.suffix_from(len(rel_base) - tail_bits)
            else:
                need = tail_bits - len(rel_base)
                bt = frag.base_tail
                tail = bt.suffix_from(max(0, len(bt) - need)) + rel_base
            pre_len = (abs_base // self.w) * self.w
            rem_len = abs_base - pre_len
            base_rem = (
                tail.suffix_from(len(tail) - rem_len)
                if rem_len
                else BitString(0, 0)
            )
            if pre_len >= frag.base_depth:
                pre_hash = self.hasher.combine(
                    frag.base_hash,
                    self.hasher.hash(rel_base.prefix(pre_len - frag.base_depth)),
                )
            else:
                gap = frag.base_rem + rel_base
                pre_hash = self.hasher.combine(
                    frag.base_pre_hash,
                    self.hasher.hash(
                        gap.prefix(pre_len - frag.aligned_base_depth)
                    ),
                )
            sf.origin = {
                k: frag.origin[v]
                for k, v in sf.origin.items()
                if v in frag.origin
            }
            sf.base_depth = abs_base
            sf.base_hash = abs_hash
            sf.base_tail = tail
            sf.base_pre_hash = pre_hash
            sf.base_rem = base_rem
            out.append((sf, cut))
        return out

    # ------------------------------------------------------------------
    def _spawn_block_fragments(
        self, block_cut_map: dict[tuple[int, int], MetaRecord]
    ) -> list[tuple[QueryFragment, MetaRecord]]:
        qt = self._query_trie
        assert qt is not None
        positions: list = [self._make_pos(qt.root)]
        recs: dict[tuple[int, int], MetaRecord] = {
            (qt.root.uid, 0): self._records[self.root_block_id]
        }
        for (uid, back), rec in block_cut_map.items():
            node = self._query_nodes.get(uid)
            if node is None:
                continue
            positions.append(self._make_pos(node, back))
            recs[(uid, back)] = rec
        frags = self._span(qt, positions)
        out = []
        for f in frags:
            key = (f.base_pos.node.uid, f.base_pos.back)
            rec = recs.get(key)
            if rec is None or f.base_depth != rec.depth:
                continue
            out.append((f, rec))
        return out

    # ------------------------------------------------------------------
    def _match_blocks(
        self,
        block_frags: list[tuple[QueryFragment, MetaRecord]],
        outcome: MatchOutcome,
    ) -> None:
        """Algorithm 2: push small query blocks / pull large data blocks,
        run local bit-by-bit matching, merge results."""
        cfg = self.config
        pushes: list[tuple[QueryFragment, MetaRecord]] = []
        pulls: list[tuple[QueryFragment, MetaRecord]] = []
        for frag, rec in block_frags:
            if cfg.use_push_pull and frag.word_cost() >= cfg.block_bound:
                pulls.append((frag, rec))
            else:
                pushes.append((frag, rec))
        results: list[LocalMatchResult] = []
        if pushes:
            sends: dict[int, list] = defaultdict(list)
            for frag, rec in pushes:
                m = self._read_module(rec.block_id)
                sends[m].append(_BlockOp("match", rec.block_id, frag=frag))
            replies = self.system.round("pimtrie.block", sends)
            for reply in replies.values():
                results.extend(reply)
        if pulls:
            sends = defaultdict(list)
            order: dict[int, list[tuple[QueryFragment, MetaRecord]]] = defaultdict(list)
            for frag, rec in pulls:
                m = self._read_module(rec.block_id)
                sends[m].append(_BlockOp("fetch", rec.block_id))
                order[m].append((frag, rec))
            replies = self.system.round("pimtrie.block", sends)
            for m, reply in replies.items():
                for (frag, rec), blk in zip(order[m], reply):
                    if isinstance(frag, ColumnarFragment):
                        results.append(
                            local_match_columnar(
                                frag, blk.trie, blk.block_id, blk.root_depth,
                                tick=self.system.tick_cpu, w=self.w,
                            )
                        )
                    else:
                        results.append(
                            match_block_local(
                                frag, blk.trie, blk.block_id, blk.root_depth,
                                tick=self.system.tick_cpu, w=self.w,
                            )
                        )
        # merge (Algorithm 2 line 14): deepest wins; full node matches
        # beat equal-depth cutoffs.  Improvements accumulate as plain
        # tuples so each surviving uid allocates one MatchEntry, not one
        # per improvement step.
        ent = outcome.entries
        upd: dict[int, tuple] = {}
        for res in results:
            bid = res.block_id
            for uid, (depth, on_node, has_key, value) in res.node_matches.items():
                prev = upd.get(uid)
                if prev is None:
                    e = ent.get(uid)
                    if e is not None:
                        prev = (
                            e.depth, e.full, e.on_node, e.has_key,
                            e.value, e.block,
                        )
                if (
                    prev is None
                    or depth > prev[0]
                    or (depth == prev[0] and not prev[1])
                    or (depth == prev[0] and has_key and not prev[3])
                ):
                    upd[uid] = (depth, True, on_node, has_key, value, bid)
            for uid, depth in res.cutoffs.items():
                prev = upd.get(uid)
                if prev is None:
                    e = ent.get(uid)
                    if e is not None:
                        prev = (
                            e.depth, e.full, e.on_node, e.has_key,
                            e.value, e.block,
                        )
                if prev is None or depth > prev[0]:
                    upd[uid] = (depth, False, False, False, None, bid)
        for uid, t in upd.items():
            ent[uid] = MatchEntry(*t)

    # ==================================================================
    # per-key folding of the matched trie
    # ==================================================================
    def _fold_keys(
        self, qt: PatriciaTrie, outcome: MatchOutcome
    ) -> dict[BitString, tuple[int, int, bool, Any]]:
        """For every key in the query trie: (LCP depth, owning block,
        exact-key-stored, stored value) via a rootfix (§5.1)."""
        if isinstance(qt, QueryArena):
            return qt.fold(outcome, self.root_block_id)
        out: dict[BitString, tuple[int, int, bool, Any]] = {}
        root_state = (0, self.root_block_id or 0, False)
        stack: list[tuple[TrieNode, tuple[int, int, bool], BitString]] = [
            (qt.root, root_state, BitString(0, 0))
        ]
        while stack:
            node, pstate, s = stack.pop()
            depth, block, diverged = pstate
            entry = outcome.get(node.uid)
            if not diverged and entry is not None:
                depth, block, diverged = entry.depth, entry.block, not entry.full
            if node.is_key:
                exact = (
                    entry is not None
                    and entry.full
                    and entry.depth == len(s)
                    and entry.has_key
                    and not diverged
                )
                value = entry.value if exact and entry is not None else None
                out[s] = (depth, block, exact, value)
            for b in (0, 1):
                e = node.children[b]
                if e is not None:
                    stack.append(
                        (e.dst, (depth, block, diverged), s + e.label)
                    )
        return out

    # ==================================================================
    # adaptive-skew support (repro.adapt): read routing + touch stats
    # ==================================================================
    def _read_module(self, bid: int) -> int:
        """The module to read block ``bid`` from.

        Unreplicated blocks (the common case) read from their primary —
        one dict probe, no RNG, byte-identical to the pre-replication
        behaviour.  Replicated blocks round-robin over ``{primary} +
        replicas`` with a deterministic per-block cursor, spreading hot
        read traffic across copies (writes always reach every copy, so
        any copy answers correctly).
        """
        reps = self.block_replicas.get(bid)
        primary = self.block_module[bid]
        if not reps:
            return primary
        ring = [primary, *reps]
        i = self._block_rr.get(bid, 0)
        self._block_rr[bid] = (i + 1) % len(ring)
        return ring[i % len(ring)]

    def _note_touches(self, folded: dict) -> None:
        """Count one access per distinct batch key against its owning
        block.  Host-side control-plane bookkeeping: no rounds, no
        ticks — feeding the adapt layer's sketch never perturbs the
        PIM Model metrics."""
        t = self.block_touches
        for _depth, block, _exact, _value in folded.values():
            t[block] = t.get(block, 0) + 1

    def take_block_touches(self) -> dict[int, int]:
        """Drain the per-block access counters (serve calls this once
        per epoch to feed the frequency sketch)."""
        out = self.block_touches
        self.block_touches = {}
        return out

    def _base_owners(self, keys: Iterable[BitString]) -> dict[BitString, int]:
        """Which of ``keys`` equal a block base, mapped to that block.

        Inverts ``_root_strings`` per batch; block counts are small next
        to batch work, and recomputing beats maintaining yet another
        registry across repartition / collection / rebuild.
        """
        inv = {s: bid for bid, s in self._root_strings.items()}
        return {k: inv[k] for k in keys if k in inv}

    # ==================================================================
    # public batch operations (§5)
    # ==================================================================
    @_traced_op("op.lcp")
    def lcp_batch(self, keys: Sequence[BitString]) -> list[int]:
        """LongestCommonPrefix for a batch of keys (§5.1)."""
        if not keys:
            return []
        if self.root_block_id is None:
            return [0] * len(keys)
        with maybe_span(self.system, "query.build", cat="phase"):
            qt = self._build_query(keys)
            self._prepare_query(qt)
        outcome = self.match_batch(qt)
        with maybe_span(self.system, "query.fold", cat="phase"):
            folded = self._fold_keys(qt, outcome)
        self._note_touches(folded)
        return [folded[k][0] for k in keys]

    @_traced_op("op.lookup")
    def lookup_batch(self, keys: Sequence[BitString]) -> list[Any]:
        """Values for exactly-stored keys (None otherwise)."""
        if not keys:
            return []
        with maybe_span(self.system, "query.build", cat="phase"):
            qt = self._build_query(keys)
            self._prepare_query(qt)
        outcome = self.match_batch(qt)
        with maybe_span(self.system, "query.fold", cat="phase"):
            folded = self._fold_keys(qt, outcome)
        self._note_touches(folded)
        return [folded[k][3] if folded[k][2] else None for k in keys]

    # ------------------------------------------------------------------
    @_traced_op("op.insert")
    def insert_batch(
        self,
        keys: Sequence[BitString],
        values: Optional[Sequence[Any]] = None,
    ) -> int:
        """Insert a batch; returns the number of genuinely new keys (§5.2)."""
        if not keys:
            return 0
        vals = list(values) if values is not None else [None] * len(keys)
        with maybe_span(self.system, "query.build", cat="phase"):
            qt = self._build_query(keys, vals)
            self._prepare_query(qt)
        outcome = self.match_batch(qt)
        with maybe_span(self.system, "query.fold", cat="phase"):
            folded = self._fold_keys(qt, outcome)
        by_block: dict[int, list[tuple[BitString, Any]]] = defaultdict(list)
        # duplicate keys within a batch follow sequential semantics: the
        # last write wins, exactly as if the ops were applied one by one
        # (and therefore invariant under splitting a batch in two, which
        # the serve layer's epoch boundaries do).  dict order keeps the
        # iteration — and thus every placement draw — deterministic.
        with maybe_span(self.system, "insert.dedup", cat="phase"):
            latest: dict[BitString, Any] = {}
            for key, value in zip(keys, vals):
                latest[key] = value
            base_owner = self._base_owners(latest)
            new_keys = 0
            for key, value in latest.items():
                depth, block, exact, _old = folded[key]
                owner = base_owner.get(key)
                if owner is not None and owner != block:
                    # the key *is* a block base: the child block's root
                    # owns it (the parent holds only a non-key mirror
                    # leaf — see _clone_subtree), but the match can
                    # resolve the depth tie to the parent block.
                    # Redirect, and read exactness from the replica log
                    # instead of the mis-routed match.
                    block = owner
                    exact = BitString(0, 0) in self._block_items.get(owner, ())
                rel = key.suffix_from(self.block_depth[block])
                by_block[block].append((rel, value))
                if not exact:
                    new_keys += 1
        self._note_touches(folded)
        with maybe_span(self.system, "insert.apply", cat="phase"):
            sends: dict[int, list] = defaultdict(list)
            for block, items in by_block.items():
                op = _BlockOp("insert", block, payload=items)
                # writes fan out to every copy, so replicas never
                # diverge from the primary (repro.adapt)
                sends[self.block_module[block]].append(op)
                for rm in self.block_replicas.get(block, ()):
                    sends[rm].append(op)
            oversized: list[int] = []
            if sends:
                replies = self.system.round("pimtrie.block", sends)
                # write-through replica log, only once the round
                # committed: an aborted round leaves the log matching
                # module state, and the retried batch re-applies both
                # sides (upsert semantics)
                for block, items in by_block.items():
                    log = self._block_items.setdefault(block, {})
                    for rel, value in items:
                        log[rel] = value
                self._ordered_version += 1
                for reply in replies.values():
                    for (bid, nkeys, words) in reply:
                        self.block_keys[bid] = nkeys
                        if (
                            words > 2 * self.config.block_bound
                            and bid not in oversized
                        ):
                            oversized.append(bid)
        if oversized:
            self._repartition_blocks(oversized)
        return new_keys

    # ------------------------------------------------------------------
    @_structural
    def _repartition_blocks(
        self, block_ids: list[int], *, bound: Optional[int] = None
    ) -> None:
        """Pull oversized blocks, re-run the §4.2 blocking algorithm on
        each, ship the resulting blocks, update mirrors and the HVM.

        ``bound`` overrides the configured block bound — the adapt
        layer's :meth:`split_block` passes a finer bound to fracture a
        hot block across fresh modules.
        """
        bound = self.config.block_bound if bound is None else bound
        # a re-partitioned block's copies would go stale: retire them
        # first (they are re-created on demand if the block stays hot)
        self._drop_replicas(block_ids)
        sends: dict[int, list] = defaultdict(list)
        for bid in block_ids:
            sends[self.block_module[bid]].append(_BlockOp("fetch", bid))
        replies = self.system.round("pimtrie.block", sends)
        fetched: list[DataBlock] = []
        for reply in replies.values():
            fetched.extend(reply)

        ship: dict[int, list] = defaultdict(list)
        new_records: list[MetaRecord] = []
        updated_records: list[MetaRecord] = []
        for blk in fetched:
            old_id = blk.block_id
            base_string = self._root_strings[old_id]
            subs, sub_strings = extract_blocks(
                blk.trie, bound, self.hasher, self.w
            )
            top = next(s for s in subs if s.parent_id is None)
            remap = {top.block_id: old_id}
            for sub in subs:
                if sub.parent_id in remap:
                    sub.parent_id = remap[sub.parent_id]
            # fix mirror ids pointing at the fresh top id
            for sub in subs:
                for node in sub.trie.iter_nodes():
                    if node.mirror_child in remap:
                        node.mirror_child = remap[node.mirror_child]
            top_fresh_id = top.block_id
            top.block_id = old_id
            top.parent_id = self.block_parent[old_id]
            for sub in subs:
                abs_string = base_string + sub_strings.get(
                    top_fresh_id if sub.block_id == old_id else sub.block_id,
                    BitString(0, 0),
                )
                sub.root_depth += blk.root_depth
                sub.root_hash = self.hasher.hash(abs_string)
                sub.s_last = abs_string.suffix_from(
                    max(0, len(abs_string) - self.w)
                )
                if sub.block_id == old_id:
                    m = self.block_module[old_id]
                else:
                    m = self.system.random_module()
                    self.block_module[sub.block_id] = m
                    self.block_parent[sub.block_id] = sub.parent_id
                    if sub.parent_id is not None:
                        self.block_children[sub.parent_id].add(sub.block_id)
                    self.block_depth[sub.block_id] = sub.root_depth
                self.block_keys[sub.block_id] = sub.trie.num_keys
                self._root_strings[sub.block_id] = abs_string
                # replica log follows the split; overwriting the old
                # block's entry with the top sub keeps the log's union
                # equal to the key set at every round boundary
                self._block_items[sub.block_id] = dict(sub.trie.iter_items())
                ship[m].append(_BlockOp("store", sub.block_id, payload=sub))
                rec = make_record(
                    sub.block_id, abs_string, m, self.hasher,
                    sub.parent_id, self.w,
                )
                if sub.block_id == old_id:
                    updated_records.append(rec)
                else:
                    new_records.append(rec)
            # re-parent pre-existing children whose mirrors moved into a
            # new sub-block (registry, record, and the child's stored
            # parent pointer)
            for sub in subs:
                for mid in sub.child_ids():
                    if (
                        mid in self.block_parent
                        and self.block_parent[mid] != sub.block_id
                    ):
                        old_parent = self.block_parent[mid]
                        if old_parent is not None:
                            self.block_children[old_parent].discard(mid)
                        self.block_parent[mid] = sub.block_id
                        self.block_children[sub.block_id].add(mid)
                        updated_records.append(
                            replace(self._records[mid], parent_block=sub.block_id)
                        )
                        sp = _BlockOp("set_parent", mid, payload=sub.block_id)
                        ship[self.block_module[mid]].append(sp)
                        for rm in self.block_replicas.get(mid, ()):
                            ship[rm].append(sp)
        if ship:
            self.system.round("pimtrie.block", ship)
        if updated_records:
            self._hvm_update_records(updated_records)
        if new_records:
            self._hvm_add_records(new_records)

    # ==================================================================
    # adaptive-skew maintenance ops (repro.adapt): split / replicate /
    # merge.  All keep the replica-log and span-sum invariants exact:
    # every word moved is moved inside an accounted round, and the
    # replica-log union over blocks never changes (only placement does),
    # so answers are invariant under any interleaving of these ops.
    # ==================================================================
    def _drop_replicas(self, block_ids: Iterable[int]) -> int:
        """Free every extra copy of ``block_ids`` (one round if any);
        primaries are untouched.  Returns the number of copies freed."""
        sends: dict[int, list] = defaultdict(list)
        dropped = 0
        for bid in block_ids:
            reps = self.block_replicas.pop(bid, None)
            self._block_rr.pop(bid, None)
            if not reps:
                continue
            for m in reps:
                sends[m].append(_BlockOp("free", bid))
                dropped += 1
        if sends:
            self.system.round("pimtrie.block", sends)
        return dropped

    @_structural
    def dereplicate_block(self, bid: int) -> int:
        """Drop all read replicas of ``bid`` (cold-block decay path)."""
        return self._drop_replicas([bid])

    @_structural
    def replicate_block(
        self, bid: int, module: Optional[int] = None
    ) -> Optional[int]:
        """Place one extra read copy of block ``bid`` on ``module`` (a
        uniformly random module holding no copy, if None).

        Reads round-robin over the copies afterwards (:meth:`_read_module`);
        writes fan out to every copy, so each stays exact.  The copy is
        shipped as a *fresh* host-side reconstruction — never the fetched
        object itself, which would alias two module memories.  Returns
        the chosen module, or None if no module is free to take a copy.
        """
        if bid not in self.block_module:
            return None
        have = {self.block_module[bid], *self.block_replicas.get(bid, ())}
        if module is None:
            candidates = [
                m for m in range(self.system.num_modules) if m not in have
            ]
            if not candidates:
                return None
            module = candidates[int(self.system.rng.integers(len(candidates)))]
        elif module in have:
            return None
        # accounted read of the source copy...
        self.system.round(
            "pimtrie.block", {self._read_module(bid): [_BlockOp("fetch", bid)]}
        )
        # ...then build + ship an independent copy
        fresh = self._reconstruct_block(bid)
        self.system.tick_cpu(fresh.word_cost())
        self.system.round(
            "pimtrie.block", {module: [_BlockOp("store", bid, payload=fresh)]}
        )
        self.block_replicas.setdefault(bid, []).append(module)
        return module

    @_structural
    def split_block(self, bid: int, *, bound: Optional[int] = None) -> int:
        """Fracture a hot block across fresh modules by re-running the
        §4.2 blocking algorithm on it with a finer word bound (default:
        a quarter of the configured bound).  Returns the number of new
        blocks created (0 if the block already fits the finer bound)."""
        if bid not in self.block_module:
            return 0
        if bound is None:
            bound = max(8, self.config.block_bound // 4)
        before = len(self.block_module)
        self._repartition_blocks([bid], bound=bound)
        return len(self.block_module) - before

    @_structural
    def merge_block(self, bid: int) -> int:
        """Fold block ``bid``'s direct children back into it (the cold
        inverse of :meth:`split_block`).  Grandchildren become ``bid``'s
        children.  Returns the number of children absorbed.

        The merged block is rebuilt host-side from the replica log (its
        union equals the physical contents at every round boundary) and
        shipped whole; the fetch round charges the read of every merged
        word first, so metrics stay honest.
        """
        children = sorted(self.block_children.get(bid, ()))
        if not children:
            return 0
        # stale copies of everything being restructured go first
        self._drop_replicas([bid, *children])
        sends: dict[int, list] = defaultdict(list)
        for b in (bid, *children):
            sends[self.block_module[b]].append(_BlockOp("fetch", b))
        self.system.round("pimtrie.block", sends)

        base = self._root_strings[bid]
        merged = dict(self._block_items.get(bid, ()))
        grandkids: set[int] = set()
        frees: dict[int, list] = defaultdict(list)
        for c in children:
            rel_c = self._root_strings[c].suffix_from(len(base))
            for rel, v in self._block_items.get(c, {}).items():
                merged[rel_c + rel] = v
            grandkids.update(self.block_children.get(c, ()))
            frees[self.block_module[c]].append(_BlockOp("free", c))
        for c in children:
            self.block_parent.pop(c, None)
            self.block_children.pop(c, None)
            self.block_keys.pop(c, None)
            self.block_depth.pop(c, None)
            self.block_module.pop(c, None)
            self._root_strings.pop(c, None)
            self._block_items.pop(c, None)
            self.block_touches.pop(c, None)
        self.block_children[bid] = set(grandkids)
        for g in grandkids:
            self.block_parent[g] = bid
        self._block_items[bid] = merged

        new_blk = self._reconstruct_block(bid)
        self.system.tick_cpu(new_blk.word_cost())
        ship: dict[int, list] = defaultdict(list)
        ship[self.block_module[bid]].append(
            _BlockOp("store", bid, payload=new_blk)
        )
        for m, ops in frees.items():
            ship[m].extend(ops)
        for g in sorted(grandkids):
            sp = _BlockOp("set_parent", g, payload=bid)
            ship[self.block_module[g]].append(sp)
            for rm in self.block_replicas.get(g, ()):
                ship[rm].append(sp)
        self.system.round("pimtrie.block", ship)
        if grandkids:
            self._hvm_update_records(
                [
                    replace(self._records[g], parent_block=bid)
                    for g in sorted(grandkids)
                ]
            )
        self._hvm_remove_records(children)
        return len(children)

    # ------------------------------------------------------------------
    @_traced_op("op.delete")
    def delete_batch(self, keys: Sequence[BitString]) -> int:
        """Delete a batch of keys; returns the number removed (§5.2)."""
        if not keys or self.root_block_id is None:
            return 0
        with maybe_span(self.system, "query.build", cat="phase"):
            qt = self._build_query(keys)
            self._prepare_query(qt)
        outcome = self.match_batch(qt)
        with maybe_span(self.system, "query.fold", cat="phase"):
            folded = self._fold_keys(qt, outcome)
        by_block: dict[int, list[BitString]] = defaultdict(list)
        distinct = set(keys)
        base_owner = self._base_owners(distinct)
        for key in distinct:
            depth, block, exact, _v = folded[key]
            owner = base_owner.get(key)
            if owner is not None:
                # block-base key: owned by the child block's root (see
                # insert_batch); the match may have resolved the depth
                # tie to the parent's mirror leaf and reported absent
                block = owner
                exact = BitString(0, 0) in self._block_items.get(owner, ())
            if not exact:
                continue
            by_block[block].append(key.suffix_from(self.block_depth[block]))
        self._note_touches(folded)
        with maybe_span(self.system, "delete.apply", cat="phase"):
            sends: dict[int, list] = defaultdict(list)
            for block, items in by_block.items():
                op = _BlockOp("delete", block, payload=items)
                # writes fan out to every copy (see insert_batch)
                sends[self.block_module[block]].append(op)
                for rm in self.block_replicas.get(block, ()):
                    sends[rm].append(op)
            removed_total = 0
            if sends:
                replies = self.system.round("pimtrie.block", sends)
                # replica log trails the committed round (see insert_batch)
                for block, items in by_block.items():
                    log = self._block_items.get(block)
                    if log is not None:
                        for rel in items:
                            log.pop(rel, None)
                self._ordered_version += 1
                for m, reply in replies.items():
                    for (bid, nkeys, _words, removed) in reply:
                        self.block_keys[bid] = nkeys
                        # replica copies report the same removals; count
                        # only the primary's reply
                        if m == self.block_module[bid]:
                            removed_total += removed
        if removed_total:
            self._collect_empty_blocks()
        return removed_total

    @_structural
    def _collect_empty_blocks(self) -> None:
        """Leaffix over the block tree (§5.2): drop blocks whose whole
        subtree stores no keys; remove their mirrors and records."""
        order = sorted(
            self.block_keys, key=lambda b: self.block_depth[b], reverse=True
        )
        below: dict[int, int] = {}
        for bid in order:
            below[bid] = self.block_keys[bid] + sum(
                below.get(c, 0) for c in self.block_children.get(bid, ())
            )
        doomed = [
            bid
            for bid in order
            if below.get(bid, 0) == 0 and self.block_parent.get(bid) is not None
        ]
        if not doomed:
            return
        doomed_set = set(doomed)
        sends: dict[int, list] = defaultdict(list)
        for bid in doomed:
            parent = self.block_parent[bid]
            if parent not in doomed_set:
                # the mirror drop is a write: it must reach every copy
                # of the parent block
                dm = _BlockOp("drop_mirror", parent, payload=bid)
                sends[self.block_module[parent]].append(dm)
                for rm in self.block_replicas.get(parent, ()):
                    sends[rm].append(dm)
            sends[self.block_module[bid]].append(_BlockOp("free", bid))
            for rm in self.block_replicas.get(bid, ()):
                sends[rm].append(_BlockOp("free", bid))
        self.system.round("pimtrie.block", sends)
        for bid in doomed:
            parent = self.block_parent.pop(bid, None)
            if parent is not None:
                self.block_children[parent].discard(bid)
            self.block_children.pop(bid, None)
            self.block_keys.pop(bid, None)
            self.block_depth.pop(bid, None)
            self.block_module.pop(bid, None)
            self._root_strings.pop(bid, None)
            self._block_items.pop(bid, None)
            self.block_replicas.pop(bid, None)
            self._block_rr.pop(bid, None)
            self.block_touches.pop(bid, None)
        self._hvm_remove_records(doomed)

    # ------------------------------------------------------------------
    @_traced_op("op.subtree")
    def subtree_batch(
        self, prefixes: Sequence[BitString]
    ) -> list[list[tuple[BitString, Any]]]:
        """SubtreeQuery: all (key, value) pairs under each prefix (§5.3)."""
        if not prefixes:
            return []
        if self.root_block_id is None:
            return [[] for _ in prefixes]
        with maybe_span(self.system, "query.build", cat="phase"):
            qt = self._build_query(prefixes)
            self._prepare_query(qt)
        outcome = self.match_batch(qt)
        with maybe_span(self.system, "query.fold", cat="phase"):
            folded = self._fold_keys(qt, outcome)
        self._note_touches(folded)

        results: dict[BitString, list[tuple[BitString, Any]]] = {
            p: [] for p in prefixes
        }
        sends: dict[int, list] = defaultdict(list)
        order: dict[int, list[BitString]] = defaultdict(list)
        for p in set(prefixes):
            depth, block, _exact, _v = folded[p]
            if depth < len(p):
                continue
            rel = p.suffix_from(self.block_depth[block])
            m = self._read_module(block)
            sends[m].append(_BlockOp("subtree", block, payload=rel))
            order[m].append(p)
        frontier: list[tuple[BitString, int]] = []
        if sends:
            with maybe_span(self.system, "subtree.roots", cat="phase"):
                replies = self.system.round("pimtrie.block", sends)
            for m, reply in replies.items():
                for p, (root_depth, items, kids) in zip(order[m], reply):
                    for rel_key, value in items:
                        results[p].append((p.prefix(root_depth) + rel_key, value))
                    frontier.extend((p, k) for k in kids)

        # resolve all descendant block refs via the piece trees
        # (O(log P) rounds, Lemma 4.6), then fetch the blocks at once
        all_blocks: list[tuple[BitString, int]] = []
        guard = 0
        with maybe_span(self.system, "subtree.descend", cat="phase"):
            while frontier:
                guard += 1
                sends2: dict[int, list] = defaultdict(list)
                order2: dict[int, list[tuple[BitString, int]]] = defaultdict(list)
                direct: list[tuple[BitString, int]] = []
                for p, bid in frontier:
                    pid = self.piece_of_block.get(bid)
                    if pid is None or guard > 4 * (self.config.log_p + 2):
                        direct.append((p, bid))
                        continue
                    m = self.piece_module[pid]
                    sends2[m].append(_PieceOp("subtree", pid, payload=[bid]))
                    order2[m].append((p, bid))
                frontier = []
                for p, bid in direct:
                    all_blocks.append((p, bid))
                    frontier.extend(
                        (p, c) for c in self.block_children.get(bid, ())
                    )
                if sends2:
                    replies = self.system.round("pimtrie.piece", sends2)
                    for m, reply in replies.items():
                        for (p, bid), records in zip(order2[m], reply):
                            found = {r.block_id for r in records}
                            if bid not in found:
                                all_blocks.append((p, bid))
                                frontier.extend(
                                    (p, c)
                                    for c in self.block_children.get(bid, ())
                                )
                                continue
                            for r in records:
                                all_blocks.append((p, r.block_id))
                                for c in self.block_children.get(r.block_id, ()):
                                    if c not in found:
                                        frontier.append((p, c))
        with maybe_span(self.system, "subtree.fetch", cat="phase"):
            sends3: dict[int, list] = defaultdict(list)
            order3: dict[int, list[tuple[BitString, int]]] = defaultdict(list)
            seen_fetch: set[tuple[BitString, int]] = set()
            for p, bid in all_blocks:
                if (p, bid) in seen_fetch or bid not in self.block_module:
                    continue
                seen_fetch.add((p, bid))
                m = self._read_module(bid)
                sends3[m].append(
                    _BlockOp("subtree", bid, payload=BitString(0, 0))
                )
                order3[m].append((p, bid))
            if sends3:
                replies = self.system.round("pimtrie.block", sends3)
                for m, reply in replies.items():
                    for (p, bid), (_root_depth, items, _kids) in zip(
                        order3[m], reply
                    ):
                        prefix_abs = self._root_strings[bid]
                        for rel_key, value in items:
                            results[p].append((prefix_abs + rel_key, value))
        return [sorted(results[p], key=lambda kv: kv[0]) for p in prefixes]

    def subtree_tries(
        self, prefixes: Sequence[BitString]
    ) -> list[PatriciaTrie]:
        """SubtreeQuery returning result *tries* (the paper's §5.3 form:
        "A Subtree Query returns a trie").

        Communication is the same as :meth:`subtree_batch`; the result
        trie is assembled on the CPU from the fetched components (Q_R
        words, already charged), so only accounted CPU work is added.
        """
        item_lists = self.subtree_batch(prefixes)
        out: list[PatriciaTrie] = []
        for items in item_lists:
            keys = [k for k, _ in items]
            vals = [v for _, v in items]
            self.system.tick_cpu(len(items))
            out.append(build_query_trie(keys, vals))
        return out

    # ==================================================================
    # ordered-index queries (repro.ordered)
    # ==================================================================
    def ordered_snapshot(self) -> OrderedSnapshot:
        """The current consistent ordered view of the stored key set.

        Built from the host replica log's key/value union (which equals
        the stored key set at round boundaries) and cached until the
        union's content version moves — a caller holding the returned
        snapshot keeps reading the same point-in-time image no matter
        what later batches insert, delete, or the adapt controller
        rearranges.  Building is accounted host CPU work (one pass over
        the live keys); no PIM rounds, no wire words.
        """
        snap = self._ordered_cache
        if snap is None or snap.version != self._ordered_version:
            with maybe_span(self.system, "ordered.snapshot", cat="phase"):
                items = self.replica_log_items()
                self.system.tick_cpu(max(1, len(items)))
                snap = OrderedSnapshot(items, version=self._ordered_version)
            self._ordered_cache = snap
        return snap

    @_traced_op("op.pred")
    def predecessor_batch(
        self, keys: Sequence[BitString]
    ) -> list[Optional[tuple[BitString, Any]]]:
        """Largest stored key strictly below each query, with its value
        (None when no stored key is smaller)."""
        if not keys:
            return []
        snap = self.ordered_snapshot()
        with maybe_span(self.system, "ordered.answer", cat="phase"):
            self.system.tick_cpu(len(keys))
            return [snap.predecessor(k) for k in keys]

    @_traced_op("op.succ")
    def successor_batch(
        self, keys: Sequence[BitString]
    ) -> list[Optional[tuple[BitString, Any]]]:
        """Smallest stored key strictly above each query, with its value
        (None when no stored key is larger)."""
        if not keys:
            return []
        snap = self.ordered_snapshot()
        with maybe_span(self.system, "ordered.answer", cat="phase"):
            self.system.tick_cpu(len(keys))
            return [snap.successor(k) for k in keys]

    @_traced_op("op.range")
    def range_batch(
        self,
        bounds: Sequence[tuple[BitString, BitString]],
        limit: Optional[int] = None,
    ) -> list[list[tuple[BitString, Any]]]:
        """Stored ``(key, value)`` pairs in ``[lo, hi]`` (inclusive) for
        each bound pair, in key order, truncated to the first ``limit``
        per query.  The scan early-terminates at the bound or limit."""
        if not bounds:
            return []
        snap = self.ordered_snapshot()
        with maybe_span(self.system, "ordered.answer", cat="phase"):
            out = [snap.range(lo, hi, limit=limit) for lo, hi in bounds]
            self.system.tick_cpu(len(bounds) + sum(len(r) for r in out))
            return out

    @_traced_op("op.count")
    def prefix_count_batch(self, prefixes: Sequence[BitString]) -> list[int]:
        """How many stored keys extend each prefix — the subtree size
        without the subtree fetch (two O(log n) ranks per prefix)."""
        if not prefixes:
            return []
        snap = self.ordered_snapshot()
        with maybe_span(self.system, "ordered.answer", cat="phase"):
            self.system.tick_cpu(len(prefixes))
            return [snap.prefix_count(p) for p in prefixes]

    @_traced_op("op.topk")
    def topk_batch(
        self, prefixes: Sequence[BitString], k: int
    ) -> list[list[tuple[BitString, Any]]]:
        """The ``k`` smallest stored keys extending each prefix (with
        values) — a prefix of the sorted subtree enumeration."""
        if not prefixes:
            return []
        snap = self.ordered_snapshot()
        with maybe_span(self.system, "ordered.answer", cat="phase"):
            out = [snap.top_k(p, k) for p in prefixes]
            self.system.tick_cpu(len(prefixes) + sum(len(r) for r in out))
            return out

    def top_k(
        self, prefix: BitString, k: int
    ) -> list[tuple[BitString, Any]]:
        """Single-prefix convenience wrapper over :meth:`topk_batch`."""
        return self.topk_batch([prefix], k)[0]

    # ==================================================================
    # crash recovery (repro.faults)
    # ==================================================================
    def _reconstruct_block(self, bid: int) -> DataBlock:
        """Rebuild one block host-side from the replica log + registries
        (no module memory touched).  Refreshes ``block_keys[bid]``."""
        base = self._root_strings[bid]
        items = self._block_items.get(bid, {})
        t = PatriciaTrie()
        for rel in sorted(items):
            t.insert(rel, items[rel])
        for cid in sorted(self.block_children.get(bid, ())):
            _graft_mirror(t, self._root_strings[cid].suffix_from(len(base)), cid)
        self.block_keys[bid] = t.num_keys
        return DataBlock(
            block_id=bid,
            root_depth=self.block_depth[bid],
            root_hash=self.hasher.hash(base),
            trie=t,
            parent_id=self.block_parent.get(bid),
            s_last=base.suffix_from(max(0, len(base) - self.w)),
        )

    def _reconstruct_piece(self, pid: int) -> MetaPiece:
        """Rebuild one meta piece from the record mirror: its owned set
        plus the subtree-complete replication of every descendant."""
        piece = MetaPiece(pid, self.piece_module[pid], self.w)
        piece.root_block = self.piece_root_block.get(pid)
        piece.parent_piece = self.piece_parent.get(pid)
        piece.child_pieces = list(self.piece_children.get(pid, ()))
        piece.child_roots = {
            c: self.piece_root_block[c]
            for c in piece.child_pieces
            if c in self.piece_root_block
        }
        for p in sorted(self._tree_pieces(pid)):
            for b in sorted(self.piece_owned.get(p, ())):
                rec = self._records.get(b)
                if rec is not None:
                    piece.add_record(rec, owned=(p == pid))
        return piece

    def rebuild_modules(self, modules: Iterable[int]) -> None:
        """Clean recovery: re-ship every block and piece resident on the
        (already restarted) ``modules``, rebuilt from the host replica
        log and registries, then re-broadcast the master replica to them.

        Valid only when no structural maintenance path was interrupted
        (``_dirty_structure`` clear) — the registries then describe the
        committed structure exactly.
        """
        modset = set(modules)
        if not modset:
            return
        sends: dict[int, list] = defaultdict(list)
        for bid, m in sorted(self.block_module.items()):
            if m in modset:
                sends[m].append(_StoreBlock(self._reconstruct_block(bid)))
        for bid, reps in sorted(self.block_replicas.items()):
            for m in reps:
                if m in modset:
                    sends[m].append(_StoreBlock(self._reconstruct_block(bid)))
        for pid, m in sorted(self.piece_module.items()):
            if m in modset:
                sends[m].append(_StorePiece(self._reconstruct_piece(pid)))
        if sends:
            self.system.round("pimtrie.store", sends)
        adds = [
            (self._records[rb], pid)
            for pid, rb in sorted(self.master_pieces.items())
            if rb in self._records
        ]
        msg = _MasterDelta(add=adds, remove=[], full=True)
        self.system.round("pimtrie.master", {m: [msg] for m in sorted(modset)})

    def replica_log_items(self) -> dict[BitString, Any]:
        """The key/value union of the host replica log.

        At round boundaries this equals the stored key set exactly —
        the invariant every maintenance path keeps — which makes it the
        seed for any rebuild that cannot trust module state:
        :meth:`rebuild_from_mirror` after a structural abort, and the
        cluster layer's re-replication of a lost rack onto a
        replacement (``repro.cluster``).  Host-side only: no rounds, no
        accounted cost.
        """
        union: dict[BitString, Any] = {}
        for bid, log in self._block_items.items():
            base = self._root_strings.get(bid)
            if base is None:
                continue
            for rel, v in log.items():
                union[base + rel] = v
        return union

    def rebuild_from_mirror(self) -> None:
        """Full recovery: wipe every module's pimtrie state and rebuild
        the whole index from the union of the replica log.

        The fallback when an abort interrupted a *structural* path
        (repartition, HVM rebuild): registries may be mid-transition,
        but the replica-log union always equals the key set at round
        boundaries — the one invariant every maintenance path keeps.
        """
        union = self.replica_log_items()
        keys = sorted(union)
        vals = [union[k] for k in keys]
        self.system.round(
            "pimtrie.wipe",
            {m: [True] for m in range(self.system.num_modules)},
        )
        self.block_module.clear()
        self.block_parent.clear()
        self.block_children.clear()
        self.block_keys.clear()
        self.block_depth.clear()
        self.block_replicas.clear()
        self._block_rr.clear()
        self.block_touches.clear()
        self._records.clear()
        self._root_strings.clear()
        self._block_items.clear()
        self.piece_module.clear()
        self.piece_parent.clear()
        self.piece_children.clear()
        self.piece_owned.clear()
        self.piece_of_block.clear()
        self.piece_root_block.clear()
        self.master_pieces.clear()
        self.root_block_id = None
        self._query_trie = None
        self._query_nodes = {}
        self._query_strings = {}
        self._maint_depth = 0
        self._dirty_structure = False
        self._bulk_build(keys, vals)

    # ==================================================================
    # introspection
    # ==================================================================
    def validate(self) -> None:
        """Assert every cross-module structural invariant (test oracle).

        Inspects module memories directly — a debugging facility, not an
        accounted operation.  Checks: block placement and metadata,
        mirror/child agreement, root-string consistency, HVM piece
        ownership and subtree-complete replication, master replication,
        and the configured size bounds.
        """
        cfg = self.config
        # gather every physical copy of every block, plus the pieces
        phys_copies: dict[int, dict[int, DataBlock]] = defaultdict(dict)
        phys_pieces: dict[int, MetaPiece] = {}
        for m in range(self.system.num_modules):
            ctx = self.system.modules[m].context
            for bid, blk in ctx.scratch.get("blocks", {}).items():
                assert m not in phys_copies[bid], (
                    f"block {bid} stored twice on module {m}"
                )
                phys_copies[bid][m] = blk
            for pid, piece in ctx.scratch.get("pieces", {}).items():
                assert pid not in phys_pieces, f"piece {pid} stored twice"
                phys_pieces[pid] = piece

        # registries agree with physical placement: every block lives
        # on exactly its primary plus its registered replicas
        assert set(phys_copies) == set(self.block_module)
        for bid, m in self.block_module.items():
            reps = self.block_replicas.get(bid, [])
            assert len(set(reps)) == len(reps), f"block {bid} dup replica"
            assert m not in reps, f"block {bid} replica on its primary"
            expect = {m, *reps}
            assert set(phys_copies[bid]) == expect, (
                f"block {bid} copies {sorted(phys_copies[bid])} != "
                f"registered {sorted(expect)}"
            )
        for bid in self.block_replicas:
            assert bid in self.block_module, f"replicas of unknown {bid}"

        # every replica copy is content-identical to its primary
        phys_blocks: dict[int, DataBlock] = {}
        for bid, copies in phys_copies.items():
            pm = self.block_module[bid]
            primary = copies[pm]
            phys_blocks[bid] = primary
            for m, blk in copies.items():
                if m == pm:
                    continue
                # copies must be independent objects (aliasing two
                # module memories would let one write update both for
                # free) and content-identical to the primary
                assert blk is not primary, f"block {bid} aliased on {m}"
                assert dict(blk.trie.iter_items()) == dict(
                    primary.trie.iter_items()
                ), f"replica of {bid} on {m} diverges"
                assert sorted(blk.child_ids()) == sorted(primary.child_ids())
                assert blk.root_depth == primary.root_depth
                assert blk.trie.num_keys == primary.trie.num_keys

        # block metadata and tree structure
        for bid, blk in phys_blocks.items():
            assert blk.block_id == bid
            assert blk.root_depth == self.block_depth[bid]
            assert blk.trie.num_keys == self.block_keys[bid]
            root_string = self._root_strings[bid]
            assert len(root_string) == blk.root_depth
            assert self.hasher.hash(root_string) == blk.root_hash
            parent = self.block_parent.get(bid)
            assert parent == blk.parent_id
            kids = sorted(blk.child_ids())
            assert kids == sorted(self.block_children.get(bid, set()))
            for cid in kids:
                child_root = self._root_strings[cid]
                assert child_root.starts_with(root_string)
                assert self.block_parent[cid] == bid
        roots = [b for b in phys_blocks if self.block_parent.get(b) is None]
        assert roots == [self.root_block_id]

        # replica log mirrors the physical block contents exactly
        assert set(self._block_items) == set(phys_blocks)
        for bid, blk in phys_blocks.items():
            assert (
                dict(blk.trie.iter_items()) == self._block_items[bid]
            ), f"replica log diverges from block {bid}"

        # records mirror
        assert set(self._records) == set(phys_blocks)
        for bid, rec in self._records.items():
            assert rec.depth == self.block_depth[bid]
            assert rec.module == self.block_module[bid]
            assert rec.fingerprint == self.hasher.fingerprint_of(
                self._root_strings[bid]
            )

        # HVM: ownership partition + subtree-complete tables
        owned_all = [b for p in phys_pieces.values() for b in p.owned]
        assert sorted(owned_all) == sorted(phys_blocks)
        for pid, piece in phys_pieces.items():
            assert self.piece_root_block.get(pid) == piece.root_block
            assert piece.own_size() <= cfg.small_meta_bound or len(
                phys_pieces
            ) == 1
            assert set(self.piece_owned[pid]) == set(piece.owned)
            covered = set(piece.table)
            assert set(piece.owned) <= covered
            stack = list(self.piece_children.get(pid, ()))
            while stack:
                c = stack.pop()
                assert set(self.piece_owned[c]) <= covered
                stack.extend(self.piece_children.get(c, ()))

        # master replicated identically on all modules
        sizes = set()
        for m in range(self.system.num_modules):
            table = self.system.modules[m].context.scratch.get("master")
            sizes.add(len(table.by_id) if table is not None else 0)
        assert len(sizes) == 1
        assert sizes.pop() == len(self.master_pieces)

    def keys(self) -> list[BitString]:
        """All stored keys (debugging facility; walks module memories).
        Reads each block's primary copy only, so replicated blocks are
        not double-counted."""
        out: list[BitString] = []
        for bid, m in self.block_module.items():
            blk = self.system.modules[m].context.scratch["blocks"][bid]
            root = self._root_strings[bid]
            for rel, _v in blk.trie.iter_items():
                out.append(root + rel)
        return sorted(out)

    def num_keys(self) -> int:
        return sum(self.block_keys.values())

    def num_blocks(self) -> int:
        return len(self.block_module)

    def space_words(self) -> int:
        return self.system.total_memory_words()

    def __repr__(self) -> str:
        return (
            f"PIMTrie(P={self.system.num_modules}, keys={self.num_keys()}, "
            f"blocks={self.num_blocks()}, pieces={len(self.piece_module)})"
        )


# ----------------------------------------------------------------------
# module-local helpers used by kernels
# ----------------------------------------------------------------------
def _graft_mirror(
    trie: PatriciaTrie, rel: BitString, child_block_id: int
) -> None:
    """Re-attach the mirror leaf for a child block rooted at ``rel``
    (block-relative) into a reconstructed block trie.

    The mirror position may coincide with a stored key node (in-place
    inserts can land exactly on a child-block boundary); the node then
    keeps its key and merely gains the mirror mark.
    """
    r = trie.walk(rel)
    pos = r.lcp_len
    if isinstance(r.node, TrieNode):
        node = r.node
    else:
        node = trie._split_edge(r.node.edge, r.node.offset)
    if pos == len(rel):
        node.mirror_child = child_block_id
        return
    leaf = TrieNode(len(rel))
    leaf.mirror_child = child_block_id
    node.attach(TrieEdge(rel.suffix_from(pos), leaf))
    trie.edge_bits += len(rel) - pos


def _remove_mirror(trie: PatriciaTrie, child_block_id: int) -> bool:
    """Delete the (leaf) mirror node referencing ``child_block_id`` and
    re-compress the path."""
    for node in trie.iter_nodes():
        if node.mirror_child == child_block_id:
            node.mirror_child = None
            if not node.is_key and node.num_children == 0 and node.parent_edge:
                trie._compress_up(node)
            return True
    return False
