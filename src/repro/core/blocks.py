"""Data-trie blocks (paper §4.2).

The data trie is decomposed into blocks of O(K_B) words.  Each block is
a standalone sub-trie whose keys are stored *relative* to the block
root's represented string; the block carries the absolute depth and the
node hash of its root as metadata.  A block root is replicated in its
parent block as a *mirror node* (a leaf marked with the child block id);
there are no remote pointers inside tries — all cross-block structure
lives in mirror nodes and the hash value manager.

Long compressed edges (more than K_B words) are cut by inserting
intermediate one-child compressed nodes so no single edge overflows a
block (§4.2); :func:`cut_long_edges` does this in place.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from .. import fastpath
from ..bits import BitString, HashValue, IncrementalHasher
from ..trie import (
    PatriciaTrie,
    TrieEdge,
    TrieNode,
    node_weight_words,
    partition_weighted,
    rootfix,
)

__all__ = ["DataBlock", "cut_long_edges", "extract_blocks", "block_word_cost"]

_block_ids = itertools.count(1)


def next_block_id() -> int:
    return next(_block_ids)


@dataclass
class DataBlock:
    """One decomposed piece of the data trie, resident on one PIM module.

    ``trie`` is rooted at the block root; node depths inside it are
    relative (root depth 0).  ``root_depth`` / ``root_hash`` locate the
    root in the global key space.  ``parent_id`` is the owning block
    above (None for the top block).  Mirror leaves inside ``trie`` carry
    ``mirror_child`` = child block id.
    """

    block_id: int
    root_depth: int
    root_hash: HashValue
    trie: PatriciaTrie
    parent_id: Optional[int] = None
    #: last min(w, depth) bits of the root's represented string — the
    #: S_last verification payload of §4.4.3
    s_last: BitString = field(default_factory=lambda: BitString(0, 0))
    #: cached word cost; anything that mutates ``trie`` in place must
    #: call :meth:`mark_dirty` (the block kernels do)
    _wc: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def mark_dirty(self) -> None:
        """Invalidate the cached word cost after an in-place trie edit."""
        self._wc = None

    def child_ids(self) -> list[int]:
        return [
            n.mirror_child
            for n in self.trie.iter_nodes()
            if n.mirror_child is not None
        ]

    def word_cost(self) -> int:
        """Words to ship this block CPU<->PIM (its compressed size + O(1))."""
        if fastpath.ENABLED and self._wc is not None:
            return self._wc
        wc = 3 + self.trie.word_cost()
        self._wc = wc
        return wc

    def size_words(self) -> int:
        return self.word_cost()

    def num_keys(self) -> int:
        return self.trie.num_keys

    def check(self, hasher: IncrementalHasher, root_string: BitString) -> None:
        """Validate metadata against the (test-provided) absolute root string."""
        assert len(root_string) == self.root_depth
        assert hasher.hash(root_string) == self.root_hash
        w = 64
        tail = root_string.suffix_from(max(0, len(root_string) - w))
        assert tail == self.s_last

    def __repr__(self) -> str:
        return (
            f"DataBlock(id={self.block_id}, depth={self.root_depth}, "
            f"keys={self.trie.num_keys}, children={len(self.child_ids())})"
        )


def block_word_cost(trie: PatriciaTrie) -> int:
    """Weight of a trie in words, as the blocking algorithm measures it."""
    return sum(node_weight_words(n) for n in trie.iter_nodes())


# ----------------------------------------------------------------------
# long-edge cutting (§4.2)
# ----------------------------------------------------------------------
def cut_long_edges(trie: PatriciaTrie, max_words: int, w: int = 64) -> int:
    """Split every edge longer than ``max_words`` words in place.

    Introduces one-child compressed nodes every ``max_words * w`` bits;
    returns the number of nodes added (O(L/(w*K_B)) by the paper).
    """
    limit_bits = max_words * w
    added = 0
    stack = [trie.root]
    while stack:
        node = stack.pop()
        for b in (0, 1):
            edge = node.children[b]
            if edge is None:
                continue
            while len(edge.label) > limit_bits:
                mid = trie._split_edge(edge, limit_bits)
                added += 1
                edge = mid.children[0] or mid.children[1]
                assert edge is not None
            stack.append(edge.dst)
    return added


# ----------------------------------------------------------------------
# block extraction (§4.2 blocking algorithm + mirror nodes)
# ----------------------------------------------------------------------
def _clone_subtree(
    root: TrieNode,
    stop_uids: set[int],
    child_block_of: dict[int, int],
) -> PatriciaTrie:
    """Copy ``root``'s subtree, cutting at descendant block roots.

    Descendant roots become mirror leaves carrying their block id.  The
    clone's depths are re-based so the new root has depth 0.
    """
    out = PatriciaTrie()
    base = root.depth
    out.root.is_key = root.is_key
    out.root.value = root.value
    if out.root.is_key:
        out.num_keys += 1
    stack: list[tuple[TrieNode, TrieNode]] = [(root, out.root)]
    while stack:
        src, dst = stack.pop()
        for b in (0, 1):
            edge = src.children[b]
            if edge is None:
                continue
            child = edge.dst
            if child.uid in stop_uids:
                mirror = TrieNode(child.depth - base)
                mirror.mirror_child = child_block_of[child.uid]
                new_edge = TrieEdge(edge.label, mirror)
                dst.attach(new_edge)
                out.edge_bits += len(edge.label)
                continue
            copy = TrieNode(child.depth - base, is_key=child.is_key, value=child.value)
            copy.mirror_child = child.mirror_child
            new_edge = TrieEdge(edge.label, copy)
            dst.attach(new_edge)
            out.edge_bits += len(edge.label)
            if child.is_key:
                out.num_keys += 1
            stack.append((child, copy))
    return out


def extract_blocks(
    data_trie: PatriciaTrie,
    block_bound: int,
    hasher: IncrementalHasher,
    w: int = 64,
) -> tuple[list[DataBlock], dict[int, BitString]]:
    """Decompose a freshly built data trie into blocks.

    Runs the §4.2 pipeline: cut long edges, weighted-partition into
    roots of ≤ K_B-word blocks, clone each block with mirror leaves, and
    compute root hashes / depths / S_last.  Returns the blocks (parent
    links filled) and a map block_id -> absolute root string (used by
    callers to build the hash value manager; it is derived data, not
    shipped anywhere).
    """
    cut_long_edges(data_trie, block_bound, w)
    root_uids = partition_weighted(data_trie, block_bound)
    # never root a block at a mirror node: the mirror stands in for a
    # block that already exists elsewhere (relevant when re-partitioning
    # an oversized block that itself contains mirrors)
    uid_to_node_pre = {n.uid: n for n in data_trie.iter_nodes()}
    root_uids = {
        uid
        for uid in root_uids
        if uid == data_trie.root.uid
        or uid_to_node_pre[uid].mirror_child is None
    }
    root_uids.add(data_trie.root.uid)
    # assign block ids per root
    block_of_uid: dict[int, int] = {}
    for uid in root_uids:
        block_of_uid[uid] = next_block_id()
    # absolute strings + hashes of every block root via rootfix
    strings = rootfix(
        data_trie,
        BitString(0, 0),
        lambda acc, node: acc + node.parent_edge.label,
    )
    uid_to_node = {n.uid: n for n in data_trie.iter_nodes()}
    # parent block of each root: nearest strict ancestor that is a root
    blocks: list[DataBlock] = []
    root_strings: dict[int, BitString] = {}
    for uid in root_uids:
        node = uid_to_node[uid]
        s = strings[uid]
        trie = _clone_subtree(node, root_uids - {uid}, block_of_uid)
        parent_id: Optional[int] = None
        cur = node.parent
        while cur is not None:
            if cur.uid in root_uids:
                parent_id = block_of_uid[cur.uid]
                break
            cur = cur.parent
        blk = DataBlock(
            block_id=block_of_uid[uid],
            root_depth=node.depth,
            root_hash=hasher.hash(s),
            trie=trie,
            parent_id=parent_id,
            s_last=s.suffix_from(max(0, len(s) - w)),
        )
        blocks.append(blk)
        root_strings[blk.block_id] = s
    return blocks, root_strings
