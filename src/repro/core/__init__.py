"""PIM-trie core: blocks, hash value manager, trie matching, operations."""

from .blocks import DataBlock, cut_long_edges, extract_blocks
from .config import PIMTrieConfig
from .hashmatch import CollisionLog, MatchCut, RecordTable, hash_match_fragment
from .localmatch import LocalMatchResult, match_block_local
from .meta import MetaPiece, MetaRecord, cut_node, decompose_component
from .pimtrie import MatchEntry, MatchOutcome, PIMTrie
from .query import PathPos, QueryFragment, fragment_whole_trie, span_fragments

__all__ = [
    "DataBlock",
    "cut_long_edges",
    "extract_blocks",
    "PIMTrieConfig",
    "CollisionLog",
    "MatchCut",
    "RecordTable",
    "hash_match_fragment",
    "LocalMatchResult",
    "match_block_local",
    "MetaPiece",
    "MetaRecord",
    "cut_node",
    "decompose_component",
    "MatchEntry",
    "MatchOutcome",
    "PIMTrie",
    "PathPos",
    "QueryFragment",
    "fragment_whole_trie",
    "span_fragments",
]
