"""PIM-trie parameters (paper §4.2–§4.4, defaults mirror the paper).

All size thresholds derive from ``P`` (the number of PIM modules) the
way the paper sets them:

* block size bound       K_B   = ceil(log2 P)^2 words      (§4.2)
* meta-block size bound  K_MB  = P hash values             (§4.4)
* meta-block tree piece  K_SMB = K_B                       (§4.4.1)
* push–pull threshold for meta-blocks = K_SMB * log^2 P = log^4 P (Alg. 5)
* scapegoat rebuild factor alpha > 0.5                     (§5.2)

The constructors clamp everything to sane minima so that tiny test
systems (P = 2 or 4) still behave.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["PIMTrieConfig"]


@dataclass
class PIMTrieConfig:
    """Tunable parameters of a PIM-trie instance."""

    #: number of PIM modules (P)
    num_modules: int
    #: machine word size in bits (w)
    word_bits: int = 64
    #: block size upper bound in words (K_B); default ceil(log2 P)^2
    block_bound: int | None = None
    #: meta-block size upper bound in #hash-values (K_MB); default P
    meta_block_bound: int | None = None
    #: meta-block tree piece bound (K_SMB); default K_B
    small_meta_bound: int | None = None
    #: push-pull threshold for query meta-blocks; default log^4 P
    pull_threshold: int | None = None
    #: scapegoat rebuild factor (must be > 0.5)
    alpha: float = 0.75
    #: hash seed (re-seeded on global re-hash)
    hash_seed: int = 0x5151_7EA7
    #: hash fingerprint width in bits (narrow to inject collisions)
    hash_width: int = 61
    #: incremental hash family: "modular" (rolling mod 2^61-1) or
    #: "carryless" (CRC-style GF(2) polynomial) — both satisfy Def. 3
    hash_kind: str = "modular"
    #: run S_last / bit-by-bit verification of hash matches
    verify: bool = True
    #: use pivot + two-layer-index HashMatching (§4.4.2) instead of the
    #: naive per-bit probe (kept for ablation E14)
    use_pivots: bool = True
    #: enable the push-pull split (ablation: False forces all-push)
    use_push_pull: bool = True

    def __post_init__(self) -> None:
        if self.num_modules < 1:
            raise ValueError("need at least one PIM module")
        if not 0.5 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0.5, 1.0)")
        if self.word_bits < 8:
            raise ValueError("word_bits must be >= 8")
        log_p = max(1, math.ceil(math.log2(max(2, self.num_modules))))
        if self.block_bound is None:
            self.block_bound = max(8, log_p * log_p)
        if self.meta_block_bound is None:
            self.meta_block_bound = max(8, self.num_modules)
        if self.small_meta_bound is None:
            self.small_meta_bound = max(4, self.block_bound)
        if self.pull_threshold is None:
            self.pull_threshold = max(16, log_p ** 4)
        if self.block_bound < 2:
            raise ValueError("block_bound must be >= 2")
        if self.hash_kind not in ("modular", "carryless"):
            raise ValueError("hash_kind must be 'modular' or 'carryless'")

    def make_hasher(self):
        """Instantiate the configured incremental hasher."""
        if self.hash_kind == "carryless":
            from ..bits import CarrylessHasher

            return CarrylessHasher(seed=self.hash_seed, width=self.hash_width)
        from ..bits import IncrementalHasher

        return IncrementalHasher(seed=self.hash_seed, width=self.hash_width)

    @property
    def log_p(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.num_modules))))
