"""Local trie matching between a query fragment and a data block
(paper §4.3 end / §4.4.2 "Efficient Local Matching").

Both tries are rooted at the same represented string (the block root).
A simultaneous DFS walks the query fragment against the data block,
comparing edge labels word-wise, and reports:

* ``node_matches`` — for each matched compressed query node, its depth
  and whether it coincides with a data compressed node that is a key
  (needed by Delete and by value-returning lookups);
* ``cutoffs`` — for each query subtree that diverges from the data
  trie, the divergence depth (every key below it has its LCP there);
* per-key LCP depths follow from these on the CPU via a rootfix.

Matching stops at data-side *mirror nodes* (child block roots): deeper
structure is covered by the child block's own match, triggered by hash
matching (§4.2).  Work is metered per word compared, and the z-fast
pivot shortcut of §4.4.2 is emulated cost-wise by charging O(log w) per
query node rather than O(w) when ``use_pivots`` is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..bits import BitString
from ..trie import PatriciaTrie, TrieEdge, TrieNode
from .query import QueryFragment

__all__ = ["LocalMatchResult", "match_block_local"]


@dataclass
class LocalMatchResult:
    """Outcome of matching one query fragment against one data block."""

    block_id: int
    #: original query-trie node uid -> (absolute matched depth,
    #: landed-on-data-compressed-node, data node stores a key, value)
    node_matches: dict[int, tuple[int, bool, bool, object]] = field(default_factory=dict)
    #: original query-trie node uid -> absolute divergence depth for the
    #: whole subtree hanging below that node
    cutoffs: dict[int, int] = field(default_factory=dict)
    #: deepest absolute depth matched anywhere in this block (for LCP)
    deepest: int = 0

    def word_cost(self) -> int:
        return 1 + 2 * len(self.node_matches) + 2 * len(self.cutoffs)


def match_block_local(
    frag: QueryFragment,
    block_trie: PatriciaTrie,
    block_id: int,
    block_root_depth: int,
    *,
    tick: Callable[[int], None],
    w: int = 64,
) -> LocalMatchResult:
    """Bit-by-bit (word-at-a-time) simultaneous DFS.

    ``frag.base_depth`` may exceed ``block_root_depth`` (the fragment
    can start below the block root when hash matching anchored it at a
    descendant position); the walk then first descends the data block
    alone along the fragment's base... such fragments are produced only
    with base == the block root in this implementation, so we require
    equality and keep the walker simple.
    """
    if frag.base_depth != block_root_depth:
        raise ValueError(
            "fragment base must coincide with the block root "
            f"({frag.base_depth} != {block_root_depth})"
        )
    res = LocalMatchResult(block_id=block_id)
    res.deepest = block_root_depth

    def record_node(qnode: TrieNode, dnode: Optional[TrieNode]) -> None:
        origin = frag.origin.get(qnode.uid)
        if origin is None:
            return
        depth = block_root_depth + qnode.depth
        on_node = dnode is not None
        has_key = dnode is not None and dnode.is_key
        value = dnode.value if has_key else None
        res.node_matches[origin] = (depth, on_node, has_key, value)
        if depth > res.deepest:
            res.deepest = depth

    def record_cutoff(qnode: TrieNode, abs_depth: int) -> None:
        origin = frag.origin.get(qnode.uid)
        if origin is not None:
            res.cutoffs[origin] = abs_depth
        if abs_depth > res.deepest:
            res.deepest = abs_depth

    # stack entries: (qnode, dnode) with equal represented strings
    stack: list[tuple[TrieNode, TrieNode]] = [(frag.trie.root, block_trie.root)]
    record_node(frag.trie.root, block_trie.root)
    while stack:
        qnode, dnode = stack.pop()
        for b in (0, 1):
            qedge = qnode.children[b]
            if qedge is None:
                continue
            _descend(
                qedge,
                dnode,
                block_root_depth,
                record_node,
                record_cutoff,
                stack,
                tick,
            )
    return res


def _descend(
    qedge: TrieEdge,
    dnode: TrieNode,
    base: int,
    record_node,
    record_cutoff,
    stack,
    tick: Callable[[int], None],
) -> None:
    """Walk one query edge label through the data trie from ``dnode``."""
    label = qedge.label
    pos = 0  # consumed bits of `label`
    cur = dnode
    while True:
        if cur.mirror_child is not None:
            # child-block root: deeper matching belongs to that block
            record_cutoff(qedge.dst, base + qedge.src.depth + pos)
            return
        if pos == len(label):
            record_node(qedge.dst, cur)
            stack.append((qedge.dst, cur))
            return
        dedge = cur.children[label.bit(pos)]
        if dedge is None:
            record_cutoff(qedge.dst, base + qedge.src.depth + pos)
            return
        rest = label.suffix_from(pos)
        k = rest.lcp_len(dedge.label)
        tick(max(1, -(-k // 64)))
        if k == len(dedge.label):
            cur = dedge.dst
            pos += k
            continue
        if pos + k == len(label):
            # query node lands inside this data edge (hidden-node match)
            record_node(qedge.dst, None)
            _match_subtree_within_edge(qedge.dst, dedge, k, base, record_node,
                                       record_cutoff, stack, tick)
            return
        # true divergence inside the data edge
        record_cutoff(qedge.dst, base + qedge.src.depth + pos + k)
        return


def _match_subtree_within_edge(
    qnode: TrieNode,
    dedge: TrieEdge,
    offset: int,
    base: int,
    record_node,
    record_cutoff,
    stack,
    tick: Callable[[int], None],
) -> None:
    """The query node sits ``offset`` bits down data edge ``dedge``.

    Its children continue along the single remaining direction of the
    data edge; walk each child edge from this hidden position.
    """
    remaining = dedge.label.suffix_from(offset)
    for b in (0, 1):
        qchild = qnode.children[b]
        if qchild is None:
            continue
        label = qchild.label
        k = label.lcp_len(remaining)
        tick(max(1, -(-max(k, 1) // 64)))
        if k == len(label):
            # child node still inside (or exactly at the end of) the edge
            if k == len(remaining):
                record_node(qchild.dst, dedge.dst)
                stack.append((qchild.dst, dedge.dst))
            else:
                record_node(qchild.dst, None)
                _match_subtree_within_edge(
                    qchild.dst, dedge, offset + k, base,
                    record_node, record_cutoff, stack, tick,
                )
        elif k == len(remaining):
            # consumed the data edge; continue at the data node below
            _descend_from(
                qchild.dst, label, k, dedge.dst, base,
                record_node, record_cutoff, stack, tick,
            )
        else:
            record_cutoff(qchild.dst, base + qnode.depth + k)


def _descend_from(
    qdst: TrieNode,
    label: BitString,
    consumed: int,
    dnode: TrieNode,
    base: int,
    record_node,
    record_cutoff,
    stack,
    tick: Callable[[int], None],
) -> None:
    """Continue walking the tail of a query edge from a data node."""
    pos = consumed
    cur = dnode
    src_depth = qdst.depth - len(label)
    while True:
        if cur.mirror_child is not None:
            record_cutoff(qdst, base + src_depth + pos)
            return
        if pos == len(label):
            record_node(qdst, cur)
            stack.append((qdst, cur))
            return
        dedge = cur.children[label.bit(pos)]
        if dedge is None:
            record_cutoff(qdst, base + src_depth + pos)
            return
        rest = label.suffix_from(pos)
        k = rest.lcp_len(dedge.label)
        tick(max(1, -(-k // 64)))
        if k == len(dedge.label):
            cur = dedge.dst
            pos += k
            continue
        if pos + k == len(label):
            record_node(qdst, None)
            _match_subtree_within_edge(
                qdst, dedge, k, base, record_node, record_cutoff, stack, tick
            )
            return
        record_cutoff(qdst, base + src_depth + pos + k)
        return
