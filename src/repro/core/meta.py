"""The hash value manager (paper §4.4): meta-tree, meta-blocks,
recursive meta-block decomposition, and the replicated master-tree.

Structure.  One *meta record* per data-trie block carries the block's
root fingerprint, depth, PIM address, and the verification payloads
(S_last, and the pivot decomposition hash(S_pre) / S_rem of §4.4.2).
The meta-tree (blocks connected parent→child) is stored as *pieces* of
at most K_SMB owned records each; pieces form meta-block trees of
height O(log K_MB) built by the Lemma 4.5 cut-node loop.  Following
§5.2 ("every meta-block tree node caches the information in its
subtree"), each piece's lookup tables cover its whole represented
subtree, so block root hashes are replicated O(log P) times — exactly
the space budget of Lemma 4.7.

Root pieces of meta-block trees are registered in the master-tree,
which is replicated on every PIM module.

Maintenance (paper §5.2).  Inserted blocks join the leaf piece owning
their parent block and are replicated up the piece path.  A piece
overflowing K_SMB is re-cut; a piece whose child outgrows the
scapegoat factor alpha triggers a rebuild of that subtree; a meta-block
tree outgrowing K_MB promotes the root piece's children to independent
meta-block trees registered in the master-tree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from .. import fastpath
from ..bits import BitString, HashValue, IncrementalHasher
from ..fasttrie import ValidityIndex
from .config import PIMTrieConfig

__all__ = ["MetaRecord", "MetaPiece", "cut_node", "decompose_component"]

_piece_ids = itertools.count(1)


def next_piece_id() -> int:
    return next(_piece_ids)


@dataclass(frozen=True)
class MetaRecord:
    """Metadata of one data-trie block, as stored in the HVM.

    Ships at O(1) words (S_last / S_rem are < w bits each).
    """

    block_id: int
    fingerprint: int
    depth: int
    module: int
    #: last min(w, depth) bits of the root string (§4.4.3 verification)
    s_last: BitString
    #: fingerprint of the root string's longest w-aligned prefix (§4.4.2)
    s_pre_fp: int
    #: the < w-bit suffix after that prefix (§4.4.2)
    s_rem: BitString
    parent_block: Optional[int]

    def word_cost(self) -> int:
        return 6

    def aligned_depth(self) -> int:
        return self.depth - len(self.s_rem)


def make_record(
    block_id: int,
    root_string: BitString,
    module: int,
    hasher: IncrementalHasher,
    parent_block: Optional[int],
    w: int,
) -> MetaRecord:
    d = len(root_string)
    pre_len = (d // w) * w
    return MetaRecord(
        block_id=block_id,
        fingerprint=hasher.fingerprint_of(root_string),
        depth=d,
        module=module,
        s_last=root_string.suffix_from(max(0, d - w)),
        s_pre_fp=hasher.fingerprint_of(root_string.prefix(pre_len)),
        s_rem=root_string.suffix_from(pre_len),
        parent_block=parent_block,
    )


class MetaPiece:
    """One piece of the meta-tree: up to K_SMB *owned* records plus the
    replicated records of every descendant piece (subtree-complete).

    Lives on a single PIM module (in its scratch store); the CPU driver
    addresses it via its piece id.
    """

    def __init__(self, piece_id: int, module: int, w: int):
        self.piece_id = piece_id
        self.module = module
        self.w = w
        #: records this piece owns (counted against K_SMB)
        self.owned: dict[int, MetaRecord] = {}
        #: replicated subtree records (includes owned)
        self.table: dict[int, MetaRecord] = {}
        #: fingerprint -> block_id for subtree-complete lookup
        self.by_fp: dict[int, list[int]] = {}
        #: two-layer index: s_pre_fp -> (ValidityIndex over s_rem,
        #: {s_rem -> block_id})
        self.layer2: dict[int, tuple[ValidityIndex, dict[BitString, int]]] = {}
        self.parent_piece: Optional[int] = None
        self.child_pieces: list[int] = []
        #: child piece id -> the block id rooting that child piece
        self.child_roots: dict[int, int] = {}
        #: the block whose record roots this piece's component
        self.root_block: Optional[int] = None
        #: bumped on every record mutation; derived caches (word cost,
        #: per-piece match tables) key on it for invalidation
        self.version = 0
        self._wc_cache: Optional[tuple[int, int]] = None  # (version, cost)

    # ------------------------------------------------------------------
    def add_record(self, rec: MetaRecord, *, owned: bool) -> None:
        self.version += 1
        if owned:
            self.owned[rec.block_id] = rec
        if rec.block_id in self.table:
            self.remove_record(rec.block_id, keep_owned=owned)
            if owned:
                self.owned[rec.block_id] = rec
        self.table[rec.block_id] = rec
        self.by_fp.setdefault(rec.fingerprint, []).append(rec.block_id)
        entry = self.layer2.get(rec.s_pre_fp)
        if entry is None:
            entry = (ValidityIndex(self.w), {})
            self.layer2[rec.s_pre_fp] = entry
        vi, members = entry
        if rec.s_rem not in members:
            vi.insert(rec.s_rem)
        members[rec.s_rem] = rec.block_id

    def remove_record(self, block_id: int, *, keep_owned: bool = False) -> None:
        self.version += 1
        rec = self.table.pop(block_id, None)
        if not keep_owned:
            self.owned.pop(block_id, None)
        if rec is None:
            return
        ids = self.by_fp.get(rec.fingerprint)
        if ids is not None:
            ids.remove(block_id)
            if not ids:
                del self.by_fp[rec.fingerprint]
        entry = self.layer2.get(rec.s_pre_fp)
        if entry is not None:
            vi, members = entry
            if members.get(rec.s_rem) == block_id:
                # another record may share the same (s_pre, s_rem)?  Block
                # root strings are unique, so (s_pre_fp, s_rem) is unique
                # per record whp; drop it.
                del members[rec.s_rem]
                vi.delete(rec.s_rem)
            if not members:
                del self.layer2[rec.s_pre_fp]

    # ------------------------------------------------------------------
    def own_size(self) -> int:
        return len(self.owned)

    def represented_size(self) -> int:
        return len(self.table)

    def word_cost(self) -> int:
        """Shipping cost of the whole piece (pull rounds).

        Cached keyed on :attr:`version`: pull rounds re-cost the same
        unmodified piece on every query batch.
        """
        if fastpath.ENABLED:
            cached = self._wc_cache
            if cached is not None and cached[0] == self.version:
                return cached[1]
        wc = 1 + sum(r.word_cost() for r in self.table.values())
        self._wc_cache = (self.version, wc)
        return wc

    def __repr__(self) -> str:
        return (
            f"MetaPiece(id={self.piece_id}, own={len(self.owned)}, "
            f"table={len(self.table)}, children={len(self.child_pieces)})"
        )


# ----------------------------------------------------------------------
# Lemma 4.5 cut node + recursive decomposition (§4.4.1)
# ----------------------------------------------------------------------
def cut_node(
    nodes: list[int], children: dict[int, list[int]], root: int
) -> int:
    """The node minimizing the largest remaining piece after cutting all
    of its out-edges (Lemma 4.5 guarantees the optimum is ≤ (n+1)/2)."""
    n = len(nodes)
    size: dict[int, int] = {}
    # iterative post-order
    order: list[int] = []
    stack = [root]
    while stack:
        u = stack.pop()
        order.append(u)
        stack.extend(children.get(u, ()))
    for u in reversed(order):
        size[u] = 1 + sum(size[c] for c in children.get(u, ()))
    best, best_cost = root, n + 1
    for u in order:
        kids = children.get(u, ())
        upper = n - (size[u] - 1)
        max_child = max((size[c] for c in kids), default=0)
        cost = max(upper, max_child)
        if cost < best_cost:
            best, best_cost = u, cost
    assert best_cost <= (n + 1) // 2 + 1, "Lemma 4.5 violated"
    return best


def decompose_component(
    root: int,
    children: dict[int, list[int]],
    bound: int,
) -> tuple[dict[int, list[int]], dict[int, list[int]], int]:
    """Recursively decompose a tree component into pieces of ≤ ``bound``
    owned nodes (the §4.4.1 cut loop).

    Returns ``(piece_members, piece_children, root_key)`` where pieces
    are keyed by their root node id: ``piece_members[k]`` lists node ids
    owned by the piece rooted at node ``k``, and ``piece_children[k]``
    lists the keys of child pieces.  The piece-tree height is
    O(log n / log(1/alpha)) because every cut leaves pieces of at most
    (n+1)/2 nodes (Lemma 4.5 / Lemma 4.6).
    """

    piece_members: dict[int, list[int]] = {}
    piece_children: dict[int, list[int]] = {}

    def collect(r: int, kids: dict[int, list[int]]) -> list[int]:
        out: list[int] = []
        stack = [r]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(kids.get(u, ()))
        return out

    def recurse(r: int, kids: dict[int, list[int]]) -> int:
        members = collect(r, kids)
        child_piece_keys: list[int] = []
        # keep cutting child subtrees off until the remainder fits
        local_kids = {u: list(kids.get(u, ())) for u in members}
        while len(members) > bound:
            v = cut_node(members, local_kids, r)
            cut_children = list(local_kids.get(v, ()))
            if not cut_children:
                # v is a leaf: cutting does nothing; fall back to cutting
                # the root's children (can happen only when bound < 2)
                break
            local_kids[v] = []
            for c in cut_children:
                child_piece_keys.append(recurse(c, local_kids))
            members = collect(r, local_kids)
        piece_members[r] = members
        piece_children[r] = child_piece_keys
        return r

    root_key = recurse(root, children)
    return piece_members, piece_children, root_key
