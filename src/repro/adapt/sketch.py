"""Decayed Count-Min sketch over key prefixes (the adapt layer's eyes).

A :class:`CountMinSketch` is the standard Cormode–Muthukrishnan
counter matrix: ``depth`` rows of ``width`` counters, one pairwise-
independent hash per row, point estimates as the row-wise minimum.
Estimates *overcount only* — for a non-decayed sketch,

    true_count(k) <= estimate(k) <= true_count(k) + eps * N

with probability ``1 - delta`` when ``width >= ceil(e / eps)`` and
``depth >= ceil(ln(1 / delta))`` (``N`` is the stream total).  The
property tests in ``tests/test_adapt_sketch.py`` exercise exactly
these bounds on seeded streams.

Two extensions serve the adaptive controller:

* **decay** — :meth:`decay` multiplies every counter (and the running
  total) by a factor in ``(0, 1]``, turning the sketch into an
  exponentially-weighted window: hot-block decisions track *recent*
  traffic and old hot sets fade instead of pinning resources forever.
  Decay is monotone: no estimate ever increases.
* **merge** — :meth:`merge` adds another sketch's counters elementwise
  (same dimensions, same seed), which is how per-rack sketches roll up
  into one router-level view in the cluster (``repro.cluster``).

Keys are :class:`~repro.bits.BitString` prefixes (or raw ints); they
are folded to 64 bits with the same splitmix64 finalizer the cluster
layer uses for rack seeds, so hashing is deterministic, seedable, and
independent of Python's hash randomization.

Everything here is *host-side control plane*: no PIM rounds, no
accounted metrics — feeding and reading the sketch never perturbs the
simulator's books.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from ..bits import BitString

__all__ = ["CountMinSketch"]

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer (same mix as repro.cluster.sharding)."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def _fold_key(key: Union[BitString, int]) -> int:
    """Canonical 64-bit digest of a sketch key.

    BitStrings of arbitrary length fold 64 bits at a time (value may
    exceed one word for long prefixes); the length is mixed in so a
    prefix and its zero-extension hash differently.
    """
    if isinstance(key, BitString):
        v = key.value
        h = _mix64(len(key) ^ 0x9E3779B97F4A7C15)
        while True:
            h = _mix64(h ^ (v & _M64))
            v >>= 64
            if not v:
                return h
    return _mix64(int(key) ^ 0x9E3779B97F4A7C15)


class CountMinSketch:
    """Overcount-only frequency sketch with exponential decay."""

    def __init__(
        self,
        width: int,
        depth: int,
        *,
        seed: int = 0,
        decay: float = 1.0,
    ):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay factor must be in (0, 1]")
        self.width = width
        self.depth = depth
        self.seed = seed
        self.decay_factor = decay
        self.counts = np.zeros((depth, width), dtype=np.float64)
        #: decayed stream mass (sum of added counts, decayed in step)
        self.total = 0.0
        self._row_seeds = [
            _mix64((seed & _M64) ^ ((r + 1) * 0xD1B54A32D192ED03))
            for r in range(depth)
        ]

    # ------------------------------------------------------------------
    @classmethod
    def for_error(
        cls, epsilon: float, delta: float, *, seed: int = 0,
        decay: float = 1.0,
    ) -> "CountMinSketch":
        """Dimensions from the target error bound: estimates exceed the
        true count by more than ``epsilon * N`` with probability at
        most ``delta``."""
        if not 0.0 < epsilon < 1.0 or not 0.0 < delta < 1.0:
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = int(math.ceil(math.e / epsilon))
        depth = int(math.ceil(math.log(1.0 / delta)))
        return cls(max(1, width), max(1, depth), seed=seed, decay=decay)

    # ------------------------------------------------------------------
    def _indices(self, key: Union[BitString, int]) -> list[int]:
        h = _fold_key(key)
        return [
            _mix64(h ^ rs) % self.width for rs in self._row_seeds
        ]

    def add(self, key: Union[BitString, int], count: float = 1.0) -> None:
        """Count ``count`` occurrences of ``key``."""
        if count < 0:
            raise ValueError("counts are non-negative (use decay to forget)")
        for r, idx in enumerate(self._indices(key)):
            self.counts[r, idx] += count
        self.total += count

    def estimate(self, key: Union[BitString, int]) -> float:
        """Point estimate: min over rows; never undercounts."""
        return float(
            min(self.counts[r, idx] for r, idx in enumerate(self._indices(key)))
        )

    def decay(self, factor: float = None) -> None:
        """Age the window: multiply every counter by ``factor``
        (default: the sketch's configured decay factor)."""
        f = self.decay_factor if factor is None else factor
        if not 0.0 <= f <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        self.counts *= f
        self.total *= f
        # snap vanishing mass to exact zero so long-idle sketches
        # compare clean and the min_window gate re-arms
        if self.total < 1e-9:
            self.counts.fill(0.0)
            self.total = 0.0

    # ------------------------------------------------------------------
    def compatible(self, other: "CountMinSketch") -> bool:
        return (
            self.width == other.width
            and self.depth == other.depth
            and self._row_seeds == other._row_seeds
        )

    def merge(self, other: "CountMinSketch") -> None:
        """Elementwise add (cluster roll-up); requires same dims+seed."""
        if not self.compatible(other):
            raise ValueError("cannot merge sketches with different shapes/seeds")
        self.counts += other.counts
        self.total += other.total

    def copy(self) -> "CountMinSketch":
        out = CountMinSketch(
            self.width, self.depth, seed=self.seed, decay=self.decay_factor
        )
        out.counts = self.counts.copy()
        out.total = self.total
        return out

    def __repr__(self) -> str:
        return (
            f"CountMinSketch(w={self.width}, d={self.depth}, "
            f"total={self.total:.1f})"
        )
