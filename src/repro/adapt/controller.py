"""Sketch-guided adaptive skew defense (the adapt layer's hands).

The :class:`AdaptiveController` closes the loop the ROADMAP asks for:
the serve layer drains per-epoch block access counters
(``PIMTrie.take_block_touches``) into a decayed Count-Min sketch keyed
by **block base prefix**, and the controller reacts online:

* **hot block** (estimated share of recent traffic above
  ``hot_fraction``) → **split** it across fresh modules with a finer
  block bound (``PIMTrie.split_block``), and if it cannot fracture
  further (or is already fine-grained) → **replicate** it so reads
  round-robin across copies (``PIMTrie.replicate_block``).
* **cold block** (share below ``cold_fraction``) → retire its replicas
  (``dereplicate_block``) and, for blocks this controller previously
  split, fold the children back in (``merge_block``).

Every action runs inside an ``adapt.*`` span (cat ``"adapt"``), so the
obs layer attributes the maintenance rounds to the controller and the
span-sum invariant stays byte-exact.  Decisions use only host-side
state (sketch + registries) — deciding costs nothing; only *acting*
spends accounted rounds.

Correctness is structural: split / replicate / merge change placement,
never the key set, so any interleaving of controller actions with
client batches leaves every answer identical to the adapt-off replay
(``tests/test_adapt.py`` proves this differentially against the dict
oracle).

:class:`ClusterAdaptiveController` lifts the same loop to
``repro.cluster``: one controller (and sketch) per rack, with the
per-rack sketches merged into a router-level view for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs.tracer import maybe_span
from .sketch import CountMinSketch

__all__ = ["AdaptPolicy", "AdaptiveController", "ClusterAdaptiveController"]


@dataclass
class AdaptPolicy:
    """Thresholds and hysteresis for the adaptive controller.

    The hot/cold thresholds are *fractions of the sketch's decayed
    total mass*, so they track traffic share rather than absolute
    counts and need no retuning across request rates.  Hysteresis comes
    from three places: ``hot_fraction`` is well above ``cold_fraction``
    (a block must fall a long way before its defenses are torn down),
    ``cooldown`` spaces repeat actions on the same block, and
    ``min_window`` keeps the controller idle until the sketch has seen
    enough mass to trust.
    """

    #: sketch geometry (width ~ e/eps counters per row, depth rows)
    sketch_width: int = 256
    sketch_depth: int = 4
    #: per-epoch exponential decay of the sketch window
    decay: float = 0.75
    #: hash seed for the sketch rows
    seed: int = 0
    #: a block whose estimated share of the decayed window exceeds
    #: this is hot
    hot_fraction: float = 0.15
    #: a block whose estimated share falls below this is cold
    cold_fraction: float = 0.03
    #: minimum decayed window mass before any action is taken
    min_window: float = 32.0
    #: epochs to wait between actions on the same block
    cooldown: int = 2
    #: cap on extra read copies per block
    max_replicas: int = 2
    #: only split blocks holding at least this many keys
    split_min_keys: int = 4
    #: word bound for split_block (None = block_bound // 4)
    split_bound: Optional[int] = None
    #: cap on structural actions per step (bounds per-epoch overhead)
    max_actions_per_epoch: int = 4


class AdaptiveController:
    """Per-trie adaptive loop: observe → estimate → split/replicate/merge."""

    def __init__(self, trie: Any, policy: Optional[AdaptPolicy] = None):
        self.trie = trie
        self.policy = policy or AdaptPolicy()
        p = self.policy
        self.sketch = CountMinSketch(
            p.sketch_width, p.sketch_depth, seed=p.seed, decay=p.decay
        )
        #: completed epochs observed
        self.epoch = 0
        #: block id -> epoch of the last structural action on it
        self._last_action: dict[int, int] = {}
        #: roots of splits *this controller* performed (merge candidates)
        self._split_roots: dict[int, int] = {}
        #: running action counters (reported via summary())
        self.counts = {
            "split": 0, "replicate": 0, "dereplicate": 0, "merge": 0,
        }
        #: per-step action log: (epoch, kind, block_id, detail)
        self.log: list[tuple[int, str, int, Any]] = []

    # ------------------------------------------------------------------
    # observe
    # ------------------------------------------------------------------
    def observe(self, touches: Optional[dict[int, int]] = None) -> float:
        """Age the sketch window one epoch, then feed it this epoch's
        block access counts (drained from the trie unless given).
        Counts are keyed by the block's base prefix, so estimates
        survive splits and merges that reuse the block id.  Returns the
        mass added."""
        self.sketch.decay()
        if touches is None:
            touches = self.trie.take_block_touches()
        added = 0.0
        for bid, n in touches.items():
            base = self.trie._root_strings.get(bid)
            if base is None:  # block vanished since the batch ran
                continue
            self.sketch.add(base, float(n))
            added += n
        return added

    def block_share(self, bid: int) -> float:
        """Estimated fraction of the decayed window hitting ``bid``."""
        if self.sketch.total <= 0.0:
            return 0.0
        base = self.trie._root_strings.get(bid)
        if base is None:
            return 0.0
        return self.sketch.estimate(base) / self.sketch.total

    # ------------------------------------------------------------------
    # act
    # ------------------------------------------------------------------
    def _cooled(self, bid: int) -> bool:
        last = self._last_action.get(bid)
        return last is None or self.epoch - last >= self.policy.cooldown

    def _act_hot(self, bid: int, budget: int) -> int:
        """Defend one hot block; returns actions spent (0 or 1)."""
        p, trie = self.policy, self.trie
        if budget <= 0 or not self._cooled(bid):
            return 0
        if bid not in trie.block_module:
            return 0
        # prefer splitting (permanently spreads the load); fall back to
        # replication when the block cannot fracture further
        if trie.block_keys.get(bid, 0) >= p.split_min_keys:
            with maybe_span(trie.system, "adapt.split", cat="adapt"):
                made = trie.split_block(bid, bound=p.split_bound)
            if made > 0:
                self._split_roots[bid] = self.epoch
                self._last_action[bid] = self.epoch
                self.counts["split"] += 1
                self.log.append((self.epoch, "split", bid, made))
                return 1
        reps = trie.block_replicas.get(bid, ())
        if len(reps) < p.max_replicas:
            with maybe_span(trie.system, "adapt.replicate", cat="adapt"):
                m = trie.replicate_block(bid)
            if m is not None:
                self._last_action[bid] = self.epoch
                self.counts["replicate"] += 1
                self.log.append((self.epoch, "replicate", bid, m))
                return 1
        return 0

    def _act_cold(self, bid: int, budget: int) -> int:
        """Tear down one cold block's defenses; returns actions spent."""
        p, trie = self.policy, self.trie
        if budget <= 0 or not self._cooled(bid):
            return 0
        if trie.block_replicas.get(bid):
            with maybe_span(trie.system, "adapt.dereplicate", cat="adapt"):
                trie.dereplicate_block(bid)
            self._last_action[bid] = self.epoch
            self.counts["dereplicate"] += 1
            self.log.append((self.epoch, "dereplicate", bid, None))
            return 1
        if bid in self._split_roots and trie.block_children.get(bid):
            kids = trie.block_children[bid]
            # only reverse our own splits, only while every child is
            # also cold, and only if the merged block stays bounded
            if any(
                self.block_share(c) >= p.cold_fraction for c in kids
            ):
                return 0
            total_keys = trie.block_keys.get(bid, 0) + sum(
                trie.block_keys.get(c, 0) for c in kids
            )
            if total_keys > trie.config.block_bound:
                return 0
            with maybe_span(trie.system, "adapt.merge", cat="adapt"):
                absorbed = trie.merge_block(bid)
            del self._split_roots[bid]
            self._last_action[bid] = self.epoch
            self.counts["merge"] += 1
            self.log.append((self.epoch, "merge", bid, absorbed))
            return 1
        return 0

    def step(self, touches: Optional[dict[int, int]] = None) -> dict:
        """One epoch of the loop: observe, then act within budget.

        Returns a summary dict (also what lands in
        ``ServiceReport.extra['adapt']``).
        """
        p = self.policy
        added = self.observe(touches)
        self.epoch += 1
        actions = 0
        if self.sketch.total >= p.min_window:
            shares = [
                (self.block_share(bid), bid)
                for bid in list(self.trie.block_module)
            ]
            shares.sort(key=lambda sb: (-sb[0], sb[1]))
            for share, bid in shares:
                if actions >= p.max_actions_per_epoch:
                    break
                if share >= p.hot_fraction:
                    actions += self._act_hot(
                        bid, p.max_actions_per_epoch - actions
                    )
            # cold pass: blocks carrying defenses whose traffic faded
            cold = [
                bid
                for bid in sorted(
                    set(self.trie.block_replicas) | set(self._split_roots)
                )
                if self.block_share(bid) < p.cold_fraction
            ]
            for bid in cold:
                if actions >= p.max_actions_per_epoch:
                    break
                actions += self._act_cold(
                    bid, p.max_actions_per_epoch - actions
                )
        return {
            "epoch": self.epoch,
            "window_mass": round(self.sketch.total, 3),
            "observed": added,
            "actions": actions,
            **self.counts,
            "replicated_blocks": len(self.trie.block_replicas),
        }

    def summary(self) -> dict:
        """Cumulative controller state for reports."""
        return {
            "epochs": self.epoch,
            "window_mass": round(self.sketch.total, 3),
            **self.counts,
            "replicated_blocks": len(self.trie.block_replicas),
            "split_roots": len(self._split_roots),
        }


class ClusterAdaptiveController:
    """Adaptive loop over a ``repro.cluster`` PIMCluster: one
    :class:`AdaptiveController` (and sketch) per rack, created lazily
    keyed by ``rack.uid`` so a replacement rack after failover gets a
    fresh controller.  :meth:`router_sketch` merges the live per-rack
    sketches into one router-level view of the cluster's hot set."""

    def __init__(self, cluster: Any, policy: Optional[AdaptPolicy] = None):
        self.cluster = cluster
        self.policy = policy or AdaptPolicy()
        self._by_rack: dict[tuple, AdaptiveController] = {}

    def controller_for(self, rack: Any) -> AdaptiveController:
        ctl = self._by_rack.get(rack.uid)
        if ctl is None:
            ctl = AdaptiveController(rack.trie, self.policy)
            self._by_rack[rack.uid] = ctl
        return ctl

    def step(self) -> dict:
        """Step every live rack's controller; returns a cluster summary."""
        per_rack: dict[tuple, dict] = {}
        for rack in self.cluster.iter_racks():
            if not rack.alive:
                continue
            per_rack[rack.uid] = self.controller_for(rack).step()
        totals = {"split": 0, "replicate": 0, "dereplicate": 0, "merge": 0}
        for s in per_rack.values():
            for k in totals:
                totals[k] += s[k]
        return {
            "racks": len(per_rack),
            **totals,
            "router_mass": round(self.router_sketch_total(), 3),
        }

    def router_sketch(self) -> Optional[CountMinSketch]:
        """Merged per-rack sketches (same dims/seed ⇒ mergeable); the
        router's view of global prefix heat.  None before any step."""
        merged: Optional[CountMinSketch] = None
        for ctl in self._by_rack.values():
            if merged is None:
                merged = ctl.sketch.copy()
            elif merged.compatible(ctl.sketch):
                merged.merge(ctl.sketch)
        return merged

    def router_sketch_total(self) -> float:
        s = self.router_sketch()
        return s.total if s is not None else 0.0

    def summary(self) -> dict:
        totals = {"split": 0, "replicate": 0, "dereplicate": 0, "merge": 0}
        for ctl in self._by_rack.values():
            for k in totals:
                totals[k] += ctl.counts[k]
        return {
            "racks": len(self._by_rack),
            **totals,
            "router_mass": round(self.router_sketch_total(), 3),
        }
