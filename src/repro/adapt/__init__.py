"""repro.adapt — sketch-guided adaptive skew defense.

The paper's PIM-trie is skew-*resistant* (worst-case guarantees against
a static adversary); this layer makes the stack skew-*aware*: a decayed
Count-Min prefix-frequency sketch (:mod:`.sketch`) fed per epoch by the
serve layer, and a controller (:mod:`.controller`) that splits,
replicates, and merges blocks online as the hot set drifts.  See
``docs/ARCHITECTURE.md`` and DESIGN §13.
"""

from .controller import AdaptiveController, AdaptPolicy, ClusterAdaptiveController
from .sketch import CountMinSketch

__all__ = [
    "AdaptPolicy",
    "AdaptiveController",
    "ClusterAdaptiveController",
    "CountMinSketch",
]
