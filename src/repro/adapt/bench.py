"""The adaptive-skew benchmark (E18): adapt-on vs static layout under
time-varying skew.

Writes ``BENCH_adapt.json``.  For each drift pattern (drifting Zipf
hot set, moving flash crowd, diurnal day/night mix) the same trace runs
twice through :class:`repro.serve.EpochServer` on identically-built
tries — once with an :class:`~repro.adapt.AdaptiveController` stepping
every epoch, once static — and the row reports rounds/op, simulated
latency percentiles, and the controller's action counts.

Three correctness gates ride every row:

* **digest parity** — the order-independent answer digest of the
  adapt-on run must equal the adapt-off run's (split / replicate /
  merge change placement, never answers);
* **oracle match** — both runs' replies are checked against a plain
  dict-of-BitString reference (the same semantics as the differential
  harness's oracle);
* **exactness** — the adapted trie passes ``PIMTrie.validate()`` at
  the end (replica copies content-identical, registries consistent).

The skewed traffic concentrates on few blocks by construction: the
trie is built with a large ``block_bound`` and the resident keys are
drawn from the *same* hot-prefix distributions as the queries, so a
phase's hot range is one dense block on one module — the static
worst-case the controller is supposed to dismantle.  The service model
weights ``io_time`` heavily (``word_time=0.05``), so per-module word
bottlenecks show up directly in the simulated percentiles.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from ..bits import BitString
from ..core import PIMTrie, PIMTrieConfig
from ..perf import reset_id_counters
from ..pim import PIMSystem
from ..serve import ServiceReport, policy_from_name, replay_direct, trace_from_stream
from ..serve.server import EpochServer
from ..workloads import (
    diurnal_stream,
    drifting_zipf_stream,
    flash_crowd_stream,
    uniform_keys,
)
from .controller import AdaptiveController, AdaptPolicy

__all__ = ["PATTERNS", "answers_digest", "bench_adapt_run", "run_bench_adapt"]

PATTERNS = ("drifting-zipf", "flash-crowd", "diurnal")

FULL = {"P": 32, "resident": 300, "n_ops": 1600, "length": 48,
        "rate": 4.0, "block_bound": 256, "word_time": 0.05,
        "max_batch": 32}
SMOKE = {"P": 16, "resident": 150, "n_ops": 400, "length": 48,
         "rate": 4.0, "block_bound": 128, "word_time": 0.05,
         "max_batch": 32}
POLICY = "eager"
#: op mix: lcp-heavy with a write trickle (subtree floods would swamp
#: the word counts and hide the placement signal)
MIX = {"lcp": 0.75, "insert": 0.15, "delete": 0.10}


class _DictOracle:
    """Reference semantics over a plain dict (mirrors tests/harness.py;
    duck-compatible with :func:`repro.serve.replay_direct`)."""

    def __init__(self, items: dict[BitString, Any]):
        self.store = dict(items)

    def lcp_batch(self, keys):
        return [
            max((k.lcp_len(s) for s in self.store), default=0) for k in keys
        ]

    def insert_batch(self, keys, values):
        for k, v in zip(keys, values):
            self.store[k] = v

    def delete_batch(self, keys):
        for k in keys:
            self.store.pop(k, None)

    def subtree_batch(self, prefixes):
        return [
            sorted(
                ((k, v) for k, v in self.store.items() if k.starts_with(p)),
                key=lambda kv: kv[0],
            )
            for p in prefixes
        ]


def answers_digest(report: ServiceReport) -> str:
    """Order-independent digest of the completed answers."""
    blob = repr(
        [
            (c.seq, c.kind, c.reply)
            for c in sorted(report.completed, key=lambda c: c.seq)
            if c.ok
        ]
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def _pattern_stream(pattern: str, *, n_ops, length, rate, seed):
    if pattern == "drifting-zipf":
        return drifting_zipf_stream(
            n_ops, length, num_phases=3, num_hot=4, theta=1.4,
            rate=rate, mix=MIX, seed=seed,
        )
    if pattern == "flash-crowd":
        return flash_crowd_stream(
            n_ops, length, num_crowds=3, crowd_fraction=0.9,
            rate=rate, mix=MIX, seed=seed,
        )
    if pattern == "diurnal":
        return diurnal_stream(
            n_ops, length, periods=2.0, num_hot=4, theta=1.4,
            rate=rate, rate_swing=0.6, mix=MIX, seed=seed,
        )
    raise ValueError(f"unknown drift pattern {pattern!r}")


def _resident_keys(stream, resident: int, length: int, seed: int):
    """Resident key set drawn from the stream's own key material, so
    the hot ranges are *dense* — the static layout's worst case.  Padded
    with uniform keys if the stream is key-poor."""
    pool = list(dict.fromkeys(t.key for t in stream if len(t.key) == length))
    rng = np.random.default_rng(seed + 0xBEEF)
    rng.shuffle(pool)
    keys = pool[:resident]
    if len(keys) < resident:
        keys += uniform_keys(resident - len(keys), length, seed=seed + 29)
    return sorted(set(keys))


def _build_trie(keys, *, P: int, block_bound: int) -> PIMTrie:
    reset_id_counters()
    system = PIMSystem(P, seed=1)
    cfg = PIMTrieConfig(num_modules=P, block_bound=block_bound)
    return PIMTrie(
        system, cfg, keys=keys, values=[f"r{i}" for i in range(len(keys))]
    )


def _adapt_policy(block_bound: int) -> AdaptPolicy:
    return AdaptPolicy(
        hot_fraction=0.10,
        cold_fraction=0.02,
        min_window=24.0,
        cooldown=1,
        max_replicas=2,
        split_bound=max(8, block_bound // 8),
        max_actions_per_epoch=4,
    )


def bench_adapt_run(
    pattern: str,
    *,
    P: int,
    resident: int,
    n_ops: int,
    length: int,
    rate: float,
    block_bound: int,
    word_time: float,
    max_batch: int = 32,
    seed: int = 7,
) -> dict[str, Any]:
    """One drift pattern, adapt-on vs adapt-off; returns the JSON row."""
    stream = _pattern_stream(
        pattern, n_ops=n_ops, length=length, rate=rate, seed=seed
    )
    trace = trace_from_stream(stream, seed=seed, name=pattern)
    keys = _resident_keys(stream, resident, length, seed)

    def serve(adaptive: bool):
        trie = _build_trie(keys, P=P, block_bound=block_bound)
        ctl = (
            AdaptiveController(trie, _adapt_policy(block_bound))
            if adaptive
            else None
        )
        server = EpochServer(
            trie, policy_from_name(POLICY, max_batch=max_batch),
            word_time=word_time, adapt=ctl,
        )
        report = server.run(trace)
        return report, trie, ctl

    rep_on, trie_on, ctl = serve(True)
    rep_off, _, _ = serve(False)
    trie_on.validate()

    # oracle: replies must match the dict reference exactly (both runs)
    oracle_replies = dict(
        replay_direct(
            _DictOracle({k: f"r{i}" for i, k in enumerate(keys)}), trace.ops
        )
    )
    def _matches(rep):
        return all(
            oracle_replies[c.seq] == c.reply for c in rep.completed if c.ok
        )

    def _side(rep: ServiceReport) -> dict[str, Any]:
        lat = rep.latency()
        done = max(1, len(rep.completed))
        return {
            "completed": len(rep.completed),
            "io_rounds": rep.metrics.io_rounds,
            "io_time": rep.metrics.io_time,
            "rounds_per_op": round(rep.metrics.io_rounds / done, 3),
            "words_per_op": round(rep.metrics.io_time / done, 2),
            "makespan": round(rep.makespan, 3),
            "latency": {
                k: round(lat[k], 3) for k in ("p50", "p95", "p99", "max")
            },
            "epochs": len(rep.epochs),
        }

    adaptive = _side(rep_on)
    static = _side(rep_off)
    row = {
        "pattern": pattern,
        "seed": seed,
        "adaptive": adaptive,
        "static": static,
        "adapt_actions": ctl.summary(),
        "digest_adaptive": answers_digest(rep_on),
        "digest_static": answers_digest(rep_off),
        "digest_match": answers_digest(rep_on) == answers_digest(rep_off),
        "oracle_match": _matches(rep_on) and _matches(rep_off),
        "p99_speedup": round(
            static["latency"]["p99"] / max(1e-9, adaptive["latency"]["p99"]), 3
        ),
        "rounds_per_op_ratio": round(
            static["rounds_per_op"] / max(1e-9, adaptive["rounds_per_op"]), 3
        ),
    }
    row["adaptive_wins"] = bool(
        row["p99_speedup"] > 1.0 or row["rounds_per_op_ratio"] > 1.0
    )
    return row


def run_bench_adapt(
    out: Optional[str] = "BENCH_adapt.json",
    *,
    smoke: bool = False,
    seed: int = 7,
) -> dict[str, Any]:
    """All drift patterns; writes ``out`` and returns the report dict."""
    cfg = dict(SMOKE if smoke else FULL)
    rows = [bench_adapt_run(p, seed=seed, **cfg) for p in PATTERNS]
    wins = sum(1 for r in rows if r["adaptive_wins"])
    headline = {
        "all_digests_match": all(r["digest_match"] for r in rows),
        "all_oracle_match": all(r["oracle_match"] for r in rows),
        "patterns_won": wins,
        "adaptive_beats_static": wins >= 2,
        "p99_speedups": {r["pattern"]: r["p99_speedup"] for r in rows},
    }
    report = {
        "bench": "adapt",
        "profile": "smoke" if smoke else "full",
        "config": {**cfg, "policy": POLICY, "mix": MIX, "seed": seed},
        "patterns": rows,
        "headline": headline,
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2, sort_keys=True))
    return report
