"""Executable PIM Model simulator (paper §2): modules, BSP rounds, metrics."""

from .metrics import MetricsCollector, MetricsSnapshot, RoundRecord
from .module import ModuleContext, PIMModule
from .system import PIMSystem, default_word_cost, reflective_word_cost

__all__ = [
    "MetricsCollector",
    "MetricsSnapshot",
    "RoundRecord",
    "ModuleContext",
    "PIMModule",
    "PIMSystem",
    "default_word_cost",
    "reflective_word_cost",
]
