"""PIM Model cost accounting (paper §2).

The PIM Model measures, per BSP-style synchronous round:

* **IO rounds** — the number of rounds executed;
* **IO time** — the maximum, over modules, of one module's *total*
  round traffic (words in + words out); maxima are taken per round and
  summed across rounds.  A module's link is half-duplex in the PIM
  Model, so its round cost is the sum of both directions, not their max;
* **total communication** — the sum of words moved between the CPU and
  all modules (used to report per-operation communication, Table 1);
* **PIM time** — the maximum kernel work on any one module per round,
  summed across rounds;
* **CPU work** — total host-side instructions (we count abstract
  operations via explicit ticks).

``MetricsCollector`` accumulates these; ``snapshot()/delta()`` let a
caller measure a single batch.  Per-module cumulative traffic and work
are also retained so benchmarks can report load-balance ratios
(max/mean), the paper's skew-resistance criterion (Definition 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["MetricsCollector", "MetricsSnapshot", "RoundRecord"]


@dataclass(frozen=True)
class RoundRecord:
    """Per-round accounting: words moved and kernel work, per module."""

    words_to: tuple[int, ...]
    words_from: tuple[int, ...]
    kernel_work: tuple[int, ...]

    @property
    def io_time(self) -> int:
        """Max over modules of that module's total round traffic (in + out)."""
        if not self.words_to:
            return 0
        return max(t + f for t, f in zip(self.words_to, self.words_from))

    @property
    def total_words(self) -> int:
        return sum(self.words_to) + sum(self.words_from)

    @property
    def pim_time(self) -> int:
        return max(self.kernel_work, default=0)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Cumulative metrics at a point in time (all counts, no wall clock)."""

    io_rounds: int
    io_time: int
    total_communication: int
    pim_time: int
    pim_work: int
    cpu_work: int
    per_module_traffic: tuple[int, ...]
    per_module_work: tuple[int, ...]

    def delta(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Metrics accumulated since ``earlier``.

        Both snapshots must come from systems with the same module
        count; a per-module length mismatch raises ``ValueError``.
        """
        if len(self.per_module_traffic) != len(earlier.per_module_traffic) or (
            len(self.per_module_work) != len(earlier.per_module_work)
        ):
            raise ValueError(
                f"snapshot module counts differ: "
                f"{len(self.per_module_traffic)} traffic /"
                f" {len(self.per_module_work)} work vs "
                f"{len(earlier.per_module_traffic)} traffic /"
                f" {len(earlier.per_module_work)}"
            )
        return MetricsSnapshot(
            io_rounds=self.io_rounds - earlier.io_rounds,
            io_time=self.io_time - earlier.io_time,
            total_communication=self.total_communication
            - earlier.total_communication,
            pim_time=self.pim_time - earlier.pim_time,
            pim_work=self.pim_work - earlier.pim_work,
            cpu_work=self.cpu_work - earlier.cpu_work,
            per_module_traffic=tuple(
                a - b
                for a, b in zip(self.per_module_traffic, earlier.per_module_traffic)
            ),
            per_module_work=tuple(
                a - b
                for a, b in zip(self.per_module_work, earlier.per_module_work)
            ),
        )

    @classmethod
    def merge(cls, *snapshots: "MetricsSnapshot") -> "MetricsSnapshot":
        """Aggregate snapshots from *independent* systems into one.

        Scalars are summed; per-module distributions are concatenated
        in argument order, so the merged snapshot's imbalance ratios
        range over every module of every system (a cluster-wide
        load-balance view, not an average of per-rack views).

        Merging commutes with :meth:`delta`: merging per-system deltas
        equals the delta of merged before/after snapshots, because every
        scalar is additive and concatenation is position-preserving.
        A snapshot whose traffic and work distributions disagree in
        length is malformed and raises ``ValueError``.
        """
        if not snapshots:
            raise ValueError("merge needs at least one snapshot")
        for i, s in enumerate(snapshots):
            if len(s.per_module_traffic) != len(s.per_module_work):
                raise ValueError(
                    f"snapshot {i} is malformed: "
                    f"{len(s.per_module_traffic)} traffic modules vs "
                    f"{len(s.per_module_work)} work modules"
                )
        traffic: tuple[int, ...] = ()
        work: tuple[int, ...] = ()
        for s in snapshots:
            traffic += s.per_module_traffic
            work += s.per_module_work
        return cls(
            io_rounds=sum(s.io_rounds for s in snapshots),
            io_time=sum(s.io_time for s in snapshots),
            total_communication=sum(
                s.total_communication for s in snapshots
            ),
            pim_time=sum(s.pim_time for s in snapshots),
            pim_work=sum(s.pim_work for s in snapshots),
            cpu_work=sum(s.cpu_work for s in snapshots),
            per_module_traffic=traffic,
            per_module_work=work,
        )

    # ------------------------------------------------------------------
    # load-balance statistics (Definition 1: PIM-balanced)
    # ------------------------------------------------------------------
    def traffic_imbalance(self) -> float:
        """max/mean per-module traffic; 1.0 is perfectly balanced."""
        t = np.asarray(self.per_module_traffic, dtype=np.float64)
        mean = t.mean()
        return float(t.max() / mean) if mean > 0 else 1.0

    def work_imbalance(self) -> float:
        """max/mean per-module kernel work; 1.0 is perfectly balanced."""
        t = np.asarray(self.per_module_work, dtype=np.float64)
        mean = t.mean()
        return float(t.max() / mean) if mean > 0 else 1.0

    def as_dict(self, *, include_per_module: bool = False) -> dict:
        out = {
            "io_rounds": self.io_rounds,
            "io_time": self.io_time,
            "total_communication": self.total_communication,
            "pim_time": self.pim_time,
            "pim_work": self.pim_work,
            "cpu_work": self.cpu_work,
            "traffic_imbalance": self.traffic_imbalance(),
            "work_imbalance": self.work_imbalance(),
        }
        if include_per_module:
            # full balance distributions (benchmarks record these so
            # skew reports can show more than the max/mean ratio)
            out["per_module_traffic"] = list(self.per_module_traffic)
            out["per_module_work"] = list(self.per_module_work)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "MetricsSnapshot":
        """Rebuild a snapshot from ``as_dict(include_per_module=True)``
        output (e.g. parsed back out of a benchmark JSON).

        The derived imbalance ratios in the dict are ignored — they are
        recomputed from the per-module distributions, which must be
        present (the ``include_per_module=False`` form is lossy).
        """
        missing = [
            k for k in ("per_module_traffic", "per_module_work") if k not in d
        ]
        if missing:
            raise ValueError(
                f"snapshot dict lacks {missing}; serialize with "
                f"as_dict(include_per_module=True) to round-trip"
            )
        return cls(
            io_rounds=int(d["io_rounds"]),
            io_time=int(d["io_time"]),
            total_communication=int(d["total_communication"]),
            pim_time=int(d["pim_time"]),
            pim_work=int(d["pim_work"]),
            cpu_work=int(d["cpu_work"]),
            per_module_traffic=tuple(int(x) for x in d["per_module_traffic"]),
            per_module_work=tuple(int(x) for x in d["per_module_work"]),
        )


class MetricsCollector:
    """Accumulates PIM Model costs across rounds for one PIMSystem."""

    def __init__(self, num_modules: int, *, keep_round_log: bool = False):
        self.num_modules = num_modules
        self.keep_round_log = keep_round_log
        self.rounds: list[RoundRecord] = []
        self.io_rounds = 0
        self.io_time = 0
        self.total_communication = 0
        self.pim_time = 0
        self.pim_work = 0
        self.cpu_work = 0
        self._traffic = [0] * num_modules
        self._work = [0] * num_modules

    # ------------------------------------------------------------------
    def record_round(
        self,
        words_to: list[int],
        words_from: list[int],
        kernel_work: list[int],
    ) -> None:
        rec = RoundRecord(tuple(words_to), tuple(words_from), tuple(kernel_work))
        self.io_rounds += 1
        self.io_time += rec.io_time
        self.total_communication += rec.total_words
        self.pim_time += rec.pim_time
        self.pim_work += sum(kernel_work)
        for m in range(self.num_modules):
            self._traffic[m] += words_to[m] + words_from[m]
            self._work[m] += kernel_work[m]
        if self.keep_round_log:
            self.rounds.append(rec)

    def tick_cpu(self, n: int = 1) -> None:
        """Account ``n`` units of host CPU work."""
        self.cpu_work += n

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            io_rounds=self.io_rounds,
            io_time=self.io_time,
            total_communication=self.total_communication,
            pim_time=self.pim_time,
            pim_work=self.pim_work,
            cpu_work=self.cpu_work,
            per_module_traffic=tuple(self._traffic),
            per_module_work=tuple(self._work),
        )

    def reset(self) -> None:
        self.rounds.clear()
        self.io_rounds = 0
        self.io_time = 0
        self.total_communication = 0
        self.pim_time = 0
        self.pim_work = 0
        self.cpu_work = 0
        self._traffic = [0] * self.num_modules
        self._work = [0] * self.num_modules
