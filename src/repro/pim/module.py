"""A single simulated PIM module: private memory plus a metered processor.

Each module owns a local object heap addressed by integer handles (the
"local memory address" half of the paper's PIM address).  Kernels run on
a :class:`ModuleContext` which exposes the heap and a ``work`` counter;
kernel code calls ``ctx.tick(n)`` to meter its PIM work.  Modules can
only touch their own memory — the simulator enforces the PIM Model's
isolation by construction (kernels are handed their own context only).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["ModuleContext", "PIMModule"]


class ModuleContext:
    """Execution context handed to a kernel running on one module."""

    __slots__ = ("module_id", "heap", "work", "_next_addr", "scratch")

    def __init__(self, module_id: int):
        self.module_id = module_id
        self.heap: dict[int, Any] = {}
        #: named persistent per-module state (hash tables, replicas, ...)
        self.scratch: dict[str, Any] = {}
        self.work = 0
        self._next_addr = 1

    # ------------------------------------------------------------------
    # local memory management
    # ------------------------------------------------------------------
    def alloc(self, obj: Any) -> int:
        """Store ``obj`` in local memory; return its local address."""
        addr = self._next_addr
        self._next_addr += 1
        self.heap[addr] = obj
        return addr

    def load(self, addr: int) -> Any:
        try:
            return self.heap[addr]
        except KeyError:
            raise KeyError(
                f"module {self.module_id}: no object at local address {addr}"
            ) from None

    def store(self, addr: int, obj: Any) -> None:
        if addr not in self.heap:
            raise KeyError(
                f"module {self.module_id}: no object at local address {addr}"
            )
        self.heap[addr] = obj

    def free(self, addr: int) -> None:
        self.heap.pop(addr, None)

    # ------------------------------------------------------------------
    # work metering
    # ------------------------------------------------------------------
    def tick(self, n: int = 1) -> None:
        """Meter ``n`` units of PIM processor work."""
        self.work += n

    def wipe(self) -> None:
        """Power-cycle the module: all local memory is lost.

        The ``work`` meter survives — it is the simulator's odometer
        (kernel-work deltas are computed against it mid-round), not
        module state.  The allocation counter also survives: local
        addresses are never reused across a crash, so a stale host-side
        handle from before the wipe faults loudly (``KeyError``) instead
        of silently resolving to whatever object recovery happened to
        place at the recycled address.
        """
        self.heap.clear()
        self.scratch.clear()

    def memory_words(self, sizer: Optional[Callable[[Any], int]] = None) -> int:
        """Approximate local memory footprint in words."""
        if sizer is None:
            from .system import default_word_cost

            sizer = default_word_cost
        return sum(sizer(v) for v in self.heap.values()) + sum(
            sizer(v) for v in self.scratch.values()
        )


class PIMModule:
    """A PIM module: wraps a context and the host-visible send/recv state."""

    __slots__ = ("context", "inbox", "outbox")

    def __init__(self, module_id: int):
        self.context = ModuleContext(module_id)
        self.inbox: list[Any] = []
        self.outbox: list[Any] = []

    def wipe(self) -> None:
        """Crash the module: local memory and in-flight buffers are lost."""
        self.context.wipe()
        self.inbox.clear()
        self.outbox.clear()

    @property
    def module_id(self) -> int:
        return self.context.module_id
