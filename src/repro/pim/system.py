"""The PIM Model executable simulator (paper §2).

A :class:`PIMSystem` consists of ``P`` :class:`PIMModule`s and a host
CPU.  Programs run in BSP-like synchronous rounds: in one round the host

1. performs local computation,
2. writes a buffer of data to each module's local memory,
3. launches a PIM kernel on each module and waits for completion,
4. reads a buffer of data from each module's local memory.

:meth:`PIMSystem.round` executes exactly one such round: it takes a list
of per-module request batches and a kernel, runs the kernel on every
module that received requests (sequentially in the simulation but
logically in parallel), and returns per-module reply batches.  Word
costs of requests and replies are measured by ``word_cost`` and recorded
in the metrics collector, which tracks IO rounds, IO time (max over
modules of a module's total round traffic, in + out), total
communication, and PIM time (max kernel work per round) — the
quantities bounded by the paper's theorems.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from .. import fastpath
from .metrics import MetricsCollector, MetricsSnapshot
from .module import ModuleContext, PIMModule

__all__ = ["PIMSystem", "default_word_cost", "reflective_word_cost"]

Kernel = Callable[[ModuleContext, list], list]


def reflective_word_cost(obj: Any) -> int:
    """Cost, in machine words, of shipping ``obj`` between CPU and PIM.

    Mirrors the paper's accounting: an l-bit string costs ceil(l/w)
    words (at least 1 for non-payload framing), a hash value or scalar
    costs 1 word, and containers cost the sum of their elements.
    Objects may declare their own cost via a ``word_cost()`` method.

    This is the uncached reference implementation: it re-resolves the
    dispatch for every object.  :func:`default_word_cost` computes the
    same values through a per-type dispatch cache; the two are kept in
    lockstep by the metric-parity tests.
    """
    if obj is None or isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 1
    cost_fn = getattr(obj, "word_cost", None)
    if cost_fn is not None:
        return int(cost_fn())
    if isinstance(obj, str):
        return max(1, -(-len(obj) * 8 // 64))
    if isinstance(obj, bytes):
        return max(1, -(-len(obj) // 8))
    if isinstance(obj, np.ndarray):
        return max(1, -(-obj.nbytes // 8))
    if isinstance(obj, Mapping):
        return sum(
            reflective_word_cost(k) + reflective_word_cost(v)
            for k, v in obj.items()
        ) or 1
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(reflective_word_cost(x) for x in obj) or 1
    # dataclass-ish fallback: sum of public attribute costs
    d = getattr(obj, "__dict__", None)
    if d is None and hasattr(obj, "__slots__"):
        d = {s: getattr(obj, s) for s in obj.__slots__ if hasattr(obj, s)}
    if d:
        return sum(reflective_word_cost(v) for v in d.values()) or 1
    return 1


# Per-type dispatch kinds for the fast path.  Dispatch depends only on
# the type (scalar-ness, presence of a word_cost method, container
# protocol), so resolving it once per type is exact.
_WC_SCALAR, _WC_METHOD, _WC_STR, _WC_BYTES = 0, 1, 2, 3
_WC_NDARRAY, _WC_MAPPING, _WC_SEQ, _WC_REFLECT = 4, 5, 6, 7

_wc_kind_cache: dict[type, int] = {}


def _wc_resolve(t: type) -> int:
    if t is type(None) or issubclass(t, (bool, int, float, np.integer, np.floating)):
        kind = _WC_SCALAR
    elif getattr(t, "word_cost", None) is not None:
        kind = _WC_METHOD
    elif issubclass(t, str):
        kind = _WC_STR
    elif issubclass(t, bytes):
        kind = _WC_BYTES
    elif issubclass(t, np.ndarray):
        kind = _WC_NDARRAY
    elif issubclass(t, Mapping):
        kind = _WC_MAPPING
    elif issubclass(t, (list, tuple, set, frozenset)):
        kind = _WC_SEQ
    else:
        kind = _WC_REFLECT
    _wc_kind_cache[t] = kind
    return kind


def default_word_cost(obj: Any) -> int:
    """:func:`reflective_word_cost` with a per-type dispatch cache.

    Message word-costing runs for every request and reply of every BSP
    round, so the repeated isinstance/getattr resolution of the
    reference implementation dominated simulator wall-clock.  The fast
    path memoizes the dispatch decision per concrete type (``word_cost``
    must be a method, not an instance attribute — true of every message
    type in the repo).  With :mod:`repro.fastpath` disabled it defers to
    the reference implementation wholesale.
    """
    if not fastpath.ENABLED:
        return reflective_word_cost(obj)
    t = obj.__class__
    kind = _wc_kind_cache.get(t)
    if kind is None:
        kind = _wc_resolve(t)
    if kind == _WC_SCALAR:
        return 1
    if kind == _WC_METHOD:
        return int(obj.word_cost())
    if kind == _WC_STR:
        return max(1, -(-len(obj) * 8 // 64))
    if kind == _WC_BYTES:
        return max(1, -(-len(obj) // 8))
    if kind == _WC_NDARRAY:
        return max(1, -(-obj.nbytes // 8))
    if kind == _WC_MAPPING:
        return sum(
            default_word_cost(k) + default_word_cost(v) for k, v in obj.items()
        ) or 1
    if kind == _WC_SEQ:
        return sum(default_word_cost(x) for x in obj) or 1
    return reflective_word_cost(obj)


class PIMSystem:
    """``P`` PIM modules plus a host CPU, with PIM Model cost accounting.

    Parameters
    ----------
    num_modules:
        ``P`` in the paper.
    seed:
        Seed for the system RNG used for random block placement.
    word_cost:
        Override for the message word-cost function.
    keep_round_log:
        Retain a per-round :class:`RoundRecord` log (benchmarks use it).
    """

    def __init__(
        self,
        num_modules: int,
        *,
        seed: int = 0,
        word_cost: Callable[[Any], int] = default_word_cost,
        keep_round_log: bool = False,
    ):
        if num_modules < 1:
            raise ValueError("a PIM system needs at least one module")
        self.num_modules = num_modules
        self.modules = [PIMModule(m) for m in range(num_modules)]
        self.metrics = MetricsCollector(num_modules, keep_round_log=keep_round_log)
        self.word_cost = word_cost
        self.rng = np.random.default_rng(seed)
        self._kernels: dict[str, Kernel] = {}
        #: installed fault injector (repro.faults); None = no fault layer
        self.faults = None
        #: attached span tracer (repro.obs); None = tracing off
        self.obs = None

    # ------------------------------------------------------------------
    # kernel registry ("the host CPU can load programs to PIM modules")
    # ------------------------------------------------------------------
    def register_kernel(self, name: str, fn: Kernel) -> None:
        """Register ``fn`` under ``name``.

        Re-registering the *same* function object under its existing
        name is a no-op (idempotent loading, e.g. a PIMTrie re-running
        its kernel setup); registering a *different* function under a
        taken name raises.
        """
        if name in self._kernels:
            if self._kernels[name] is fn:
                return
            raise ValueError(
                f"kernel {name!r} already registered to a different function "
                f"({self._kernels[name]!r}); reloading is only a no-op for "
                f"the identical function object"
            )
        self._kernels[name] = fn

    def kernel(self, name: str) -> Callable[[Kernel], Kernel]:
        """Decorator form of :meth:`register_kernel`."""

        def deco(fn: Kernel) -> Kernel:
            self.register_kernel(name, fn)
            return fn

        return deco

    # ------------------------------------------------------------------
    # the BSP round
    # ------------------------------------------------------------------
    def round(
        self,
        kernel: str | Kernel,
        requests: Mapping[int, list] | Sequence[list],
        *,
        free_output: bool = True,
    ) -> dict[int, list]:
        """Execute one synchronous round.

        ``requests`` maps module id -> list of request messages (a
        sequence is treated as dense per-module lists).  The kernel runs
        once on every module with a non-empty request list and returns a
        list of reply messages.  Returns module id -> replies.
        """
        obs = self.obs
        t0 = obs.clock() if obs is not None else 0.0

        if callable(kernel):
            fn = kernel
        else:
            try:
                fn = self._kernels[kernel]
            except KeyError:
                raise KeyError(f"no kernel registered under {kernel!r}") from None

        if not isinstance(requests, Mapping):
            requests = {m: reqs for m, reqs in enumerate(requests)}

        # validate every module id (even with an empty request list)
        # before any kernel runs: a bad id is a programming error, and
        # validating lazily inside the execution loop would let kernels
        # on earlier modules run — leaving side effects behind with no
        # round recorded — before the error surfaced
        for mid in requests:
            if not 0 <= mid < self.num_modules:
                raise IndexError(
                    f"module id {mid} out of range for P={self.num_modules}"
                )

        words_to = [0] * self.num_modules
        words_from = [0] * self.num_modules
        kernel_work = [0] * self.num_modules
        replies: dict[int, list] = {}
        wc = self.word_cost

        faults = self.faults
        verdict = faults.begin_round(requests) if faults is not None else None
        if verdict is not None and verdict.error is not None:
            # the round dies before any kernel launches: the host still
            # wrote its buffers, so charge words_to and record the round
            # with zero kernel work and zero replies, then unwind
            for mid, reqs in requests.items():
                if reqs:
                    words_to[mid] += sum(map(wc, reqs))
            self.metrics.record_round(words_to, words_from, kernel_work)
            if obs is not None:
                obs.on_round(
                    kernel if isinstance(kernel, str)
                    else getattr(fn, "__name__", "kernel"),
                    words_to, words_from, kernel_work, t0,
                    aborted=verdict.error.cause,
                )
            raise verdict.error

        copy_requests = not fastpath.ENABLED
        for mid, reqs in requests.items():
            if not reqs:
                continue
            words_to[mid] += sum(map(wc, reqs))
            ctx = self.modules[mid].context
            work_before = ctx.work
            # the fast path hands the kernel the caller's list directly;
            # kernels are simulator-internal and must not mutate their
            # request batch (the reference path keeps the defensive copy)
            out = fn(ctx, list(reqs) if copy_requests else reqs)
            if out is None:
                out = []
            kernel_work[mid] = ctx.work - work_before
            words_from[mid] += sum(map(wc, out))
            replies[mid] = out

        error = None
        if verdict is not None:
            error = faults.end_round(verdict, replies, words_from)
        self.metrics.record_round(words_to, words_from, kernel_work)
        if obs is not None:
            obs.on_round(
                kernel if isinstance(kernel, str)
                else getattr(fn, "__name__", "kernel"),
                words_to, words_from, kernel_work, t0,
                aborted=error.cause if error is not None else None,
            )
        if error is not None:
            # post-kernel abort (lost reply buffer): the kernels ran and
            # the full round is on the books — crash-before-ack
            raise error
        return replies

    def broadcast(self, kernel: str | Kernel, request: Any) -> dict[int, list]:
        """Run a kernel with the same single request on every module."""
        return self.round(kernel, {m: [request] for m in range(self.num_modules)})

    # ------------------------------------------------------------------
    # fault injection (repro.faults)
    # ------------------------------------------------------------------
    def install_faults(self, plan) -> "Any":
        """Install a :class:`repro.faults.FaultPlan`; returns the injector.

        Plan rounds are numbered from 0 starting *now* (installing
        resets the injected-round clock), so plans are independent of
        whatever build phase ran before.  Replaces any prior injector.
        """
        from ..faults.injector import FaultInjector

        self.faults = FaultInjector(self, plan)
        return self.faults

    def clear_faults(self) -> None:
        """Remove the fault layer entirely (rounds run untouched)."""
        self.faults = None

    # ------------------------------------------------------------------
    # placement and bookkeeping helpers
    # ------------------------------------------------------------------
    def random_module(self) -> int:
        """Uniformly random module id (block placement, §4.2)."""
        return int(self.rng.integers(self.num_modules))

    def random_modules(self, k: int) -> np.ndarray:
        return self.rng.integers(self.num_modules, size=k)

    def tick_cpu(self, n: int = 1) -> None:
        self.metrics.tick_cpu(n)

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def memory_words(self) -> list[int]:
        """Per-module local memory footprint in words (space experiments)."""
        return [m.context.memory_words(self.word_cost) for m in self.modules]

    def total_memory_words(self) -> int:
        return sum(self.memory_words())

    def __repr__(self) -> str:
        return f"PIMSystem(P={self.num_modules}, rounds={self.metrics.io_rounds})"
