"""The PIM Model executable simulator (paper §2).

A :class:`PIMSystem` consists of ``P`` :class:`PIMModule`s and a host
CPU.  Programs run in BSP-like synchronous rounds: in one round the host

1. performs local computation,
2. writes a buffer of data to each module's local memory,
3. launches a PIM kernel on each module and waits for completion,
4. reads a buffer of data from each module's local memory.

:meth:`PIMSystem.round` executes exactly one such round: it takes a list
of per-module request batches and a kernel, runs the kernel on every
module that received requests (sequentially in the simulation but
logically in parallel), and returns per-module reply batches.  Word
costs of requests and replies are measured by ``word_cost`` and recorded
in the metrics collector, which tracks IO rounds, IO time (max per-module
words per round), total communication, and PIM time (max kernel work per
round) — the quantities bounded by the paper's theorems.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from .metrics import MetricsCollector, MetricsSnapshot
from .module import ModuleContext, PIMModule

__all__ = ["PIMSystem", "default_word_cost"]

Kernel = Callable[[ModuleContext, list], list]


def default_word_cost(obj: Any) -> int:
    """Cost, in machine words, of shipping ``obj`` between CPU and PIM.

    Mirrors the paper's accounting: an l-bit string costs ceil(l/w)
    words (at least 1 for non-payload framing), a hash value or scalar
    costs 1 word, and containers cost the sum of their elements.
    Objects may declare their own cost via a ``word_cost()`` method.
    """
    if obj is None or isinstance(obj, (bool, int, float)):
        return 1
    cost_fn = getattr(obj, "word_cost", None)
    if cost_fn is not None:
        return int(cost_fn())
    if isinstance(obj, str):
        return max(1, -(-len(obj) * 8 // 64))
    if isinstance(obj, bytes):
        return max(1, -(-len(obj) // 8))
    if isinstance(obj, np.ndarray):
        return max(1, -(-obj.nbytes // 8))
    if isinstance(obj, Mapping):
        return sum(
            default_word_cost(k) + default_word_cost(v) for k, v in obj.items()
        ) or 1
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(default_word_cost(x) for x in obj) or 1
    # dataclass-ish fallback: sum of public attribute costs
    d = getattr(obj, "__dict__", None)
    if d is None and hasattr(obj, "__slots__"):
        d = {s: getattr(obj, s) for s in obj.__slots__ if hasattr(obj, s)}
    if d:
        return sum(default_word_cost(v) for v in d.values()) or 1
    return 1


class PIMSystem:
    """``P`` PIM modules plus a host CPU, with PIM Model cost accounting.

    Parameters
    ----------
    num_modules:
        ``P`` in the paper.
    seed:
        Seed for the system RNG used for random block placement.
    word_cost:
        Override for the message word-cost function.
    keep_round_log:
        Retain a per-round :class:`RoundRecord` log (benchmarks use it).
    """

    def __init__(
        self,
        num_modules: int,
        *,
        seed: int = 0,
        word_cost: Callable[[Any], int] = default_word_cost,
        keep_round_log: bool = False,
    ):
        if num_modules < 1:
            raise ValueError("a PIM system needs at least one module")
        self.num_modules = num_modules
        self.modules = [PIMModule(m) for m in range(num_modules)]
        self.metrics = MetricsCollector(num_modules, keep_round_log=keep_round_log)
        self.word_cost = word_cost
        self.rng = np.random.default_rng(seed)
        self._kernels: dict[str, Kernel] = {}

    # ------------------------------------------------------------------
    # kernel registry ("the host CPU can load programs to PIM modules")
    # ------------------------------------------------------------------
    def register_kernel(self, name: str, fn: Kernel) -> None:
        if name in self._kernels and self._kernels[name] is not fn:
            raise ValueError(f"kernel {name!r} already registered")
        self._kernels[name] = fn

    def kernel(self, name: str) -> Callable[[Kernel], Kernel]:
        """Decorator form of :meth:`register_kernel`."""

        def deco(fn: Kernel) -> Kernel:
            self.register_kernel(name, fn)
            return fn

        return deco

    # ------------------------------------------------------------------
    # the BSP round
    # ------------------------------------------------------------------
    def round(
        self,
        kernel: str | Kernel,
        requests: Mapping[int, list] | Sequence[list],
        *,
        free_output: bool = True,
    ) -> dict[int, list]:
        """Execute one synchronous round.

        ``requests`` maps module id -> list of request messages (a
        sequence is treated as dense per-module lists).  The kernel runs
        once on every module with a non-empty request list and returns a
        list of reply messages.  Returns module id -> replies.
        """
        if callable(kernel):
            fn = kernel
        else:
            try:
                fn = self._kernels[kernel]
            except KeyError:
                raise KeyError(f"no kernel registered under {kernel!r}") from None

        if not isinstance(requests, Mapping):
            requests = {m: reqs for m, reqs in enumerate(requests)}

        words_to = [0] * self.num_modules
        words_from = [0] * self.num_modules
        kernel_work = [0] * self.num_modules
        replies: dict[int, list] = {}

        for mid, reqs in requests.items():
            if not 0 <= mid < self.num_modules:
                raise IndexError(f"module id {mid} out of range")
            if not reqs:
                continue
            words_to[mid] += sum(self.word_cost(r) for r in reqs)
            ctx = self.modules[mid].context
            work_before = ctx.work
            out = fn(ctx, list(reqs))
            if out is None:
                out = []
            kernel_work[mid] = ctx.work - work_before
            words_from[mid] += sum(self.word_cost(r) for r in out)
            replies[mid] = out

        self.metrics.record_round(words_to, words_from, kernel_work)
        return replies

    def broadcast(self, kernel: str | Kernel, request: Any) -> dict[int, list]:
        """Run a kernel with the same single request on every module."""
        return self.round(kernel, {m: [request] for m in range(self.num_modules)})

    # ------------------------------------------------------------------
    # placement and bookkeeping helpers
    # ------------------------------------------------------------------
    def random_module(self) -> int:
        """Uniformly random module id (block placement, §4.2)."""
        return int(self.rng.integers(self.num_modules))

    def random_modules(self, k: int) -> np.ndarray:
        return self.rng.integers(self.num_modules, size=k)

    def tick_cpu(self, n: int = 1) -> None:
        self.metrics.tick_cpu(n)

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def memory_words(self) -> list[int]:
        """Per-module local memory footprint in words (space experiments)."""
        return [m.context.memory_words(self.word_cost) for m in self.modules]

    def total_memory_words(self) -> int:
        return sum(self.memory_words())

    def __repr__(self) -> str:
        return f"PIMSystem(P={self.num_modules}, rounds={self.metrics.io_rounds})"
