"""The second-layer index of §4.4.2: a padded y-fast trie plus validity
vectors.

It maintains a set ``K`` of bit-strings, each shorter than ``w`` bits,
and answers: given a query string ``Q`` (≤ w bits), return the member
``K_i`` whose LCP with ``Q`` is longest, such that no member with the
same LCP is a proper prefix of ``K_i`` (ties resolved toward the
shortest such member).  PIM-trie stores block-root suffixes ``S_rem``
here, so a single O(log w) query finds either the critical block root
or one of its direct children.

Mechanism (paper text, Figure 5): every member is padded to ``w`` bits
twice — once with 0s and once with 1s — and both integers go into a
y-fast trie.  Since distinct members can pad to the same integer, each
padded integer keeps a ``w``-bit *validity vector* marking which prefix
lengths are members.  A query pads ``Q`` both ways, takes the
predecessor and successor of each padded integer, computes the LCP with
``Q``, and binary-searches the validity vector for the shortest valid
length ≥ the LCP (or the longest valid length below it); the best of
the ≤4 candidates is the answer.
"""

from __future__ import annotations

from typing import Optional

from ..bits import BitString
from .yfast import YFastTrie

__all__ = ["ValidityIndex"]


class ValidityIndex:
    """Padded y-fast trie + validity vectors over strings of < w bits."""

    def __init__(self, w: int):
        if w < 1:
            raise ValueError("w must be >= 1")
        self.w = w
        self._yfast = YFastTrie(w)
        #: padded integer value -> w-bit validity vector; bit m set means
        #: the length-m prefix of the padded integer is a member
        self._validity: dict[int, int] = {}
        #: reference count per padded integer (distinct members padding
        #: to it), to know when to remove it from the y-fast trie
        self._members: set[BitString] = set()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, s: BitString) -> bool:
        return s in self._members

    def members(self) -> list[BitString]:
        return sorted(self._members)

    def _paddings(self, s: BitString) -> tuple[int, int]:
        return s.pad_to(self.w, 0).value, s.pad_to(self.w, 1).value

    # ------------------------------------------------------------------
    def insert(self, s: BitString) -> bool:
        """Insert a member; O(log w) amortized y-fast work.  True if new."""
        if len(s) >= self.w:
            raise ValueError(f"members must be < {self.w} bits, got {len(s)}")
        if s in self._members:
            return False
        self._members.add(s)
        for padded in set(self._paddings(s)):
            if padded not in self._validity:
                self._validity[padded] = 0
                self._yfast.insert(padded)
            self._validity[padded] |= 1 << len(s)
        return True

    def delete(self, s: BitString) -> bool:
        if s not in self._members:
            return False
        self._members.discard(s)
        for padded in set(self._paddings(s)):
            vec = self._validity[padded] & ~(1 << len(s))
            # other members may still pad to this integer as a *different*
            # length; recompute which marked lengths remain genuine
            vec = self._revalidate(padded, vec)
            if vec:
                self._validity[padded] = vec
            else:
                del self._validity[padded]
                self._yfast.delete(padded)
        return True

    def _revalidate(self, padded: int, vec: int) -> int:
        """Keep only lengths whose prefix string is still a member."""
        out = 0
        m = vec
        while m:
            length = (m & -m).bit_length() - 1
            m &= m - 1
            prefix = BitString(padded >> (self.w - length) if length else 0, length)
            if prefix in self._members:
                out |= 1 << length
        return out

    # ------------------------------------------------------------------
    def query(self, q: BitString) -> Optional[BitString]:
        """Best member for ``q`` (see class docstring); O(log w) whp."""
        if len(q) > self.w:
            raise ValueError(f"query must be <= {self.w} bits")
        if not self._members:
            return None
        q0 = q.pad_to(self.w, 0).value
        q1 = q.pad_to(self.w, 1).value
        candidates: set[int] = set()
        for qq in (q0, q1):
            if qq in self._validity:
                candidates.add(qq)
            p = self._yfast.predecessor(qq)
            if p is not None:
                candidates.add(p)
            s = self._yfast.successor(qq)
            if s is not None:
                candidates.add(s)
        best: Optional[BitString] = None
        best_score = -1
        for cand in candidates:
            cand_bits = BitString(cand, self.w)
            # LCP of the candidate's bits with the *actual* query string
            l = cand_bits.lcp_len(q)
            vec = self._validity[cand]
            m = self._pick_length(vec, l)
            if m is None:
                continue
            member = BitString(cand >> (self.w - m) if m else 0, m)
            score = min(m, l)
            if (
                score > best_score
                or (
                    score == best_score
                    and best is not None
                    and (len(member), member.value) < (len(best), best.value)
                )
            ):
                best, best_score = member, score
        return best

    @staticmethod
    def _pick_length(vec: int, threshold: int) -> Optional[int]:
        """Shortest valid length >= threshold, else longest valid < it.

        Realized with bit tricks standing in for the paper's binary
        search on the validity vector (both are O(log w)).
        """
        if vec == 0:
            return None
        ge = vec >> threshold
        if ge:
            return threshold + ((ge & -ge).bit_length() - 1)
        lt = vec & ((1 << threshold) - 1)
        return lt.bit_length() - 1

    # ------------------------------------------------------------------
    def space_entries(self) -> int:
        return self._yfast.space_entries() + len(self._validity)

    def __repr__(self) -> str:
        return f"ValidityIndex(w={self.w}, n={len(self._members)})"
