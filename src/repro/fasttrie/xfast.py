"""x-fast trie over fixed-width integer keys (Willard 1983; paper §3.1).

Stores a hash table per level of the implicit binary trie of w-bit
integers.  Queries binary-search over the w levels to find the longest
stored prefix, giving O(log w) lookup/predecessor/successor.  Space is
O(n·w) table entries and updates cost O(w) — the costs the paper cites
when dismissing x-fast tries as a standalone PIM index (Table 1 row 2),
and the reason y-fast tries bucket the leaves.

Descendant pointers: every internal prefix node stores the minimum and
maximum leaf below it, so predecessor/successor resolve in O(1) after
the binary search, via a doubly-linked leaf list.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["XFastTrie"]


class _Leaf:
    __slots__ = ("key", "prev", "next")

    def __init__(self, key: int):
        self.key = key
        self.prev: Optional["_Leaf"] = None
        self.next: Optional["_Leaf"] = None


class XFastTrie:
    """x-fast trie over integers in [0, 2^width)."""

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width
        # level[k] maps the k-bit prefix value -> (min_leaf, max_leaf)
        self._levels: list[dict[int, tuple[_Leaf, _Leaf]]] = [
            {} for _ in range(width + 1)
        ]
        self._leaves: dict[int, _Leaf] = {}
        self._probes = 0  # instrumentation: hash-table probes

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaves)

    def __contains__(self, key: int) -> bool:
        return key in self._leaves

    def _check_key(self, key: int) -> None:
        if not 0 <= key < (1 << self.width):
            raise ValueError(f"key {key} out of range for width {self.width}")

    # ------------------------------------------------------------------
    def insert(self, key: int) -> bool:
        """Insert ``key``; O(w) table updates.  True if new."""
        self._check_key(key)
        if key in self._leaves:
            return False
        leaf = _Leaf(key)
        # link into the sorted leaf list via predecessor
        pred = self.predecessor(key)
        if pred is not None:
            p = self._leaves[pred]
            leaf.next = p.next
            leaf.prev = p
            if p.next is not None:
                p.next.prev = leaf
            p.next = leaf
        else:
            succ = self.successor(key)
            if succ is not None:
                s = self._leaves[succ]
                leaf.prev = s.prev
                leaf.next = s
                s.prev = leaf
        self._leaves[key] = leaf
        for k in range(self.width + 1):
            prefix = key >> (self.width - k)
            entry = self._levels[k].get(prefix)
            if entry is None:
                self._levels[k][prefix] = (leaf, leaf)
            else:
                lo, hi = entry
                if key < lo.key:
                    lo = leaf
                if key > hi.key:
                    hi = leaf
                self._levels[k][prefix] = (lo, hi)
        return True

    def delete(self, key: int) -> bool:
        """Remove ``key``; O(w) table updates.  True if present."""
        self._check_key(key)
        leaf = self._leaves.pop(key, None)
        if leaf is None:
            return False
        if leaf.prev is not None:
            leaf.prev.next = leaf.next
        if leaf.next is not None:
            leaf.next.prev = leaf.prev
        for k in range(self.width + 1):
            prefix = key >> (self.width - k)
            lo, hi = self._levels[k][prefix]
            if lo is leaf and hi is leaf:
                del self._levels[k][prefix]
                continue
            if lo is leaf:
                assert leaf.next is not None
                lo = leaf.next
            if hi is leaf:
                assert leaf.prev is not None
                hi = leaf.prev
            self._levels[k][prefix] = (lo, hi)
        return True

    # ------------------------------------------------------------------
    def longest_prefix_level(self, key: int) -> int:
        """Length of the longest prefix of ``key`` present in the trie.

        Binary search over levels: O(log w) hash probes.
        """
        self._check_key(key)
        if not self._leaves:
            return -1
        lo, hi = 0, self.width
        # invariant: prefix of length lo is present (level 0 always is)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            self._probes += 1
            if (key >> (self.width - mid)) in self._levels[mid]:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def predecessor(self, key: int) -> Optional[int]:
        """Largest stored key strictly less than ``key``; O(log w)."""
        self._check_key(key)
        if not self._leaves:
            return None
        level = self.longest_prefix_level(key)
        if level == self.width:
            leaf = self._leaves[key]
            return leaf.prev.key if leaf.prev is not None else None
        prefix = key >> (self.width - level)
        lo, hi = self._levels[level][prefix]
        # key diverges below this prefix: went right or left of the range
        if key > hi.key:
            return hi.key
        # key < lo.key: everything under the prefix is larger
        cand = lo.prev
        return cand.key if cand is not None else None

    def successor(self, key: int) -> Optional[int]:
        """Smallest stored key strictly greater than ``key``; O(log w)."""
        self._check_key(key)
        if not self._leaves:
            return None
        level = self.longest_prefix_level(key)
        if level == self.width:
            leaf = self._leaves[key]
            return leaf.next.key if leaf.next is not None else None
        prefix = key >> (self.width - level)
        lo, hi = self._levels[level][prefix]
        if key < lo.key:
            return lo.key
        cand = hi.next
        return cand.key if cand is not None else None

    # ------------------------------------------------------------------
    def keys(self) -> Iterator[int]:
        if not self._leaves:
            return
        cur: Optional[_Leaf] = self._leaves[min(self._leaves)]
        while cur is not None:
            yield cur.key
            cur = cur.next

    @property
    def probes(self) -> int:
        """Cumulative hash-table probes (for the O(log w) experiments)."""
        return self._probes

    def space_entries(self) -> int:
        """Total hash-table entries across levels (Θ(n·w), Table 1)."""
        return sum(len(lvl) for lvl in self._levels)

    def __repr__(self) -> str:
        return f"XFastTrie(width={self.width}, n={len(self._leaves)})"
