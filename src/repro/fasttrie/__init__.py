"""Fast-trie family: x-fast, y-fast, z-fast tries and the validity index."""

from .validity import ValidityIndex
from .wbtree import WeightBalancedTree
from .xfast import XFastTrie
from .yfast import YFastTrie
from .zfast import ZFastTrie, two_fattest

__all__ = [
    "ValidityIndex",
    "WeightBalancedTree",
    "XFastTrie",
    "YFastTrie",
    "ZFastTrie",
    "two_fattest",
]
