"""Weight-balanced binary search tree (BB[alpha] tree).

Paper §5.2 (Load Balance): y-fast trie insertions/deletions are
amortized O(log w) but worst-case O(w), which can unbalance PIM time;
"they can be de-amortized by using a weight balanced tree as the
internal binary search tree".  This module provides that substrate: a
BB[alpha] tree whose every single update costs O(log n) worst-case
pointer work plus at most one localized subtree rebuild whose size is
geometrically distributed — no Θ(n) single-operation spikes from bucket
splits.

:class:`WeightBalancedTree` supports insert/delete/contains,
predecessor/successor, min/max, and in-order iteration.  The
``max_work_per_op`` instrumentation records the largest single-update
rebuild, which the de-amortization experiments read.
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = ["WeightBalancedTree"]


class _Node:
    __slots__ = ("key", "left", "right", "size")

    def __init__(self, key: int):
        self.key = key
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.size = 1


def _size(n: Optional[_Node]) -> int:
    return n.size if n is not None else 0


class WeightBalancedTree:
    """BB[alpha] tree over integer keys (alpha = 0.25 by default:
    rebuild a subtree when one side holds more than (1-alpha) of it)."""

    def __init__(self, alpha: float = 0.25):
        if not 0.0 < alpha < 0.5:
            raise ValueError("alpha must be in (0, 0.5)")
        self.alpha = alpha
        self.root: Optional[_Node] = None
        #: size of the largest single-operation rebuild (instrumentation)
        self.max_work_per_op = 0
        #: total rebuild work across the tree's lifetime
        self.total_rebuild_work = 0
        self._work_this_op = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return _size(self.root)

    def __contains__(self, key: int) -> bool:
        cur = self.root
        while cur is not None:
            if key == cur.key:
                return True
            cur = cur.left if key < cur.key else cur.right
        return False

    # ------------------------------------------------------------------
    def _balanced(self, n: _Node) -> bool:
        w = n.size + 1
        lo = self.alpha * w
        return lo <= _size(n.left) + 1 and lo <= _size(n.right) + 1

    def _rebuild(self, n: _Node) -> _Node:
        """Flatten and rebuild perfectly balanced; O(|subtree|)."""
        nodes: list[_Node] = []

        def flatten(x: Optional[_Node]) -> None:
            if x is None:
                return
            flatten(x.left)
            nodes.append(x)
            flatten(x.right)

        flatten(n)
        self._work_this_op += len(nodes)

        def build(lo: int, hi: int) -> Optional[_Node]:
            if lo > hi:
                return None
            mid = (lo + hi) // 2
            node = nodes[mid]
            node.left = build(lo, mid - 1)
            node.right = build(mid + 1, hi)
            node.size = 1 + _size(node.left) + _size(node.right)
            return node

        return build(0, len(nodes) - 1)

    # ------------------------------------------------------------------
    def insert(self, key: int) -> bool:
        self._work_this_op = 0
        self._path: list[_Node] = []
        before = len(self)
        self.root = self._insert(self.root, key)
        self._fix_highest()
        self.max_work_per_op = max(self.max_work_per_op, self._work_this_op)
        self.total_rebuild_work += self._work_this_op
        return len(self) != before

    def _insert(self, n: Optional[_Node], key: int) -> _Node:
        if n is None:
            return _Node(key)
        self._path.append(n)
        if key == n.key:
            return n
        if key < n.key:
            n.left = self._insert(n.left, key)
        else:
            n.right = self._insert(n.right, key)
        n.size = 1 + _size(n.left) + _size(n.right)
        return n

    def _fix_highest(self) -> None:
        """Scapegoat discipline: rebuild only the *highest* unbalanced
        node on the just-updated path, so one update never pays for
        cascading rebuilds (the §5.2 de-amortization property).  All
        size changes of an update happen on the recorded path, so any
        newly unbalanced node lies on it."""
        for i, n in enumerate(self._path):
            if self._balanced(n):
                continue
            rebuilt = self._rebuild(n)
            if i == 0:
                self.root = rebuilt
            else:
                parent = self._path[i - 1]
                if parent.left is n:
                    parent.left = rebuilt
                else:
                    parent.right = rebuilt
            return

    def delete(self, key: int) -> bool:
        self._work_this_op = 0
        self._path = []
        before = len(self)
        self.root = self._delete(self.root, key)
        self._fix_highest()
        self.max_work_per_op = max(self.max_work_per_op, self._work_this_op)
        self.total_rebuild_work += self._work_this_op
        return len(self) != before

    def _delete(self, n: Optional[_Node], key: int) -> Optional[_Node]:
        if n is None:
            return None
        self._path.append(n)
        if key < n.key:
            n.left = self._delete(n.left, key)
        elif key > n.key:
            n.right = self._delete(n.right, key)
        else:
            if n.left is None:
                return n.right
            if n.right is None:
                return n.left
            # replace with successor
            succ = n.right
            while succ.left is not None:
                succ = succ.left
            n.key = succ.key
            n.right = self._delete(n.right, succ.key)
        n.size = 1 + _size(n.left) + _size(n.right)
        return n

    # ------------------------------------------------------------------
    def predecessor(self, key: int) -> Optional[int]:
        best = None
        cur = self.root
        while cur is not None:
            if cur.key < key:
                best = cur.key
                cur = cur.right
            else:
                cur = cur.left
        return best

    def successor(self, key: int) -> Optional[int]:
        best = None
        cur = self.root
        while cur is not None:
            if cur.key > key:
                best = cur.key
                cur = cur.left
            else:
                cur = cur.right
        return best

    def min(self) -> Optional[int]:
        cur = self.root
        if cur is None:
            return None
        while cur.left is not None:
            cur = cur.left
        return cur.key

    def max(self) -> Optional[int]:
        cur = self.root
        if cur is None:
            return None
        while cur.right is not None:
            cur = cur.right
        return cur.key

    def __iter__(self) -> Iterator[int]:
        stack: list[_Node] = []
        cur = self.root
        while stack or cur is not None:
            while cur is not None:
                stack.append(cur)
                cur = cur.left
            cur = stack.pop()
            yield cur.key
            cur = cur.right

    def height(self) -> int:
        def h(n: Optional[_Node]) -> int:
            return 0 if n is None else 1 + max(h(n.left), h(n.right))

        return h(self.root)

    def check_invariants(self) -> None:
        def walk(n: Optional[_Node], lo, hi) -> int:
            if n is None:
                return 0
            assert (lo is None or n.key > lo) and (hi is None or n.key < hi)
            ls = walk(n.left, lo, n.key)
            rs = walk(n.right, n.key, hi)
            assert n.size == 1 + ls + rs
            assert self._balanced(n), f"unbalanced at {n.key}"
            return n.size

        walk(self.root, None, None)
