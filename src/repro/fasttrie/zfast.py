"""z-fast trie: fat binary search over a compressed trie of short strings
(Belazzougui–Boldi–Vigna 2010; paper §3.1 and §4.4.2).

PIM-trie uses bounded-height z-fast tries as *shortcut indexes*: for
every pivot node, a z-fast trie of height ≤ w over the suffixes of its
hosted compressed nodes answers "deepest hosted node on this search
path" in O(log w) probes instead of O(w) bit steps.

Mechanism.  Build the compressed trie over the member set; every trie
node (member or branch point) owns the depth interval
``(parent_depth, depth]``.  The *handle* of an interval is its 2-fattest
element — the depth in the interval divisible by the largest power of
two.  A hash table maps ``(handle, value of the query's handle-length
prefix)`` to the node.  Fat binary search probes O(log h) handles from
coarse to fine; each hit either certifies an ancestor (advance ``lo``)
or pins the divergence depth (finish by a parent walk).

Each node record is augmented with its deepest *member*
ancestor-or-self, so "longest member that prefixes q" falls out of the
exit node in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..bits import BitString

__all__ = ["ZFastTrie", "two_fattest"]


def two_fattest(lo: int, hi: int) -> int:
    """The 2-fattest number in (lo, hi]: the element divisible by the
    largest power of two.  Requires ``lo < hi`` (and ``lo >= 0``)."""
    if not 0 <= lo < hi:
        raise ValueError("need 0 <= lo < hi")
    return hi & (~0 << ((lo ^ hi).bit_length() - 1))


@dataclass
class _Node:
    """A compressed-trie node over the member set."""

    string: BitString
    parent: Optional["_Node"]
    is_member: bool
    #: deepest member on the root path, including this node
    member_anc: Optional[BitString] = None

    @property
    def depth(self) -> int:
        return len(self.string)

    @property
    def parent_depth(self) -> int:
        return self.parent.depth if self.parent is not None else -1


class ZFastTrie:
    """Set of short bit-strings with O(log h) longest-member-prefix search.

    Rebuilt wholesale on updates: PIM-trie only ever instantiates these
    over O(K_B)-sized blocks, where a rebuild is within the PIM-time
    budget of the surrounding algorithm.
    """

    def __init__(self):
        self._values: dict[BitString, Any] = {}
        self._handles: dict[tuple[int, int], _Node] = {}
        self._root: Optional[_Node] = None
        self._probes = 0
        self._max_len = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, s: BitString) -> bool:
        return s in self._values

    def get(self, s: BitString) -> Any:
        return self._values.get(s)

    def members(self) -> list[BitString]:
        return sorted(self._values)

    # ------------------------------------------------------------------
    def insert(self, s: BitString, value: Any = None) -> bool:
        fresh = s not in self._values
        self._values[s] = value
        if fresh:
            self._rebuild()
        return fresh

    def delete(self, s: BitString) -> bool:
        if s not in self._values:
            return False
        del self._values[s]
        self._rebuild()
        return True

    def bulk_build(self, items: dict[BitString, Any]) -> None:
        """Build from scratch over a full member set (the common path)."""
        self._values = dict(items)
        self._rebuild()

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Recompute the compressed-trie skeleton and the handle table.

        Nodes = members plus branch points (pairwise adjacent LCPs of
        the sorted member list), the standard compressed-trie node set.
        """
        self._handles.clear()
        self._root = None
        self._max_len = max((len(x) for x in self._values), default=0)
        if not self._values:
            return
        members = sorted(self._values)
        node_strings: set[BitString] = set(members)
        for a, b in zip(members, members[1:]):
            node_strings.add(a.prefix(a.lcp_len(b)))
        # Parents via a single stack scan over the sorted node strings:
        # in trie order every proper prefix of s precedes s, and the
        # ancestors of s are exactly the stack entries that are prefixes
        # of s after popping non-prefixes.  O(n log n) overall.
        ordered = sorted(node_strings)
        nodes: dict[BitString, _Node] = {}
        spine: list[_Node] = []
        for s in ordered:
            while spine and not spine[-1].string.is_prefix_of(s):
                spine.pop()
            parent = spine[-1] if spine else None
            node = _Node(string=s, parent=parent, is_member=s in self._values)
            anc = parent.member_anc if parent is not None else None
            node.member_anc = s if node.is_member else anc
            nodes[s] = node
            spine.append(node)
            if parent is None and self._root is None:
                self._root = node
        # handle table
        for node in nodes.values():
            lo = max(node.parent_depth, 0)
            hi = node.depth
            if hi == 0:
                continue  # depth-0 node needs no handle (root of search)
            h = two_fattest(lo, hi) if lo < hi else hi
            key = (h, node.string.prefix(h).value)
            assert key not in self._handles, "interval handles must be unique"
            self._handles[key] = node

    # ------------------------------------------------------------------
    def lookup_deepest_prefix(self, q: BitString) -> Optional[BitString]:
        """Longest member that is a prefix of ``q``; O(log h) probes whp."""
        if self._root is None:
            return None
        root = self._root
        if not root.string.is_prefix_of(q):
            # even the skeleton root diverges from q: the only possible
            # member prefixes are ancestors of the divergence point,
            # which for a skeleton root means nothing below it matches
            k = root.string.lcp_len(q)
            return root.member_anc if root.depth <= k else None
        best = root
        lo, hi = root.depth, min(len(q), self._max_len)
        while lo < hi:
            f = two_fattest(lo, hi)
            self._probes += 1
            node = self._handles.get((f, q.prefix(f).value))
            if node is None:
                hi = f - 1
                continue
            k = node.string.lcp_len(q)
            if k == node.depth:
                # full hit: node is an ancestor-or-self of the exit node
                best = node
                lo = node.depth
            else:
                # q diverges from this path at depth k: the exit node is
                # the deepest ancestor of `node` with depth <= k
                cur = node
                while cur.parent is not None and cur.depth > k:
                    cur = cur.parent
                return cur.member_anc if cur.depth <= k else None
        return best.member_anc

    @property
    def probes(self) -> int:
        """Cumulative handle probes (for the O(log w) experiments)."""
        return self._probes

    def __repr__(self) -> str:
        return f"ZFastTrie(n={len(self._values)}, h={self._max_len})"
