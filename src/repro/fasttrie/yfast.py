"""y-fast trie: x-fast top structure over Θ(w)-sized buckets (paper §3.1).

Restores O(n) space and O(log w) amortized updates by storing keys in
balanced buckets indexed by an x-fast trie over one representative per
bucket.  This is the second-layer index substrate of §4.4.2 (combined
with validity vectors in :mod:`repro.fasttrie.validity`).

Buckets come in two flavours:

* sorted lists (default) — simplest, amortized bounds;
* weight-balanced trees (``deamortized=True``) — the §5.2
  de-amortization: no single update pays a Θ(w) list shuffle, so PIM
  time stays balanced under adversarial update streams.
"""

from __future__ import annotations

import bisect
from typing import Iterator, Optional

from .wbtree import WeightBalancedTree
from .xfast import XFastTrie

__all__ = ["YFastTrie"]


class _Bucket:
    """Sorted-list bucket (amortized variant)."""

    __slots__ = ("rep", "keys")

    def __init__(self, rep: int, keys: list[int]):
        self.rep = rep  # representative registered in the x-fast top
        self.keys = keys  # sorted

    def add(self, key: int) -> bool:
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return False
        self.keys.insert(i, key)
        return True

    def remove(self, key: int) -> bool:
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            self.keys.pop(i)
            return True
        return False

    def contains(self, key: int) -> bool:
        i = bisect.bisect_left(self.keys, key)
        return i < len(self.keys) and self.keys[i] == key

    def pred(self, key: int) -> Optional[int]:
        i = bisect.bisect_left(self.keys, key)
        return self.keys[i - 1] if i > 0 else None

    def succ(self, key: int) -> Optional[int]:
        i = bisect.bisect_right(self.keys, key)
        return self.keys[i] if i < len(self.keys) else None

    def size(self) -> int:
        return len(self.keys)

    def all_keys(self) -> list[int]:
        return list(self.keys)


class _WBBucket:
    """Weight-balanced-tree bucket (the §5.2 de-amortized variant)."""

    __slots__ = ("rep", "tree")

    def __init__(self, rep: int, keys: list[int]):
        self.rep = rep
        self.tree = WeightBalancedTree()
        for k in keys:
            self.tree.insert(k)

    def add(self, key: int) -> bool:
        return self.tree.insert(key)

    def remove(self, key: int) -> bool:
        return self.tree.delete(key)

    def contains(self, key: int) -> bool:
        return key in self.tree

    def pred(self, key: int) -> Optional[int]:
        return self.tree.predecessor(key)

    def succ(self, key: int) -> Optional[int]:
        return self.tree.successor(key)

    def size(self) -> int:
        return len(self.tree)

    def all_keys(self) -> list[int]:
        return list(self.tree)


class YFastTrie:
    """y-fast trie over integers in [0, 2^width)."""

    def __init__(self, width: int, *, deamortized: bool = False):
        self.width = width
        self.deamortized = deamortized
        self._top = XFastTrie(width)
        self._buckets: dict[int, _Bucket] = {}  # rep -> bucket
        self._size = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def _bucket_for(self, key: int) -> Optional[_Bucket]:
        """The bucket routing ``key``: the one with the largest
        representative <= key, else the first bucket."""
        if not self._buckets:
            return None
        if key in self._top:
            return self._buckets[key]
        rep = self._top.predecessor(key)
        if rep is None:
            # key is below every representative: route to the first bucket
            rep = self._top.successor(key)
        assert rep is not None
        return self._buckets[rep]

    def __contains__(self, key: int) -> bool:
        b = self._bucket_for(key)
        return b is not None and b.contains(key)

    def _make_bucket(self, rep: int, keys: list[int]):
        cls = _WBBucket if self.deamortized else _Bucket
        return cls(rep, keys)

    # ------------------------------------------------------------------
    def insert(self, key: int) -> bool:
        if not 0 <= key < (1 << self.width):
            raise ValueError(f"key {key} out of range")
        b = self._bucket_for(key)
        if b is None:
            self._buckets[key] = self._make_bucket(key, [key])
            self._top.insert(key)
            self._size += 1
            return True
        if not b.add(key):
            return False
        self._size += 1
        if b.size() > 2 * max(2, self.width):
            self._split(b)
        return True

    def _split(self, b) -> None:
        """Split an oversized bucket into two halves.

        The old registration is removed before the halves register so
        a representative collision (b.rep == the split key) cannot
        silently drop the new right bucket.
        """
        ks = b.all_keys()
        mid = len(ks) // 2
        left_keys, right_keys = ks[:mid], ks[mid:]
        old_rep = b.rep
        new_rep = right_keys[0]
        # the left half keeps a representative <= its smallest key (the
        # old rep can exceed left_keys[0] when keys below it were routed
        # here through the first-bucket fallback)
        left_rep = min(old_rep, left_keys[0])
        del self._buckets[old_rep]
        self._top.delete(old_rep)
        self._buckets[left_rep] = self._make_bucket(left_rep, left_keys)
        self._top.insert(left_rep)
        self._buckets[new_rep] = self._make_bucket(new_rep, right_keys)
        self._top.insert(new_rep)

    def delete(self, key: int) -> bool:
        b = self._bucket_for(key)
        if b is None or not b.remove(key):
            return False
        self._size -= 1
        if b.size() == 0:
            del self._buckets[b.rep]
            self._top.delete(b.rep)
        elif b.size() < max(1, self.width // 4):
            self._merge(b)
        return True

    def _merge(self, b) -> None:
        """Merge an undersized bucket with a neighbor (then maybe re-split)."""
        nxt = self._top.successor(b.rep)
        prv = self._top.predecessor(b.rep)
        other_rep = nxt if nxt is not None else prv
        if other_rep is None:
            return  # only bucket
        other = self._buckets[other_rep]
        merged = sorted(b.all_keys() + other.all_keys())
        del self._buckets[b.rep]
        self._top.delete(b.rep)
        del self._buckets[other.rep]
        self._top.delete(other.rep)
        nb = self._make_bucket(merged[0], merged)
        self._buckets[nb.rep] = nb
        self._top.insert(nb.rep)
        if nb.size() > 2 * max(2, self.width):
            self._split(nb)

    # ------------------------------------------------------------------
    def predecessor(self, key: int) -> Optional[int]:
        """Largest stored key < key; O(log w) whp."""
        b = self._bucket_for(key)
        if b is None:
            return None
        got = b.pred(key)
        if got is not None:
            return got
        prv = self._top.predecessor(b.rep)
        while prv is not None:
            pb = self._buckets[prv]
            got = pb.pred(key)
            if got is not None:
                return got
            prv = self._top.predecessor(prv)
        return None

    def successor(self, key: int) -> Optional[int]:
        """Smallest stored key > key; O(log w) whp."""
        b = self._bucket_for(key)
        if b is None:
            return None
        got = b.succ(key)
        if got is not None:
            return got
        nxt = self._top.successor(b.rep)
        while nxt is not None:
            nb = self._buckets[nxt]
            got = nb.succ(key)
            if got is not None:
                return got
            nxt = self._top.successor(nxt)
        return None

    def keys(self) -> Iterator[int]:
        for rep in sorted(self._buckets):
            yield from self._buckets[rep].all_keys()

    def space_entries(self) -> int:
        """x-fast top entries + bucket cells: O(n) by Θ(w) bucketing."""
        return self._top.space_entries() + self._size

    def __repr__(self) -> str:
        return f"YFastTrie(width={self.width}, n={self._size})"
